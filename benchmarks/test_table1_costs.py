"""Benchmark: Table I — message / volume / flop counts when only R is needed.

Compares the analytic model of paper Table I with the counts actually
measured from the simulation traces (messages on the busiest rank, bytes
moved, flops on the busiest rank) for both algorithms on the four-site
platform.  The headline structural facts must hold exactly:

* TSQR's message count is independent of N and smaller than ScaLAPACK's by a
  factor of order 2N;
* the exchanged volume per process is of the same order for both algorithms;
* TSQR does slightly more flops (the 2/3 log2(P) N^3 term).
"""

from __future__ import annotations

import pytest

from repro.experiments.figures import table1

from benchmarks.conftest import report_rows


def test_table1_counts_r_only(benchmark, runner, results_dir):
    rows = benchmark.pedantic(
        table1, args=(runner,), kwargs={"m": 1_048_576, "n": 64, "n_sites": 4},
        rounds=1, iterations=1,
    )
    report_rows("Table I: counts with R factor only (M=1,048,576, N=64, P=256)", rows,
                results_dir, "table1_costs.csv")
    scal = next(r for r in rows if r["algorithm"] == "ScaLAPACK QR2")
    ts = next(r for r in rows if r["algorithm"] == "TSQR")

    # Messages: ScaLAPACK ~ 2 N log2 P on the critical path, TSQR ~ log2 P.
    assert scal["measured # msg (max per rank)"] > 20 * ts["measured # msg (max per rank)"]
    assert scal["model # msg (critical path)"] == pytest.approx(2 * 64 * 8)
    assert ts["model # msg (critical path)"] == pytest.approx(8)

    # Flops: TSQR pays the extra 2/3 log2(P) N^3 term but stays within ~20%.
    assert ts["measured flops (max per rank)"] >= scal["measured flops (max per rank)"]
    assert ts["measured flops (max per rank)"] <= 1.3 * scal["measured flops (max per rank)"]

    # Both measured per-rank flop counts are close to the model's per-domain count.
    for row in rows:
        assert row["measured flops (max per rank)"] == pytest.approx(
            row["model flops (per domain)"], rel=0.25
        )

    # TSQR is faster despite the extra flops.
    assert ts["Gflop/s"] > scal["Gflop/s"]


def test_table1_message_count_independent_of_n(runner, results_dir):
    """The defining property: TSQR messages do not grow with N, ScaLAPACK's do."""
    rows = []
    for n in (64, 128, 256):
        for row in table1(runner, m=1_048_576, n=n, n_sites=2):
            rows.append(row)
    report_rows("Table I sweep over N (P=128)", rows, results_dir, "table1_n_sweep.csv")
    ts_msgs = [r["measured # msg (max per rank)"] for r in rows if r["algorithm"] == "TSQR"]
    scal_msgs = [r["measured # msg (max per rank)"] for r in rows if r["algorithm"] == "ScaLAPACK QR2"]
    assert max(ts_msgs) == min(ts_msgs)  # constant in N
    assert scal_msgs[-1] > 3.5 * scal_msgs[0]  # grows roughly linearly with N
