"""Benchmark: simulator engine scaling — wall time versus number of ranks.

Not a figure of the paper: this tracks the *simulator's own* speed so future
engine changes can be compared against the recorded baseline.  A
virtual-payload TSQR run is simulated on synthetic 4-cluster grids of
32/128/512/2048/8192 ranks (32768 with ``REPRO_BENCH_FULL=1``); wall-clock
time per rank count goes to ``results/scaling_smoke.csv`` and the
machine-readable trajectory — wall time, engine events/s and speedup over the
per-rank-count baseline — to ``results/BENCH_engine.json``.

``REPRO_SMOKE_ENGINE`` selects the simulation backend (``coroutine`` by
default, ``threads`` for the reference backend — capped at 2048 ranks, one OS
thread per rank does not survive 8192).  The threads run records its own
trajectory under ``BENCH_engine_threads.json`` so the CI engine matrix never
clobbers the coroutine baseline.

Three gates run against the BENCH file loaded *before* this run rewrote it,
so an engine regression fails tier-1 instead of silently shipping:

* wall clock per rank count within 2x of the recorded run (absolute 1s floor
  so slow CI hardware cannot flake the suite);
* events/s per rank count at least half the recorded rate (rows too fast to
  time reliably are skipped);
* monotone-or-flat events/s across the sweep itself, out to 8192 ranks: no
  rank count may fall below half the best rate at smaller counts (coroutine
  engine only — the thread backend's collapse to 0.14x by 2048 ranks is
  exactly what this catches).

``speedup_vs_baseline`` is measured against a per-rank-count baseline map
recorded *once*: the pre-fast-path seed engine for 32-512 ranks, the
thread-backed engine's committed 2048-rank row, and for larger counts the
first recorded measurement (speedup 1.0 on first recording, tracked
thereafter).  Every row gets a real number — no nulls beyond the seed's
largest measured rank count.

A 512-rank task-DAG CAQR point rides along under the same wall and events/s
gates (its own baseline row in ``BENCH_engine.json``), so the dataflow
runtime's engine cost is tracked next to the SPMD path's.  A 512-rank
DAG-Cholesky point (the algorithm registry's first non-QR scenario, ~45k
tasks) joins it under the same gates, so graph construction and scheduling
cost is tracked for a dense 2-D dependence structure too.

A fourth section measures the always-on streaming-observability layer: the
512- and 2048-rank TSQR rows re-run with ``streaming_stats=False`` next to a
streaming run, best of paired measurements, and the streaming wall must stay
within 10% (plus a small absolute slack) of the bare run — the overhead
budget the observability layer was designed against.  Rows go to
``results/scaling_smoke_tracing.csv`` and ``BENCH_engine.json`` under
``tracing_overhead``.
"""

from __future__ import annotations

import os
import time

from repro.dag import DAGCAQRConfig, DAGFactorizationConfig, run_dag_caqr, run_dag_factorization
from repro.gridsim import (
    ClusterSpec,
    GridSpec,
    KernelRateModel,
    LinkSpec,
    NetworkModel,
    NodeSpec,
    Platform,
    ProcessorSpec,
    block_placement,
)
from repro.tsqr.parallel import TSQRConfig, run_parallel_tsqr

from benchmarks.conftest import (
    events_flatness_failures,
    events_gate_failures,
    full_sweep,
    load_bench_json,
    report_rows,
    wall_gate_failures,
)

#: Simulation backend exercised by the sweep (CI runs both via this knob).
ENGINE = os.environ.get("REPRO_SMOKE_ENGINE", "coroutine")

#: Rank counts of the sweep (4 clusters x nodes x 2 processes/node).
RANK_COUNTS = (32, 128, 512, 2048, 8192)
#: Extra scale exercised by the full sweep only.
FULL_RANK_COUNTS = (32768,)
#: The thread-backed reference engine spawns one OS thread per rank; cap it.
THREADS_MAX_RANKS = 2048

#: Per-rank-count baselines of the ``speedup_vs_baseline`` column.  32-512 are
#: the pre-fast-path seed engine's scaling_smoke.csv rows; 2048 is the
#: thread-backed engine's committed BENCH row (1.69s, 3.6k events/s — the
#: number the generator core was built to fix).  Counts absent here (8192,
#: 32768) are pinned by their first recorded measurement and carried forward
#: in the BENCH file, so every row always reports a real speedup.
BASELINE_WALL_S = {32: 0.006, 128: 0.068, 512: 0.439, 2048: 1.6898}

#: Wall-clock gate: at most this factor over the recorded run per rank count…
REGRESSION_FACTOR = 2.0
#: …but never failing below this absolute wall time (CI hardware headroom).
REGRESSION_FLOOR_S = 1.0
#: Events/s gate: at least ``1/REGRESSION_FACTOR`` of the recorded rate, for
#: rows that ran long enough for the rate to be signal rather than noise.
EVENTS_GATE_MIN_WALL_S = 0.01
#: Flatness gate: no rank count below this fraction of the sweep's best rate.
FLATNESS_COLLAPSE_RATIO = 0.5

#: Rank counts of the streaming-stats overhead comparison.
TRACING_OVERHEAD_RANKS = (512, 2048)
#: Streaming on may cost at most 10% over streaming off…
TRACING_OVERHEAD_FACTOR = 1.10
#: …plus a small absolute slack so sub-second rows cannot flake on
#: scheduler jitter.
TRACING_OVERHEAD_SLACK_S = 0.15
#: Each mode is measured this many times; the best wall is kept.
TRACING_OVERHEAD_REPEATS = 2


def _platform(n_ranks: int) -> Platform:
    clusters, ppn = 4, 2
    nodes = n_ranks // (clusters * ppn)
    node = NodeSpec(processor=ProcessorSpec("smoke-cpu", 8.0, 3.67), processes_per_node=ppn)
    grid = GridSpec(
        name=f"smoke-grid-{n_ranks}",
        clusters=tuple(
            ClusterSpec(name=f"site{i}", n_nodes=nodes, node=node) for i in range(clusters)
        ),
    )
    network = NetworkModel(
        intra_node=LinkSpec.from_us_mbits(17.0, 5000.0),
        intra_cluster=LinkSpec.from_ms_mbits(0.06, 890.0),
        inter_cluster_default=LinkSpec.from_ms_mbits(8.0, 90.0),
    )
    placement = block_placement(grid, nodes_per_cluster=nodes, processes_per_node=ppn)
    return Platform(
        grid=grid,
        network=network,
        placement=placement,
        kernel_model=KernelRateModel(),
        name=f"smoke-{n_ranks}",
    )


def test_engine_scaling_smoke(results_dir, bench_json):
    bench_name = "engine" if ENGINE == "coroutine" else f"engine_{ENGINE}"
    baseline = load_bench_json(bench_name, results_dir) or {}
    prev_rows = baseline.get("rows", [])
    prev_dag_rows = [r for r in [(baseline.get("dag") or {}).get("row")] if r]
    prev_chol_rows = [r for r in [(baseline.get("dag_cholesky") or {}).get("row")] if r]

    # Per-rank-count speedup baselines: the seed constants, extended by
    # whatever earlier runs already pinned (JSON keys arrive as strings).
    baselines = dict(BASELINE_WALL_S)
    for key, wall in (baseline.get("baseline_wall_s") or {}).items():
        baselines.setdefault(int(key), wall)

    rank_counts = RANK_COUNTS + (FULL_RANK_COUNTS if full_sweep() else ())
    if ENGINE == "threads":
        rank_counts = tuple(n for n in rank_counts if n <= THREADS_MAX_RANKS)

    rows = []
    bench_rows = []
    for n_ranks in rank_counts:
        platform = _platform(n_ranks)
        config = TSQRConfig(m=n_ranks * 4096, n=64)  # virtual payload
        start = time.perf_counter()
        result = run_parallel_tsqr(platform, config, engine=ENGINE)
        wall_s = time.perf_counter() - start
        events = result.trace.total_events
        # First measurement of a new rank count becomes its baseline, pinned
        # in the BENCH file from then on.
        base_wall = baselines.setdefault(n_ranks, round(wall_s, 4))
        rows.append(
            {
                "ranks": n_ranks,
                "wall time (s)": round(wall_s, 3),
                "simulated time (s)": round(result.makespan_s, 6),
                "Gflop/s": round(result.gflops, 2),
                "messages": result.trace.total_messages,
            }
        )
        bench_rows.append(
            {
                "ranks": n_ranks,
                "wall_s": round(wall_s, 4),
                "simulated_s": round(result.makespan_s, 6),
                "messages": result.trace.total_messages,
                "events": events,
                "events_per_s": round(events / wall_s, 1) if wall_s > 0 else None,
                "speedup_vs_baseline": round(base_wall / wall_s, 2) if wall_s > 0 else None,
            }
        )
        # Every row — including the 32768-rank full-sweep one — must complete
        # in seconds, not minutes.
        assert result.makespan_s > 0.0
        assert wall_s < 30.0
    report_rows(
        f"Engine scaling smoke (wall time vs ranks, {ENGINE} engine)",
        rows,
        results_dir,
        "scaling_smoke.csv" if ENGINE == "coroutine" else f"scaling_smoke_{ENGINE}.csv",
    )

    # A 512-rank task-DAG CAQR point tracks the dataflow runtime's engine
    # cost (ready-queue + per-task yields + versioned stores) alongside the
    # SPMD path: ~25k tasks, events/s and simulated makespan recorded.
    dag_platform = _platform(512)
    dag_config = DAGCAQRConfig(m=512 * 512, n=128, tile_size=64, priority="critical-path")
    start = time.perf_counter()
    dag_result = run_dag_caqr(dag_platform, dag_config, engine=ENGINE)
    dag_wall = time.perf_counter() - start
    dag_events = dag_result.trace.total_events
    dag_row = {
        "ranks": 512,
        "wall_s": round(dag_wall, 4),
        "simulated_s": round(dag_result.makespan_s, 6),
        "critical_path_s": round(dag_result.critical_path_s, 6),
        "tasks": dag_result.graph.n_tasks,
        "events": dag_events,
        "events_per_s": round(dag_events / dag_wall, 1) if dag_wall > 0 else None,
    }
    report_rows(
        f"DAG runtime smoke (512 ranks, {ENGINE} engine)",
        [dag_row],
        results_dir,
        "scaling_smoke_dag.csv" if ENGINE == "coroutine" else f"scaling_smoke_dag_{ENGINE}.csv",
    )
    assert dag_result.critical_path_s <= dag_result.makespan_s
    assert dag_wall < 30.0

    # The registry's first non-QR scenario on the same 512-rank platform:
    # a 4096-point tiled Cholesky (64 x 64 tiles, ~45k tasks) whose trailing
    # updates fan out quadratically — a denser dependence structure than the
    # panel-chained CAQR graph, tracked under the same gates.
    chol_config = DAGFactorizationConfig(
        m=4096, n=4096, tile_size=64, priority="critical-path", algorithm="cholesky"
    )
    start = time.perf_counter()
    chol_result = run_dag_factorization(dag_platform, chol_config, engine=ENGINE)
    chol_wall = time.perf_counter() - start
    chol_events = chol_result.trace.total_events
    chol_row = {
        "ranks": 512,
        "wall_s": round(chol_wall, 4),
        "simulated_s": round(chol_result.makespan_s, 6),
        "critical_path_s": round(chol_result.critical_path_s, 6),
        "tasks": chol_result.graph.n_tasks,
        "events": chol_events,
        "events_per_s": round(chol_events / chol_wall, 1) if chol_wall > 0 else None,
    }
    report_rows(
        f"DAG-Cholesky runtime smoke (512 ranks, {ENGINE} engine)",
        [chol_row],
        results_dir,
        "scaling_smoke_dag_cholesky.csv"
        if ENGINE == "coroutine"
        else f"scaling_smoke_dag_cholesky_{ENGINE}.csv",
    )
    assert chol_result.critical_path_s <= chol_result.makespan_s
    assert chol_wall < 30.0

    # Streaming-observability overhead: the always-on statistics layer may
    # cost at most TRACING_OVERHEAD_FACTOR over a run with streaming off.
    # Paired best-of-N runs per rank count (same platform, same config,
    # alternating modes) keep CI noise out of the ratio; a small absolute
    # slack keeps sub-second rows from flaking on scheduler jitter.
    overhead_rows = []
    overhead_failures = []
    for n_ranks in TRACING_OVERHEAD_RANKS:
        if ENGINE == "threads" and n_ranks > THREADS_MAX_RANKS:
            continue
        platform = _platform(n_ranks)
        config = TSQRConfig(m=n_ranks * 4096, n=64)
        wall_on = wall_off = float("inf")
        for _ in range(TRACING_OVERHEAD_REPEATS):
            start = time.perf_counter()
            run_parallel_tsqr(platform, config, engine=ENGINE, streaming_stats=False)
            wall_off = min(wall_off, time.perf_counter() - start)
            start = time.perf_counter()
            result = run_parallel_tsqr(platform, config, engine=ENGINE, streaming_stats=True)
            wall_on = min(wall_on, time.perf_counter() - start)
        assert result.trace.stats is not None  # streaming mode actually ran
        limit = wall_off * TRACING_OVERHEAD_FACTOR + TRACING_OVERHEAD_SLACK_S
        overhead_rows.append(
            {
                "ranks": n_ranks,
                "wall_streaming_s": round(wall_on, 4),
                "wall_no_streaming_s": round(wall_off, 4),
                "overhead_pct": round((wall_on / wall_off - 1.0) * 100, 1)
                if wall_off > 0 else None,
            }
        )
        if wall_on > limit:
            overhead_failures.append(
                f"tracing overhead at {n_ranks} ranks: {wall_on:.3f}s streaming "
                f"vs {wall_off:.3f}s without (limit {limit:.3f}s)"
            )
    report_rows(
        f"Streaming-stats overhead (wall on vs off, {ENGINE} engine)",
        overhead_rows,
        results_dir,
        "scaling_smoke_tracing.csv"
        if ENGINE == "coroutine"
        else f"scaling_smoke_tracing_{ENGINE}.csv",
    )

    # Gate limits derive from the baseline loaded *before* this run rewrote
    # the file; the fresh artifact records that baseline next to the fresh
    # numbers, so a CI failure uploads both (and git keeps the committed
    # baseline for recovery).
    bench_json(
        bench_name,
        {
            "benchmark": "engine_scaling_smoke",
            "engine": ENGINE,
            "workload": "virtual-payload TSQR, M = ranks * 4096, N = 64, "
                        "4 clusters x 2 processes/node",
            "baseline_wall_s": {n: baselines[n] for n in sorted(baselines)},
            "regression_gate": {
                "wall_factor": REGRESSION_FACTOR,
                "wall_floor_s": REGRESSION_FLOOR_S,
                "events_factor": REGRESSION_FACTOR,
                "events_min_wall_s": EVENTS_GATE_MIN_WALL_S,
                "flatness_collapse_ratio": FLATNESS_COLLAPSE_RATIO,
                "recorded_rows": prev_rows,
            },
            "rows": bench_rows,
            "dag": {
                "workload": "virtual-payload DAG-CAQR, M = 512 * 512, N = 128, "
                            "tile 64, critical-path priority, block placement",
                "recorded_row": prev_dag_rows[0] if prev_dag_rows else None,
                "row": dag_row,
            },
            "dag_cholesky": {
                "workload": "virtual-payload DAG-Cholesky, N = 4096, tile 64, "
                            "critical-path priority, block placement",
                "recorded_row": prev_chol_rows[0] if prev_chol_rows else None,
                "row": chol_row,
            },
            "tracing_overhead": {
                "workload": "virtual-payload TSQR, streaming stats on vs off, "
                            "best of paired runs",
                "gate": {
                    "factor": TRACING_OVERHEAD_FACTOR,
                    "slack_s": TRACING_OVERHEAD_SLACK_S,
                },
                "rows": overhead_rows,
            },
        },
    )

    failures = wall_gate_failures(
        bench_rows, prev_rows, factor=REGRESSION_FACTOR, floor_s=REGRESSION_FLOOR_S
    )
    failures += events_gate_failures(
        bench_rows, prev_rows,
        factor=REGRESSION_FACTOR, min_wall_s=EVENTS_GATE_MIN_WALL_S,
    )
    failures += wall_gate_failures(
        [dag_row], prev_dag_rows,
        factor=REGRESSION_FACTOR, floor_s=REGRESSION_FLOOR_S, label="DAG ",
    )
    failures += events_gate_failures(
        [dag_row], prev_dag_rows,
        factor=REGRESSION_FACTOR, min_wall_s=EVENTS_GATE_MIN_WALL_S, label="DAG ",
    )
    failures += wall_gate_failures(
        [chol_row], prev_chol_rows,
        factor=REGRESSION_FACTOR, floor_s=REGRESSION_FLOOR_S, label="DAG-Cholesky ",
    )
    failures += events_gate_failures(
        [chol_row], prev_chol_rows,
        factor=REGRESSION_FACTOR, min_wall_s=EVENTS_GATE_MIN_WALL_S,
        label="DAG-Cholesky ",
    )
    if ENGINE == "coroutine":
        # The reference thread backend collapses superlinearly by design
        # limitation; only the generator core promises a flat profile.  The
        # promise extends out to 8192 ranks — the full-sweep 32768 row is
        # tracked by the wall and events/s gates but sits at memory scales
        # where the rate legitimately dips below the flatness floor.
        failures += events_flatness_failures(
            [r for r in bench_rows if r["ranks"] <= RANK_COUNTS[-1]],
            collapse_ratio=FLATNESS_COLLAPSE_RATIO,
            min_wall_s=EVENTS_GATE_MIN_WALL_S,
        )
    failures += overhead_failures
    assert not failures, "engine regression gate:\n  " + "\n  ".join(failures)
