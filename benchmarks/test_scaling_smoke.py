"""Benchmark: simulator engine scaling — wall time versus number of ranks.

Not a figure of the paper: this tracks the *simulator's own* speed so future
engine changes can be compared against the recorded baseline.  A
virtual-payload TSQR run is simulated on synthetic 4-cluster grids of
32/128/512 ranks and the wall-clock time of each simulation is written to
``results/scaling_smoke.csv``.  The virtual-time cooperative scheduler must
complete the 512-rank run in seconds (the old polling-thread engine was an
order of magnitude slower and capped out near tens of ranks).
"""

from __future__ import annotations

import time

from repro.gridsim import (
    ClusterSpec,
    GridSpec,
    KernelRateModel,
    LinkSpec,
    NetworkModel,
    NodeSpec,
    Platform,
    ProcessorSpec,
    block_placement,
)
from repro.tsqr.parallel import TSQRConfig, run_parallel_tsqr

from benchmarks.conftest import report_rows

#: Rank counts of the sweep (4 clusters x nodes x 2 processes/node).
RANK_COUNTS = (32, 128, 512)


def _platform(n_ranks: int) -> Platform:
    clusters, ppn = 4, 2
    nodes = n_ranks // (clusters * ppn)
    node = NodeSpec(processor=ProcessorSpec("smoke-cpu", 8.0, 3.67), processes_per_node=ppn)
    grid = GridSpec(
        name=f"smoke-grid-{n_ranks}",
        clusters=tuple(
            ClusterSpec(name=f"site{i}", n_nodes=nodes, node=node) for i in range(clusters)
        ),
    )
    network = NetworkModel(
        intra_node=LinkSpec.from_us_mbits(17.0, 5000.0),
        intra_cluster=LinkSpec.from_ms_mbits(0.06, 890.0),
        inter_cluster_default=LinkSpec.from_ms_mbits(8.0, 90.0),
    )
    placement = block_placement(grid, nodes_per_cluster=nodes, processes_per_node=ppn)
    return Platform(
        grid=grid,
        network=network,
        placement=placement,
        kernel_model=KernelRateModel(),
        name=f"smoke-{n_ranks}",
    )


def test_engine_scaling_smoke(results_dir):
    rows = []
    for n_ranks in RANK_COUNTS:
        platform = _platform(n_ranks)
        config = TSQRConfig(m=n_ranks * 4096, n=64)  # virtual payload
        start = time.perf_counter()
        result = run_parallel_tsqr(platform, config)
        wall_s = time.perf_counter() - start
        rows.append(
            {
                "ranks": n_ranks,
                "wall time (s)": round(wall_s, 3),
                "simulated time (s)": round(result.makespan_s, 6),
                "Gflop/s": round(result.gflops, 2),
                "messages": result.trace.total_messages,
            }
        )
        # A 512-rank virtual-payload TSQR must complete, fast.
        assert result.makespan_s > 0.0
        assert wall_s < 30.0
    report_rows("Engine scaling smoke (wall time vs ranks)", rows,
                results_dir, "scaling_smoke.csv")
