"""Benchmark: simulator engine scaling — wall time versus number of ranks.

Not a figure of the paper: this tracks the *simulator's own* speed so future
engine changes can be compared against the recorded baseline.  A
virtual-payload TSQR run is simulated on synthetic 4-cluster grids of
32/128/512/2048 ranks (4096 with ``REPRO_BENCH_FULL=1``); wall-clock time
per rank count goes to ``results/scaling_smoke.csv`` and the machine-readable
trajectory — wall time, engine events/s and speedup over the pre-fast-path
seed engine — to ``results/BENCH_engine.json``.

The recorded BENCH file is also the regression gate: the 512-rank wall time
must stay within 2x of the committed baseline (with an absolute-floor guard
so slow CI hardware cannot flake the suite), so an engine regression fails
tier-1 instead of silently shipping.

A 512-rank task-DAG CAQR point rides along under the same gate (its own
baseline row in ``BENCH_engine.json``), so the dataflow runtime's engine
cost is tracked next to the SPMD path's.
"""

from __future__ import annotations

import time

from repro.dag import DAGCAQRConfig, run_dag_caqr
from repro.gridsim import (
    ClusterSpec,
    GridSpec,
    KernelRateModel,
    LinkSpec,
    NetworkModel,
    NodeSpec,
    Platform,
    ProcessorSpec,
    block_placement,
)
from repro.tsqr.parallel import TSQRConfig, run_parallel_tsqr

from benchmarks.conftest import full_sweep, load_bench_json, report_rows

#: Rank counts of the sweep (4 clusters x nodes x 2 processes/node).
RANK_COUNTS = (32, 128, 512, 2048)
#: Extra scale exercised by the full sweep only.
FULL_RANK_COUNTS = (4096,)

#: Wall times of the seed engine (the pre-fast-path scaling_smoke.csv rows,
#: recorded before pooled workers / semaphore handoff / lock-free tracing /
#: the setup memo landed).  The speedup column of BENCH_engine.json is
#: measured against these.
SEED_WALL_S = {32: 0.006, 128: 0.068, 512: 0.439}

#: Regression gate: the fresh 512-rank wall time may be at most this factor
#: over the recorded baseline...
REGRESSION_FACTOR = 2.0
#: ...but never fails below this absolute wall time (CI hardware headroom).
REGRESSION_FLOOR_S = 1.0


def _platform(n_ranks: int) -> Platform:
    clusters, ppn = 4, 2
    nodes = n_ranks // (clusters * ppn)
    node = NodeSpec(processor=ProcessorSpec("smoke-cpu", 8.0, 3.67), processes_per_node=ppn)
    grid = GridSpec(
        name=f"smoke-grid-{n_ranks}",
        clusters=tuple(
            ClusterSpec(name=f"site{i}", n_nodes=nodes, node=node) for i in range(clusters)
        ),
    )
    network = NetworkModel(
        intra_node=LinkSpec.from_us_mbits(17.0, 5000.0),
        intra_cluster=LinkSpec.from_ms_mbits(0.06, 890.0),
        inter_cluster_default=LinkSpec.from_ms_mbits(8.0, 90.0),
    )
    placement = block_placement(grid, nodes_per_cluster=nodes, processes_per_node=ppn)
    return Platform(
        grid=grid,
        network=network,
        placement=placement,
        kernel_model=KernelRateModel(),
        name=f"smoke-{n_ranks}",
    )


def test_engine_scaling_smoke(results_dir, bench_json):
    baseline = load_bench_json("engine", results_dir)
    baseline_walls = {
        row["ranks"]: row["wall_s"] for row in (baseline or {}).get("rows", [])
    }
    rank_counts = RANK_COUNTS + (FULL_RANK_COUNTS if full_sweep() else ())
    rows = []
    bench_rows = []
    for n_ranks in rank_counts:
        platform = _platform(n_ranks)
        config = TSQRConfig(m=n_ranks * 4096, n=64)  # virtual payload
        start = time.perf_counter()
        result = run_parallel_tsqr(platform, config)
        wall_s = time.perf_counter() - start
        events = result.trace.total_events
        seed_wall = SEED_WALL_S.get(n_ranks)
        rows.append(
            {
                "ranks": n_ranks,
                "wall time (s)": round(wall_s, 3),
                "simulated time (s)": round(result.makespan_s, 6),
                "Gflop/s": round(result.gflops, 2),
                "messages": result.trace.total_messages,
            }
        )
        bench_rows.append(
            {
                "ranks": n_ranks,
                "wall_s": round(wall_s, 4),
                "simulated_s": round(result.makespan_s, 6),
                "messages": result.trace.total_messages,
                "events": events,
                "events_per_s": round(events / wall_s, 1) if wall_s > 0 else None,
                "speedup_vs_seed": round(seed_wall / wall_s, 2) if seed_wall else None,
            }
        )
        # A 2048-rank virtual-payload TSQR must complete, fast.
        assert result.makespan_s > 0.0
        assert wall_s < 30.0
    report_rows("Engine scaling smoke (wall time vs ranks)", rows,
                results_dir, "scaling_smoke.csv")
    # A 512-rank task-DAG CAQR point tracks the dataflow runtime's engine
    # cost (ready-queue + per-task yields + versioned stores) alongside the
    # SPMD path: ~25k tasks, events/s and simulated makespan recorded.
    dag_platform = _platform(512)
    dag_config = DAGCAQRConfig(m=512 * 512, n=128, tile_size=64, priority="critical-path")
    start = time.perf_counter()
    dag_result = run_dag_caqr(dag_platform, dag_config)
    dag_wall = time.perf_counter() - start
    dag_events = dag_result.trace.total_events
    dag_row = {
        "ranks": 512,
        "wall_s": round(dag_wall, 4),
        "simulated_s": round(dag_result.makespan_s, 6),
        "critical_path_s": round(dag_result.critical_path_s, 6),
        "tasks": dag_result.graph.n_tasks,
        "events": dag_events,
        "events_per_s": round(dag_events / dag_wall, 1) if dag_wall > 0 else None,
    }
    report_rows(
        "DAG runtime smoke (512 ranks)",
        [dag_row],
        results_dir,
        "scaling_smoke_dag.csv",
    )
    assert dag_result.critical_path_s <= dag_result.makespan_s
    assert dag_wall < 30.0

    # Gate limits derive from the baseline loaded *before* this run rewrote
    # the file; the fresh artifact records that baseline next to the fresh
    # numbers, so a CI failure uploads both (and git keeps the committed
    # baseline for recovery).
    fresh_512 = next(r["wall_s"] for r in bench_rows if r["ranks"] == 512)
    recorded_512 = baseline_walls.get(512)
    limit = (
        max(REGRESSION_FACTOR * recorded_512, REGRESSION_FLOOR_S)
        if recorded_512
        else None
    )
    dag_baseline = ((baseline or {}).get("dag") or {}).get("row", {}).get("wall_s")
    dag_limit = (
        max(REGRESSION_FACTOR * dag_baseline, REGRESSION_FLOOR_S)
        if dag_baseline
        else None
    )
    bench_json(
        "engine",
        {
            "benchmark": "engine_scaling_smoke",
            "workload": "virtual-payload TSQR, M = ranks * 4096, N = 64, "
                        "4 clusters x 2 processes/node",
            "seed_wall_s": SEED_WALL_S,
            "regression_gate": {
                "ranks": 512,
                "factor": REGRESSION_FACTOR,
                "floor_s": REGRESSION_FLOOR_S,
                "baseline_wall_s": recorded_512,
                "limit_s": limit,
            },
            "rows": bench_rows,
            "dag": {
                "workload": "virtual-payload DAG-CAQR, M = 512 * 512, N = 128, "
                            "tile 64, critical-path priority, block placement",
                "regression_gate": {
                    "ranks": 512,
                    "factor": REGRESSION_FACTOR,
                    "floor_s": REGRESSION_FLOOR_S,
                    "baseline_wall_s": dag_baseline,
                    "limit_s": dag_limit,
                },
                "row": dag_row,
            },
        },
    )
    if limit is not None:
        assert fresh_512 <= limit, (
            f"512-rank engine wall time regressed: {fresh_512:.3f}s vs "
            f"recorded baseline {recorded_512:.3f}s (limit {limit:.3f}s)"
        )
    if dag_limit is not None:
        assert dag_wall <= dag_limit, (
            f"512-rank DAG runtime wall time regressed: {dag_wall:.3f}s vs "
            f"recorded baseline {dag_baseline:.3f}s (limit {dag_limit:.3f}s)"
        )
