"""Shared fixtures of the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
(§V) on the simulated Grid'5000 platform, prints the resulting series next to
the paper's approximate values, and stores the raw numbers as CSV under
``results/``.

Two sweep sizes are supported:

* the default ("reduced") sweep keeps the full M range but fewer points and
  only the narrowest/widest column counts, so the whole benchmark suite runs
  in a few minutes;
* setting the environment variable ``REPRO_BENCH_FULL=1`` switches to the
  paper's complete sweeps (all four column counts, every power-of-two M),
  which takes substantially longer.

The :class:`~repro.experiments.runner.ExperimentRunner` is session-scoped so
identical evaluation points (e.g. those shared by Fig. 4/5 and Fig. 8) are
simulated once and reused.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.experiments.figures import FigureData
from repro.experiments.report import ascii_series, ascii_table, format_points, write_csv
from repro.experiments.runner import ExperimentRunner
from repro.experiments.workloads import PAPER_N_VALUES, paper_m_values, reduced_m_values

#: Directory where benchmark outputs (CSV series) are written.
RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def full_sweep() -> bool:
    """True when the complete paper sweep was requested."""
    return os.environ.get("REPRO_BENCH_FULL", "0") not in ("", "0", "false", "False")


def bench_n_values() -> tuple[int, ...]:
    """Column counts exercised by the figure benchmarks."""
    return PAPER_N_VALUES if full_sweep() else (64, 512)


def bench_m_values(n: int, points: int = 3) -> list[int]:
    """Row counts exercised for column count ``n``."""
    return paper_m_values(n) if full_sweep() else reduced_m_values(n, points=points)


def bench_domain_counts() -> tuple[int, ...]:
    """Domains-per-cluster sweep of the Fig. 6/7 benchmarks."""
    return (1, 2, 4, 8, 16, 32, 64) if full_sweep() else (1, 4, 16, 64)


def pytest_collection_modifyitems(items) -> None:
    """Mark every paper-scale benchmark as ``slow``.

    The tier-1 command still runs them; ``-m "not slow"`` gives the quick
    unit-test-only run (the same selection the CI workflow uses via
    ``pytest tests``).
    """
    here = Path(__file__).resolve().parent
    for item in items:
        if here in Path(str(item.fspath)).resolve().parents:
            item.add_marker(pytest.mark.slow)


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    """Session-wide experiment runner (shared point cache)."""
    return ExperimentRunner()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory for CSV outputs, created on demand."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


def report_figure(figure: FigureData, results_dir: Path, *, note: str = "") -> None:
    """Print a figure's series (table + ASCII sketch) and persist them as CSV."""
    print(f"\n=== {figure.figure_id}: {figure.title} ===")
    if note:
        print(note)
    print(format_points(figure.as_rows()))
    print()
    print(ascii_series(figure.as_mapping(), xlabel=figure.xlabel, ylabel=figure.ylabel))
    write_csv(results_dir / f"{figure.figure_id}.csv", figure.as_rows())


def report_rows(title: str, rows: list[dict], results_dir: Path, filename: str) -> None:
    """Print tabular benchmark output and persist it as CSV."""
    print(f"\n=== {title} ===")
    print(format_points(rows))
    write_csv(results_dir / filename, rows)


# ---------------------------------------------------------------------------
# Machine-readable perf trajectories (BENCH_<name>.json)
# ---------------------------------------------------------------------------

def bench_json_path(name: str, results_dir: Path = RESULTS_DIR) -> Path:
    """Location of a recorded perf trajectory."""
    return results_dir / f"BENCH_{name}.json"


def load_bench_json(name: str, results_dir: Path = RESULTS_DIR) -> dict | None:
    """Read a previously recorded trajectory, or None when absent/corrupt.

    The recorded file is the regression baseline: a perf benchmark loads it
    *before* overwriting, derives its gate limit from the loaded copy, and
    records that baseline next to the fresh numbers in the new file — so a
    failing run's artifact shows both, and git keeps the committed baseline.
    """
    path = bench_json_path(name, results_dir)
    if not path.exists():
        return None
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None


def write_bench_json(name: str, payload: dict, results_dir: Path = RESULTS_DIR) -> Path:
    """Persist a perf trajectory as pretty-printed JSON and return the path."""
    path = bench_json_path(name, results_dir)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
    return path


@pytest.fixture(scope="session")
def bench_json(results_dir):
    """Reporter fixture: ``bench_json(name, payload)`` writes BENCH_<name>.json."""

    def _write(name: str, payload: dict) -> Path:
        return write_bench_json(name, payload, results_dir)

    return _write


# ---------------------------------------------------------------------------
# Regression gates (wall clock and events/s)
# ---------------------------------------------------------------------------
#
# Perf benchmarks gate themselves against the BENCH_<name>.json they loaded
# before overwriting it.  Rows are dicts carrying at least ``ranks``,
# ``wall_s`` and ``events_per_s``; all three helpers return human-readable
# failure messages (empty list = gate passed) so a benchmark can collect
# every violation before asserting.

def wall_gate_failures(
    fresh_rows: list[dict],
    baseline_rows: list[dict],
    *,
    factor: float = 2.0,
    floor_s: float = 1.0,
    label: str = "",
) -> list[str]:
    """Wall-clock regression check of fresh rows against recorded ones.

    Each fresh row's ``wall_s`` may be at most ``factor`` over the recorded
    row at the same rank count, but never fails below the absolute
    ``floor_s`` (headroom so slow CI hardware cannot flake the suite).  Rank
    counts without a recorded row are skipped — their first recorded run
    becomes the gate for the next one.
    """
    recorded = {r.get("ranks"): r for r in baseline_rows if r.get("wall_s")}
    failures = []
    for row in fresh_rows:
        base = recorded.get(row.get("ranks"))
        if base is None:
            continue
        limit = max(factor * base["wall_s"], floor_s)
        if row["wall_s"] > limit:
            failures.append(
                f"{label}{row['ranks']} ranks: wall {row['wall_s']:.3f}s vs "
                f"recorded {base['wall_s']:.3f}s (limit {limit:.3f}s)"
            )
    return failures


def events_gate_failures(
    fresh_rows: list[dict],
    baseline_rows: list[dict],
    *,
    factor: float = 2.0,
    min_wall_s: float = 0.01,
    label: str = "",
) -> list[str]:
    """Events/s regression check: engine throughput must not collapse.

    Each fresh row must sustain at least ``1/factor`` of the recorded
    events/s at the same rank count.  Rows whose fresh wall time is under
    ``min_wall_s`` are skipped (the rate is timer noise there), as are rank
    counts with no recorded rate yet.
    """
    recorded = {r.get("ranks"): r for r in baseline_rows if r.get("events_per_s")}
    failures = []
    for row in fresh_rows:
        base = recorded.get(row.get("ranks"))
        rate = row.get("events_per_s")
        if base is None or not rate or row.get("wall_s", 0.0) < min_wall_s:
            continue
        limit = base["events_per_s"] / factor
        if rate < limit:
            failures.append(
                f"{label}{row['ranks']} ranks: {rate:,.0f} events/s vs "
                f"recorded {base['events_per_s']:,.0f} (limit {limit:,.0f})"
            )
    return failures


def events_flatness_failures(
    fresh_rows: list[dict],
    *,
    collapse_ratio: float = 0.5,
    min_wall_s: float = 0.01,
) -> list[str]:
    """Monotone-or-flat check across one run's own scaling sweep.

    Walking the rows in increasing rank order, each measurable events/s must
    stay within ``collapse_ratio`` of the best rate seen at any smaller rank
    count.  This is the superlinear collapse the generator core was built to
    remove: the thread-backed engine fell to 0.14x of its small-sweep peak by
    2048 ranks, while a flat engine sits near 1.0.
    """
    best = 0.0
    failures = []
    for row in sorted(fresh_rows, key=lambda r: r.get("ranks", 0)):
        rate = row.get("events_per_s")
        if not rate or row.get("wall_s", 0.0) < min_wall_s:
            continue
        if best and rate < collapse_ratio * best:
            failures.append(
                f"events/s collapsed at {row['ranks']} ranks: {rate:,.0f} vs "
                f"best {best:,.0f} at smaller rank counts "
                f"(floor {collapse_ratio:.0%} of best)"
            )
        best = max(best, rate)
    return failures


__all__ = [
    "ascii_table",
    "bench_domain_counts",
    "bench_json_path",
    "bench_m_values",
    "bench_n_values",
    "events_flatness_failures",
    "events_gate_failures",
    "full_sweep",
    "load_bench_json",
    "report_figure",
    "report_rows",
    "wall_gate_failures",
    "write_bench_json",
]
