"""Benchmark: Fig. 8 — TSQR (best configuration) vs ScaLAPACK (best configuration).

Expected shape (paper §V-E): for every matrix shape considered, QCG-TSQR's
best configuration achieves a significantly higher performance than
ScaLAPACK's best configuration; the gap narrows for the widest (not so
skinny) matrices (Property 5).
"""

from __future__ import annotations

import pytest

from repro.experiments.figures import figure8

from benchmarks.conftest import bench_m_values, bench_n_values, full_sweep, report_figure


@pytest.mark.parametrize("n", bench_n_values())
def test_fig08_best_tsqr_vs_best_scalapack(benchmark, runner, results_dir, n):
    m_values = bench_m_values(n)
    candidates = (1, 4, 16, 32, 64) if full_sweep() else (32, 64)
    fig = benchmark.pedantic(
        figure8,
        args=(runner, n),
        kwargs={"m_values": m_values, "domain_candidates": candidates},
        rounds=1,
        iterations=1,
    )
    report_figure(fig, results_dir, note="paper: TSQR consistently above ScaLAPACK")

    tsqr_series = fig.series_by_label("TSQR (best)")
    scal_series = fig.series_by_label("ScaLAPACK (best)")

    # TSQR wins at every measured point.
    for (m, ts), (_, sc) in zip(tsqr_series.points, scal_series.points):
        assert ts > sc, f"ScaLAPACK unexpectedly faster at M={m}"

    # The advantage is large for skinny matrices and narrows as N grows
    # (checked across the parametrised panels through the recorded CSVs);
    # within one panel the advantage at the largest M stays above ~1.3x.
    assert tsqr_series.ys()[-1] / scal_series.ys()[-1] > 1.3


def test_fig08_advantage_narrows_with_n(runner, results_dir):
    """Property 5 across panels: the TSQR/ScaLAPACK ratio shrinks from N=64 to N=512.

    The panels must be compared at the *same* number of rows: each panel's
    own largest M differs (33.5M rows for N=64, 8.4M for N=512 — the 16 GB
    ceiling), and growing M at fixed N is exactly the regime that helps
    ScaLAPACK (compute grows with M while its latency cost is fixed at
    ~2N log P messages).  Reading each panel at its own largest M therefore
    conflates the two effects — by the paper's own Fig. 4/5 readings the
    best-vs-best ratio at each panel's largest M *grows* from N=64
    (95/33 ~ 2.9x) to N=512 (256/85 ~ 3.0x).  At matched M the wider panel
    is the more compute-bound one and the advantage narrows, which is the
    claim of Property 5.
    """
    m = bench_m_values(512)[-1]  # the largest M shared by every N sweep
    ratio_64 = (
        runner.best_over_sites("tsqr", m, 64, domain_candidates=(64,)).gflops
        / runner.best_over_sites("scalapack", m, 64).gflops
    )
    ratio_512 = (
        runner.best_over_sites("tsqr", m, 512, domain_candidates=(64,)).gflops
        / runner.best_over_sites("scalapack", m, 512).gflops
    )
    print(
        f"\nTSQR/ScaLAPACK best-vs-best ratio at M={m:,}: "
        f"N=64 -> {ratio_64:.2f}x, N=512 -> {ratio_512:.2f}x"
    )
    assert ratio_512 < ratio_64
