"""Benchmark: Fig. 4 — ScaLAPACK performance versus M on 1, 2 and 4 sites.

Expected shape (paper §V-C): overall performance is a small fraction of the
~940 Gflop/s practical peak; it grows with M and with N; for small-to-moderate
M the single-site run is the fastest (using the grid *slows the baseline
down*), and only for very tall matrices does the multi-site run overtake it,
with a speed-up that hardly exceeds 2.
"""

from __future__ import annotations

import pytest

from repro.experiments.figures import figure4
from repro.experiments.paper_data import paper_reference
from repro.model.properties import check_monotone_increase

from benchmarks.conftest import bench_m_values, bench_n_values, report_figure


@pytest.mark.parametrize("n", bench_n_values())
def test_fig04_scalapack_performance(benchmark, runner, results_dir, n):
    m_values = bench_m_values(n)
    fig = benchmark.pedantic(
        figure4, args=(runner, n), kwargs={"m_values": m_values}, rounds=1, iterations=1
    )
    reference = paper_reference("fig4", n, 4)
    report_figure(
        fig,
        results_dir,
        note=f"paper (approx.): {reference} Gflop/s at the largest M on 4 sites",
    )

    one_site = fig.series_by_label("1 site(s)")
    four_sites = fig.series_by_label("4 site(s)")

    # Shape check 1: performance grows with M on a single site (Property 3).
    assert check_monotone_increase(one_site.xs(), one_site.ys(), slack=0.15).holds

    # Shape check 2: the grid does NOT help for small/moderate M...
    assert one_site.ys()[0] > four_sites.ys()[0]
    # ... and the multi-site speed-up at the largest M stays modest (<~2.5x).
    speedup = four_sites.ys()[-1] / one_site.ys()[-1]
    assert speedup < 2.5

    # Shape check 3: everything far below the practical peak (Property 2).
    peak = runner.platform(4).practical_peak_gflops()
    assert max(four_sites.ys()) < 0.25 * peak

    # Magnitude check: within a factor ~2 of the paper's reading at largest M.
    if reference is not None:
        assert four_sites.ys()[-1] == pytest.approx(reference, rel=1.0)
