"""Benchmark: Fig. 7 — effect of the number of domains on a single site.

Expected shape (paper §V-D): same trend as Fig. 6 without the wide-area
links — performance increases with the number of domains, the effect being
strongest for matrices of limited height where the per-column reductions of
grouped (ScaLAPACK) domains are not amortised by computation.
"""

from __future__ import annotations

import pytest

from repro.experiments.figures import figure7
from repro.experiments.workloads import figure67_m_values

from benchmarks.conftest import bench_domain_counts, bench_n_values, full_sweep, report_figure


@pytest.mark.parametrize("n", bench_n_values())
def test_fig07_domains_single_site(benchmark, runner, results_dir, n):
    m_values = (
        figure67_m_values(n, single_site=True)
        if full_sweep()
        else figure67_m_values(n, single_site=True)[-2:]
    )
    domain_counts = bench_domain_counts()
    fig = benchmark.pedantic(
        figure7,
        args=(runner, n),
        kwargs={"m_values": m_values, "domain_counts": domain_counts},
        rounds=1,
        iterations=1,
    )
    report_figure(fig, results_dir, note="paper: performance increases with #domains (one site)")

    for series in fig.series:
        ys = series.ys()
        # The best configuration uses one domain per node or per processor.
        assert max(ys) == pytest.approx(max(ys[-2:]), rel=0.05), series.label
        assert ys[-1] >= ys[0], series.label

    # The single-domain configuration is plain ScaLAPACK on one site: it must
    # be the slowest point of every curve by a clear margin for the smaller M.
    smallest_m_series = fig.series[0]
    assert smallest_m_series.ys()[0] < 0.9 * max(smallest_m_series.ys())
