"""Benchmark: Fig. 5 — QCG-TSQR performance (best #domains) versus M.

Expected shape (paper §V-D): performance grows with M and N; for moderate to
very tall matrices the four-site run is the fastest, and for very tall
matrices it scales almost linearly with the number of sites (speed-up close
to 4 over one site) — the central claim of the paper.
"""

from __future__ import annotations

import pytest

from repro.experiments.figures import figure5
from repro.experiments.paper_data import paper_reference
from repro.model.properties import check_monotone_increase

from benchmarks.conftest import bench_m_values, bench_n_values, full_sweep, report_figure


@pytest.mark.parametrize("n", bench_n_values())
def test_fig05_tsqr_performance(benchmark, runner, results_dir, n):
    m_values = bench_m_values(n)
    candidates = (1, 2, 4, 8, 16, 32, 64) if full_sweep() else (32, 64)
    fig = benchmark.pedantic(
        figure5,
        args=(runner, n),
        kwargs={"m_values": m_values, "domain_candidates": candidates},
        rounds=1,
        iterations=1,
    )
    reference = paper_reference("fig5", n, 4)
    report_figure(
        fig,
        results_dir,
        note=f"paper (approx.): {reference} Gflop/s at the largest M on 4 sites",
    )

    one_site = fig.series_by_label("1 site(s)")
    four_sites = fig.series_by_label("4 site(s)")

    # Shape check 1: monotone growth with M (Property 3).
    assert check_monotone_increase(four_sites.xs(), four_sites.ys(), slack=0.15).holds

    # Shape check 2: near-linear scaling with the number of sites at the
    # largest M — the paper's headline result.
    speedup = four_sites.ys()[-1] / one_site.ys()[-1]
    assert speedup > 3.0

    # Shape check 3: the four-site run is the fastest for tall matrices.
    assert four_sites.ys()[-1] == max(s.ys()[-1] for s in fig.series)

    # Shape check 4: still well below the practical peak (Property 2).
    peak = runner.platform(4).practical_peak_gflops()
    assert max(four_sites.ys()) < 0.5 * peak

    # Magnitude check: within a factor ~2 of the paper's reading at largest M.
    if reference is not None:
        assert four_sites.ys()[-1] == pytest.approx(reference, rel=1.0)
