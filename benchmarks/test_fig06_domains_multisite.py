"""Benchmark: Fig. 6 — effect of the number of domains per cluster (4 sites).

Expected shape (paper §V-D): performance globally increases with the number
of domains per cluster (grouped ScaLAPACK domains pay per-column reductions
that pure TSQR leaves avoid); for very tall matrices the effect is limited
but not negligible because computation dominates.
"""

from __future__ import annotations

import pytest

from repro.experiments.figures import figure6
from repro.experiments.workloads import figure67_m_values

from benchmarks.conftest import bench_domain_counts, bench_n_values, full_sweep, report_figure


@pytest.mark.parametrize("n", bench_n_values())
def test_fig06_domains_per_cluster_four_sites(benchmark, runner, results_dir, n):
    m_values = figure67_m_values(n) if full_sweep() else figure67_m_values(n)[-2:]
    domain_counts = bench_domain_counts()
    fig = benchmark.pedantic(
        figure6,
        args=(runner, n),
        kwargs={"m_values": m_values, "domain_counts": domain_counts},
        rounds=1,
        iterations=1,
    )
    report_figure(fig, results_dir, note="paper: performance increases with #domains/cluster")

    for series in fig.series:
        ys = series.ys()
        # More domains never hurt by much, and the best configuration uses
        # many domains per cluster (the paper finds 32 or 64 optimal).
        assert max(ys) == pytest.approx(max(ys[-2:]), rel=0.05), series.label
        # Going from 1 domain/cluster to the maximum helps substantially for
        # the smaller matrices of the panel and at least a little for the tallest.
        assert ys[-1] > ys[0] * 1.02, series.label
