"""Benchmarks: the §IV properties and the design-choice ablations.

* Property 1 — computing Q and R costs about twice computing R only;
* Property 5 — TSQR wins for mid-range N, the advantage fades for large N
  (crossover analysis with the Eq. (1) predictor);
* tree ablation — grid-hierarchical vs topology-oblivious binary vs flat
  reduction trees, and block vs round-robin process placement: the ablation
  that isolates the contribution of the topology-aware middleware.
"""

from __future__ import annotations

import pytest

from repro.experiments.grid5000 import Grid5000Settings, grid5000_grid, grid5000_kernel_model, grid5000_network
from repro.gridsim.platform import Platform
from repro.gridsim.topology import block_placement, round_robin_placement
from repro.model.predictor import MachineParameters, crossover_n, predict_pair
from repro.model.properties import check_property1_q_costs_double
from repro.tsqr.parallel import TSQRConfig, run_parallel_tsqr

from benchmarks.conftest import report_rows


def test_property1_q_and_r_costs_double(benchmark, runner, results_dir):
    m, n = 4_194_304, 64

    def measure():
        r_only = runner.tsqr_point(m, n, 4, 64, want_q=False)
        with_q = runner.tsqr_point(m, n, 4, 64, want_q=True)
        return r_only, with_q

    r_only, with_q = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [
        {"mode": "R only", "time (s)": round(r_only.time_s, 4), "Gflop/s": round(r_only.gflops, 1)},
        {"mode": "Q and R", "time (s)": round(with_q.time_s, 4), "Gflop/s": round(with_q.gflops, 1)},
        {"mode": "ratio", "time (s)": round(with_q.time_s / r_only.time_s, 3), "Gflop/s": "-"},
    ]
    report_rows("Property 1: time(Q,R) vs time(R)", rows, results_dir, "property1.csv")
    assert check_property1_q_costs_double(r_only.time_s, with_q.time_s).holds


def test_property5_crossover_in_n(benchmark, runner, results_dir):
    platform = runner.platform(4)
    machine = MachineParameters.from_link(
        latency_s=8e-3,
        bandwidth_bytes_per_s=1.125e7,
        domain_gflops=platform.kernel_model.rate("qr_leaf", 256) / 1e9,
    )
    m = 1_048_576
    rows = []
    for n in (16, 64, 256, 1024, 4096):
        scal, ts = predict_pair(m, n, 256, machine)
        rows.append(
            {
                "N": n,
                "model ScaLAPACK time (s)": round(scal.time_s, 3),
                "model TSQR time (s)": round(ts.time_s, 3),
                "TSQR advantage": round(scal.time_s / ts.time_s, 2),
            }
        )
    crossover = benchmark.pedantic(
        crossover_n, args=(m, 256, machine), kwargs={"n_candidates": range(16, 8193, 16)},
        rounds=1, iterations=1,
    )
    rows.append({"N": f"crossover ~ {crossover}", "model ScaLAPACK time (s)": "-",
                 "model TSQR time (s)": "-", "TSQR advantage": 1.0})
    report_rows("Property 5: TSQR advantage versus N (Eq. (1) model)", rows, results_dir,
                "property5_crossover.csv")
    advantages = [r["TSQR advantage"] for r in rows[:-1]]
    assert advantages[1] > 1.0  # mid-range N: TSQR wins
    assert advantages[-1] < advantages[1]  # advantage fades as N grows


def _platform_with_placement(placement_kind: str) -> Platform:
    settings = Grid5000Settings(nodes_per_cluster=8, processes_per_node=2)
    grid = grid5000_grid(settings)
    network = grid5000_network(settings)
    if placement_kind == "block":
        placement = block_placement(grid, nodes_per_cluster=8, processes_per_node=2)
    else:
        placement = round_robin_placement(grid, 64, processes_per_node=2)
    return Platform(grid=grid, network=network, placement=placement,
                    kernel_model=grid5000_kernel_model(settings), name=placement_kind)


def test_ablation_reduction_tree_and_placement(benchmark, results_dir):
    """Isolate the paper's contribution: the topology-aware tree.

    Same matrix, same processes; only the reduction tree (grid-hierarchical /
    binary / flat) and the rank placement (block per cluster / round-robin
    across clusters) change.  The tuned tree on the block placement must send
    the minimal number of wide-area messages and be the fastest configuration.
    """
    m, n = 2_097_152, 64

    def run_all():
        results = {}
        for placement_kind in ("block", "round-robin"):
            platform = _platform_with_placement(placement_kind)
            for tree in ("grid-hierarchical", "binary", "flat"):
                res = run_parallel_tsqr(platform, TSQRConfig(m=m, n=n, tree_kind=tree))
                results[(placement_kind, tree)] = res
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        {
            "placement": placement,
            "reduction tree": tree,
            "time (s)": round(res.makespan_s, 4),
            "Gflop/s": round(res.gflops, 1),
            "WAN messages": res.trace.inter_cluster_messages,
        }
        for (placement, tree), res in results.items()
    ]
    report_rows("Ablation: reduction tree x process placement", rows, results_dir,
                "ablation_trees.csv")

    tuned = results[("block", "grid-hierarchical")]
    # Minimal WAN traffic: one message per extra site.
    assert tuned.trace.inter_cluster_messages == 3
    # The tuned tree is at least as fast as every other configuration.
    for key, res in results.items():
        assert tuned.makespan_s <= res.makespan_s * 1.001, key
    # And the oblivious configurations cross the WAN strictly more often.
    assert results[("round-robin", "binary")].trace.inter_cluster_messages > 3
    assert results[("block", "flat")].trace.inter_cluster_messages >= 3
