"""Benchmark: the simulation service — cache tiers and single-flight dedup.

Not a figure of the paper: this tracks the *service layer's* speed so future
cache/serving changes can be compared against the recorded numbers.  One
256-rank task-DAG CAQR point (4 sites of the paper's Grid'5000 reservation)
is served three ways:

* **cold** — a genuine simulation through the runner (the price every query
  paid before the service tier existed);
* **warm, memory tier** — the same canonical key answered by the in-process
  LRU front;
* **warm, disk tier** — a fresh service instance over the same on-disk store
  (the cross-invocation path ``repro figure`` re-runs take).

Two acceptance gates are asserted, not just recorded:

* each warm tier answers at least ``WARM_SPEEDUP_FLOOR`` (100x) faster than
  the cold simulation;
* a burst of ``BURST_N`` identical concurrent queries runs **exactly one**
  simulation — the single-flight dedup contract.

The machine-readable trajectory (latencies, speedups, warm queries/s, dedup
factor, cache counters) goes to ``results/BENCH_service.json``; the
previously recorded copy is loaded first and echoed back as ``baseline`` so
a regression investigation always has both runs side by side.
"""

from __future__ import annotations

import asyncio
import time

from repro.experiments.runner import ExperimentRunner
from repro.service import ENGINE_SEMANTICS_VERSION, ResultCache, SimulationService

from benchmarks.conftest import load_bench_json, report_rows

#: The 256-rank evaluation point every tier serves (4 sites x 32 nodes x 2).
POINT = {"algorithm": "caqr", "runtime": "dag", "m": 16384, "n": 128,
         "n_sites": 4, "tile_size": 32}

#: Warm answers must beat the cold simulation by at least this factor.
WARM_SPEEDUP_FLOOR = 100.0
#: Size of the duplicate concurrent burst (and its expected dedup factor).
BURST_N = 32
#: Repetitions used to time the warm tiers (single shots are timer noise).
WARM_REPS = 50


def _submit(service: SimulationService, config=POINT):
    return asyncio.run(service.submit(config))


def _timed(fn) -> tuple[float, object]:
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def test_service_cache_tiers_and_single_flight(tmp_path, bench_json, results_dir):
    baseline = load_bench_json("service")
    store_dir = tmp_path / "cache"

    # --- cold: one real simulation of the 256-rank DAG point ------------
    service = SimulationService(ExperimentRunner(store=ResultCache(store_dir)))
    cold_s, cold = _timed(lambda: _submit(service))
    assert cold.source == "simulated"
    assert service.runner.simulations_run == 1

    # --- warm, memory tier ----------------------------------------------
    def _memory_reps():
        for _ in range(WARM_REPS):
            assert _submit(service).source == "memory"
    memory_total_s, _ = _timed(_memory_reps)
    memory_s = memory_total_s / WARM_REPS

    # --- warm, disk tier (fresh process stand-in: fresh service + store) -
    def _disk_reps():
        for _ in range(WARM_REPS):
            fresh = SimulationService(ExperimentRunner(store=ResultCache(store_dir)))
            reply = _submit(fresh)
            assert reply.source == "disk"
            assert fresh.runner.simulations_run == 0
    disk_total_s, _ = _timed(_disk_reps)
    disk_s = disk_total_s / WARM_REPS

    # --- single-flight: a duplicate burst runs exactly one simulation ----
    burst_service = SimulationService(
        ExperimentRunner(store=ResultCache(tmp_path / "burst-cache"))
    )

    async def _burst():
        return await asyncio.gather(
            *(burst_service.submit(POINT) for _ in range(BURST_N))
        )

    burst_s, replies = _timed(lambda: asyncio.run(_burst()))
    sources = [r.source for r in replies]
    assert burst_service.runner.simulations_run == 1  # the dedup contract
    assert sources.count("simulated") == 1
    assert sources.count("single-flight") == BURST_N - 1
    assert len({r.point.time_s for r in replies}) == 1
    dedup_factor = BURST_N / burst_service.runner.simulations_run

    # --- the acceptance gates -------------------------------------------
    memory_speedup = cold_s / memory_s
    disk_speedup = cold_s / disk_s
    failures = []
    if memory_speedup < WARM_SPEEDUP_FLOOR:
        failures.append(
            f"memory tier speedup {memory_speedup:.0f}x under the "
            f"{WARM_SPEEDUP_FLOOR:.0f}x floor (cold {cold_s:.3f}s, "
            f"warm {memory_s * 1e6:.0f}us)"
        )
    if disk_speedup < WARM_SPEEDUP_FLOOR:
        failures.append(
            f"disk tier speedup {disk_speedup:.0f}x under the "
            f"{WARM_SPEEDUP_FLOOR:.0f}x floor (cold {cold_s:.3f}s, "
            f"warm {disk_s * 1e3:.2f}ms)"
        )

    rows = [
        {"tier": "cold (simulate)", "latency_s": round(cold_s, 6),
         "speedup_vs_cold": 1.0, "queries_per_s": round(1.0 / cold_s, 2)},
        {"tier": "warm (memory)", "latency_s": round(memory_s, 6),
         "speedup_vs_cold": round(memory_speedup, 1),
         "queries_per_s": round(1.0 / memory_s, 2)},
        {"tier": "warm (disk)", "latency_s": round(disk_s, 6),
         "speedup_vs_cold": round(disk_speedup, 1),
         "queries_per_s": round(1.0 / disk_s, 2)},
    ]
    report_rows("service: query latency by cache tier", rows, results_dir,
                "service_tiers.csv")
    print(f"single-flight: burst of {BURST_N} identical queries -> "
          f"{burst_service.runner.simulations_run} simulation(s) in "
          f"{burst_s:.3f}s (dedup factor {dedup_factor:.0f}x)")

    bench_json("service", {
        "engine_semantics": ENGINE_SEMANTICS_VERSION,
        "point": POINT,
        "warm_speedup_floor": WARM_SPEEDUP_FLOOR,
        "cold_s": cold_s,
        "warm_memory_s": memory_s,
        "warm_disk_s": disk_s,
        "memory_speedup_vs_cold": memory_speedup,
        "disk_speedup_vs_cold": disk_speedup,
        "warm_memory_queries_per_s": 1.0 / memory_s,
        "warm_disk_queries_per_s": 1.0 / disk_s,
        "burst": {
            "n": BURST_N,
            "simulations": burst_service.runner.simulations_run,
            "single_flight_joins": burst_service.stats.single_flight_joins,
            "dedup_factor": dedup_factor,
            "wall_s": burst_s,
        },
        "cache_stats": service.cache.stats.as_dict(),
        "gate_failures": failures,
        "baseline": {
            k: baseline.get(k) for k in
            ("cold_s", "warm_memory_s", "warm_disk_s",
             "memory_speedup_vs_cold", "disk_speedup_vs_cold")
        } if baseline else None,
    })
    assert not failures, "; ".join(failures)
