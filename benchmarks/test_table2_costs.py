"""Benchmark: Table II — counts when both the Q and the R factors are requested.

Same comparison as Table I with the Q factor also produced.  The paper's
model doubles every entry; in this reproduction TSQR follows that model
exactly (the downward sweep mirrors the reduction), while the ScaLAPACK
baseline forms Q with a *blocked* PDORGQR, so its measured message increase
is smaller than the unblocked 2x of the paper's table (see EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest

from repro.experiments.figures import table1, table2, table2_sweep

from benchmarks.conftest import report_rows


def test_table2_counts_q_and_r(benchmark, runner, results_dir):
    rows = benchmark.pedantic(
        table2, args=(runner,), kwargs={"m": 1_048_576, "n": 64, "n_sites": 4},
        rounds=1, iterations=1,
    )
    report_rows("Table II: counts with Q and R (M=1,048,576, N=64, P=256)", rows,
                results_dir, "table2_costs.csv")
    scal = next(r for r in rows if r["algorithm"] == "ScaLAPACK QR2")
    ts = next(r for r in rows if r["algorithm"] == "TSQR")

    # The model rows double Table I.
    assert ts["model # msg (critical path)"] == pytest.approx(2 * 8)
    assert scal["model # msg (critical path)"] == pytest.approx(4 * 64 * 8)

    # TSQR still sends orders of magnitude fewer messages and stays faster.
    assert scal["measured # msg (max per rank)"] > 20 * ts["measured # msg (max per rank)"]
    assert ts["Gflop/s"] > scal["Gflop/s"]


def test_table2_sweep_paper_scale(runner, results_dir):
    """Table II at paper scale (M=33.5M), opened across the domain sweep.

    The one-domain-per-process rows are the configuration the paper's
    Table II models directly: the measured doubling of messages, volume and
    flops must match the analytic 2x of ``model/costs.py`` within 10%.  The
    multi-process-domain rows (the scenario the explicit-Q path used to
    reject outright) must complete and show the computation doubling; their
    communication follows the blocked PDORGQR rather than the paper's
    uniform 2x, which the CSV records.
    """
    rows = table2_sweep(runner)
    report_rows(
        "Table II sweep: Property 1 at paper scale (M=33,554,432, N=64, P=256)",
        rows, results_dir, "table2_sweep.csv",
    )
    pure = next(r for r in rows if r["processes/domain"] == 1)
    for quantity in ("msg ratio", "volume ratio", "flop ratio"):
        measured, model = pure[quantity], pure[f"model {quantity}"]
        assert measured == pytest.approx(model, rel=0.10), (quantity, measured, model)

    grouped = [r for r in rows if r["algorithm"] == "TSQR" and r["processes/domain"] != 1]
    assert grouped, "the sweep must include multi-process domains"
    for row in grouped:
        assert row["flop ratio"] == pytest.approx(2.0, rel=0.10)
        assert row["msgs (Q+R)"] > row["msgs (R)"]
        assert row["time ratio"] > 1.2


def test_table2_tsqr_doubles_table1(runner, results_dir):
    """Property 1 at the level of counts: Q+R costs twice R-only for TSQR."""
    r_only = next(r for r in table1(runner, m=1_048_576, n=64, n_sites=4) if r["algorithm"] == "TSQR")
    both = next(r for r in table2(runner, m=1_048_576, n=64, n_sites=4) if r["algorithm"] == "TSQR")
    rows = [r_only, both]
    report_rows("TSQR: R-only vs Q-and-R", rows, results_dir, "table2_tsqr_doubling.csv")
    assert both["measured # msg (max per rank)"] == pytest.approx(
        2 * r_only["measured # msg (max per rank)"], rel=0.25
    )
    assert both["measured flops (max per rank)"] == pytest.approx(
        2 * r_only["measured flops (max per rank)"], rel=0.25
    )
