"""Benchmark: CAQR sweep — general matrices on the grid (paper §VI follow-up).

The paper's closing remark ("a first step towards the factorization of
general matrices on the grid") opened as an artefact: virtual general-matrix
CAQR runs at paper scale (M >= 1e6 rows, the study's widest N) on the full
four-site reservation, one run per panel-tree family, with the measured
message / volume / flop counts reported as ratios against the analytic
:func:`repro.model.costs.caqr_costs`.  Every ratio must sit within 10% of
the model — in practice the model reproduces the simulated counts exactly,
because both sides charge the same structured tiled-kernel formulas of
:mod:`repro.virtual.flops` over the same tile distribution and trees.

``REPRO_BENCH_FULL=1`` extends the sweep to the taller row count.
"""

from __future__ import annotations

from repro.experiments.figures import caqr_sweep
from repro.experiments.workloads import CAQR_SWEEP_M, CAQR_SWEEP_M_FULL

from benchmarks.conftest import full_sweep, report_rows


def test_caqr_sweep_paper_scale(runner, results_dir):
    m_values = CAQR_SWEEP_M_FULL if full_sweep() else CAQR_SWEEP_M
    rows = caqr_sweep(runner, m_values=m_values)
    report_rows(
        "CAQR sweep: general matrices on the grid (measured vs model, N=512, P=256)",
        rows, results_dir, "caqr_sweep.csv",
    )
    assert rows, "the sweep must emit one row per (M, panel tree)"
    for row in rows:
        assert row["M"] >= 1_000_000  # paper scale, per the artefact's contract
        for quantity in ("msg ratio", "volume ratio", "flop ratio"):
            assert 0.9 <= row[quantity] <= 1.1, (quantity, row)

    # The tree effect of paper Fig. 2 carries over to the panel reductions:
    # the grid-hierarchical tree pays the fewest wide-area messages.
    by_tree = {row["panel tree"]: row for row in rows if row["M"] == m_values[0]}
    assert set(by_tree) == {"flat", "binary", "grid-hierarchical"}
    tuned = by_tree["grid-hierarchical"]["inter-cluster msgs"]
    assert tuned <= by_tree["binary"]["inter-cluster msgs"]
    assert tuned <= by_tree["flat"]["inter-cluster msgs"]
