"""Benchmark: Fig. 3(a) — Grid'5000 communication characteristics.

Measures, with simulated ping-pong exchanges, the latency and throughput
between every pair of sites of the simulated platform and prints them next to
the values published in the paper's Table/Fig. 3(a).  The measured latencies
must match the published ones (they are inputs of the platform model); this
benchmark is the sanity check that the substrate is calibrated to the paper.
"""

from __future__ import annotations

from repro.experiments.figures import figure3_network

from benchmarks.conftest import report_rows


def test_fig03_network_characteristics(benchmark, runner, results_dir):
    rows = benchmark.pedantic(figure3_network, args=(runner,), rounds=1, iterations=1)
    report_rows("Fig. 3(a): inter/intra-cluster latency and throughput", rows, results_dir,
                "fig03_network.csv")
    for row in rows:
        measured = row["measured latency (ms)"]
        published = row["paper latency (ms)"]
        # Latencies must reproduce the published matrix within 10% + MPI overhead.
        assert abs(measured - published) <= 0.1 * published + 0.05, row
        # Throughput within 15% of the published value.
        assert abs(row["measured throughput (Mb/s)"] - row["paper throughput (Mb/s)"]) <= (
            0.15 * row["paper throughput (Mb/s)"]
        ), row
