"""Setuptools shim for environments without the `wheel` package.

All real metadata lives in pyproject.toml; this file only enables the legacy
(`--no-use-pep517`) editable install path used in offline environments.
"""
from setuptools import setup

setup()
