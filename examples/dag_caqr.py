#!/usr/bin/env python
"""Task-DAG CAQR: dataflow execution of tiled QR on the simulated grid.

The SPMD CAQR program is bulk-synchronous — panel factorization and
trailing-matrix updates never overlap.  The task-DAG runtime executes the
*same kernels* as a dependency graph: tasks fire as their input tiles become
ready, producers push tiles eagerly, consumers receive lazily, and wide-area
latency hides behind whatever is computable meanwhile.

This example (1) factors a real matrix through both runtimes and shows the
R factors are bit-identical, (2) races them on a virtual workload and
reports the makespans next to the exact critical-path lower bound and the
per-rank idle breakdown, (3) exports the DAG schedule as a Gantt CSV.

Run with::

    python examples/dag_caqr.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.dag import (
    DAGCAQRConfig,
    mean_idle_fraction,
    run_dag_caqr,
    write_gantt_csv,
)
from repro.experiments.grid5000 import grid5000_platform
from repro.programs.caqr import CAQRConfig, run_parallel_caqr
from repro.util.random_matrices import random_matrix


def main() -> None:
    platform = grid5000_platform(2)  # two sites, 128 simulated ranks
    print(f"platform: {platform.n_processes} ranks over {platform.n_sites} sites\n")

    # ---- real payload: the dataflow schedule changes nothing numerically
    m, n, tile = 240, 96, 16
    a = random_matrix(m, n, seed=11)
    spmd = run_parallel_caqr(platform, CAQRConfig(m=m, n=n, tile_size=tile, matrix=a))
    dag = run_dag_caqr(
        platform,
        DAGCAQRConfig(m=m, n=n, tile_size=tile, priority="critical-path", matrix=a),
    )
    # This example doubles as a CI smoke gate: fail loudly, don't just print.
    assert np.array_equal(dag.r, spmd.r), "DAG R is not bit-identical to SPMD R"
    print(f"real {m} x {n} factorization, tile {tile}:")
    print(f"  R bit-identical to SPMD CAQR : {np.array_equal(dag.r, spmd.r)}")
    r_ref = np.linalg.qr(a, mode='r')
    agreement = np.linalg.norm(np.abs(dag.r) - np.abs(r_ref)) / np.linalg.norm(r_ref)
    assert agreement < 1e-12, "DAG R disagrees with LAPACK"
    print(f"  |R| vs LAPACK                : {agreement:.2e}\n")

    # ---- virtual payload: same schedule at scale, who wins?
    m, n, tile = 2**16, 256, 64
    spmd = run_parallel_caqr(platform, CAQRConfig(m=m, n=n, tile_size=tile))
    print(f"virtual {m:,} x {n} factorization, tile {tile}:")
    print(f"  SPMD CAQR makespan           : {spmd.makespan_s:.4f} s")
    for priority in ("critical-path", "panel", "fifo"):
        run = run_dag_caqr(
            platform, DAGCAQRConfig(m=m, n=n, tile_size=tile, priority=priority)
        )
        idle = mean_idle_fraction(run.trace, run.makespan_s)
        print(
            f"  DAG ({priority:13s}) makespan : {run.makespan_s:.4f} s  "
            f"(critical path {run.critical_path_s:.4f} s, "
            f"mean idle {idle * 100:.1f}%)"
        )

    # ---- the schedule itself, exported for plotting
    run = run_dag_caqr(
        platform,
        DAGCAQRConfig(m=2**12, n=128, tile_size=64),
        record_schedule=True,
    )
    out = Path(tempfile.gettempdir()) / "dag_caqr_gantt.csv"
    write_gantt_csv(run.schedule, out)
    print(f"\ngraph: {run.graph.describe()}")
    print(f"Gantt schedule ({len(run.schedule)} tasks) written to {out}")


if __name__ == "__main__":
    main()
