#!/usr/bin/env python
"""Streaming observability: where did a contended grid run spend its waits?

The trace layer keeps streaming statistics *while the simulation runs* —
log-bucketed latency/size histograms per link class, per-rank busy/wait
timelines in coarse virtual-time windows, and a bounded table of contention
sites ranked by accumulated p2p wait — all in fixed memory, with no event
list retained.  This example runs a deliberately contended DAG-CAQR
factorization (a small tile size on 4 geographical sites maximises
inter-cluster traffic), then

* prints the top-K hot links ("which (link, source, dest) pairs do I fix
  first"), exactly what ``repro figure --id trace-hotspots`` tabulates;
* writes the per-rank busy/wait timeline as a Chrome-trace / Perfetto JSON
  (open it at https://ui.perfetto.dev) and as a CSV, into ``results/``.

Run with::

    python examples/trace_hotspots.py
"""

from __future__ import annotations

from pathlib import Path

from repro.experiments import ascii_table
from repro.experiments.grid5000 import Grid5000Settings
from repro.experiments.runner import ExperimentRunner
from repro.obs.export import write_perfetto_trace, write_timeline_csv

M, N, TILE, SITES = 16_384, 128, 32, 4
TOP_K = 8


def main() -> None:
    # A reduced reservation keeps the run quick; the streaming layer is the
    # same one that carries the 2048-rank benchmark smoke.
    settings = Grid5000Settings(nodes_per_cluster=2, processes_per_node=2)
    runner = ExperimentRunner(settings)  # no store: always a live run
    point = runner.dag_caqr_point(M, N, SITES, tile_size=TILE)
    trace = point.trace

    print(
        f"DAG-CAQR, M={M:,} N={N} tile={TILE} on {SITES} sites: "
        f"{point.time_s:.4f} s simulated, {trace.total_messages:,} messages"
    )

    # ---- top-K contention sites, accumulated online in bounded memory
    total_wait = sum(trace.comm_wait_s_per_rank)
    rows = [
        {
            "#": i,
            "link": spot.link,
            "source": spot.source,
            "dest": spot.dest,
            "wait (s)": round(spot.wait_s, 6),
            "wait share": round(spot.wait_s / total_wait, 4) if total_wait else 0.0,
            "messages": spot.messages,
            "MB": round(spot.nbytes / 1e6, 3),
        }
        for i, spot in enumerate(trace.hot_spots[:TOP_K], 1)
    ]
    print(f"\ntop {len(rows)} contention sites by accumulated p2p wait:\n")
    print(ascii_table(list(rows[0].keys()), [list(r.values()) for r in rows]))

    # ---- the same streaming windows feed the exporters
    out = Path("results")
    out.mkdir(exist_ok=True)
    perfetto = write_perfetto_trace(
        out / "trace_hotspots.perfetto.json", trace, title="dag-caqr-contended"
    )
    csv_path = write_timeline_csv(out / "trace_hotspots_timeline.csv", trace)
    stats = trace.stats
    print(f"\nstreaming timeline: {stats.n_ranks} ranks, "
          f"{stats.window_s * 1e3:.3f} ms windows over a "
          f"{stats.horizon_s:.4f} s horizon")
    print(f"  perfetto : {perfetto}  (open at https://ui.perfetto.dev)")
    print(f"  csv      : {csv_path}")

    # The head of the table concentrates the waiting: that is the contract
    # that makes a top-K report actionable.
    head_share = sum(r["wait share"] for r in rows)
    assert trace.hot_spots, "a contended run must register contention sites"
    assert head_share > 0.05, "top-K sites should carry a visible wait share"
    print(f"\ntop-{len(rows)} sites carry {head_share:.1%} of all p2p wait")


if __name__ == "__main__":
    main()
