#!/usr/bin/env python
"""The paper's headline experiment, in miniature: QCG-TSQR vs ScaLAPACK on a grid.

This example reproduces one slice of the evaluation (§V): the QR factorization
of tall-and-skinny matrices on the simulated Grid'5000 platform (4 clusters x
32 dual-processor nodes), comparing

* the ScaLAPACK-style baseline (topology-oblivious, 2 allreduces per column),
* QCG-TSQR with the grid-hierarchical reduction tree delivered by the
  topology-aware middleware,

for one column count and a sweep of row counts, on 1 and 4 geographical sites.
It prints the achieved Gflop/s, the per-run message counts (total and
wide-area) and the speed-up of using the whole grid.

Run with::

    python examples/grid_tsqr_vs_scalapack.py
"""

from __future__ import annotations

from repro.experiments import ExperimentRunner, ascii_table
from repro.experiments.paper_data import PAPER_QUALITATIVE_CLAIMS


def main() -> None:
    runner = ExperimentRunner()
    n = 64
    m_values = [131_072, 4_194_304, 33_554_432]
    domains_per_cluster = 64  # one domain per processor, the paper's optimum for N=64

    rows = []
    for m in m_values:
        for sites in (1, 4):
            scal = runner.scalapack_point(m, n, sites)
            ts = runner.tsqr_point(m, n, sites, domains_per_cluster)
            rows.append(
                {
                    "M": f"{m:,}",
                    "sites": sites,
                    "ScaLAPACK Gflop/s": round(scal.gflops, 1),
                    "TSQR Gflop/s": round(ts.gflops, 1),
                    "TSQR/ScaLAPACK": round(ts.gflops / scal.gflops, 2),
                    "TSQR WAN msgs": ts.inter_cluster_messages,
                    "ScaLAPACK WAN msgs": scal.inter_cluster_messages,
                }
            )

    print("QR factorization of an M x 64 matrix on the simulated Grid'5000")
    print(f"(32 nodes x 2 processes per site, {domains_per_cluster} domains per cluster)\n")
    print(ascii_table(list(rows[0].keys()), [list(r.values()) for r in rows]))

    largest = m_values[-1]
    ts_1 = runner.tsqr_point(largest, n, 1, domains_per_cluster)
    ts_4 = runner.tsqr_point(largest, n, 4, domains_per_cluster)
    scal_1 = runner.scalapack_point(largest, n, 1)
    scal_4 = runner.scalapack_point(largest, n, 4)
    print("\nGrid speed-up at M = {:,} (4 sites vs 1 site)".format(largest))
    print(f"  QCG-TSQR : {ts_4.gflops / ts_1.gflops:.2f}x  (paper: almost 4.0)")
    print(f"  ScaLAPACK: {scal_4.gflops / scal_1.gflops:.2f}x  (paper: hardly above 2.0)")

    print("\nPaper claims being illustrated:")
    for key in ("tsqr_beats_scalapack", "tsqr_scales_with_sites", "two_inter_cluster_messages"):
        print(f"  - {PAPER_QUALITATIVE_CLAIMS[key]}")


if __name__ == "__main__":
    main()
