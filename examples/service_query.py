#!/usr/bin/env python
"""Simulation as a service: cached queries and predictor-escalated search.

Asking "which tile size is fastest for my matrix on this grid?" does not
need every candidate simulated, and it never needs the *same* candidate
simulated twice:

* the :class:`~repro.service.EscalationPolicy` ranks all candidates with
  the paper's Eq. (1) closed forms (microseconds), then escalates only the
  predicted-competitive shortlist to full simulation — here 2 simulations
  answer a 5-candidate sweep with the exhaustive-simulation answer;
* every escalated point lands in the content-addressed result cache, so
  repeating the query (same config in any spelling) is a disk hit and runs
  zero simulations.

Run with::

    python examples/service_query.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.experiments.grid5000 import Grid5000Settings
from repro.experiments.runner import ExperimentRunner
from repro.service import EscalationPolicy, ResultCache, rank_candidates, spec_from_config

TILES = (8, 16, 32, 64, 128)
BASE = {"algorithm": "caqr", "m": 2048, "n": 128, "sites": 1}


def main() -> None:
    # A reduced reservation (2 nodes x 2 processes per cluster) keeps the
    # exhaustive ground-truth pass quick; the policy works unchanged on the
    # paper-scale platform.
    settings = Grid5000Settings(nodes_per_cluster=2, processes_per_node=2)
    candidates = [spec_from_config({**BASE, "tile_size": t}) for t in TILES]

    # ---- cheap tier: Eq. (1) ranks every candidate in microseconds
    ranked = rank_candidates(candidates, settings)
    print(f"best tile size for CAQR, M={BASE['m']:,}, N={BASE['n']}, 1 site:\n")
    print("tile | predicted_s")
    print("-----+------------")
    for c in ranked:
        print(f"{c.spec.tile_size:4d} | {c.predicted_s:.4f}")

    # ---- escalation: only the predicted-competitive shortlist simulates
    cache_dir = Path(tempfile.mkdtemp(prefix="repro-service-"))
    policy = EscalationPolicy(top_k=2, margin=0.5)
    runner = ExperimentRunner(settings, store=ResultCache(cache_dir))
    result = policy.best_config(candidates, runner)
    print(
        f"\nescalated {result.simulations} of {len(candidates)} candidates "
        f"(top_k={policy.top_k}, margin={policy.margin})"
    )
    print(
        f"best tile size: {result.best.spec.tile_size} "
        f"({result.best.time_s:.4f} s simulated)"
    )

    # ---- ground truth: the policy answer equals brute force
    exhaustive = min(
        (ExperimentRunner(settings).run_point(s) for s in candidates),
        key=lambda p: p.time_s,
    )
    assert result.best.spec.tile_size == exhaustive.spec.tile_size, \
        "policy answer diverged from exhaustive simulation"
    assert result.simulations < len(candidates), "policy did not prune"
    print(f"exhaustive simulation of all {len(candidates)} candidates agrees: "
          f"tile {exhaustive.spec.tile_size} ({exhaustive.time_s:.4f} s)")

    # ---- the cache makes the second query free
    rerun = ExperimentRunner(settings, store=ResultCache(cache_dir))
    again = policy.best_config(candidates, rerun)
    assert rerun.simulations_run == 0, "warm re-query should not simulate"
    assert again.best.time_s == result.best.time_s
    print(
        f"\nre-running the query against {cache_dir}: "
        f"{rerun.simulations_run} simulations, "
        f"{rerun.store.stats.hits} warm hits — same answer"
    )


if __name__ == "__main__":
    main()
