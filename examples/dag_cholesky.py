#!/usr/bin/env python
"""Task-DAG tiled Cholesky: the first non-QR scenario of the algorithm registry.

The task-DAG runtime never knew it was a QR engine: placement, priorities,
the communication plan and the critical-path bound all operate on read/write
sets the kernel registry declares.  Registering the four Cholesky kernels
(``potrf``/``trsm``/``syrk``/``gemm``) and a fifteen-line loop nest is all it
took to run a second factorization — this example exercises that claim
end to end.

It (1) factors a real SPD matrix through the DAG runtime and checks the
factor against ``numpy.linalg.cholesky`` exactly, under every placement
policy, (2) races the three ready-queue priorities on a virtual workload
against the critical-path lower bound, (3) confirms the measured message
count and volume match the analytic model to the message.

Run with::

    python examples/dag_cholesky.py
"""

from __future__ import annotations

import numpy as np

from repro.dag import (
    DAGFactorizationConfig,
    PLACEMENT_POLICIES,
    mean_idle_fraction,
    run_dag_factorization,
)
from repro.experiments.grid5000 import grid5000_platform
from repro.model.costs import dag_cholesky_costs
from repro.util.random_matrices import random_matrix


def spd_matrix(n: int, *, seed: int = 0) -> np.ndarray:
    """A well-conditioned symmetric positive-definite test matrix."""
    a = random_matrix(n, n, seed=seed)
    return a @ a.T + n * np.eye(n)


def main() -> None:
    platform = grid5000_platform(2)  # two sites, 128 simulated ranks
    print(f"platform: {platform.n_processes} ranks over {platform.n_sites} sites\n")

    # ---- real payload: exact against LAPACK under every placement policy
    n, tile = 192, 16
    a = spd_matrix(n, seed=7)
    l_ref = np.linalg.cholesky(a)
    print(f"real {n} x {n} Cholesky factorization, tile {tile}:")
    factors = []
    for placement in PLACEMENT_POLICIES:
        run = run_dag_factorization(
            platform,
            DAGFactorizationConfig(
                m=n, n=n, tile_size=tile, placement=placement,
                matrix=a, algorithm="cholesky",
            ),
        )
        factors.append(run.r)
        err = np.linalg.norm(run.r - l_ref) / np.linalg.norm(l_ref)
        # This example doubles as a CI smoke gate: fail loudly, don't print.
        assert err < 1e-12, f"DAG L disagrees with LAPACK under {placement}"
        print(f"  |L| vs numpy.linalg.cholesky ({placement:14s}): {err:.2e}")
    for other in factors[1:]:
        assert np.array_equal(factors[0], other), "placement changed the bits"
    print("  L bit-identical across all placements: True\n")

    # ---- virtual payload: the priority race at scale
    n, tile = 4096, 128
    print(f"virtual {n:,} x {n:,} factorization, tile {tile}:")
    for priority in ("critical-path", "panel", "fifo"):
        run = run_dag_factorization(
            platform,
            DAGFactorizationConfig(
                m=n, n=n, tile_size=tile, priority=priority, algorithm="cholesky"
            ),
        )
        idle = mean_idle_fraction(run.trace, run.makespan_s)
        assert run.critical_path_s <= run.makespan_s + 1e-12
        print(
            f"  DAG ({priority:13s}) makespan : {run.makespan_s:.4f} s  "
            f"(critical path {run.critical_path_s:.4f} s, "
            f"mean idle {idle * 100:.1f}%)"
        )

    # ---- measured counts against the analytic model: exact, by construction
    model = dag_cholesky_costs(n, platform.n_processes, tile_size=tile)
    measured_msgs = run.trace.total_messages
    measured_volume = sum(run.trace.bytes_by_link.values()) / 8.0
    assert measured_msgs == model.messages, "message count drifted from the model"
    assert measured_volume == model.volume_doubles, "volume drifted from the model"
    print(f"\nmodel check ({run.graph.describe()}):")
    print(f"  messages : {measured_msgs:,.0f} measured = {model.messages:,.0f} modeled")
    print(f"  volume   : {measured_volume:,.0f} doubles, both sides")


if __name__ == "__main__":
    main()
