#!/usr/bin/env python
"""Stability study: loss of orthogonality versus condition number.

TSQR is unconditionally backward stable (like Householder QR); the cheap
communication-avoiding alternatives it replaces are not.  This example sweeps
the condition number of a tall matrix from 1e2 to 1e14 and tabulates
``||I - Q^T Q||`` for

* TSQR,
* classical and modified Gram-Schmidt,
* CGS with re-orthogonalization,
* CholeskyQR and CholeskyQR2,

marking breakdowns (CholeskyQR's Gram matrix stops being positive definite
around kappa ~ 1e8).

Run with::

    python examples/stability_study.py
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ReproError
from repro.kernels.cholqr import cholqr, cholqr2
from repro.kernels.gram_schmidt import cgs, cgs2, mgs
from repro.tsqr import tsqr
from repro.util.random_matrices import matrix_with_condition_number
from repro.util.validation import orthogonality_error


def orthogonality_of(scheme, a: np.ndarray) -> str:
    """Return the loss of orthogonality of ``scheme`` on ``a`` as a string."""
    try:
        if scheme == "tsqr":
            q = tsqr(a, n_domains=16, want_q=True).q.explicit()
        else:
            q, _ = {"cgs": cgs, "mgs": mgs, "cgs2": cgs2, "cholqr": cholqr, "cholqr2": cholqr2}[
                scheme
            ](a)
        return f"{orthogonality_error(q):.1e}"
    except ReproError:
        return "breakdown"


def main() -> None:
    m, n = 4000, 24
    schemes = ("tsqr", "mgs", "cgs", "cgs2", "cholqr", "cholqr2")
    conditions = [1e2, 1e4, 1e6, 1e8, 1e10, 1e12, 1e14]

    print(f"Loss of orthogonality ||I - Q^T Q|| for a {m} x {n} matrix\n")
    header = f"{'kappa(A)':>10} | " + " | ".join(f"{s:>9}" for s in schemes)
    print(header)
    print("-" * len(header))
    for cond in conditions:
        a = matrix_with_condition_number(m, n, cond, seed=int(np.log10(cond)))
        row = " | ".join(f"{orthogonality_of(s, a):>9}" for s in schemes)
        print(f"{cond:>10.0e} | {row}")

    print(
        "\nReading guide: TSQR (and CGS2/CholeskyQR2 at twice the flops) stays at machine "
        "precision for every conditioning; CGS degrades like kappa^2, MGS like kappa, and "
        "CholeskyQR breaks down once kappa exceeds ~1/sqrt(machine epsilon)."
    )


if __name__ == "__main__":
    main()
