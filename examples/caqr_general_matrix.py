#!/usr/bin/env python
"""CAQR on a general matrix: the paper's "next step" (§VI), working today.

TSQR is the panel factorization of CAQR; the paper presents its grid TSQR as
a first step towards factoring *general* matrices on the grid.  This example
runs the tiled CAQR implementation on a general (not tall-and-skinny) matrix,
compares the flat-tree and binary-tree panel reductions, validates the factors
against LAPACK, and uses the implicit Q to solve an overdetermined system.

Run with::

    python examples/caqr_general_matrix.py
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import solve_triangular

from repro.tsqr import caqr
from repro.util.random_matrices import random_matrix
from repro.util.validation import factorization_residual, orthogonality_error


def main() -> None:
    m, n, tile = 900, 600, 64
    a = random_matrix(m, n, seed=11)
    print(f"General matrix: {m} x {n}, tile size {tile}\n")

    for tree in ("flat", "binary"):
        factors = caqr(a, tile_size=tile, panel_tree=tree)
        q = factors.thin_q()
        print(f"panel reduction tree = {tree!r}")
        print(f"  ||A - QR|| / ||A||  = {factorization_residual(a, q, factors.r):.2e}")
        print(f"  ||I - Q^T Q||       = {orthogonality_error(q):.2e}")
        r_ref = np.linalg.qr(a, mode="r")
        agreement = np.linalg.norm(np.abs(factors.r) - np.abs(r_ref)) / np.linalg.norm(r_ref)
        print(f"  |R| vs LAPACK       = {agreement:.2e}\n")

    # Least squares with the implicit Q: x = R^{-1} (Q^T b).
    factors = caqr(a, tile_size=tile, panel_tree="binary")
    x_true = np.linspace(0.0, 1.0, n)
    b = a @ x_true + 1e-8 * np.random.default_rng(2).standard_normal(m)
    qtb = factors.apply_qt(b)[:n]
    x = solve_triangular(factors.r[:n, :n], qtb, lower=False)
    print("Overdetermined solve via the implicit Q")
    print(f"  ||x - x_true||      = {np.linalg.norm(x - x_true):.2e}")

    # The communication argument, in counts: every panel is a single reduction
    # over its row tiles instead of one reduction per column.
    mt = (m + tile - 1) // tile
    nt = (n + tile - 1) // tile
    print("\nCommunication structure (per panel):")
    print(f"  CAQR panel reduction:  {mt - 1} combine messages, independent of the panel width")
    print(f"  ScaLAPACK-style panel: ~{2 * tile} reductions (two per column of the panel)")
    print(f"  panels: {nt}")


if __name__ == "__main__":
    main()
