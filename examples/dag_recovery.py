#!/usr/bin/env python
"""Rank-failure recovery on the task-DAG runtime: kill ranks, keep the bits.

The paper's setting is a *grid* — federated, volatile resources where
processes disappear mid-run.  This example injects deterministic rank
deaths into a real tiled Cholesky factorization and demonstrates the
fault-tolerance contract end to end:

1. under every tested failure schedule the recovered factor is
   **bit-identical** to the failure-free run — survivors recompute exactly
   the lost-version closure from the versions they still hold;
2. the recovery accounting (rounds, tasks re-executed, makespan overhead)
   is exactly-once and fully deterministic: the same ``(config, schedule)``
   reproduces the same trace, to the byte;
3. the same schedule against SPMD CAQR deterministically *aborts* with
   ``RankFailedError`` — the communication structure of an SPMD program is
   baked into its text, so there is nothing to re-place lost work onto.
   The task graph is what makes recovery possible.

Run with::

    python examples/dag_recovery.py
"""

from __future__ import annotations

import numpy as np

from repro.dag import DAGFactorizationConfig, run_dag_factorization
from repro.exceptions import RankFailedError
from repro.experiments.grid5000 import grid5000_platform
from repro.gridsim.failures import FailureSchedule, RankFailure
from repro.programs.caqr import CAQRConfig, run_parallel_caqr
from repro.util.random_matrices import random_matrix


def spd_matrix(n: int, *, seed: int = 0) -> np.ndarray:
    """A well-conditioned symmetric positive-definite test matrix."""
    a = random_matrix(n, n, seed=seed)
    return a @ a.T + n * np.eye(n)


def main() -> None:
    platform = grid5000_platform(2)
    print(f"platform: {platform.n_processes} ranks over {platform.n_sites} sites\n")

    # ---- real payload: bit-identical L under every schedule
    n, tile = 384, 16
    a = spd_matrix(n, seed=7)
    config = DAGFactorizationConfig(m=n, n=n, tile_size=tile, matrix=a,
                                    algorithm="cholesky")
    baseline = run_dag_factorization(platform, config)
    print(f"real {n} x {n} Cholesky, tile {tile}: "
          f"failure-free makespan {baseline.makespan_s:.4f} s")

    schedules = (
        # death at startup: every task of the dead rank runs on survivors
        FailureSchedule([RankFailure(3, at_time=0.0)]),
        # death mid-run, pinned deterministically by event count: recovery
        # executes only the lost-version closure — work whose outputs
        # survive on other ranks is never redone (the exactly-once contract,
        # visible as the re-executed count staying at/near zero)
        FailureSchedule([RankFailure(5, after_events=40)]),
        # two deaths at different moments: two recovery rounds, the second
        # on a smaller survivor set
        FailureSchedule([RankFailure(2, at_time=0.0),
                         RankFailure(9, after_events=60)]),
    )
    for schedule in schedules:
        run = run_dag_factorization(
            platform, config,
            failures=schedule,
            baseline_makespan_s=baseline.makespan_s,
        )
        # This example doubles as a CI smoke gate: fail loudly, don't print.
        assert run.recovery is not None, "the schedule never fired"
        assert np.array_equal(run.r, baseline.r), "recovery changed the bits"
        rec = run.recovery
        dead = " ".join(str(r) for r in rec.dead_ranks)
        print(f"  kill rank(s) {dead:5s}: L bit-identical, "
              f"{rec.rounds} round(s), {rec.tasks_reexecuted} task(s) "
              f"re-executed, overhead {rec.makespan_overhead_s:.4f} s "
              f"({rec.makespan_overhead_pct:.1f}%)")

    # ---- determinism: same (config, schedule) -> same trace, same report
    schedule = FailureSchedule([RankFailure(2, at_time=0.0),
                                RankFailure(9, after_events=60)])
    once = run_dag_factorization(platform, config, failures=schedule)
    again = run_dag_factorization(platform, config, failures=schedule)
    assert once.makespan_s == again.makespan_s
    assert once.trace == again.trace
    assert once.recovery.as_dict() == again.recovery.as_dict()
    print("\nsame (config, schedule) twice: traces byte-identical: True")

    # ---- the capability gap: SPMD CAQR cannot recover, by construction
    m_spmd = 4 * tile * platform.n_processes
    spmd_config = CAQRConfig(m=m_spmd, n=64, tile_size=tile)
    try:
        run_parallel_caqr(
            platform, spmd_config,
            failures=FailureSchedule.from_pairs(((3, 0.0),)),
        )
    except RankFailedError as exc:
        print(f"SPMD CAQR under the same death: aborts as designed\n  ({exc})")
    else:
        raise AssertionError("SPMD CAQR survived a rank death it cannot handle")


if __name__ == "__main__":
    main()
