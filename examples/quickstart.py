#!/usr/bin/env python
"""Quickstart: factor a tall-and-skinny matrix with TSQR.

This example covers the in-memory API that a downstream user touches first:

1. build a tall-and-skinny matrix,
2. factor it with TSQR (R factor + implicit Q),
3. validate the factorization against numpy/LAPACK,
4. use it: solve a tall least-squares problem,
5. look at the reduction tree that carried the factorization.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import lstsq_tsqr, tsqr
from repro.tsqr.trees import grid_hierarchical_tree
from repro.util.random_matrices import random_tall_skinny
from repro.util.validation import factorization_residual, orthogonality_error


def main() -> None:
    # ------------------------------------------------------------------ data
    m, n = 100_000, 32
    a = random_tall_skinny(m, n, seed=0)
    print(f"Matrix: {m:,} x {n} (tall and skinny, {a.nbytes / 1e6:.1f} MB)")

    # ------------------------------------------------------------ factorize
    # 64 domains, reduced over a binary tree (the single-machine default).
    result = tsqr(a, n_domains=64, want_q=True)
    r = result.r
    q = result.q  # implicit: applies Q / Q^T without materialising it

    print("\nTSQR factorization")
    print(f"  residual ||A - QR|| / ||A||   = {factorization_residual(a, q.explicit(), r):.2e}")
    print(f"  orthogonality ||I - Q^T Q||   = {orthogonality_error(q.explicit()):.2e}")
    r_lapack = np.linalg.qr(a, mode="r")
    agreement = np.linalg.norm(np.abs(r) - np.abs(r_lapack)) / np.linalg.norm(r_lapack)
    print(f"  |R| agreement with LAPACK     = {agreement:.2e}")

    # ------------------------------------------------------- least squares
    x_true = np.linspace(-1.0, 1.0, n)
    b = a @ x_true + 1e-6 * np.random.default_rng(1).standard_normal(m)
    solution = lstsq_tsqr(a, b, n_domains=64)
    print("\nLeast squares min ||Ax - b||")
    print(f"  error vs ground truth         = {np.linalg.norm(solution.x - x_true):.2e}")
    print(f"  residual norm                 = {solution.residual_norm:.2e}")

    # ------------------------------------------------------ reduction trees
    # The same factorization can be carried by a topology-tuned tree: binary
    # inside each cluster, binary across clusters (paper Fig. 2).
    domains_per_cluster, clusters = 16, ["orsay", "toulouse", "bordeaux", "sophia"]
    tree = grid_hierarchical_tree([c for c in clusters for _ in range(domains_per_cluster)])
    print("\nGrid-tuned reduction tree (4 clusters x 16 domains)")
    print(f"  {tree.describe()}")
    result_grid = tsqr(a, tree.n_domains, tree=tree, want_q=False)
    print(
        "  R factor unchanged by the tree:",
        bool(np.allclose(np.abs(result_grid.r), np.abs(r), atol=1e-8)),
    )


if __name__ == "__main__":
    main()
