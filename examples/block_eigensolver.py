#!/usr/bin/env python
"""Block eigensolver with pluggable orthogonalization (the paper's §II-E scope).

Block iterative eigensolvers repeatedly orthonormalize a block of long
vectors; to save messages they often use cheap but unstable schemes.  This
example runs the same block subspace iteration with four orthogonalization
back-ends — TSQR, Householder QR, classical Gram-Schmidt and CholeskyQR —
on an operator whose iterated blocks become very ill-conditioned, and reports
convergence, basis orthogonality and eigenvalue accuracy for each.

Run with::

    python examples/block_eigensolver.py
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ReproError
from repro.linalg.eigensolver import ORTHO_SCHEMES, block_subspace_iteration
from repro.util.random_matrices import default_rng
from repro.util.validation import orthogonality_error


def make_operator(n: int = 400, decay: float = 0.985, seed: int = 3):
    """Symmetric operator with a slowly decaying spectrum.

    The slow decay makes the power iterates of a block nearly collinear, which
    is exactly the regime where classical Gram-Schmidt and CholeskyQR lose
    orthogonality (or break down) while TSQR does not.
    """
    rng = default_rng(seed)
    q, _ = np.linalg.qr(rng.standard_normal((n, n)))
    eigenvalues = decay ** np.arange(n) * 100.0
    return (q * eigenvalues) @ q.T, eigenvalues


def main() -> None:
    n, block_size = 400, 6
    operator, spectrum = make_operator(n)
    reference = spectrum[:block_size]
    print(f"Operator: {n} x {n} symmetric, seeking the {block_size} dominant eigenpairs")
    print(f"Reference eigenvalues: {np.array2string(reference, precision=3)}\n")

    header = f"{'scheme':<12} {'converged':<10} {'iters':<6} {'basis orth.':<12} {'max eig. error':<14}"
    print(header)
    print("-" * len(header))
    for scheme in ("tsqr", "householder", "cgs", "cholqr"):
        assert scheme in ORTHO_SCHEMES
        try:
            result = block_subspace_iteration(
                operator,
                n,
                block_size,
                ortho=scheme,
                max_iterations=400,
                tolerance=1e-9,
                seed=1,
            )
            orth = orthogonality_error(result.eigenvectors)
            err = float(np.max(np.abs(result.eigenvalues - reference)))
            print(
                f"{scheme:<12} {str(result.converged):<10} {result.iterations:<6} "
                f"{orth:<12.2e} {err:<14.2e}"
            )
        except ReproError as exc:
            print(f"{scheme:<12} breakdown: {exc}")

    print(
        "\nTSQR gives the same single-reduction communication pattern as CGS/CholeskyQR "
        "but keeps the basis orthogonal to machine precision — the §II-E motivation."
    )


if __name__ == "__main__":
    main()
