"""Tests for the Table I/II cost model and the Eq. (1) predictor."""

from __future__ import annotations

import math

import pytest

from repro.exceptions import ConfigurationError
from repro.model.costs import caqr_costs, cost_table, scalapack_costs, tsqr_costs
from repro.model.predictor import (
    MachineParameters,
    crossover_n,
    predict,
    predict_caqr,
    predict_pair,
)


MACHINE = MachineParameters.from_link(
    latency_s=1e-4, bandwidth_bytes_per_s=1.1125e8, domain_gflops=2.0
)


class TestCostFormulas:
    def test_table1_scalapack_row(self):
        c = scalapack_costs(m=10**6, n=64, p=128)
        log_p = math.log2(128)
        assert c.messages == pytest.approx(2 * 64 * log_p)
        assert c.volume_doubles == pytest.approx(log_p * 64 * 64 / 2)
        assert c.flops == pytest.approx((2 * 10**6 * 64**2 - 2 / 3 * 64**3) / 128)

    def test_table1_tsqr_row(self):
        c = tsqr_costs(m=10**6, n=64, p=128)
        log_p = math.log2(128)
        assert c.messages == pytest.approx(log_p)
        assert c.flops == pytest.approx(
            (2 * 10**6 * 64**2 - 2 / 3 * 64**3) / 128 + 2 / 3 * log_p * 64**3
        )

    def test_table2_doubles_everything(self):
        r_only = tsqr_costs(10**6, 64, 64)
        both = tsqr_costs(10**6, 64, 64, want_q=True)
        assert both.messages == pytest.approx(2 * r_only.messages)
        assert both.volume_doubles == pytest.approx(2 * r_only.volume_doubles)
        assert both.flops == pytest.approx(2 * r_only.flops)

    def test_tsqr_sends_fewer_messages_by_factor_2n(self):
        scal = scalapack_costs(10**6, 64, 256)
        ts = tsqr_costs(10**6, 64, 256)
        assert scal.messages / ts.messages == pytest.approx(2 * 64)

    def test_volume_identical_for_both_algorithms(self):
        scal, ts = cost_table(10**6, 128, 64)
        assert scal.volume_doubles == pytest.approx(ts.volume_doubles)

    def test_single_domain_has_no_communication(self):
        c = tsqr_costs(10**5, 32, 1)
        assert c.messages == 0
        assert c.volume_doubles == 0

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            scalapack_costs(0, 10, 4)
        with pytest.raises(ConfigurationError):
            tsqr_costs(10, 10, 0)

    def test_volume_bytes(self):
        c = tsqr_costs(10**5, 32, 4)
        assert c.volume_bytes == pytest.approx(8 * c.volume_doubles)

    def test_as_row_keys(self):
        row = scalapack_costs(100, 10, 2).as_row()
        assert {"algorithm", "# msg", "# flops"}.issubset(row.keys())


class TestCAQRCosts:
    def test_single_rank_has_no_messages(self):
        costs = caqr_costs(256, 128, 1, tile_size=32)
        assert costs.messages == 0
        assert costs.volume_doubles == 0
        assert costs.flops > 0

    def test_message_count_independent_of_panel_width(self):
        # The CAQR argument: one reduction per panel regardless of width.
        narrow = caqr_costs(2**13, 128, 8, tile_size=32)
        wide = caqr_costs(2**13, 256, 8, tile_size=64)
        assert narrow.messages == wide.messages

    def test_up_and_down_messages_per_edge(self):
        # Every rank owns nt tile rows, so all nt panels reduce over all p
        # ranks: (p-1) edges each, two messages per edge while trailing
        # columns remain, one on the final panel.
        p, nt, b = 4, 4, 32
        costs = caqr_costs(b * p * nt, b * nt, p, tile_size=b)
        assert costs.messages == (p - 1) * (2 * nt - 1)

    def test_flops_grow_with_m(self):
        small = caqr_costs(2**12, 256, 8, tile_size=64)
        large = caqr_costs(2**16, 256, 8, tile_size=64)
        assert large.flops > small.flops

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            caqr_costs(0, 64, 4)
        with pytest.raises(ConfigurationError):
            caqr_costs(64, 64, 4, tile_size=0)
        with pytest.raises(ConfigurationError):
            caqr_costs(64, 64, 4, clusters=["one"])


class TestPredictor:
    def test_time_decomposition(self):
        pred = predict(tsqr_costs(10**6, 64, 64), MACHINE)
        assert pred.time_s == pytest.approx(
            pred.latency_time_s + pred.bandwidth_time_s + pred.compute_time_s
        )
        assert pred.gflops > 0

    def test_tsqr_faster_for_skinny_matrices(self):
        scal, ts = predict_pair(10**7, 64, 256, MACHINE)
        assert ts.time_s < scal.time_s

    def test_property5_crossover_exists_for_large_n(self):
        n_cross = crossover_n(10**5, 256, MACHINE, n_candidates=range(8, 4097, 8))
        assert n_cross is not None
        # And TSQR must still win below the crossover.
        scal, ts = predict_pair(10**5, max(8, n_cross // 4), 256, MACHINE)
        assert ts.time_s < scal.time_s

    def test_no_crossover_on_latency_free_machine(self):
        machine = MachineParameters(0.0, 0.0, 2.0)
        # Without latency ScaLAPACK never loses to TSQR (which does extra flops),
        # so the "crossover" happens immediately at the smallest candidate.
        n = crossover_n(10**6, 64, machine, n_candidates=range(1, 64))
        assert n == 1

    def test_latency_dominates_small_matrices(self):
        pred = predict(scalapack_costs(2**13, 512, 256), MACHINE)
        assert pred.latency_time_s > pred.compute_time_s

    def test_invalid_machine(self):
        with pytest.raises(ConfigurationError):
            MachineParameters(-1.0, 0.0, 1.0)
        with pytest.raises(ConfigurationError):
            MachineParameters(0.0, 0.0, 0.0)

    def test_predict_caqr_beats_tsqr_past_the_crossover(self):
        # Property 5's conclusion: once N is past the crossover, switch to
        # CAQR — its panels stay tile_size wide, so the redundant combine
        # flops do not grow with N^3 the way plain TSQR's do.  CAQR pays one
        # reduction per panel, so the trade only wins where messages are
        # cheap: evaluate on the intra-cluster link, the paper's single-site
        # configuration (on the 8 ms wide-area link TSQR keeps winning).
        cluster = MachineParameters.from_link(60e-6, 890e6 / 8.0, 2.0)
        m, n, p = 2**17, 8192, 64
        caqr_pred = predict_caqr(m, n, p, cluster, tile_size=64)
        _, tsqr_pred = predict_pair(m, n, p, cluster)
        assert caqr_pred.time_s < tsqr_pred.time_s
        assert caqr_pred.gflops > 0

    def test_gflops_accounts_for_q(self):
        r_only = predict(tsqr_costs(10**6, 64, 64), MACHINE)
        both = predict(tsqr_costs(10**6, 64, 64, want_q=True), MACHINE)
        # Twice the useful flops in about twice the time: similar rate.
        assert both.gflops == pytest.approx(r_only.gflops, rel=0.05)
