"""Tests for the paper's five properties as checkable predicates."""

from __future__ import annotations

import pytest

from repro.model.predictor import MachineParameters
from repro.model.properties import (
    check_monotone_increase,
    check_property1_q_costs_double,
    check_property2_bounded_by_domain_rate,
    check_property5_midrange_advantage,
)

MACHINE = MachineParameters.from_link(1e-4, 1.1e8, 2.0)


class TestProperty1:
    def test_exact_double_passes(self):
        assert check_property1_q_costs_double(1.0, 2.0).holds

    def test_within_tolerance_passes(self):
        assert check_property1_q_costs_double(1.0, 1.8).holds
        assert check_property1_q_costs_double(1.0, 2.3).holds

    def test_far_from_double_fails(self):
        assert not check_property1_q_costs_double(1.0, 4.0).holds

    def test_invalid_reference_time(self):
        assert not check_property1_q_costs_double(0.0, 1.0).holds


class TestProperty2:
    def test_below_peak_passes(self):
        assert check_property2_bounded_by_domain_rate(200.0, 940.0).holds

    def test_above_peak_fails(self):
        check = check_property2_bounded_by_domain_rate(1000.0, 940.0)
        assert not check.holds
        assert "940" in check.detail


class TestMonotoneIncrease:
    def test_increasing_series_passes(self):
        assert check_monotone_increase([1, 2, 3], [10.0, 20.0, 30.0]).holds

    def test_small_wiggle_tolerated(self):
        assert check_monotone_increase([1, 2, 3], [10.0, 9.8, 30.0], slack=0.05).holds

    def test_large_drop_fails(self):
        assert not check_monotone_increase([1, 2, 3], [10.0, 5.0, 30.0]).holds

    def test_unsorted_inputs_are_sorted_by_x(self):
        assert check_monotone_increase([3, 1, 2], [30.0, 10.0, 20.0]).holds

    def test_too_few_points(self):
        assert not check_monotone_increase([1], [1.0]).holds


class TestProperty5:
    def test_holds_on_realistic_machine(self):
        check = check_property5_midrange_advantage(10**6, 256, MACHINE)
        assert check.holds, check.detail

    def test_boolean_protocol(self):
        assert bool(check_property5_midrange_advantage(10**6, 256, MACHINE)) in (True, False)

    def test_fails_without_latency(self):
        machine = MachineParameters(0.0, 0.0, 2.0)
        assert not check_property5_midrange_advantage(10**6, 256, machine).holds
