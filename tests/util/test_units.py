"""Tests for unit conversions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.util.units import (
    DOUBLE_BYTES,
    bytes_of,
    flops_to_gflops,
    gbits_per_s_to_bytes_per_s,
    gflops_rate,
    mbits_per_s_to_bytes_per_s,
    ms_to_seconds,
    seconds_to_ms,
    seconds_to_us,
    us_to_seconds,
)


def test_double_is_eight_bytes():
    assert DOUBLE_BYTES == 8


def test_bytes_of_doubles():
    assert bytes_of(10) == 80


def test_bytes_of_float32():
    assert bytes_of(10, np.float32) == 40


def test_flops_to_gflops():
    assert flops_to_gflops(2.5e9) == pytest.approx(2.5)


def test_gflops_rate():
    assert gflops_rate(1e9, 2.0) == pytest.approx(0.5)


def test_gflops_rate_zero_time_is_zero():
    assert gflops_rate(1e9, 0.0) == 0.0


def test_mbits_conversion():
    # 890 Mb/s (Grid'5000 intra-cluster) = 111.25 MB/s.
    assert mbits_per_s_to_bytes_per_s(890) == pytest.approx(111.25e6)


def test_gbits_conversion():
    assert gbits_per_s_to_bytes_per_s(8) == pytest.approx(1e9)


def test_time_roundtrips():
    assert ms_to_seconds(seconds_to_ms(0.123)) == pytest.approx(0.123)
    assert us_to_seconds(seconds_to_us(0.123)) == pytest.approx(0.123)


def test_paper_latency_scale():
    # 7.97 ms inter-cluster latency is ~100x the 0.07 ms intra-cluster one.
    assert ms_to_seconds(7.97) / ms_to_seconds(0.07) > 100
