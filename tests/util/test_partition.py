"""Tests for row/column partition helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.util.partition import (
    block_partition,
    block_ranges,
    cyclic_indices,
    partition_rows_weighted,
    split_counts,
)


class TestSplitCounts:
    def test_even_split(self):
        assert split_counts(12, 4) == [3, 3, 3, 3]

    def test_uneven_split_front_loaded(self):
        assert split_counts(10, 4) == [3, 3, 2, 2]

    def test_more_parts_than_items_allows_empty(self):
        assert split_counts(2, 5) == [1, 1, 0, 0, 0]

    def test_total_preserved(self):
        assert sum(split_counts(1234, 7)) == 1234

    def test_zero_items(self):
        assert split_counts(0, 3) == [0, 0, 0]

    def test_invalid_parts(self):
        with pytest.raises(ShapeError):
            split_counts(10, 0)

    def test_negative_items(self):
        with pytest.raises(ShapeError):
            split_counts(-1, 3)


class TestBlockRanges:
    def test_ranges_are_contiguous_and_cover(self):
        ranges = block_ranges(100, 7)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == 100
        for (a0, a1), (b0, b1) in zip(ranges, ranges[1:]):
            assert a1 == b0

    def test_single_part(self):
        assert block_ranges(5, 1) == [(0, 5)]


class TestBlockPartition:
    def test_row_partition_reassembles(self):
        a = np.arange(24.0).reshape(8, 3)
        blocks = block_partition(a, 3, axis=0)
        assert np.array_equal(np.vstack(blocks), a)

    def test_column_partition_reassembles(self):
        a = np.arange(24.0).reshape(4, 6)
        blocks = block_partition(a, 4, axis=1)
        assert np.array_equal(np.hstack(blocks), a)

    def test_blocks_are_views(self):
        a = np.zeros((10, 2))
        blocks = block_partition(a, 2)
        blocks[0][0, 0] = 5.0
        assert a[0, 0] == 5.0

    def test_invalid_axis(self):
        with pytest.raises(ShapeError):
            block_partition(np.zeros((4, 4)), 2, axis=2)


class TestCyclicIndices:
    def test_block_size_one_round_robin(self):
        assert list(cyclic_indices(10, 3, 0, block=1)) == [0, 3, 6, 9]
        assert list(cyclic_indices(10, 3, 1, block=1)) == [1, 4, 7]

    def test_partition_of_indices(self):
        owned = [set(cyclic_indices(23, 4, p, block=3)) for p in range(4)]
        union = set().union(*owned)
        assert union == set(range(23))
        assert sum(len(o) for o in owned) == 23

    def test_block_size_grouping(self):
        idx = cyclic_indices(12, 2, 0, block=2)
        assert list(idx) == [0, 1, 4, 5, 8, 9]

    def test_invalid_owner(self):
        with pytest.raises(ShapeError):
            cyclic_indices(10, 2, 2)

    def test_invalid_block(self):
        with pytest.raises(ShapeError):
            cyclic_indices(10, 2, 0, block=0)


class TestWeightedPartition:
    def test_proportional(self):
        assert partition_rows_weighted(100, [1.0, 1.0, 2.0]) == [(0, 25), (25, 50), (50, 100)]

    def test_covers_all_rows(self):
        ranges = partition_rows_weighted(97, [0.3, 1.7, 2.2, 0.1])
        assert ranges[0][0] == 0 and ranges[-1][1] == 97
        for (a0, a1), (b0, b1) in zip(ranges, ranges[1:]):
            assert a1 == b0

    def test_equal_weights_match_block_ranges(self):
        assert partition_rows_weighted(10, [1, 1, 1]) == block_ranges(10, 3)

    def test_minimum_one_row_per_positive_weight(self):
        ranges = partition_rows_weighted(10, [100.0, 0.001, 0.001])
        sizes = [b - a for a, b in ranges]
        assert all(s >= 1 for s in sizes)

    def test_zero_weight_gets_zero_rows(self):
        ranges = partition_rows_weighted(10, [1.0, 0.0, 1.0])
        sizes = [b - a for a, b in ranges]
        assert sizes[1] == 0

    def test_rejects_all_zero(self):
        with pytest.raises(ShapeError):
            partition_rows_weighted(10, [0.0, 0.0])

    def test_rejects_negative(self):
        with pytest.raises(ShapeError):
            partition_rows_weighted(10, [1.0, -1.0])

    def test_rejects_empty(self):
        with pytest.raises(ShapeError):
            partition_rows_weighted(10, [])
