"""Tests for the seeded matrix generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.util.random_matrices import (
    graded_matrix,
    matrix_with_condition_number,
    random_matrix,
    random_tall_skinny,
)


def test_random_matrix_shape_and_dtype():
    a = random_matrix(10, 4)
    assert a.shape == (10, 4)
    assert a.dtype == np.float64


def test_random_matrix_deterministic_per_seed():
    assert np.array_equal(random_matrix(8, 3, seed=42), random_matrix(8, 3, seed=42))
    assert not np.array_equal(random_matrix(8, 3, seed=42), random_matrix(8, 3, seed=43))


def test_random_matrix_rejects_negative_dims():
    with pytest.raises(ShapeError):
        random_matrix(-1, 3)


def test_tall_skinny_requires_tall():
    with pytest.raises(ShapeError):
        random_tall_skinny(3, 5)


def test_condition_number_is_achieved():
    a = matrix_with_condition_number(200, 8, 1e6, seed=0)
    assert np.linalg.cond(a) == pytest.approx(1e6, rel=1e-6)


def test_condition_number_one_is_orthogonal_columns(
):
    a = matrix_with_condition_number(50, 5, 1.0, seed=1)
    s = np.linalg.svd(a, compute_uv=False)
    assert s.max() / s.min() == pytest.approx(1.0, rel=1e-10)


def test_condition_number_below_one_rejected():
    with pytest.raises(ShapeError):
        matrix_with_condition_number(10, 3, 0.5)


def test_condition_number_requires_tall():
    with pytest.raises(ShapeError):
        matrix_with_condition_number(3, 10, 1e3)


def test_graded_matrix_column_norm_ratio():
    a = graded_matrix(500, 6, ratio=1e8, seed=2)
    norms = np.linalg.norm(a, axis=0)
    assert norms[0] / norms[-1] > 1e6


def test_graded_matrix_single_column():
    a = graded_matrix(20, 1)
    assert a.shape == (20, 1)
