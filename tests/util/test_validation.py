"""Tests for QR validation helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.util.random_matrices import random_tall_skinny
from repro.util.validation import (
    check_qr,
    factorization_residual,
    normalize_qr_signs,
    normalize_r_signs,
    orthogonality_error,
    r_factors_match,
    relative_error,
)


class TestSignNormalization:
    def test_normalize_r_makes_diagonal_nonnegative(self):
        r = np.triu(np.array([[-2.0, 1.0], [0.0, 3.0]]))
        out = normalize_r_signs(r)
        assert np.all(np.diag(out) >= 0)

    def test_normalize_r_preserves_absolute_values(self):
        r = np.triu(np.random.default_rng(0).standard_normal((5, 5)))
        out = normalize_r_signs(r)
        assert np.allclose(np.abs(out), np.abs(r))

    def test_normalize_pair_preserves_product(self):
        a = random_tall_skinny(30, 5, seed=1)
        q, r = np.linalg.qr(a)
        q2, r2 = normalize_qr_signs(q, r)
        assert np.allclose(q2 @ r2, a)
        assert np.all(np.diag(r2) >= 0)

    def test_normalize_pair_shape_mismatch(self):
        with pytest.raises(ShapeError):
            normalize_qr_signs(np.zeros((4, 3)), np.zeros((4, 4)))

    def test_zero_diagonal_left_alone(self):
        r = np.zeros((3, 3))
        out = normalize_r_signs(r)
        assert np.array_equal(out, r)


class TestRFactorsMatch:
    def test_sign_flip_matches(self):
        a = random_tall_skinny(40, 6, seed=2)
        r = np.linalg.qr(a, mode="r")
        flipped = -r
        assert r_factors_match(r, flipped)

    def test_different_matrices_do_not_match(self):
        r1 = np.linalg.qr(random_tall_skinny(40, 6, seed=3), mode="r")
        r2 = np.linalg.qr(random_tall_skinny(40, 6, seed=4), mode="r")
        assert not r_factors_match(r1, r2)

    def test_shape_mismatch_is_false(self):
        assert not r_factors_match(np.eye(3), np.eye(4))


class TestErrorMetrics:
    def test_exact_factorization_has_tiny_residual(self):
        a = random_tall_skinny(50, 8, seed=5)
        q, r = np.linalg.qr(a)
        assert factorization_residual(a, q, r) < 1e-14

    def test_orthogonality_error_of_orthonormal_matrix(self):
        a = random_tall_skinny(50, 8, seed=6)
        q, _ = np.linalg.qr(a)
        assert orthogonality_error(q) < 1e-14

    def test_orthogonality_error_detects_bad_q(self):
        q = np.ones((10, 3))
        assert orthogonality_error(q) > 1.0

    def test_relative_error_zero_reference(self):
        assert relative_error(np.zeros(3), np.zeros(3)) == 0.0

    def test_relative_error_scale_free(self):
        x = np.array([1.0, 2.0])
        assert np.isclose(relative_error(1e6 * x * 1.001, 1e6 * x), relative_error(x * 1.001, x))


class TestCheckQR:
    def test_accepts_valid_factorization(self):
        a = random_tall_skinny(64, 9, seed=7)
        q, r = np.linalg.qr(a)
        metrics = check_qr(a, q, r)
        assert metrics["residual"] < 1e-13
        assert metrics["orthogonality"] < 1e-13

    def test_rejects_wrong_r(self):
        a = random_tall_skinny(64, 9, seed=8)
        q, r = np.linalg.qr(a)
        with pytest.raises(AssertionError):
            check_qr(a, q, 2.0 * r)

    def test_rejects_non_orthogonal_q(self):
        a = random_tall_skinny(64, 9, seed=9)
        q, r = np.linalg.qr(a)
        with pytest.raises(AssertionError):
            check_qr(a, q + 0.5, r)

    def test_rejects_non_triangular_r(self):
        a = random_tall_skinny(64, 9, seed=10)
        q, r = np.linalg.qr(a)
        bad = r.copy()
        bad[3, 0] = 1.0
        # The product q @ bad is exact, so only the triangularity check can fire.
        with pytest.raises(AssertionError, match="not upper triangular"):
            check_qr(q @ bad, q, bad)
