"""Tests for the hierarchical network model."""

from __future__ import annotations

import pytest

from repro.exceptions import TopologyError
from repro.gridsim.network import LinkClass, LinkSpec, NetworkModel


def _network():
    return NetworkModel(
        intra_node=LinkSpec.from_us_mbits(17.0, 5000.0),
        intra_cluster=LinkSpec.from_ms_mbits(0.06, 890.0),
        inter_cluster={
            ("a", "b"): LinkSpec.from_ms_mbits(8.0, 90.0),
        },
        inter_cluster_default=LinkSpec.from_ms_mbits(10.0, 60.0),
    )


class TestLinkSpec:
    def test_transfer_time_alpha_beta(self):
        link = LinkSpec(latency_s=1e-3, bandwidth_bytes_per_s=1e6)
        assert link.transfer_time(1000) == pytest.approx(1e-3 + 1e-3)

    def test_overhead_added(self):
        link = LinkSpec(latency_s=1e-3, bandwidth_bytes_per_s=1e6, per_message_overhead_s=2e-3)
        assert link.transfer_time(0) == pytest.approx(3e-3)

    def test_from_ms_mbits(self):
        link = LinkSpec.from_ms_mbits(8.0, 80.0)
        assert link.latency_s == pytest.approx(8e-3)
        assert link.bandwidth_bytes_per_s == pytest.approx(1e7)

    def test_invalid_bandwidth(self):
        with pytest.raises(TopologyError):
            LinkSpec(latency_s=0.0, bandwidth_bytes_per_s=0.0)

    def test_negative_message_size(self):
        with pytest.raises(TopologyError):
            LinkSpec(1e-3, 1e6).transfer_time(-1)


class TestClassification:
    def test_same_node(self):
        assert _network().classify("a", 0, "a", 0) is LinkClass.INTRA_NODE

    def test_same_cluster_different_node(self):
        assert _network().classify("a", 0, "a", 1) is LinkClass.INTRA_CLUSTER

    def test_different_cluster(self):
        assert _network().classify("a", 0, "b", 0) is LinkClass.INTER_CLUSTER

    def test_self(self):
        assert _network().classify("a", 0, "a", 0, same_process=True) is LinkClass.SELF


class TestLinkSelection:
    def test_known_pair_uses_specific_link(self):
        net = _network()
        link = net.link_for(LinkClass.INTER_CLUSTER, "b", "a")  # reversed order
        assert link.latency_s == pytest.approx(8e-3)

    def test_unknown_pair_falls_back_to_default(self):
        net = _network()
        link = net.link_for(LinkClass.INTER_CLUSTER, "a", "z")
        assert link.latency_s == pytest.approx(10e-3)

    def test_missing_default_raises(self):
        net = NetworkModel(
            intra_node=LinkSpec.from_us_mbits(17.0, 5000.0),
            intra_cluster=LinkSpec.from_ms_mbits(0.06, 890.0),
        )
        with pytest.raises(TopologyError):
            net.link_for(LinkClass.INTER_CLUSTER, "a", "b")

    def test_intra_cluster_override(self):
        net = NetworkModel(
            intra_node=LinkSpec.from_us_mbits(17.0, 5000.0),
            intra_cluster=LinkSpec.from_ms_mbits(0.06, 890.0),
            intra_cluster_overrides={"slow": LinkSpec.from_ms_mbits(0.5, 100.0)},
        )
        assert net.link_for(LinkClass.INTRA_CLUSTER, "slow", "slow").latency_s == pytest.approx(5e-4)
        assert net.link_for(LinkClass.INTRA_CLUSTER, "fast", "fast").latency_s == pytest.approx(6e-5)

    def test_transfer_time_orders_of_magnitude(self):
        # The paper's point: inter-cluster latency ~100x intra-cluster.
        net = _network()
        intra = net.transfer_time(0, "a", 0, "a", 1)
        inter = net.transfer_time(0, "a", 0, "b", 0)
        assert inter / intra > 50


class TestMatrices:
    def test_latency_matrix(self):
        mat = _network().latency_matrix_ms(["a", "b"])
        assert mat[("a", "a")] == pytest.approx(0.06)
        assert mat[("a", "b")] == pytest.approx(8.0)

    def test_throughput_matrix(self):
        mat = _network().throughput_matrix_mbits(["a", "b"])
        assert mat[("a", "a")] == pytest.approx(890.0)
        assert mat[("a", "b")] == pytest.approx(90.0)
