"""Tests for the probe and yield primitives the DAG runtime is built on."""

from __future__ import annotations

import pytest

from repro.exceptions import CommunicatorError
from repro.gridsim.executor import run_spmd
from tests.conftest import make_platform


@pytest.fixture(scope="module")
def platform():
    return make_platform(1, 2, 2)


class TestProbe:
    def test_probe_reports_arrival_without_consuming(self, platform):
        def program(ctx):
            comm = ctx.comm
            if comm.rank == 0:
                comm.send(b"x" * 1000, dest=1, tag="t")
                return None
            # Rank 1 runs after rank 0 parked/finished; the message is queued.
            first = comm.probe(source=0, tag="t")
            second = comm.probe(source=0, tag="t")
            assert first is not None and first == second  # non-destructive
            assert comm.probe(source=0, tag="other") is None
            before = ctx.clock()
            payload = yield from comm.recv(source=0, tag="t")
            assert payload == b"x" * 1000
            # recv advanced the clock exactly to the probed arrival time.
            assert ctx.clock() == max(before, first)
            return first

        run_spmd(platform, program, ranks=[0, 1])

    def test_probe_validates_source(self, platform):
        def program(ctx):
            if ctx.comm.rank == 0:
                with pytest.raises(CommunicatorError, match="invalid rank"):
                    ctx.comm.probe(source=99)

        run_spmd(platform, program, ranks=[0])

    def test_probe_records_nothing(self, platform):
        def program(ctx):
            comm = ctx.comm
            if comm.rank == 0:
                comm.send(None, dest=1, tag=0, nbytes=64)
            else:
                comm.probe(source=0, tag=0)
            return None

        result = run_spmd(platform, program, ranks=[0, 1])
        # The message was sent but never received: probing must not count it.
        assert result.trace.total_messages == 0


class TestBusyAccounting:
    def test_collective_combines_count_as_busy_time(self, platform):
        """Reduce combine flops carry their charged seconds into the trace's
        per-rank busy accounting (not misclassified as idle)."""
        from repro.gridsim.communicator import ReduceOp

        op = ReduceOp(
            func=lambda a, b: (a or 0) + (b or 0), flops=lambda a, b: 1e9
        )

        def program(ctx):
            yield from ctx.comm.allreduce(1.0, op=op)
            return None

        result = run_spmd(platform, program)
        trace = result.trace
        # Some rank performed combines; its busy seconds must be positive
        # and no rank's busy time may exceed the makespan.
        assert max(trace.busy_s_per_rank) > 0.0
        assert all(b <= result.makespan + 1e-12 for b in trace.busy_s_per_rank)

    def test_compute_charges_busy_seconds(self, platform):
        def program(ctx):
            ctx.compute(1e9, kernel="gemm")
            return None

        result = run_spmd(platform, program, ranks=[0])
        assert result.trace.busy_s_per_rank[0] == pytest.approx(result.clocks[0])


class TestYieldTurn:
    def test_yield_hands_cpu_to_the_earliest_rank(self, platform):
        """A compute-heavy rank that yields between work items interleaves
        with its peers in virtual-time order, so its probes see messages
        that causally arrived."""

        def program(ctx):
            comm = ctx.comm
            if comm.rank == 1:
                ctx.compute(1e9, kernel="gemm")  # busy until ~virtual 0.1s
                comm.send("hello", dest=0, tag="m")
                return None
            # Rank 0 chops its work into slices and yields between them;
            # without the yields it would run all slices before rank 1 ever
            # executes, and the probe below would see nothing.
            seen_at = None
            for _ in range(20):
                ctx.compute(2e8, kernel="gemm")
                yield from ctx.yield_turn()
                arrival = comm.probe(source=1, tag="m")
                if arrival is not None and seen_at is None:
                    seen_at = ctx.clock()
            assert seen_at is not None
            got = yield from comm.recv(source=1, tag="m")
            assert got == "hello"
            return seen_at

        result = run_spmd(platform, program, ranks=[0, 1])
        # The message was visible well before rank 0 finished its 20 slices.
        assert result.results[0] < result.clocks[0]

    def test_yield_is_safe_when_alone(self, platform):
        def program(ctx):
            for _ in range(3):
                yield from ctx.yield_turn()
            return ctx.rank

        result = run_spmd(platform, program, ranks=[2])
        assert result.results == [2]

    def test_yield_preserves_determinism(self, platform):
        def program(ctx):
            comm = ctx.comm
            for i in range(5):
                ctx.compute(1e7 * (comm.rank + 1), kernel="gemm")
                yield from ctx.yield_turn()
            return ctx.clock()

        a = run_spmd(platform, program)
        b = run_spmd(platform, program)
        assert a.clocks == b.clocks
