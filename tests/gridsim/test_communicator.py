"""Tests for the simulated MPI communicator (p2p, collectives, split, timing)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.gridsim.communicator import ReduceOp, payload_nbytes
from repro.gridsim.executor import run_spmd
from repro.virtual.matrix import VirtualMatrix


class TestPayloadNbytes:
    def test_none_is_free(self):
        assert payload_nbytes(None) == 0

    def test_numpy_array(self):
        assert payload_nbytes(np.zeros((4, 4))) == 128

    def test_virtual_matrix_uses_structure(self):
        assert payload_nbytes(VirtualMatrix(4, 4, structure="upper")) == 10 * 8

    def test_scalars_and_strings(self):
        assert payload_nbytes(3.14) == 8
        assert payload_nbytes("abcd") == 4
        assert payload_nbytes(b"abcd") == 4

    def test_containers_sum_elements(self):
        assert payload_nbytes([np.zeros(2), np.zeros(3)]) == 40 + 16

    def test_unknown_object_gets_envelope(self):
        class Thing:
            pass

        assert payload_nbytes(Thing()) == 64


class TestPointToPoint:
    def test_ring_exchange(self, platform8):
        def prog(ctx):
            right = (ctx.comm.rank + 1) % ctx.comm.size
            left = (ctx.comm.rank - 1) % ctx.comm.size
            ctx.comm.send(ctx.comm.rank, dest=right)
            return (yield from ctx.comm.recv(source=left))

        res = run_spmd(platform8, prog)
        assert res.results == [(i - 1) % 8 for i in range(8)]

    def test_message_advances_receiver_clock(self, platform8):
        def prog(ctx):
            if ctx.comm.rank == 0:
                ctx.comm.send(np.zeros(1000), dest=4)  # rank 4 is on the other cluster
            if ctx.comm.rank == 4:
                yield from ctx.comm.recv(source=0)
            return ctx.clock()

        res = run_spmd(platform8, prog)
        assert res.results[4] >= 8e-3  # at least the inter-cluster latency
        assert res.results[0] == 0.0  # eager send costs the sender nothing

    def test_tags_keep_messages_separate(self, platform4_single_site):
        def prog(ctx):
            if ctx.comm.rank == 0:
                ctx.comm.send("b", dest=1, tag="second")
                ctx.comm.send("a", dest=1, tag="first")
            if ctx.comm.rank == 1:
                first = yield from ctx.comm.recv(source=0, tag="first")
                second = yield from ctx.comm.recv(source=0, tag="second")
                return (first, second)
            return None

        res = run_spmd(platform4_single_site, prog)
        assert res.results[1] == ("a", "b")

    def test_messages_recorded_by_link_class(self, platform8):
        def prog(ctx):
            if ctx.comm.rank == 0:
                ctx.comm.send(None, dest=7)
            if ctx.comm.rank == 7:
                yield from ctx.comm.recv(source=0)

        res = run_spmd(platform8, prog)
        assert res.trace.n_messages.get("inter-cluster") == 1


class TestCollectives:
    def test_allreduce_sum(self, platform8):
        def prog(ctx):
            result = yield from ctx.comm.allreduce(np.array([float(ctx.comm.rank)]))
            return float(result[0])

        res = run_spmd(platform8, prog)
        assert res.results == [28.0] * 8

    def test_reduce_only_root_gets_result(self, platform8):
        def prog(ctx):
            return (yield from ctx.comm.reduce(np.array([1.0]), root=2))

        res = run_spmd(platform8, prog)
        assert float(res.results[2][0]) == 8.0
        assert all(res.results[i] is None for i in range(8) if i != 2)

    def test_bcast(self, platform8):
        def prog(ctx):
            payload = {"data": 42} if ctx.comm.rank == 3 else None
            out = yield from ctx.comm.bcast(payload, root=3)
            return out["data"]

        res = run_spmd(platform8, prog)
        assert res.results == [42] * 8

    def test_gather_and_scatter(self, platform8):
        def prog(ctx):
            gathered = yield from ctx.comm.gather(ctx.comm.rank * 10, root=0)
            items = [v + 1 for v in gathered] if ctx.comm.rank == 0 else None
            return (yield from ctx.comm.scatter(items, root=0))

        res = run_spmd(platform8, prog)
        assert res.results == [i * 10 + 1 for i in range(8)]

    def test_allgather(self, platform4_single_site):
        def prog(ctx):
            return (yield from ctx.comm.allgather(ctx.comm.rank))

        res = run_spmd(platform4_single_site, prog)
        assert all(r == [0, 1, 2, 3] for r in res.results)

    def test_barrier_synchronises_clocks(self, platform8):
        def prog(ctx):
            if ctx.comm.rank == 5:
                ctx.compute(1e9, kernel="gemm")
            yield from ctx.comm.barrier()
            return ctx.clock()

        res = run_spmd(platform8, prog)
        slowest = 1e9 / platform8.kernel_model.rate("gemm")
        assert all(t >= slowest for t in res.results)

    def test_custom_reduce_op(self, platform4_single_site):
        concat = ReduceOp(func=lambda a, b: (a or []) + (b or []), flops=lambda a, b: 0.0)

        def prog(ctx):
            result = yield from ctx.comm.allreduce([ctx.comm.rank], op=concat)
            return sorted(result)

        res = run_spmd(platform4_single_site, prog)
        assert all(r == [0, 1, 2, 3] for r in res.results)

    def test_hierarchical_collectives_cross_wan_once_per_site(self, platform8):
        def prog(ctx):
            yield from ctx.comm.reduce(np.array([1.0]), root=0)

        binary = run_spmd(platform8, prog, collective_tree="binary")
        aware = run_spmd(platform8, prog, collective_tree="hierarchical")
        assert aware.trace.n_messages.get("inter-cluster", 0) == 1
        assert aware.trace.n_messages.get("inter-cluster", 0) <= binary.trace.n_messages.get(
            "inter-cluster", 0
        )


class TestSplit:
    def test_split_by_cluster(self, platform8):
        def prog(ctx):
            sub = yield from ctx.comm.split(color=ctx.cluster)
            total = yield from sub.allreduce(np.array([1.0]))
            return (sub.size, float(total[0]))

        res = run_spmd(platform8, prog)
        assert all(r == (4, 4.0) for r in res.results)

    def test_split_with_none_color_opts_out(self, platform8):
        def prog(ctx):
            color = 0 if ctx.comm.rank < 2 else None
            sub = yield from ctx.comm.split(color=color)
            return None if sub is None else sub.size

        res = run_spmd(platform8, prog)
        assert res.results[:2] == [2, 2]
        assert all(r is None for r in res.results[2:])

    def test_split_key_orders_ranks(self, platform4_single_site):
        def prog(ctx):
            sub = yield from ctx.comm.split(color=0, key=-ctx.comm.rank)
            return sub.rank

        res = run_spmd(platform4_single_site, prog)
        # Reverse key ordering: old rank 3 becomes new rank 0.
        assert res.results == [3, 2, 1, 0]


class TestFailures:
    def test_rank_error_propagates(self, platform4_single_site):
        def prog(ctx):
            if ctx.comm.rank == 2:
                raise ValueError("boom")
            yield from ctx.comm.barrier()

        with pytest.raises(SimulationError, match="boom"):
            run_spmd(platform4_single_site, prog)

    def test_collective_mismatch_detected(self, platform4_single_site):
        def prog(ctx):
            if ctx.comm.rank == 0:
                yield from ctx.comm.bcast(1, root=0)
            else:
                yield from ctx.comm.barrier()

        with pytest.raises(SimulationError):
            run_spmd(platform4_single_site, prog)
