"""Determinism / equivalence suite for the engine backends.

The coroutine engine (single-threaded continuation scheduler, the default)
and the thread-backed reference engine must produce *bit-identical*
simulations: the same ordered event stream, final clocks, makespan and
per-rank results for every program — SPMD TSQR, SPMD CAQR, the DAG runtime
(probe / yield semantics included), and deadlocking programs (same wait
graph in the error message).  These tests pin that contract, plus:

* pooled worker threads vs fresh threads per run (the threads engine's own
  fast path);
* repeated runs in one process (pool reuse must not leak state);
* ``jobs=1`` vs ``jobs=N`` figure sweeps, and event streams produced in a
  worker process vs the parent process;
* the ``reuse_threads`` deprecation shim forwarding onto ``engine=``;
* the registry refactor contract: the generic graph builder emits tiled-QR
  graphs *identical* (task ids, edges, handles, wire sizes — hard-coded
  golden fingerprints captured from the hand-written builder it replaced)
  and the runtime's event streams stay bit-identical (golden trace hashes,
  all placements x priorities), plus coroutine-vs-threads parity for the
  Cholesky and LU graphs.
"""

from __future__ import annotations

import hashlib
import multiprocessing

import pytest

import repro.gridsim.executor as executor_mod
from repro.exceptions import ConfigurationError, DeadlockError
from repro.dag.runtime import DAGCAQRConfig, run_dag_caqr
from repro.gridsim.executor import SimulationResult, SPMDExecutor, run_spmd
from repro.programs.caqr import CAQRConfig, run_parallel_caqr
from repro.tsqr.parallel import TSQRConfig, run_parallel_tsqr

CONFIG = TSQRConfig(m=262_144, n=32, n_domains=4, tree_kind="grid-hierarchical")
CAQR_CONFIG = CAQRConfig(m=65_536, n=64, tile_size=64)


def _event_hash(sim: SimulationResult) -> str:
    """Canonical digest of a run's ordered event stream and final clocks."""
    payload = repr((sim.events, sim.clocks, sim.makespan)).encode()
    return hashlib.sha256(payload).hexdigest()


def _run(platform, *, engine: str) -> SimulationResult:
    from repro.tsqr.parallel import qcg_tsqr_program

    executor = SPMDExecutor(platform, record_messages=True, engine=engine)
    return executor.run(qcg_tsqr_program, CONFIG)


def _assert_identical(a: SimulationResult, b: SimulationResult) -> None:
    assert len(a.events) > 0
    assert a.events == b.events
    assert _event_hash(a) == _event_hash(b)
    assert a.clocks == b.clocks  # bit-identical, no approx
    assert a.makespan == b.makespan
    assert a.trace == b.trace


class TestCoroutineVsThreads:
    """The tentpole contract: one event loop, zero threads, same simulation."""

    def test_spmd_tsqr_bit_identical(self, platform8):
        _assert_identical(
            _run(platform8, engine="coroutine"), _run(platform8, engine="threads")
        )

    def test_spmd_caqr_bit_identical(self, platform8):
        runs = {
            engine: run_parallel_caqr(
                platform8, CAQR_CONFIG, record_messages=True, engine=engine
            ).simulation
            for engine in ("coroutine", "threads")
        }
        _assert_identical(runs["coroutine"], runs["threads"])

    @pytest.mark.parametrize("placement", ["block", "block-cyclic", "owner-computes"])
    @pytest.mark.parametrize("priority", ["critical-path", "fifo"])
    def test_dag_caqr_bit_identical(self, platform8, placement, priority):
        """The DAG runtime leans on probe + yield_turn: both backends must
        interleave the ranks identically for every placement x priority."""
        config = DAGCAQRConfig(
            m=32_768, n=96, tile_size=32, placement=placement, priority=priority
        )
        runs = {
            engine: run_dag_caqr(
                platform8, config, record_messages=True, engine=engine
            ).simulation
            for engine in ("coroutine", "threads")
        }
        _assert_identical(runs["coroutine"], runs["threads"])

    def test_results_in_rank_order(self, platform8):
        coro = _run(platform8, engine="coroutine")
        threads = _run(platform8, engine="threads")
        assert [r.rank for r in coro.results] == [r.rank for r in threads.results]
        assert [r.domain for r in coro.results] == [r.domain for r in threads.results]

    def test_deadlock_wait_graph_identical(self, platform4_single_site):
        """Both backends must report the same deadlock, rank for rank."""

        def prog(ctx):
            if ctx.comm.rank < 2:
                other = 1 - ctx.comm.rank
                return (yield from ctx.comm.recv(source=other, tag="cycle"))
            yield from ctx.comm.barrier()

        messages = {}
        for engine in ("coroutine", "threads"):
            with pytest.raises(DeadlockError) as excinfo:
                run_spmd(platform4_single_site, prog, engine=engine)
            messages[engine] = str(excinfo.value)
        assert messages["coroutine"] == messages["threads"]
        assert "rank 0: waiting on recv(source=1" in messages["coroutine"]
        assert "collective 'barrier'" in messages["coroutine"]

    def test_probe_and_yield_turn_parity(self, platform4_single_site):
        """Probe visibility and yield_turn interleaving must not depend on
        the backend: the sampled (clock, arrival) pairs are compared exactly."""

        def prog(ctx):
            comm = ctx.comm
            if comm.rank == 1:
                ctx.compute(1e9, kernel="gemm")
                comm.send("late", dest=0, tag="m")
                return None
            if comm.rank != 0:
                return None
            samples = []
            for _ in range(12):
                ctx.compute(2e8, kernel="gemm")
                yield from ctx.yield_turn()
                samples.append((ctx.clock(), comm.probe(source=1, tag="m")))
            got = yield from comm.recv(source=1, tag="m")
            return (got, tuple(samples))

        runs = {
            engine: run_spmd(platform4_single_site, prog, engine=engine)
            for engine in ("coroutine", "threads")
        }
        assert runs["coroutine"].results == runs["threads"].results
        assert runs["coroutine"].clocks == runs["threads"].clocks

    def test_unknown_engine_rejected(self, platform8):
        with pytest.raises(ConfigurationError, match="unknown engine"):
            SPMDExecutor(platform8, engine="fibers")


class TestReuseThreadsShim:
    def test_reuse_threads_forwards_with_deprecation_warning(self, platform8):
        with pytest.deprecated_call():
            pooled = SPMDExecutor(platform8, reuse_threads=True)
        assert pooled.engine == "threads"
        with pytest.deprecated_call():
            fresh = SPMDExecutor(platform8, reuse_threads=False)
        assert fresh.engine == "threads-fresh"

    def test_reuse_threads_conflicts_with_engine(self, platform8):
        with pytest.raises(ConfigurationError, match="reuse_threads"):
            with pytest.deprecated_call():
                SPMDExecutor(platform8, engine="coroutine", reuse_threads=True)


class TestPooledVsFreshThreads:
    def test_bit_identical_simulation(self, platform8):
        _assert_identical(
            _run(platform8, engine="threads"), _run(platform8, engine="threads-fresh")
        )

    def test_pool_is_reused_not_regrown(self, platform8):
        _run(platform8, engine="threads")  # warm: pool holds >= 8 workers
        spawned = executor_mod._pool.size
        assert spawned >= platform8.n_processes
        for _ in range(3):
            _run(platform8, engine="threads")
        assert executor_mod._pool.size == spawned

    def test_coroutine_engine_spawns_no_workers(self, platform8):
        """The default engine must not touch the thread pool at all."""
        before = executor_mod._pool.size
        _run(platform8, engine="coroutine")
        assert executor_mod._pool.size == before


class TestRepeatedRunsShareNoState:
    def test_three_consecutive_runs_identical(self, platform8):
        runs = [_run(platform8, engine="coroutine") for _ in range(3)]
        hashes = {_event_hash(sim) for sim in runs}
        assert len(hashes) == 1
        assert runs[0].events == runs[1].events == runs[2].events
        assert runs[0].trace == runs[1].trace == runs[2].trace

    def test_interleaved_configs_do_not_leak(self, platform8):
        """A different simulation between two identical ones changes nothing."""
        before = _run(platform8, engine="coroutine")
        other = run_parallel_tsqr(
            platform8,
            TSQRConfig(m=131_072, n=16, n_domains=8, tree_kind="binary"),
            record_messages=True,
        ).simulation
        after = _run(platform8, engine="coroutine")
        assert other.events != before.events  # actually a different schedule
        assert _event_hash(before) == _event_hash(after)


def _graph_fingerprint(graph) -> str:
    """Canonical digest of a graph's full structure: handles, tasks, edges."""
    parts = [
        ("kind", graph.kind),
        ("n_groups", graph.n_groups),
        (
            "handles",
            tuple(zip(graph.handle_keys, graph.handle_shapes, graph.handle_nbytes)),
        ),
    ]
    for t in graph.tasks:
        parts.append(
            (
                t.id, t.kernel, t.kernel_class, t.k, t.i, t.i2, t.j,
                t.flops, t.width, t.host_row,
                t.reads, t.read_producers, t.writes, t.write_nbytes,
                tuple(graph.preds[t.id]),
            )
        )
    return hashlib.sha256(repr(parts).encode()).hexdigest()


#: Golden fingerprints of the hand-written tiled-QR builder the generic
#: registry-driven builder replaced, captured immediately before the swap.
#: A drift in any task id, edge, handle key/shape or wire size fails here.
GRAPH_FINGERPRINTS = [
    ((('m', 96), ('n', 96), ('n_groups', 3), ('panel_tree', 'binary'), ('tile_size', 16)),
     '58f3e35dabad0f7d2dbff107651898cd826e8160e1eb9788cda1d4cbc37c016a'),
    ((('m', 64), ('n', 32), ('n_groups', 2), ('panel_tree', 'flat'), ('tile_size', 16)),
     '17d65341a6e654d0415e54e0554a6a275517915b6f4102909f4cbbcdd4dc4ff0'),
    ((('m', 200), ('n', 56), ('n_groups', 4), ('panel_tree', 'binary'), ('tile_size', 8)),
     '765f0264ef964cad6f5ba2b959ec1d9021e0fc0e1691202eece55af850dc85d3'),
    ((('group_clusters', (0, 0, 1, 1)), ('m', 200), ('n', 56), ('n_groups', 4), ('panel_tree', 'grid-hierarchical'), ('tile_size', 8)),
     'a557345fc969e8483466c6d40ef2384578069c64c731fe7b5919449aaae05478'),
    ((('m', 4096), ('n', 96), ('n_groups', 8), ('panel_tree', 'binary'), ('tile_size', 32)),
     '48204dc3cbeb73a94551f24a775e5802246f16c68b9537cf0dfb989dcb8b5d29'),
    ((('m', 33), ('n', 17), ('n_groups', 1), ('panel_tree', 'flat'), ('tile_size', 5)),
     '437381051527d3eb61ca7a57f32e86b96bd541bf6d4f4f48f35b7556e36d594d'),
]

#: Golden event-stream hashes of ``DAGCAQRConfig(m=32768, n=96, tile_size=32)``
#: on the 8-rank test platform, captured from the pre-refactor runtime: the
#: registry swap must not move a single event, under any placement x priority.
TRACE_HASHES = [
    (('block', 'critical-path'), 'cd79c27802ee292c61039992de2a0f50cacee65de9ab0ecf4a2548762c12c91b'),
    (('block', 'panel'), '420ef39d8ba26bf713677d611d02ae14423ffdd84e5af924d5d6830e50914488'),
    (('block', 'fifo'), 'c092e74003caae95860faa68513b311f53d00cbe45a73227b10054758a9fc6f0'),
    (('block-cyclic', 'critical-path'), 'e3dace64f29b9b15082008332656fde0b885b240df7d9c5acfad35c8ce6fc2a2'),
    (('block-cyclic', 'panel'), '96f4e2b34820ddfdf94bde3e7b646e1ddd6363f71a6a0adcf623da765fdf2e03'),
    (('block-cyclic', 'fifo'), 'aba463589fd3b68b311453af745985f2e6e5aed957987a5dcc07bbcf260ae684'),
    (('owner-computes', 'critical-path'), '8b0a57873b175eef7e93b0a3a158d8cdc51d18d55773a1d7610d08ca4bd8db81'),
    (('owner-computes', 'panel'), '7e36fda2d4b2f08707105963acd02fc3e7dbf45e7068fbe7caea5747d9a8388c'),
    (('owner-computes', 'fifo'), 'ce1ae3eb6132db06328810a5dabb650530a5a6bd2ec63ee8f5e36d2073328c2d'),
]


class TestRegistryRefactorEquivalence:
    """The generic builder's QR output is the legacy builder's, bit for bit."""

    @pytest.mark.parametrize("params,expected", GRAPH_FINGERPRINTS)
    def test_qr_graph_fingerprints_unchanged(self, params, expected):
        from repro.dag.graph import tiled_qr_graph

        kwargs = dict(params)
        kwargs["group_clusters"] = kwargs.pop("group_clusters", None)
        assert _graph_fingerprint(tiled_qr_graph(**kwargs)) == expected

    @pytest.mark.parametrize("policies,expected", TRACE_HASHES)
    def test_qr_trace_hashes_unchanged(self, platform8, policies, expected):
        placement, priority = policies
        config = DAGCAQRConfig(
            m=32_768, n=96, tile_size=32, placement=placement, priority=priority
        )
        result = run_dag_caqr(platform8, config, record_messages=True)
        assert _event_hash(result.simulation) == expected

    @pytest.mark.parametrize("algorithm,m,n", [("cholesky", 768, 768), ("lu", 1024, 768)])
    def test_new_algorithms_bit_identical_across_engines(self, platform8, algorithm, m, n):
        from repro.dag.runtime import DAGFactorizationConfig, run_dag_factorization

        config = DAGFactorizationConfig(
            m=m, n=n, tile_size=128, placement="block-cyclic", algorithm=algorithm
        )
        runs = {
            engine: run_dag_factorization(
                platform8, config, record_messages=True, engine=engine
            ).simulation
            for engine in ("coroutine", "threads")
        }
        _assert_identical(runs["coroutine"], runs["threads"])


def _make_platform8():
    """Deterministic 8-rank platform, importable from pool worker processes."""
    from repro.gridsim import (
        ClusterSpec,
        GridSpec,
        KernelRateModel,
        LinkSpec,
        NetworkModel,
        NodeSpec,
        Platform,
        ProcessorSpec,
        block_placement,
    )

    node = NodeSpec(processor=ProcessorSpec("test-cpu", 8.0, 3.67), processes_per_node=2)
    grid = GridSpec(
        name="test-grid",
        clusters=tuple(ClusterSpec(name=f"site{i}", n_nodes=2, node=node) for i in range(2)),
    )
    network = NetworkModel(
        intra_node=LinkSpec.from_us_mbits(17.0, 5000.0),
        intra_cluster=LinkSpec.from_ms_mbits(0.06, 890.0),
        inter_cluster_default=LinkSpec.from_ms_mbits(8.0, 90.0),
    )
    placement = block_placement(grid, nodes_per_cluster=2, processes_per_node=2)
    return Platform(
        grid=grid,
        network=network,
        placement=placement,
        kernel_model=KernelRateModel(),
        name="test-platform",
    )


def _child_event_hash(_arg: int) -> str:
    """Run the reference simulation in a worker process and hash its events."""
    return _event_hash(
        run_parallel_tsqr(_make_platform8(), CONFIG, record_messages=True).simulation
    )


class TestJobsEquivalence:
    def test_sweep_rows_identical_jobs_1_vs_n(self):
        from repro.experiments.figures import figure6
        from repro.experiments.runner import ExperimentRunner

        m_values = [1_048_576, 4_194_304]
        serial = figure6(
            ExperimentRunner(), 64, m_values=m_values, domain_counts=(1, 64)
        )
        parallel = figure6(
            ExperimentRunner(jobs=2), 64, m_values=m_values, domain_counts=(1, 64)
        )
        assert serial.as_rows() == parallel.as_rows()

    def test_worker_process_events_match_parent(self, platform8):
        """The same program hashes identically in-process and in a pool worker."""
        parent_hash = _event_hash(
            run_parallel_tsqr(platform8, CONFIG, record_messages=True).simulation
        )
        methods = multiprocessing.get_all_start_methods()
        if "fork" not in methods:  # pragma: no cover - non-POSIX fallback
            pytest.skip("fork start method unavailable")
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(2) as pool:
            child_hashes = pool.map(_child_event_hash, range(2))
        assert child_hashes == [parent_hash, parent_hash]
