"""Determinism / equivalence suite for the engine fast path.

The fast path (pooled rank workers, semaphore handoff with direct dispatch,
lock-free single-writer tracing, run-wide setup memo, parallel sweeps) is
pure bookkeeping: the simulated schedule must be *bit-identical* to the slow
path's.  These tests pin that contract:

* pooled worker threads vs fresh threads per run;
* repeated runs in one process (pool reuse must not leak state);
* ``jobs=1`` vs ``jobs=N`` figure sweeps, and event streams produced in a
  worker process vs the parent process.
"""

from __future__ import annotations

import hashlib
import multiprocessing

import pytest

import repro.gridsim.executor as executor_mod
from repro.gridsim.executor import SimulationResult, SPMDExecutor
from repro.tsqr.parallel import TSQRConfig, run_parallel_tsqr

CONFIG = TSQRConfig(m=262_144, n=32, n_domains=4, tree_kind="grid-hierarchical")


def _event_hash(sim: SimulationResult) -> str:
    """Canonical digest of a run's ordered event stream and final clocks."""
    payload = repr((sim.events, sim.clocks, sim.makespan)).encode()
    return hashlib.sha256(payload).hexdigest()


def _run(platform, *, reuse_threads: bool) -> SimulationResult:
    return run_parallel_tsqr(
        platform, CONFIG, record_messages=True
    ).simulation if reuse_threads else _run_fresh(platform)


def _run_fresh(platform) -> SimulationResult:
    from repro.tsqr.parallel import qcg_tsqr_program

    executor = SPMDExecutor(platform, record_messages=True, reuse_threads=False)
    return executor.run(qcg_tsqr_program, CONFIG)


class TestPooledVsFreshThreads:
    def test_bit_identical_simulation(self, platform8):
        pooled = _run(platform8, reuse_threads=True)
        fresh = _run(platform8, reuse_threads=False)
        assert len(pooled.events) > 0
        assert pooled.events == fresh.events
        assert _event_hash(pooled) == _event_hash(fresh)
        assert pooled.clocks == fresh.clocks  # bit-identical, no approx
        assert pooled.makespan == fresh.makespan
        assert pooled.trace == fresh.trace

    def test_pooled_results_in_rank_order(self, platform8):
        pooled = _run(platform8, reuse_threads=True)
        fresh = _run(platform8, reuse_threads=False)
        assert [r.rank for r in pooled.results] == [r.rank for r in fresh.results]
        assert [r.domain for r in pooled.results] == [r.domain for r in fresh.results]

    def test_pool_is_reused_not_regrown(self, platform8):
        _run(platform8, reuse_threads=True)  # warm: pool holds >= 8 workers
        spawned = executor_mod._pool.size
        assert spawned >= platform8.n_processes
        for _ in range(3):
            _run(platform8, reuse_threads=True)
        assert executor_mod._pool.size == spawned


class TestRepeatedRunsShareNoState:
    def test_three_consecutive_runs_identical(self, platform8):
        runs = [_run(platform8, reuse_threads=True) for _ in range(3)]
        hashes = {_event_hash(sim) for sim in runs}
        assert len(hashes) == 1
        assert runs[0].events == runs[1].events == runs[2].events
        assert runs[0].trace == runs[1].trace == runs[2].trace

    def test_interleaved_configs_do_not_leak(self, platform8):
        """A different simulation between two identical ones changes nothing."""
        before = _run(platform8, reuse_threads=True)
        other = run_parallel_tsqr(
            platform8,
            TSQRConfig(m=131_072, n=16, n_domains=8, tree_kind="binary"),
            record_messages=True,
        ).simulation
        after = _run(platform8, reuse_threads=True)
        assert other.events != before.events  # actually a different schedule
        assert _event_hash(before) == _event_hash(after)


def _make_platform8():
    """Deterministic 8-rank platform, importable from pool worker processes."""
    from repro.gridsim import (
        ClusterSpec,
        GridSpec,
        KernelRateModel,
        LinkSpec,
        NetworkModel,
        NodeSpec,
        Platform,
        ProcessorSpec,
        block_placement,
    )

    node = NodeSpec(processor=ProcessorSpec("test-cpu", 8.0, 3.67), processes_per_node=2)
    grid = GridSpec(
        name="test-grid",
        clusters=tuple(ClusterSpec(name=f"site{i}", n_nodes=2, node=node) for i in range(2)),
    )
    network = NetworkModel(
        intra_node=LinkSpec.from_us_mbits(17.0, 5000.0),
        intra_cluster=LinkSpec.from_ms_mbits(0.06, 890.0),
        inter_cluster_default=LinkSpec.from_ms_mbits(8.0, 90.0),
    )
    placement = block_placement(grid, nodes_per_cluster=2, processes_per_node=2)
    return Platform(
        grid=grid,
        network=network,
        placement=placement,
        kernel_model=KernelRateModel(),
        name="test-platform",
    )


def _child_event_hash(_arg: int) -> str:
    """Run the reference simulation in a worker process and hash its events."""
    return _event_hash(
        run_parallel_tsqr(_make_platform8(), CONFIG, record_messages=True).simulation
    )


class TestJobsEquivalence:
    def test_sweep_rows_identical_jobs_1_vs_n(self):
        from repro.experiments.figures import figure6
        from repro.experiments.runner import ExperimentRunner

        m_values = [1_048_576, 4_194_304]
        serial = figure6(
            ExperimentRunner(), 64, m_values=m_values, domain_counts=(1, 64)
        )
        parallel = figure6(
            ExperimentRunner(jobs=2), 64, m_values=m_values, domain_counts=(1, 64)
        )
        assert serial.as_rows() == parallel.as_rows()

    def test_worker_process_events_match_parent(self, platform8):
        """The same program hashes identically in-process and in a pool worker."""
        parent_hash = _event_hash(
            run_parallel_tsqr(platform8, CONFIG, record_messages=True).simulation
        )
        methods = multiprocessing.get_all_start_methods()
        if "fork" not in methods:  # pragma: no cover - non-POSIX fallback
            pytest.skip("fork start method unavailable")
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(2) as pool:
            child_hashes = pool.map(_child_event_hash, range(2))
        assert child_hashes == [parent_hash, parent_hash]
