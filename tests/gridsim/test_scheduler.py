"""Tests for the virtual-time cooperative scheduler: deadlocks, determinism.

These are the regression tests of the scheduler rewrite: deadlocks must be
detected *immediately* (no wall-clock timeouts exist any more) with a useful
per-rank wait graph, and two identical simulations must produce identical
trace event streams, clocks and makespans.
"""

from __future__ import annotations

import time

import pytest

from repro.exceptions import DeadlockError, SimulationError
from repro.gridsim.executor import run_spmd
from repro.tsqr.parallel import TSQRConfig, run_parallel_tsqr


class TestDeadlockDetection:
    def test_recv_cycle_detected_fast_with_wait_graph(self, platform4_single_site):
        """Two ranks waiting on each other's message: a head-to-head recv cycle."""

        def prog(ctx):
            if ctx.comm.rank < 2:
                other = 1 - ctx.comm.rank
                return (yield from ctx.comm.recv(source=other))
            return None

        start = time.perf_counter()
        with pytest.raises(DeadlockError) as excinfo:
            run_spmd(platform4_single_site, prog)
        elapsed = time.perf_counter() - start
        assert elapsed < 1.0  # instant, not a 120 s wall-clock timeout
        message = str(excinfo.value)
        assert "deadlock detected" in message
        assert "rank 0: waiting on recv(source=1" in message
        assert "rank 1: waiting on recv(source=0" in message

    def test_recv_from_self_detected(self, platform4_single_site):
        def prog(ctx):
            if ctx.comm.rank == 0:
                yield from ctx.comm.recv(source=0)

        start = time.perf_counter()
        with pytest.raises(DeadlockError, match="recv\\(source=0"):
            run_spmd(platform4_single_site, prog)
        assert time.perf_counter() - start < 1.0

    def test_missing_collective_participant_detected(self, platform4_single_site):
        """A rank that returns without entering the barrier strands the others."""

        def prog(ctx):
            if ctx.comm.rank == 3:
                return None  # skips the barrier
            yield from ctx.comm.barrier()

        with pytest.raises(DeadlockError, match="collective 'barrier'"):
            run_spmd(platform4_single_site, prog)

    def test_wait_graph_mixes_recv_and_collective(self, platform4_single_site):
        def prog(ctx):
            if ctx.comm.rank == 0:
                yield from ctx.comm.recv(source=1, tag="never-sent")
            else:
                yield from ctx.comm.barrier()

        with pytest.raises(DeadlockError) as excinfo:
            run_spmd(platform4_single_site, prog)
        message = str(excinfo.value)
        assert "recv(source=1, tag='never-sent')" in message
        assert "collective 'barrier'" in message

    def test_deadlock_error_is_a_simulation_error(self, platform4_single_site):
        def prog(ctx):
            if ctx.comm.rank == 0:
                yield from ctx.comm.recv(source=1)

        with pytest.raises(SimulationError):
            run_spmd(platform4_single_site, prog)


class TestDeterminism:
    @staticmethod
    def _run_tsqr(platform):
        return run_parallel_tsqr(
            platform,
            TSQRConfig(m=262_144, n=32, n_domains=4, tree_kind="grid-hierarchical"),
            record_messages=True,
        )

    def test_identical_runs_produce_identical_traces(self, platform8):
        first = self._run_tsqr(platform8)
        second = self._run_tsqr(platform8)
        assert first.simulation.events == second.simulation.events
        assert len(first.simulation.events) > 0
        assert first.makespan_s == second.makespan_s  # bit-identical, no approx
        assert first.simulation.clocks == second.simulation.clocks
        assert first.trace == second.trace

    def test_events_follow_virtual_time_order_per_rank(self, platform8):
        """Each rank's message receive times are non-decreasing in the stream."""
        events = self._run_tsqr(platform8).simulation.events
        last_recv: dict[int, float] = {}
        for event in events:
            if event[0] != "message":
                continue
            record = event[1]
            assert record.recv_time >= last_recv.get(record.dest, 0.0)
            last_recv[record.dest] = record.recv_time

    def test_scheduler_runs_one_rank_at_a_time(self, platform4_single_site):
        """The single-runner invariant: code between blocking calls never overlaps."""
        busy = {"rank": None}
        overlaps: list[tuple[int, int]] = []

        def prog(ctx):
            for _ in range(50):
                if busy["rank"] is not None:
                    overlaps.append((busy["rank"], ctx.comm.rank))
                busy["rank"] = ctx.comm.rank
                time.sleep(0.0001)  # invite preemption mid-section
                busy["rank"] = None
                yield from ctx.comm.barrier()

        run_spmd(platform4_single_site, prog)
        assert overlaps == []
