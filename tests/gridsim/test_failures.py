"""Engine failure model: deterministic rank deaths and revoked communicators.

The contract under test: a :class:`FailureSchedule` kills each scheduled
rank at its first failure checkpoint at/past its deadline, the dead rank is
retired quietly (no abort), survivors touching a communicator containing it
get :class:`RankFailedError` in virtual time, every death is recorded as a
``rank_failure`` trace event — and all of it is bit-deterministic given
``(program, schedule)`` on both engine backends.
"""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError, RankFailedError
from repro.gridsim.executor import run_spmd
from repro.gridsim.failures import FailureSchedule, RankFailure

BACKENDS = ("coroutine", "threads")


def _compute_only(ctx):
    """Plain (never-blocking) program: ten compute charges, no communication."""
    for _ in range(10):
        ctx.compute(1e6)
    return ctx.comm.rank


def _ring(ctx):
    """Compute, send to the next rank, receive from the previous one."""
    comm = ctx.comm
    nxt = (comm.rank + 1) % comm.size
    prev = (comm.rank - 1) % comm.size
    try:
        ctx.compute(1e6)
        comm.send(comm.rank, nxt)
        yield from comm.recv(source=prev)
        return "completed"
    except RankFailedError:
        return "survived"


def _two_allreduces(ctx):
    yield from ctx.comm.allreduce(1.0)
    ctx.compute(1e9)  # pushes every clock past the scheduled death time
    return (yield from ctx.comm.allreduce(1.0))


class TestFailureSchedule:
    def test_needs_a_deadline(self):
        with pytest.raises(ConfigurationError, match="deadline"):
            RankFailure(rank=0)

    def test_rejects_duplicate_ranks(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            FailureSchedule(
                [RankFailure(0, at_time=1.0), RankFailure(0, at_time=2.0)]
            )

    def test_rejects_negative_deadlines(self):
        with pytest.raises(ConfigurationError):
            RankFailure(0, at_time=-1.0)
        with pytest.raises(ConfigurationError):
            RankFailure(0, after_events=-1)

    def test_from_pairs_and_key(self):
        schedule = FailureSchedule.from_pairs([(3, 0.5), (1, 0.25)])
        assert schedule.ranks == (1, 3)
        assert schedule.key() == ((1, 0.25, None), (3, 0.5, None))
        assert schedule == FailureSchedule.from_pairs([(1, 0.25), (3, 0.5)])


class TestQuietRetirement:
    @pytest.mark.parametrize("engine", BACKENDS)
    def test_dead_rank_never_poisons_a_communication_free_run(
        self, platform4_single_site, engine
    ):
        """A death with no communicator use afterwards: survivors just finish."""
        schedule = FailureSchedule([RankFailure(1, after_events=3)])
        result = run_spmd(
            platform4_single_site, _compute_only, engine=engine, failures=schedule
        )
        assert result.results == [0, None, 2, 3]
        summary = result.trace
        # Died at its 4th checkpoint: exactly 3 compute charges landed.
        [(rank, death_time)] = summary.rank_failures
        assert rank == 1
        assert death_time == result.clocks[1] > 0.0

    @pytest.mark.parametrize("engine", BACKENDS)
    def test_at_time_zero_kills_before_any_work(self, platform4_single_site, engine):
        schedule = FailureSchedule([RankFailure(2, at_time=0.0)])
        result = run_spmd(
            platform4_single_site, _compute_only, engine=engine, failures=schedule
        )
        assert result.results == [0, 1, None, 3]
        assert result.trace.rank_failures == ((2, 0.0),)
        assert result.clocks[2] == 0.0


class TestRevokedCommunicators:
    @pytest.mark.parametrize("engine", BACKENDS)
    def test_survivors_observe_rank_failed_error(self, platform4_single_site, engine):
        """Every survivor of the ring — parked or not — gets RankFailedError."""
        schedule = FailureSchedule([RankFailure(1, at_time=0.0)])
        result = run_spmd(
            platform4_single_site, _ring, engine=engine, failures=schedule
        )
        assert result.results == ["survived", None, "survived", "survived"]

    @pytest.mark.parametrize("engine", BACKENDS)
    def test_uncaught_failure_raises_with_precise_type(
        self, platform4_single_site, engine
    ):
        schedule = FailureSchedule([RankFailure(2, at_time=0.1)])
        with pytest.raises(RankFailedError, match="revoked"):
            run_spmd(
                platform4_single_site, _two_allreduces, engine=engine, failures=schedule
            )

    @pytest.mark.parametrize("engine", BACKENDS)
    def test_detection_happens_in_virtual_time(self, platform4_single_site, engine):
        """A survivor's clock never observes a death before it happened."""
        schedule = FailureSchedule([RankFailure(1, at_time=0.05)])

        def prog(ctx):
            if ctx.comm.rank == 1:
                ctx.compute(1e9)  # dies at the send below (clock ~0.27 >= 0.05)
                ctx.comm.send("never-delivered", 0)
                return None
            try:
                return (yield from ctx.comm.recv(source=1))
            except RankFailedError:
                return ctx.clock()

        result = run_spmd(platform4_single_site, prog, engine=engine, failures=schedule)
        [(_, death_time)] = result.trace.rank_failures
        assert death_time >= 0.05
        for rank in (0, 2, 3):
            assert result.results[rank] >= death_time

    def test_failure_free_schedule_path_is_inert(self, platform4_single_site):
        """A schedule naming a rank that finishes first changes nothing."""
        baseline = run_spmd(platform4_single_site, _ring, record_messages=True)
        late = FailureSchedule([RankFailure(0, at_time=1e9)])
        shadowed = run_spmd(
            platform4_single_site, _ring, record_messages=True, failures=late
        )
        assert shadowed.results == baseline.results
        assert shadowed.events == baseline.events
        assert shadowed.clocks == baseline.clocks
        assert shadowed.trace == baseline.trace


class TestDeterminism:
    @pytest.mark.parametrize("program", [_ring, _compute_only])
    def test_backends_agree_bit_for_bit_under_failures(
        self, platform4_single_site, program
    ):
        schedule = FailureSchedule(
            [RankFailure(1, at_time=0.0), RankFailure(3, after_events=5)]
        )
        runs = [
            run_spmd(
                platform4_single_site,
                program,
                engine=engine,
                record_messages=True,
                failures=schedule,
            )
            for engine in BACKENDS
            for _ in range(2)  # repeated runs per backend must agree too
        ]
        first = runs[0]
        for other in runs[1:]:
            assert other.results == first.results
            assert other.events == first.events
            assert other.clocks == first.clocks
            assert other.makespan == first.makespan
            assert other.trace == first.trace
            assert other.trace.rank_failures == first.trace.rank_failures

    def test_rank_failure_appears_in_the_event_stream(self, platform4_single_site):
        schedule = FailureSchedule([RankFailure(1, after_events=2)])
        result = run_spmd(
            platform4_single_site,
            _compute_only,
            record_messages=True,
            failures=schedule,
        )
        failure_events = [e for e in result.events if e[0] == "rank_failure"]
        assert failure_events == [("rank_failure", 1, result.clocks[1])]
