"""Tests for the QCG-OMPI-like middleware: JobProfile, scheduler, group comms."""

from __future__ import annotations

import pytest

from repro.exceptions import AllocationError, ConfigurationError
from repro.gridsim.executor import run_spmd
from repro.gridsim.kernelmodel import KernelRateModel
from repro.gridsim.middleware import (
    JobProfile,
    MetaScheduler,
    NetworkRequirement,
    ProcessGroupRequirement,
    group_communicators,
    topology_attributes,
)

from tests.conftest import make_grid, make_network


def _scheduler(n_clusters=2, nodes=2, ppn=2):
    return MetaScheduler(make_grid(n_clusters, nodes, ppn), make_network())


class TestJobProfile:
    def test_equal_power_profile(self):
        profile = JobProfile.clusters_of_equal_power(4, 16)
        assert profile.total_processes == 64
        assert len(profile.groups) == 4

    def test_duplicate_group_names_rejected(self):
        with pytest.raises(ConfigurationError):
            JobProfile(groups=(ProcessGroupRequirement("g", 1), ProcessGroupRequirement("g", 2)))

    def test_empty_profile_rejected(self):
        with pytest.raises(ConfigurationError):
            JobProfile(groups=tuple())

    def test_group_needs_processes(self):
        with pytest.raises(ConfigurationError):
            ProcessGroupRequirement("g", 0)

    def test_network_requirement_check(self):
        req = NetworkRequirement(max_latency_s=1e-3, min_bandwidth_bytes_per_s=1e8)
        assert req.satisfied_by(5e-4, 2e8)
        assert not req.satisfied_by(5e-3, 2e8)
        assert not req.satisfied_by(5e-4, 1e7)


class TestMetaScheduler:
    def test_one_group_per_cluster(self):
        scheduler = _scheduler(2)
        profile = JobProfile.clusters_of_equal_power(2, 4)
        allocation = scheduler.allocate(profile)
        assert allocation.cluster_of_group == ("site0", "site1")
        assert allocation.placement.size == 8
        assert allocation.ranks_of_group(0) == [0, 1, 2, 3]

    def test_multiple_groups_share_a_cluster(self):
        scheduler = _scheduler(2)
        profile = JobProfile.clusters_of_equal_power(4, 2)
        allocation = scheduler.allocate(profile)
        # 4 groups of 2 over 2 clusters of capacity 4: two groups per cluster.
        assert sorted(allocation.cluster_of_group) == ["site0", "site0", "site1", "site1"]

    def test_capacity_exceeded_raises(self):
        scheduler = _scheduler(1)
        with pytest.raises(AllocationError):
            scheduler.allocate(JobProfile.clusters_of_equal_power(1, 100))

    def test_intra_group_requirement_unsatisfiable(self):
        scheduler = _scheduler(1)
        profile = JobProfile(
            groups=(ProcessGroupRequirement("g", 2),),
            intra_group=NetworkRequirement(max_latency_s=1e-9),
        )
        with pytest.raises(AllocationError):
            scheduler.allocate(profile)

    def test_inter_group_requirement_unsatisfiable(self):
        scheduler = _scheduler(2)
        profile = JobProfile(
            groups=(ProcessGroupRequirement("a", 4), ProcessGroupRequirement("b", 4)),
            inter_group=NetworkRequirement(max_latency_s=1e-6),
        )
        with pytest.raises(AllocationError):
            scheduler.allocate(profile)

    def test_nodes_per_cluster_limit(self):
        scheduler = _scheduler(1, nodes=2, ppn=2)
        profile = JobProfile.clusters_of_equal_power(1, 2)
        allocation = scheduler.allocate(profile, nodes_per_cluster=1)
        assert allocation.placement.size == 2
        with pytest.raises(AllocationError):
            scheduler.allocate(profile, nodes_per_cluster=5)

    def test_platform_wrapper(self):
        scheduler = _scheduler(2)
        allocation = scheduler.allocate(JobProfile.clusters_of_equal_power(2, 4))
        platform = scheduler.platform(allocation, KernelRateModel())
        assert platform.n_processes == 8
        assert platform.n_sites == 2


class TestTopologyAttributes:
    def test_attributes_per_rank(self):
        scheduler = _scheduler(2)
        allocation = scheduler.allocate(JobProfile.clusters_of_equal_power(2, 4))
        attrs = topology_attributes(allocation, 5)
        assert attrs.group == 1
        assert attrs.group_size == 4
        assert attrs.group_leader_world_rank == 4
        assert attrs.cluster == "site1"
        assert attrs.n_groups == 2

    def test_group_communicators_spmd(self):
        scheduler = _scheduler(2)
        allocation = scheduler.allocate(JobProfile.clusters_of_equal_power(2, 4))
        platform = scheduler.platform(allocation, KernelRateModel())

        def prog(ctx):
            comms = yield from group_communicators(ctx.comm, allocation)
            leader_count = 1 if comms.is_leader else 0
            return (comms.attributes.group, comms.group_comm.size, leader_count)

        res = run_spmd(platform, prog)
        groups = [r[0] for r in res.results]
        assert groups == [0, 0, 0, 0, 1, 1, 1, 1]
        assert all(r[1] == 4 for r in res.results)
        assert sum(r[2] for r in res.results) == 2  # exactly one leader per group
