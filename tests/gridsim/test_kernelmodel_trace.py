"""Tests for the kernel rate model and the execution trace."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.gridsim.kernelmodel import KernelEfficiency, KernelRateModel
from repro.gridsim.machine import ProcessorSpec
from repro.gridsim.network import LinkClass
from repro.gridsim.trace import Trace


class TestKernelEfficiency:
    def test_gemm_is_full_speed(self):
        assert KernelEfficiency().efficiency("gemm") == 1.0

    def test_qr_efficiency_grows_with_n(self):
        eff = KernelEfficiency()
        assert eff.efficiency("qr_leaf", 512) > eff.efficiency("qr_leaf", 64)

    def test_panel_is_slowest(self):
        eff = KernelEfficiency()
        assert eff.efficiency("panel") < eff.efficiency("qr_leaf", 64)
        assert eff.efficiency("panel") < eff.efficiency("update", 64)

    def test_everything_below_gemm(self):
        eff = KernelEfficiency()
        for kernel in ("qr_leaf", "qr_combine", "panel", "update", "reduce_op", "generic"):
            assert eff.efficiency(kernel, 512) <= 1.0

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ConfigurationError):
            KernelEfficiency().efficiency("fft", 64)

    def test_missing_n_uses_midcurve_default(self):
        eff = KernelEfficiency()
        assert 0.0 < eff.efficiency("qr_leaf", None) < 1.0


class TestKernelRateModel:
    def test_time_is_flops_over_rate(self):
        model = KernelRateModel(processor=ProcessorSpec("p", 8.0, 2.0))
        assert model.time(4e9, kernel="gemm") == pytest.approx(2.0)

    def test_zero_flops_zero_time(self):
        assert KernelRateModel().time(0.0) == 0.0

    def test_negative_flops_rejected(self):
        with pytest.raises(ConfigurationError):
            KernelRateModel().time(-1.0)

    def test_processes_divide_time(self):
        model = KernelRateModel()
        assert model.time(1e9, processes=4) == pytest.approx(model.time(1e9) / 4)

    def test_practical_peak_matches_paper(self):
        # 256 processes at 3.67 Gflop/s each: about 940 Gflop/s (paper §V-B).
        model = KernelRateModel(processor=ProcessorSpec("opteron", 10.4, 3.67))
        assert model.practical_peak_gflops(256) == pytest.approx(939.5, rel=1e-3)


class TestTrace:
    def test_message_counters(self):
        trace = Trace(4)
        trace.record_message(0, 1, 100, LinkClass.INTRA_CLUSTER)
        trace.record_message(0, 2, 50, LinkClass.INTER_CLUSTER)
        trace.record_message(3, 2, 50, LinkClass.INTER_CLUSTER)
        assert trace.message_count() == 3
        assert trace.message_count(LinkClass.INTER_CLUSTER) == 2
        assert trace.bytes_sent() == 200
        summary = trace.summary()
        assert summary.inter_cluster_messages == 2
        assert summary.messages_per_rank_max == 2  # rank 0 and rank 2 both touch 2
        assert summary.inter_cluster_messages_per_rank_max == 2

    def test_self_messages_are_free(self):
        trace = Trace(2)
        trace.record_message(0, 0, 1000, LinkClass.SELF)
        assert trace.message_count() == 0

    def test_flop_accounting(self):
        trace = Trace(2)
        trace.record_flops(0, 100.0, "qr_leaf")
        trace.record_flops(1, 300.0, "qr_leaf")
        trace.record_flops(1, 50.0, "panel")
        assert trace.flops() == 450.0
        assert trace.flops(1) == 350.0
        summary = trace.summary()
        assert summary.flops_per_rank_max == 350.0
        assert summary.flops_by_kernel["qr_leaf"] == 400.0

    def test_non_positive_flops_ignored(self):
        trace = Trace(1)
        trace.record_flops(0, 0.0)
        trace.record_flops(0, -5.0)
        assert trace.flops() == 0.0

    def test_record_messages_flag_keeps_records(self):
        trace = Trace(2, record_messages=True)
        trace.record_message(0, 1, 8, LinkClass.INTRA_NODE, tag="t")
        assert len(trace.messages) == 1
        assert trace.messages[0].tag == "t"

    def test_reset(self):
        trace = Trace(2, record_messages=True)
        trace.record_message(0, 1, 8, LinkClass.INTRA_NODE)
        trace.record_flops(0, 10.0)
        trace.reset()
        assert trace.message_count() == 0
        assert trace.flops() == 0.0
        assert trace.messages == []
