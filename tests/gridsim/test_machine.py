"""Tests for the machine model (processors, nodes, clusters, grids)."""

from __future__ import annotations

import pytest

from repro.exceptions import TopologyError
from repro.gridsim.machine import ClusterSpec, GridSpec, NodeSpec, ProcessorSpec


def _grid():
    node = NodeSpec(processor=ProcessorSpec("cpu", 8.0, 3.67), processes_per_node=2)
    return GridSpec(
        "g",
        (
            ClusterSpec("alpha", 4, node),
            ClusterSpec("beta", 2, node),
        ),
    )


class TestProcessor:
    def test_rates(self):
        p = ProcessorSpec("cpu", 8.0, 3.67)
        assert p.dgemm_flops_per_s == pytest.approx(3.67e9)

    def test_invalid_rate(self):
        with pytest.raises(TopologyError):
            ProcessorSpec("cpu", 0.0, 1.0)


class TestNodeCluster:
    def test_node_aggregate_rate(self):
        node = NodeSpec(processor=ProcessorSpec("cpu", 8.0, 3.0), processes_per_node=2)
        assert node.dgemm_gflops == pytest.approx(6.0)

    def test_node_needs_processes(self):
        with pytest.raises(TopologyError):
            NodeSpec(processes_per_node=0)

    def test_cluster_process_count(self):
        node = NodeSpec(processes_per_node=2)
        cluster = ClusterSpec("c", 5, node)
        assert cluster.n_processes == 10

    def test_cluster_needs_nodes(self):
        with pytest.raises(TopologyError):
            ClusterSpec("c", 0)


class TestGrid:
    def test_totals(self):
        grid = _grid()
        assert grid.n_clusters == 2
        assert grid.n_processes == 12
        assert grid.dgemm_gflops == pytest.approx(12 * 3.67)

    def test_lookup_by_name(self):
        grid = _grid()
        assert grid.cluster("beta").n_nodes == 2
        assert grid.cluster_index("beta") == 1

    def test_unknown_cluster(self):
        with pytest.raises(TopologyError):
            _grid().cluster("gamma")

    def test_duplicate_names_rejected(self):
        node = NodeSpec()
        with pytest.raises(TopologyError):
            GridSpec("g", (ClusterSpec("a", 1, node), ClusterSpec("a", 1, node)))

    def test_empty_grid_rejected(self):
        with pytest.raises(TopologyError):
            GridSpec("g", tuple())

    def test_subset_preserves_order(self):
        sub = _grid().subset(["beta"])
        assert sub.cluster_names == ("beta",)
        assert sub.n_processes == 4
