"""Tests for process placement and locality queries."""

from __future__ import annotations

import pytest

from repro.exceptions import PlacementError
from repro.gridsim.network import LinkClass
from repro.gridsim.topology import ProcessLocation, ProcessPlacement, block_placement, round_robin_placement

from tests.conftest import make_grid, make_network


class TestBlockPlacement:
    def test_counts_and_order(self):
        grid = make_grid(2, 2, 2)
        placement = block_placement(grid)
        assert placement.size == 8
        # First four ranks on cluster 0, next four on cluster 1.
        assert placement.cluster_of(0) == "site0"
        assert placement.cluster_of(3) == "site0"
        assert placement.cluster_of(4) == "site1"

    def test_partial_reservation(self):
        grid = make_grid(2, 4, 2)
        placement = block_placement(grid, nodes_per_cluster=2, processes_per_node=1)
        assert placement.size == 4
        assert placement.ranks_of_cluster("site0") == [0, 1]

    def test_cluster_subset(self):
        grid = make_grid(3, 2, 2)
        placement = block_placement(grid, clusters=["site2"])
        assert placement.clusters_used() == ["site2"]

    def test_over_reservation_rejected(self):
        grid = make_grid(1, 2, 2)
        with pytest.raises(PlacementError):
            block_placement(grid, nodes_per_cluster=3)
        with pytest.raises(PlacementError):
            block_placement(grid, processes_per_node=3)


class TestRoundRobinPlacement:
    def test_alternates_clusters(self):
        grid = make_grid(2, 2, 2)
        placement = round_robin_placement(grid, 6)
        assert placement.cluster_of(0) == "site0"
        assert placement.cluster_of(1) == "site1"
        assert placement.cluster_of(2) == "site0"

    def test_capacity_exceeded(self):
        grid = make_grid(1, 1, 1)
        with pytest.raises(PlacementError):
            round_robin_placement(grid, 3)


class TestLocalityQueries:
    def test_same_node_and_cluster(self):
        grid = make_grid(2, 2, 2)
        placement = block_placement(grid)
        assert placement.same_node(0, 1)
        assert not placement.same_node(0, 2)
        assert placement.same_cluster(0, 3)
        assert not placement.same_cluster(0, 4)

    def test_link_class(self):
        grid = make_grid(2, 2, 2)
        placement = block_placement(grid)
        net = make_network()
        assert placement.link_class(net, 0, 0) is LinkClass.SELF
        assert placement.link_class(net, 0, 1) is LinkClass.INTRA_NODE
        assert placement.link_class(net, 0, 2) is LinkClass.INTRA_CLUSTER
        assert placement.link_class(net, 0, 4) is LinkClass.INTER_CLUSTER

    def test_transfer_time_self_is_zero(self):
        grid = make_grid(1, 1, 2)
        placement = block_placement(grid)
        assert placement.transfer_time(make_network(), 100, 0, 0) == 0.0

    def test_ranks_by_cluster(self):
        grid = make_grid(2, 1, 2)
        placement = block_placement(grid)
        groups = placement.ranks_by_cluster()
        assert groups == {"site0": [0, 1], "site1": [2, 3]}

    def test_rank_out_of_range(self):
        grid = make_grid(1, 1, 2)
        placement = block_placement(grid)
        with pytest.raises(PlacementError):
            placement.location(5)


class TestValidation:
    def test_unknown_cluster_rejected(self):
        grid = make_grid(1, 1, 1)
        with pytest.raises(PlacementError):
            ProcessPlacement(grid=grid, locations=(ProcessLocation("nope", 0, 0),))

    def test_node_out_of_range_rejected(self):
        grid = make_grid(1, 1, 1)
        with pytest.raises(PlacementError):
            ProcessPlacement(grid=grid, locations=(ProcessLocation("site0", 5, 0),))

    def test_slot_out_of_range_rejected(self):
        grid = make_grid(1, 1, 1)
        with pytest.raises(PlacementError):
            ProcessPlacement(grid=grid, locations=(ProcessLocation("site0", 0, 7),))
