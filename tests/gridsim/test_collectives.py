"""Tests for collective tree schedules and their virtual-time simulation."""

from __future__ import annotations

import pytest

from repro.exceptions import TreeError
from repro.gridsim.collectives import (
    TreeSchedule,
    binary_tree,
    flat_tree,
    hierarchical_tree,
    simulate_broadcast,
    simulate_reduce,
)


class TestTreeBuilders:
    def test_flat_tree_structure(self):
        tree = flat_tree(5)
        assert tree.root == 0
        assert tree.children[0] == (1, 2, 3, 4)
        assert tree.depth() == 1

    def test_binary_tree_depth_is_logarithmic(self):
        tree = binary_tree(64)
        assert tree.depth() == 6

    def test_binary_tree_rooted_elsewhere(self):
        tree = binary_tree(8, root=3)
        assert tree.root == 3
        assert tree.parent(3) is None
        # Still spanning: every other position has a parent.
        assert sum(1 for i in range(8) if tree.parent(i) is not None) == 7

    def test_single_participant(self):
        tree = binary_tree(1)
        assert tree.depth() == 0
        assert tree.edges() == []

    def test_hierarchical_tree_inter_group_edges(self):
        groups = [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9, 10, 11]]
        tree = hierarchical_tree(groups)
        cluster_of = {p: gi for gi, g in enumerate(groups) for p in g}
        inter = [
            (c, p) for c, p in tree.edges() if cluster_of[c] != cluster_of[p]
        ]
        # One inter-group edge per non-root group: the paper's optimal count.
        assert len(inter) == 2

    def test_hierarchical_tree_requires_partition(self):
        with pytest.raises(TreeError):
            hierarchical_tree([[0, 1], [3]])

    def test_invalid_trees_rejected(self):
        with pytest.raises(TreeError):
            flat_tree(0)
        with pytest.raises(TreeError):
            binary_tree(4, root=9)
        with pytest.raises(TreeError):
            TreeSchedule(participants=(0, 1), root=0, children=((1,), (0,)))


class TestTreeSchedule:
    def test_parent_child_consistency(self):
        tree = binary_tree(10)
        for child, parent in tree.edges():
            assert tree.parent(child) == parent
            assert child in tree.children[parent]

    def test_edge_count_is_n_minus_one(self):
        for n in (1, 2, 5, 17):
            assert len(binary_tree(n).edges()) == n - 1


class TestSimulateReduce:
    def _unit_edge(self, *_args):
        return 1.0

    def test_sum_reduce_value(self):
        tree = binary_tree(7)
        values = list(range(7))
        result, clocks = simulate_reduce(
            tree, values, [0.0] * 7, self._unit_edge, lambda a, b: (a + b, 0.0)
        )
        assert result == sum(range(7))
        assert max(clocks) == clocks[tree.root]

    def test_flat_tree_serialises_at_root(self):
        # With enough participants the flat tree's root-side serialisation
        # loses to the binary tree's logarithmic depth.
        n = 64
        tree = flat_tree(n)
        _, clocks_flat = simulate_reduce(
            tree, [1] * n, [0.0] * n, self._unit_edge, lambda a, b: (a, 0.5)
        )
        btree = binary_tree(n)
        _, clocks_bin = simulate_reduce(
            btree, [1] * n, [0.0] * n, self._unit_edge, lambda a, b: (a, 0.5)
        )
        assert clocks_flat[tree.root] > clocks_bin[btree.root]

    def test_combine_cost_accumulates(self):
        tree = flat_tree(3)
        _, clocks = simulate_reduce(
            tree, [0, 0, 0], [0.0] * 3, lambda *_: 0.0, lambda a, b: (a, 2.0)
        )
        assert clocks[tree.root] == pytest.approx(4.0)

    def test_entry_clock_respected(self):
        tree = binary_tree(2)
        _, clocks = simulate_reduce(
            tree, [0, 0], [0.0, 10.0], self._unit_edge, lambda a, b: (a, 0.0)
        )
        assert clocks[tree.root] == pytest.approx(11.0)

    def test_size_mismatch_rejected(self):
        with pytest.raises(TreeError):
            simulate_reduce(binary_tree(3), [1, 2], [0.0, 0.0], self._unit_edge, lambda a, b: (a, 0))


class TestSimulateBroadcast:
    def test_all_receive_value(self):
        tree = binary_tree(9)
        values, clocks = simulate_broadcast(tree, "payload", [0.0] * 9, lambda *_: 1.0)
        assert values == ["payload"] * 9
        assert min(clocks[i] for i in range(9) if i != tree.root) >= 1.0

    def test_depth_bounds_completion(self):
        tree = binary_tree(16)
        _, clocks = simulate_broadcast(tree, None, [0.0] * 16, lambda *_: 1.0)
        # With sender serialisation, completion <= 2 * depth.
        assert max(clocks) <= 2 * tree.depth() + 1e-9

    def test_root_ready_delays_start(self):
        tree = binary_tree(2)
        _, clocks = simulate_broadcast(tree, None, [0.0, 0.0], lambda *_: 1.0, root_ready=5.0)
        assert clocks[1] == pytest.approx(6.0)

    def test_clock_size_mismatch(self):
        with pytest.raises(TreeError):
            simulate_broadcast(binary_tree(3), None, [0.0], lambda *_: 0.0)
