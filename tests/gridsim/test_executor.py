"""Tests for the SPMD executor and virtual-time accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.gridsim.executor import SPMDExecutor, run_spmd


class TestExecution:
    def test_results_in_rank_order(self, platform8):
        res = run_spmd(platform8, lambda ctx: ctx.comm.rank * 2)
        assert res.results == [0, 2, 4, 6, 8, 10, 12, 14]

    def test_extra_arguments_forwarded(self, platform4_single_site):
        def prog(ctx, offset, scale=1):
            return ctx.comm.rank * scale + offset

        res = run_spmd(platform4_single_site, prog, 10, scale=100)
        assert res.results == [10, 110, 210, 310]

    def test_rank_context_location(self, platform8):
        def prog(ctx):
            return (ctx.cluster, ctx.location.node, ctx.location.slot)

        res = run_spmd(platform8, prog)
        assert res.results[0] == ("site0", 0, 0)
        assert res.results[7] == ("site1", 1, 1)

    def test_makespan_is_max_clock(self, platform4_single_site):
        def prog(ctx):
            ctx.compute(1e9 * (ctx.comm.rank + 1), kernel="gemm")
            return ctx.clock()

        res = run_spmd(platform4_single_site, prog)
        assert res.makespan == pytest.approx(max(res.results))
        assert res.makespan == pytest.approx(res.clocks and max(res.clocks))

    def test_wall_clock_does_not_leak_into_virtual_time(self, platform4_single_site):
        def prog(ctx):
            # Significant *real* numpy work, no ctx.compute charge.
            a = np.random.default_rng(0).standard_normal((400, 400))
            _ = a @ a
            return ctx.clock()

        res = run_spmd(platform4_single_site, prog)
        assert res.makespan == 0.0

    def test_subset_of_ranks(self, platform8):
        executor = SPMDExecutor(platform8)
        res = executor.run(lambda ctx: ctx.comm.size, ranks=[0, 1, 2])
        assert res.results == [3, 3, 3]

    def test_result_of_maps_world_to_local(self, platform8):
        """Regression: ``result_of`` used to index by world rank even though
        ``results`` is stored by local index, returning the wrong rank's value
        (or raising IndexError) for subset runs over high world ranks."""
        executor = SPMDExecutor(platform8)
        res = executor.run(lambda ctx: ctx.rank * 10, ranks=[5, 6, 7])
        assert res.ranks == (5, 6, 7)
        assert res.result_of(5) == 50
        assert res.result_of(7) == 70
        with pytest.raises(KeyError, match="world rank 0"):
            res.result_of(0)

    def test_result_of_full_run(self, platform8):
        res = run_spmd(platform8, lambda ctx: ctx.rank + 100)
        for rank in range(platform8.n_processes):
            assert res.result_of(rank) == rank + 100


class TestEventRetention:
    @staticmethod
    def _prog(ctx):
        ctx.compute(1e6, kernel="gemm")
        if ctx.comm.rank == 0:
            ctx.comm.send(b"x", dest=1)
        elif ctx.comm.rank == 1:
            yield from ctx.comm.recv(source=0)

    def test_non_recording_run_keeps_no_events(self, platform4_single_site, monkeypatch):
        """``record_messages=False`` must not accumulate (nor copy) an event
        stream: the trace's list stays empty and the result shares no state."""
        from repro.gridsim import trace as trace_mod

        appended = []
        orig_init = trace_mod.Trace.__init__

        def spy_init(self, *args, **kwargs):
            orig_init(self, *args, **kwargs)
            appended.append(self)

        monkeypatch.setattr(trace_mod.Trace, "__init__", spy_init)
        res = run_spmd(platform4_single_site, self._prog)
        assert res.events == []
        assert len(appended) == 1
        assert appended[0].events == []  # never appended, not merely not copied
        assert res.trace.total_messages == 1  # counters still maintained

    def test_recording_run_hands_over_the_stream(self, platform4_single_site):
        res = run_spmd(platform4_single_site, self._prog, record_messages=True)
        kinds = [event[0] for event in res.events]
        assert "message" in kinds and "flops" in kinds


class TestComputeCharging:
    def test_compute_uses_kernel_rate(self, platform4_single_site):
        def prog(ctx):
            ctx.compute(3.67e9, kernel="gemm")
            return ctx.clock()

        res = run_spmd(platform4_single_site, prog)
        assert res.results[0] == pytest.approx(1.0)

    def test_kernel_efficiency_ordering(self, platform4_single_site):
        def prog(ctx):
            ctx.compute(1e9, kernel="panel", n=64)
            panel_time = ctx.clock()
            ctx.compute(1e9, kernel="gemm")
            gemm_time = ctx.clock() - panel_time
            return panel_time, gemm_time

        res = run_spmd(platform4_single_site, prog)
        panel_time, gemm_time = res.results[0]
        assert panel_time > gemm_time  # panel kernels are far below DGEMM speed

    def test_flops_recorded_in_trace(self, platform4_single_site):
        def prog(ctx):
            ctx.compute(5e8, kernel="qr_leaf", n=32)

        res = run_spmd(platform4_single_site, prog)
        assert res.trace.flops_by_kernel["qr_leaf"] == pytest.approx(4 * 5e8)
        assert res.trace.flops_per_rank_max == pytest.approx(5e8)

    def test_unknown_kernel_rejected(self, platform4_single_site):
        def prog(ctx):
            ctx.compute(1.0, kernel="not-a-kernel")

        from repro.exceptions import SimulationError

        with pytest.raises(SimulationError):
            run_spmd(platform4_single_site, prog)

    def test_negative_flops_rejected(self, platform4_single_site):
        from repro.exceptions import SimulationError

        with pytest.raises(SimulationError):
            run_spmd(platform4_single_site, lambda ctx: ctx.compute(-5.0))
