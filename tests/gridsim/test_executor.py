"""Tests for the SPMD executor and virtual-time accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.gridsim.executor import SPMDExecutor, run_spmd


class TestExecution:
    def test_results_in_rank_order(self, platform8):
        res = run_spmd(platform8, lambda ctx: ctx.comm.rank * 2)
        assert res.results == [0, 2, 4, 6, 8, 10, 12, 14]

    def test_extra_arguments_forwarded(self, platform4_single_site):
        def prog(ctx, offset, scale=1):
            return ctx.comm.rank * scale + offset

        res = run_spmd(platform4_single_site, prog, 10, scale=100)
        assert res.results == [10, 110, 210, 310]

    def test_rank_context_location(self, platform8):
        def prog(ctx):
            return (ctx.cluster, ctx.location.node, ctx.location.slot)

        res = run_spmd(platform8, prog)
        assert res.results[0] == ("site0", 0, 0)
        assert res.results[7] == ("site1", 1, 1)

    def test_makespan_is_max_clock(self, platform4_single_site):
        def prog(ctx):
            ctx.compute(1e9 * (ctx.comm.rank + 1), kernel="gemm")
            return ctx.clock()

        res = run_spmd(platform4_single_site, prog)
        assert res.makespan == pytest.approx(max(res.results))
        assert res.makespan == pytest.approx(res.clocks and max(res.clocks))

    def test_wall_clock_does_not_leak_into_virtual_time(self, platform4_single_site):
        def prog(ctx):
            # Significant *real* numpy work, no ctx.compute charge.
            a = np.random.default_rng(0).standard_normal((400, 400))
            _ = a @ a
            return ctx.clock()

        res = run_spmd(platform4_single_site, prog)
        assert res.makespan == 0.0

    def test_subset_of_ranks(self, platform8):
        executor = SPMDExecutor(platform8)
        res = executor.run(lambda ctx: ctx.comm.size, ranks=[0, 1, 2])
        assert res.results == [3, 3, 3]


class TestComputeCharging:
    def test_compute_uses_kernel_rate(self, platform4_single_site):
        def prog(ctx):
            ctx.compute(3.67e9, kernel="gemm")
            return ctx.clock()

        res = run_spmd(platform4_single_site, prog)
        assert res.results[0] == pytest.approx(1.0)

    def test_kernel_efficiency_ordering(self, platform4_single_site):
        def prog(ctx):
            ctx.compute(1e9, kernel="panel", n=64)
            panel_time = ctx.clock()
            ctx.compute(1e9, kernel="gemm")
            gemm_time = ctx.clock() - panel_time
            return panel_time, gemm_time

        res = run_spmd(platform4_single_site, prog)
        panel_time, gemm_time = res.results[0]
        assert panel_time > gemm_time  # panel kernels are far below DGEMM speed

    def test_flops_recorded_in_trace(self, platform4_single_site):
        def prog(ctx):
            ctx.compute(5e8, kernel="qr_leaf", n=32)

        res = run_spmd(platform4_single_site, prog)
        assert res.trace.flops_by_kernel["qr_leaf"] == pytest.approx(4 * 5e8)
        assert res.trace.flops_per_rank_max == pytest.approx(5e8)

    def test_unknown_kernel_rejected(self, platform4_single_site):
        def prog(ctx):
            ctx.compute(1.0, kernel="not-a-kernel")

        from repro.exceptions import SimulationError

        with pytest.raises(SimulationError):
            run_spmd(platform4_single_site, prog)

    def test_negative_flops_rejected(self, platform4_single_site):
        from repro.exceptions import SimulationError

        with pytest.raises(SimulationError):
            run_spmd(platform4_single_site, lambda ctx: ctx.compute(-5.0))
