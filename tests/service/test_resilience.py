"""Failure-path tests for the service tier: batch isolation, client retry,
degraded escalation.

The happy paths live in ``test_server.py`` and ``test_policy.py``; this
module injects faults — a spec whose simulation raises, a server that is
down or drops connections, an unavailable simulation tier — and checks
that each failure stays contained to the query that owns it.
"""

from __future__ import annotations

import asyncio
import socket

import pytest

from repro.exceptions import (
    ConfigurationError,
    ServiceUnavailableError,
    SimulationError,
)
from repro.experiments.grid5000 import Grid5000Settings
from repro.experiments.runner import ExperimentRunner, PointSpec
from repro.service.cache import ResultCache
from repro.service.policy import EscalationPolicy
from repro.service.server import (
    SimulationService,
    remote_burst,
    remote_query,
    remote_stats,
)

CONFIG = {"algorithm": "tsqr", "m": 65536, "n": 32, "n_sites": 2,
          "domains_per_cluster": 4}
OTHER = {**CONFIG, "domains_per_cluster": 2}


def _small_settings() -> Grid5000Settings:
    return Grid5000Settings(nodes_per_cluster=2, processes_per_node=2)


def _service(tmp_path=None, **kwargs) -> SimulationService:
    store = ResultCache(tmp_path) if tmp_path is not None else None
    runner = ExperimentRunner(_small_settings(), store=store)
    return SimulationService(runner, **kwargs)


def _free_port() -> int:
    """A port nothing is listening on (bound briefly, then released)."""
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


class TestBatchIsolation:
    def test_one_failing_spec_does_not_sink_its_batch_mates(
        self, tmp_path, monkeypatch
    ):
        service = _service(tmp_path, batch_window_s=0.01)
        runner = service.runner
        original = runner.run_point

        def flaky(spec: PointSpec):
            if spec.domains_per_cluster == 2:
                raise SimulationError("injected: this configuration explodes")
            return original(spec)

        monkeypatch.setattr(runner, "run_point", flaky)
        # a failing prefetch must degrade to the serial loop, not kill the batch
        monkeypatch.setattr(
            runner, "prefetch",
            lambda specs: (_ for _ in ()).throw(SimulationError("pool sank")),
        )

        async def scenario():
            return await asyncio.gather(
                service.submit(CONFIG), service.submit(OTHER),
                return_exceptions=True,
            )

        good, bad = asyncio.run(scenario())
        assert good.source == "simulated"
        assert good.point.time_s > 0
        assert isinstance(bad, SimulationError)
        assert "injected" in str(bad)
        assert service.stats.simulations == 1
        assert service.stats.failed_simulations == 1
        assert service.stats.batches == 1  # they really shared one batch
        assert not service._inflight  # the failed key retries cold next time

    def test_failed_key_recovers_once_the_fault_clears(
        self, tmp_path, monkeypatch
    ):
        service = _service(tmp_path)
        runner = service.runner
        original = runner.run_point
        monkeypatch.setattr(
            runner, "run_point",
            lambda spec: (_ for _ in ()).throw(SimulationError("transient")),
        )
        with pytest.raises(SimulationError, match="transient"):
            asyncio.run(service.submit(OTHER))
        monkeypatch.setattr(runner, "run_point", original)
        reply = asyncio.run(service.submit(OTHER))
        assert reply.source == "simulated"

    def test_protocol_reply_isolates_the_failure(self, tmp_path, monkeypatch):
        """Over TCP, the failing config answers ok=False; the server and the
        sibling query are unaffected."""
        service = _service(tmp_path)
        monkeypatch.setattr(
            service.runner, "run_point",
            lambda spec: (_ for _ in ()).throw(SimulationError("boom")),
        )

        async def scenario():
            server = await service.serve("127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            loop = asyncio.get_running_loop()
            try:
                bad = await loop.run_in_executor(
                    None, lambda: remote_query("127.0.0.1", port, OTHER))
                pong = await loop.run_in_executor(
                    None, lambda: remote_stats("127.0.0.1", port))
                return bad, pong
            finally:
                server.close()
                await server.wait_closed()

        bad, stats = asyncio.run(scenario())
        assert bad["ok"] is False
        assert "boom" in bad["error"]
        assert stats["ok"] is True
        assert stats["stats"]["failed_simulations"] == 1


class TestClientRetry:
    def test_unreachable_server_exhausts_the_retry_budget(self):
        port = _free_port()
        with pytest.raises(ServiceUnavailableError, match=r"3 attempt\(s\)"):
            remote_query("127.0.0.1", port, CONFIG, retries=2, timeout_s=0.5)

    def test_zero_retries_means_one_attempt(self):
        port = _free_port()
        with pytest.raises(ServiceUnavailableError, match=r"1 attempt\(s\)"):
            remote_stats("127.0.0.1", port, retries=0, timeout_s=0.5)

    def test_client_knob_validation(self):
        with pytest.raises(ConfigurationError, match="retries"):
            remote_query("127.0.0.1", 1, CONFIG, retries=-1)
        with pytest.raises(ConfigurationError, match="timeout"):
            remote_stats("127.0.0.1", 1, timeout_s=0.0)

    def test_retry_survives_a_dropped_connection(self, tmp_path):
        """First connection is closed without a reply (torn request); the
        client's retry reaches the real handler and succeeds."""
        service = _service(tmp_path)
        connections = {"n": 0}

        async def scenario():
            async def handler(reader, writer):
                connections["n"] += 1
                if connections["n"] == 1:
                    writer.close()
                    await writer.wait_closed()
                    return
                await service.handle_connection(reader, writer)

            server = await asyncio.start_server(handler, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            loop = asyncio.get_running_loop()
            try:
                return await loop.run_in_executor(
                    None,
                    lambda: remote_stats("127.0.0.1", port,
                                         retries=2, timeout_s=5.0),
                )
            finally:
                server.close()
                await server.wait_closed()

        reply = asyncio.run(scenario())
        assert reply["ok"] is True
        assert connections["n"] == 2  # exactly one retry was needed

    def test_error_replies_are_answers_not_retries(self, tmp_path):
        """A ReproError reply means the server answered: the client returns
        it after a single attempt instead of re-asking."""
        service = _service(tmp_path)
        connections = {"n": 0}

        async def scenario():
            async def handler(reader, writer):
                connections["n"] += 1
                await service.handle_connection(reader, writer)

            server = await asyncio.start_server(handler, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            loop = asyncio.get_running_loop()
            bad = {**CONFIG, "algorithm": "nosuch"}
            try:
                return await loop.run_in_executor(
                    None,
                    lambda: remote_query("127.0.0.1", port, bad, retries=3),
                )
            finally:
                server.close()
                await server.wait_closed()

        reply = asyncio.run(scenario())
        assert reply["ok"] is False
        assert connections["n"] == 1


class TestBurstAcceptance:
    def test_32_query_burst_runs_one_simulation(self, tmp_path):
        """Acceptance: 32 identical cold queries -> 1 simulated answer,
        31 single-flight joins, every reply identical."""
        service = _service(tmp_path)

        async def scenario():
            server = await service.serve("127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            loop = asyncio.get_running_loop()
            try:
                return await loop.run_in_executor(
                    None, remote_burst, "127.0.0.1", port, CONFIG, 32)
            finally:
                server.close()
                await server.wait_closed()

        replies = asyncio.run(scenario())
        sources = sorted(r["source"] for r in replies)
        assert sources.count("simulated") == 1
        assert sources.count("single-flight") == 31
        assert service.runner.simulations_run == 1
        assert len({r["time_s"] for r in replies}) == 1


class TestDegradedEscalation:
    def _candidates(self, tiles):
        return [
            PointSpec(algorithm="caqr", m=2048, n=128, n_sites=1, tile_size=t)
            for t in tiles
        ]

    def test_total_outage_degrades_to_the_predictor(self):
        runner = ExperimentRunner(_small_settings())
        runner.run_point = lambda spec: (_ for _ in ()).throw(
            SimulationError("simulation tier down"))
        policy = EscalationPolicy(top_k=2, margin=10.0)
        result = policy.best_config(self._candidates((32, 64)), runner)
        assert result.best is None
        assert result.degraded is True
        assert result.simulated == ()
        assert len(result.errors) == 2
        # the predictor-only answer is still a concrete configuration
        assert result.best_candidate.spec.tile_size in (32, 64)
        assert result.best_candidate is result.ranked[0]

    def test_partial_outage_keeps_the_surviving_best_but_flags_it(self):
        runner = ExperimentRunner(_small_settings())
        original = runner.run_point

        def flaky(spec):
            if spec.tile_size == 32:
                raise SimulationError("this candidate's simulation died")
            return original(spec)

        runner.run_point = flaky
        policy = EscalationPolicy(top_k=2, margin=10.0)
        result = policy.best_config(self._candidates((32, 64)), runner)
        assert result.best is not None
        assert result.best.spec.tile_size == 64
        assert result.degraded is True  # tile 32 was never compared
        assert len(result.errors) == 1
        assert "tile=32" in result.errors[0]
        assert result.best_candidate.spec.tile_size == 64

    def test_healthy_tier_is_not_flagged(self):
        runner = ExperimentRunner(_small_settings())
        policy = EscalationPolicy(top_k=2, margin=10.0)
        result = policy.best_config(self._candidates((32, 64)), runner)
        assert result.degraded is False
        assert result.errors == ()
        assert result.best is not None

    def test_configuration_errors_still_raise(self):
        """An invalid candidate is the caller's bug, not a tier outage."""
        runner = ExperimentRunner(_small_settings())
        runner.run_point = lambda spec: (_ for _ in ()).throw(
            ConfigurationError("bad candidate"))
        policy = EscalationPolicy(top_k=1, margin=0.0)
        with pytest.raises(ConfigurationError, match="bad candidate"):
            policy.best_config(self._candidates((32,)), runner)
