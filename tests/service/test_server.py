"""Tests for the async single-flight batched server (repro.service.server)."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.exceptions import ConfigurationError, ReproError
from repro.experiments.grid5000 import Grid5000Settings
from repro.experiments.runner import ExperimentRunner
from repro.service.cache import ResultCache
from repro.service.server import (
    SimulationService,
    remote_burst,
    remote_query,
    remote_stats,
)

CONFIG = {"algorithm": "tsqr", "m": 65536, "n": 32, "n_sites": 2,
          "domains_per_cluster": 4}
OTHER = {**CONFIG, "domains_per_cluster": 2}


def _small_settings() -> Grid5000Settings:
    return Grid5000Settings(nodes_per_cluster=2, processes_per_node=2)


def _service(tmp_path=None, **kwargs) -> SimulationService:
    store = ResultCache(tmp_path) if tmp_path is not None else None
    runner = ExperimentRunner(_small_settings(), store=store)
    return SimulationService(runner, **kwargs)


class TestSubmit:
    def test_cold_then_memory_warm(self, tmp_path):
        service = _service(tmp_path)

        async def scenario():
            first = await service.submit(CONFIG)
            second = await service.submit(CONFIG)
            return first, second

        first, second = asyncio.run(scenario())
        assert first.source == "simulated"
        assert second.source == "memory"
        assert first.key == second.key
        assert first.point.trace == second.point.trace
        assert service.runner.simulations_run == 1

    def test_disk_warm_across_service_instances(self, tmp_path):
        asyncio.run(_service(tmp_path).submit(CONFIG))
        service = _service(tmp_path)
        reply = asyncio.run(service.submit(CONFIG))
        assert reply.source == "disk"
        assert service.runner.simulations_run == 0

    def test_identical_burst_runs_exactly_one_simulation(self, tmp_path):
        service = _service(tmp_path)

        async def scenario():
            return await asyncio.gather(*(service.submit(CONFIG) for _ in range(8)))

        replies = asyncio.run(scenario())
        sources = sorted(r.source for r in replies)
        assert sources.count("simulated") == 1
        assert sources.count("single-flight") == 7
        assert service.runner.simulations_run == 1
        assert service.stats.single_flight_joins == 7
        times = {r.point.time_s for r in replies}
        assert len(times) == 1

    def test_distinct_cold_misses_share_a_batch(self, tmp_path):
        service = _service(tmp_path, batch_window_s=0.01)

        async def scenario():
            return await asyncio.gather(service.submit(CONFIG), service.submit(OTHER))

        replies = asyncio.run(scenario())
        assert {r.source for r in replies} == {"simulated"}
        assert service.stats.largest_batch == 2
        assert service.stats.batches == 1
        assert service.runner.simulations_run == 2

    def test_bad_config_raises_before_any_future_is_created(self):
        service = _service()
        with pytest.raises(ConfigurationError, match="unknown config field"):
            asyncio.run(service.submit({**CONFIG, "tilesize": 8}))
        assert not service._inflight

    def test_negative_batch_window_rejected(self):
        with pytest.raises(ConfigurationError, match="batch_window_s"):
            _service(batch_window_s=-0.1)

    def test_simulation_failure_rejects_the_batch(self, monkeypatch):
        service = _service()

        def boom(specs):
            raise ReproError("engine exploded")

        monkeypatch.setattr(service, "_simulate_batch", boom)
        with pytest.raises(ReproError, match="engine exploded"):
            asyncio.run(service.submit(CONFIG))
        assert not service._inflight  # a failed key retries cold next time

    def test_reply_dict_shape(self, tmp_path):
        reply = asyncio.run(_service(tmp_path).submit(CONFIG))
        payload = reply.as_dict()
        assert payload["ok"] is True
        assert payload["source"] == "simulated"
        assert payload["config"]["algorithm"] == "tsqr"
        assert payload["time_s"] > 0
        assert len(payload["key"]) == 64


class TestProtocol:
    def _roundtrip(self, service, requests):
        """Start the server on an ephemeral port, send requests, stop it."""

        async def scenario():
            server = await service.serve("127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                replies = []
                for request in requests:
                    line = request if isinstance(request, bytes) \
                        else json.dumps(request).encode() + b"\n"
                    writer.write(line)
                    await writer.drain()
                    replies.append(json.loads(await reader.readline()))
                writer.close()
                await writer.wait_closed()
                return replies
            finally:
                server.close()
                await server.wait_closed()

        return asyncio.run(scenario())

    def test_ping(self):
        (reply,) = self._roundtrip(_service(), [{"op": "ping"}])
        assert reply == {"ok": True, "pong": True}

    def test_query_and_stats(self, tmp_path):
        service = _service(tmp_path)
        query = {"op": "query", "config": CONFIG}
        replies = self._roundtrip(service, [query, query, {"op": "stats"}])
        assert replies[0]["ok"] and replies[0]["source"] == "simulated"
        assert replies[1]["source"] == "memory"
        stats = replies[2]["stats"]
        assert stats["queries"] == 2
        assert stats["memory_hits"] == 1
        assert stats["runner_simulations"] == 1
        assert stats["cache"]["stores"] == 1

    def test_stats_reply_carries_service_metrics(self, tmp_path):
        service = _service(tmp_path)
        query = {"op": "query", "config": CONFIG}
        replies = self._roundtrip(service, [query, {"op": "stats"}])
        metrics = replies[1]["stats"]["metrics"]
        # The earlier query left a latency observation and went through the
        # pending queue and a flush batch (the in-flight stats op records
        # its own latency only after building this reply).
        assert metrics["request_latency_s"]["query"]["n"] == 1
        assert metrics["request_latency_s"]["query"]["max"] > 0.0
        assert metrics["queue_depth"]["n"] == 1
        assert metrics["queue_depth"]["max"] == 1
        assert metrics["batch_size"]["n"] == 1
        assert metrics["batch_size"]["max"] == 1

    def test_malformed_and_unknown_requests_answer_errors(self):
        service = _service()
        replies = self._roundtrip(
            service,
            [b"not json at all\n", {"op": "warp"},
             {"op": "query", "config": {"algorithm": "nosuch", "m": 1, "n": 1,
                                        "n_sites": 1}}],
        )
        assert all(r["ok"] is False for r in replies)
        assert "malformed" in replies[0]["error"]
        assert "unknown op" in replies[1]["error"]
        # a ReproError reply keeps the connection usable, the server alive
        (pong,) = self._roundtrip(service, [{"op": "ping"}])
        assert pong["ok"] is True


class TestClientHelpers:
    def test_remote_query_burst_and_stats(self, tmp_path):
        service = _service(tmp_path)

        async def scenario():
            server = await service.serve("127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            loop = asyncio.get_running_loop()
            try:
                # The sync client helpers spin their own event loop; run them
                # on a worker thread so this loop keeps serving.
                burst = await loop.run_in_executor(
                    None, remote_burst, "127.0.0.1", port, CONFIG, 6)
                single = await loop.run_in_executor(
                    None, remote_query, "127.0.0.1", port, CONFIG)
                stats = await loop.run_in_executor(
                    None, remote_stats, "127.0.0.1", port)
                return burst, single, stats
            finally:
                server.close()
                await server.wait_closed()

        burst, single, stats = asyncio.run(scenario())
        sources = sorted(r["source"] for r in burst)
        assert sources.count("simulated") == 1
        assert sources.count("single-flight") == 5
        assert single["source"] == "memory"
        assert stats["stats"]["single_flight_joins"] == 5
        assert service.runner.simulations_run == 1

    def test_burst_size_validated(self):
        with pytest.raises(ConfigurationError, match="burst size"):
            remote_burst("127.0.0.1", 1, CONFIG, 0)
