"""Tests for the canonical configuration keys (repro.service.keys)."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.grid5000 import Grid5000Settings
from repro.experiments.runner import PointSpec
from repro.service import keys as keys_module
from repro.service.keys import (
    ENGINE_SEMANTICS_VERSION,
    canonical_config,
    canonical_spec,
    config_key,
    spec_from_config,
)

TSQR = {"algorithm": "tsqr", "m": 65536, "n": 32, "n_sites": 2, "domains_per_cluster": 8}


class TestSpecFromConfig:
    def test_builds_a_validated_spec(self):
        spec = spec_from_config(TSQR)
        assert spec == PointSpec(
            algorithm="tsqr", m=65536, n=32, n_sites=2, domains_per_cluster=8
        )

    def test_cli_aliases_are_accepted(self):
        spec = spec_from_config(
            {"algorithm": "tsqr", "rows": 65536, "cols": 32, "sites": 2,
             "domains_per_cluster": 8}
        )
        assert spec == spec_from_config(TSQR)

    def test_unknown_field_is_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown config field"):
            spec_from_config({**TSQR, "tilesize": 32})

    def test_alias_collision_is_rejected(self):
        with pytest.raises(ConfigurationError, match="twice"):
            spec_from_config({**TSQR, "rows": 1024})

    def test_dag_only_algorithms_imply_the_dag_runtime(self):
        spec = spec_from_config({"algorithm": "lu", "m": 256, "n": 128, "n_sites": 1,
                                 "tile_size": 64})
        assert spec.runtime == "dag"

    def test_cholesky_is_square_by_definition(self):
        spec = spec_from_config({"algorithm": "cholesky", "n": 256, "n_sites": 1,
                                 "tile_size": 64})
        assert spec.m == spec.n == 256

    def test_invalid_spec_still_fails_validation(self):
        with pytest.raises(ConfigurationError):
            spec_from_config({"algorithm": "nosuch", "m": 100, "n": 10, "n_sites": 1})


class TestCanonicalSpec:
    def test_dag_policy_defaults_are_filled(self):
        spec = spec_from_config({"algorithm": "caqr", "m": 4096, "n": 128,
                                 "n_sites": 2, "tile_size": 32, "runtime": "dag"})
        canon = canonical_spec(spec)
        assert canon.placement == "block"
        assert canon.priority == "critical-path"

    def test_explicit_defaults_and_omission_share_a_key(self):
        implicit = {"algorithm": "caqr", "m": 4096, "n": 128, "n_sites": 2,
                    "tile_size": 32, "runtime": "dag"}
        explicit = {**implicit, "placement": "block", "priority": "critical-path"}
        assert config_key(implicit) == config_key(explicit)

    def test_scalapack_ignores_the_panel_tree(self):
        base = {"algorithm": "scalapack", "m": 65536, "n": 32, "n_sites": 2}
        assert config_key(base) == config_key({**base, "tree_kind": "flat"})

    def test_non_tsqr_ignores_domains_per_cluster(self):
        base = {"algorithm": "scalapack", "m": 65536, "n": 32, "n_sites": 2}
        assert config_key(base) == config_key({**base, "domains_per_cluster": 8})

    def test_tsqr_reads_both_fields(self):
        assert config_key(TSQR) != config_key({**TSQR, "domains_per_cluster": 16})
        assert config_key(TSQR) != config_key({**TSQR, "tree_kind": "binary"})


class TestConfigKey:
    def test_dict_order_invariance(self):
        shuffled = dict(reversed(list(TSQR.items())))
        assert config_key(TSQR) == config_key(shuffled)

    def test_consumed_fields_change_the_key(self):
        assert config_key(TSQR) != config_key({**TSQR, "m": 65537})
        assert config_key(TSQR) != config_key({**TSQR, "algorithm": "scalapack"})
        assert config_key(TSQR) != config_key({**TSQR, "n_sites": 4})

    def test_platform_settings_enter_the_key(self):
        small = Grid5000Settings(nodes_per_cluster=2, processes_per_node=2)
        assert config_key(TSQR, small) != config_key(TSQR, Grid5000Settings())

    def test_engine_semantics_version_enters_the_key(self, monkeypatch):
        before = config_key(TSQR)
        monkeypatch.setattr(keys_module, "ENGINE_SEMANTICS_VERSION", "test-bump.1")
        assert config_key(TSQR) != before

    def test_canonical_config_carries_the_version_tag(self):
        config = canonical_config(TSQR)
        assert config["engine_semantics"] == ENGINE_SEMANTICS_VERSION
        assert config["platform"]["nodes_per_cluster"] == Grid5000Settings().nodes_per_cluster
