"""Tests for the two-level result cache (repro.service.cache)."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.grid5000 import Grid5000Settings
from repro.experiments.runner import ExperimentRunner, PointSpec
from repro.service.cache import ResultCache, point_from_payload, point_to_payload
from repro.service.keys import canonical_spec


@pytest.fixture(scope="module")
def settings() -> Grid5000Settings:
    return Grid5000Settings(nodes_per_cluster=2, processes_per_node=2)


@pytest.fixture(scope="module")
def sample_point(settings):
    """One small simulated point (module-scoped: simulate once, test many)."""
    runner = ExperimentRunner(settings)
    return runner.tsqr_point(65536, 32, 2, 4)


class TestSerialisation:
    def test_payload_round_trip(self, sample_point):
        rebuilt = point_from_payload(point_to_payload(sample_point))
        assert rebuilt.spec == sample_point.spec
        assert rebuilt.gflops == sample_point.gflops
        assert rebuilt.time_s == sample_point.time_s
        assert rebuilt.critical_path_s == sample_point.critical_path_s
        assert rebuilt.trace == sample_point.trace

    def test_payload_is_json_clean(self, sample_point):
        assert json.loads(json.dumps(point_to_payload(sample_point)))


class TestResultCache:
    def test_put_get_round_trip(self, tmp_path, sample_point, settings):
        cache = ResultCache(tmp_path)
        key = cache.key_for(sample_point.spec, settings)
        assert cache.get(key) is None
        cache.put(key, sample_point)
        assert cache.get(key).trace == sample_point.trace

    def test_disk_layout_is_fanned_out(self, tmp_path, sample_point, settings):
        cache = ResultCache(tmp_path)
        key = cache.key_for(sample_point.spec, settings)
        cache.put(key, sample_point)
        path = cache.path_for(key)
        assert path.exists()
        assert path.parent.name == key[:2]

    def test_survives_a_fresh_instance(self, tmp_path, sample_point, settings):
        key = ResultCache(tmp_path).key_for(sample_point.spec, settings)
        ResultCache(tmp_path).put(key, sample_point)
        fresh = ResultCache(tmp_path)
        point, source = fresh.lookup(key)
        assert source == "disk"
        assert point.trace == sample_point.trace
        # the disk hit is promoted into the memory front
        assert fresh.lookup(key)[1] == "memory"

    def test_lru_front_evicts_but_disk_keeps(self, tmp_path, sample_point):
        cache = ResultCache(tmp_path, memory_entries=2)
        for i in range(3):
            cache.put(f"{i:02d}key", sample_point)
        assert len(cache) == 2  # "00key" was evicted from the front...
        point, source = cache.lookup("00key")
        assert source == "disk"  # ...but the disk level still has it
        assert point is not None

    def test_zero_memory_entries_disables_the_front(self, tmp_path, sample_point):
        cache = ResultCache(tmp_path, memory_entries=0)
        cache.put("00key", sample_point)
        assert len(cache) == 0
        assert cache.lookup("00key")[1] == "disk"

    def test_negative_memory_entries_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match=">= 0"):
            ResultCache(tmp_path, memory_entries=-1)

    def test_stale_engine_tag_is_a_miss(self, tmp_path, sample_point, settings):
        cache = ResultCache(tmp_path, memory_entries=0)
        key = cache.key_for(sample_point.spec, settings)
        cache.put(key, sample_point)
        payload = json.loads(cache.path_for(key).read_text())
        payload["engine_semantics"] = "pr0-ancient.0"
        cache.path_for(key).write_text(json.dumps(payload))
        assert cache.get(key) is None
        assert cache.stats.stale_entries == 1

    def test_corrupt_file_is_a_miss(self, tmp_path, sample_point, settings):
        cache = ResultCache(tmp_path, memory_entries=0)
        key = cache.key_for(sample_point.spec, settings)
        cache.put(key, sample_point)
        cache.path_for(key).write_text("{ torn write")
        assert cache.get(key) is None

    def test_corrupt_file_is_quarantined(self, tmp_path, sample_point, settings):
        cache = ResultCache(tmp_path, memory_entries=0)
        key = cache.key_for(sample_point.spec, settings)
        cache.put(key, sample_point)
        path = cache.path_for(key)
        path.write_text("{ torn write")
        assert cache.get(key) is None
        assert cache.stats.corrupt_entries == 1
        # the bad bytes are preserved for a post-mortem, off the lookup path
        quarantined = path.with_suffix(path.suffix + ".corrupt")
        assert not path.exists()
        assert quarantined.read_text() == "{ torn write"
        # the key is now an ordinary miss, so a fresh put repairs the entry
        assert cache.get(key) is None
        assert cache.stats.corrupt_entries == 1
        cache.put(key, sample_point)
        assert cache.get(key).trace == sample_point.trace

    def test_non_object_json_is_quarantined(self, tmp_path, sample_point,
                                            settings):
        cache = ResultCache(tmp_path, memory_entries=0)
        key = cache.key_for(sample_point.spec, settings)
        cache.put(key, sample_point)
        cache.path_for(key).write_text(json.dumps([1, 2, 3]))
        assert cache.get(key) is None
        assert cache.stats.corrupt_entries == 1

    def test_stats_count_every_level(self, tmp_path, sample_point, settings):
        cache = ResultCache(tmp_path)
        key = cache.key_for(sample_point.spec, settings)
        cache.get(key)  # miss
        cache.put(key, sample_point)  # store
        cache.get(key)  # memory hit
        cache.clear_memory()
        cache.get(key)  # disk hit
        stats = cache.stats.as_dict()
        assert stats == {"memory_hits": 1, "disk_hits": 1, "misses": 1,
                         "stores": 1, "stale_entries": 0, "corrupt_entries": 0}
        assert cache.stats.hits == 2

    def test_put_spec_stores_the_canonical_spec(self, tmp_path, settings):
        runner = ExperimentRunner(settings)
        spec = PointSpec(algorithm="caqr", m=512, n=128, n_sites=1,
                         tile_size=64, runtime="dag")
        point = runner.run_point(spec)
        cache = ResultCache(tmp_path)
        cache.put_spec(spec, point, settings)
        stored = cache.get_spec(spec, settings)
        assert stored.spec == canonical_spec(spec)
        assert stored.spec.placement == "block"


class TestRunnerIntegration:
    def test_second_runner_simulates_zero_points(self, tmp_path, settings):
        spec = PointSpec(algorithm="tsqr", m=65536, n=32, n_sites=2,
                         domains_per_cluster=4)
        first = ExperimentRunner(settings, store=ResultCache(tmp_path))
        p1 = first.run_point(spec)
        assert first.simulations_run == 1

        second = ExperimentRunner(settings, store=ResultCache(tmp_path))
        p2 = second.run_point(spec)
        assert second.simulations_run == 0
        assert p2.trace == p1.trace
        assert p2.time_s == p1.time_s

    def test_store_spelling_differences_still_hit(self, tmp_path, settings):
        """Canonically equal specs share one stored entry."""
        implicit = PointSpec(algorithm="caqr", m=512, n=128, n_sites=1,
                             tile_size=64, runtime="dag")
        explicit = PointSpec(algorithm="caqr", m=512, n=128, n_sites=1,
                             tile_size=64, runtime="dag",
                             placement="block", priority="critical-path")
        first = ExperimentRunner(settings, store=ResultCache(tmp_path))
        first.run_point(implicit)
        second = ExperimentRunner(settings, store=ResultCache(tmp_path))
        second.run_point(explicit)
        assert first.simulations_run == 1
        assert second.simulations_run == 0

    def test_no_store_still_simulates(self, settings):
        runner = ExperimentRunner(settings)
        spec = PointSpec(algorithm="tsqr", m=65536, n=32, n_sites=2,
                         domains_per_cluster=4)
        runner.run_point(spec)
        runner.run_point(spec)  # in-process memo, not the store
        assert runner.store is None
        assert runner.simulations_run == 1

    def test_prefetch_pulls_warm_points_from_the_store(self, tmp_path, settings):
        specs = [
            PointSpec(algorithm="tsqr", m=65536, n=32, n_sites=2,
                      domains_per_cluster=d)
            for d in (1, 2, 4)
        ]
        first = ExperimentRunner(settings, jobs=2, store=ResultCache(tmp_path))
        first.prefetch(specs)
        assert first.simulations_run == 3

        second = ExperimentRunner(settings, jobs=2, store=ResultCache(tmp_path))
        second.prefetch(specs)
        assert second.simulations_run == 0
        for spec in specs:
            assert second.run_point(spec).trace == first.run_point(spec).trace
        assert second.simulations_run == 0
