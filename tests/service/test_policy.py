"""Tests for the tiered best-config escalation policy (repro.service.policy)."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.grid5000 import Grid5000Settings
from repro.experiments.runner import ExperimentRunner, PointSpec
from repro.service.policy import (
    EscalationPolicy,
    RankedCandidate,
    machine_for,
    predict_spec,
    predicted_time,
    rank_candidates,
)


@pytest.fixture(scope="module")
def settings() -> Grid5000Settings:
    return Grid5000Settings(nodes_per_cluster=2, processes_per_node=2)


def _caqr_candidates(tiles, settings) -> list[PointSpec]:
    return [
        PointSpec(algorithm="caqr", m=2048, n=128, n_sites=1, tile_size=t)
        for t in tiles
    ]


class TestPredictor:
    @pytest.mark.parametrize(
        "spec",
        [
            PointSpec(algorithm="tsqr", m=65536, n=32, n_sites=2,
                      domains_per_cluster=4),
            PointSpec(algorithm="scalapack", m=65536, n=32, n_sites=2),
            PointSpec(algorithm="caqr", m=2048, n=128, n_sites=1, tile_size=64),
            PointSpec(algorithm="caqr", m=2048, n=128, n_sites=1, tile_size=64,
                      runtime="dag"),
            PointSpec(algorithm="cholesky", m=512, n=512, n_sites=1, tile_size=64,
                      runtime="dag"),
            PointSpec(algorithm="lu", m=512, n=256, n_sites=1, tile_size=64,
                      runtime="dag"),
        ],
        ids=lambda s: f"{s.algorithm}-{s.runtime}",
    )
    def test_every_algorithm_predicts_a_positive_time(self, spec, settings):
        prediction = predict_spec(spec, settings)
        assert prediction.time_s > 0
        assert predicted_time(spec, settings) == prediction.time_s

    def test_multi_site_pays_wide_area_constants(self, settings):
        one = PointSpec(algorithm="tsqr", m=65536, n=32, n_sites=1,
                        domains_per_cluster=4)
        four = PointSpec(algorithm="tsqr", m=65536, n=32, n_sites=4,
                         domains_per_cluster=4)
        assert machine_for(four, settings).latency_s > machine_for(one, settings).latency_s
        assert (machine_for(four, settings).inverse_bandwidth_s_per_double
                > machine_for(one, settings).inverse_bandwidth_s_per_double)


class TestRanking:
    def test_sorted_fastest_first(self, settings):
        ranked = rank_candidates(_caqr_candidates((16, 32, 64), settings), settings)
        times = [c.predicted_s for c in ranked]
        assert times == sorted(times)

    def test_empty_candidate_list_rejected(self, settings):
        with pytest.raises(ConfigurationError, match="at least one"):
            rank_candidates([], settings)


class TestEscalationPolicy:
    def test_knob_validation(self):
        with pytest.raises(ConfigurationError, match="top_k"):
            EscalationPolicy(top_k=0)
        with pytest.raises(ConfigurationError, match="margin"):
            EscalationPolicy(margin=-0.1)

    def test_shortlist_is_margin_band_then_top_k(self):
        spec = PointSpec(algorithm="tsqr", m=65536, n=32, n_sites=1,
                         domains_per_cluster=4)
        ranked = [RankedCandidate(spec, t) for t in (1.0, 1.2, 1.4, 2.0, 9.0)]
        # margin 0.5 -> cutoff 1.5 rules out 2.0 and 9.0; top_k truncates
        assert [c.predicted_s for c in EscalationPolicy(top_k=3, margin=0.5)
                .shortlist(ranked)] == [1.0, 1.2, 1.4]
        assert [c.predicted_s for c in EscalationPolicy(top_k=2, margin=0.5)
                .shortlist(ranked)] == [1.0, 1.2]
        # margin 0 keeps only the predicted best
        assert [c.predicted_s for c in EscalationPolicy(top_k=3, margin=0.0)
                .shortlist(ranked)] == [1.0]

    def test_matches_exhaustive_simulation_on_the_pinned_sweep(self, settings):
        """Acceptance: the policy answer equals brute force, at <= top_k sims.

        The pinned sweep is the CLI's default best-tile candidate set on the
        reduced platform.  Exhaustive simulation of all candidates is the
        ground truth; the policy must return the same best config while
        escalating at most ``top_k`` candidates.
        """
        candidates = _caqr_candidates((16, 32, 64, 128), settings)
        exhaustive_runner = ExperimentRunner(settings)
        exhaustive_best = min(
            (exhaustive_runner.run_point(s) for s in candidates),
            key=lambda p: p.time_s,
        )

        policy = EscalationPolicy(top_k=2, margin=0.5)
        runner = ExperimentRunner(settings)
        result = policy.best_config(candidates, runner)
        assert result.simulations <= policy.top_k
        assert result.simulations < len(candidates)  # it actually pruned
        assert result.best.spec.tile_size == exhaustive_best.spec.tile_size
        assert result.best.time_s == exhaustive_best.time_s

    def test_escalated_points_land_in_the_shared_store(self, settings, tmp_path):
        from repro.service.cache import ResultCache

        runner = ExperimentRunner(settings, store=ResultCache(tmp_path))
        policy = EscalationPolicy(top_k=1, margin=0.0)
        result = policy.best_config(_caqr_candidates((32, 64), settings), runner)
        assert runner.simulations_run == 1
        again = ExperimentRunner(settings, store=ResultCache(tmp_path))
        rerun = policy.best_config(_caqr_candidates((32, 64), settings), again)
        assert again.simulations_run == 0
        assert rerun.best.time_s == result.best.time_s
