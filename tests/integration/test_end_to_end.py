"""Integration tests: the full stack, end to end.

These tests cross module boundaries on purpose: sequential TSQR vs the
distributed QCG-TSQR vs the ScaLAPACK baseline vs LAPACK, the middleware
driving the parallel run, the paper's qualitative claims on a scaled-down
grid, and the agreement between the analytic model and the simulator.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.grid5000 import Grid5000Settings
from repro.experiments.runner import ExperimentRunner
from repro.gridsim import (
    JobProfile,
    KernelRateModel,
    MetaScheduler,
    group_communicators,
    run_spmd,
)
from repro.model.costs import scalapack_costs, tsqr_costs
from repro.model.predictor import MachineParameters, predict_pair
from repro.model.properties import (
    check_monotone_increase,
    check_property1_q_costs_double,
    check_property2_bounded_by_domain_rate,
)
from repro.scalapack import ScaLAPACKConfig, run_scalapack_qr
from repro.tsqr import TSQRConfig, run_parallel_tsqr, tsqr
from repro.util.random_matrices import random_tall_skinny
from repro.util.validation import check_qr, r_factors_match

from tests.conftest import make_grid, make_network


class TestNumericalAgreement:
    """All implementations must produce the same R factor as LAPACK."""

    def test_all_algorithms_agree(self, platform8):
        a = random_tall_skinny(400, 12, seed=42)
        reference = np.linalg.qr(a, mode="r")
        seq = tsqr(a, 8, want_q=True)
        par = run_parallel_tsqr(platform8, TSQRConfig(m=400, n=12, matrix=a, want_q=True))
        scal = run_scalapack_qr(platform8, ScaLAPACKConfig(m=400, n=12, matrix=a, want_q=True))
        for r in (seq.r, par.r, scal.r):
            assert r_factors_match(r, reference)
        check_qr(a, seq.q.explicit(), seq.r)
        check_qr(a, par.q, par.r)
        check_qr(a, scal.q, scal.r)

    def test_parallel_equals_sequential_bitwise_r_shape(self, platform8):
        a = random_tall_skinny(256, 8, seed=43)
        par = run_parallel_tsqr(platform8, TSQRConfig(m=256, n=8, matrix=a))
        assert par.r.shape == (8, 8)
        assert np.allclose(np.tril(par.r, -1), 0.0)


class TestMiddlewareDrivenRun:
    """The §III workflow: JobProfile -> allocation -> group comms -> TSQR."""

    def test_qcg_workflow(self):
        grid = make_grid(2, 2, 2)
        scheduler = MetaScheduler(grid, make_network())
        profile = JobProfile.clusters_of_equal_power(2, 4)
        allocation = scheduler.allocate(profile)
        platform = scheduler.platform(allocation, KernelRateModel())
        a = random_tall_skinny(320, 6, seed=44)

        def prog(ctx):
            comms = yield from group_communicators(ctx.comm, allocation)
            # One domain per group: factor the group's rows with the
            # distributed QR, then combine the two group R factors.
            from repro.scalapack.descriptor import RowBlockDescriptor
            from repro.scalapack.pdgeqrf import pdgeqrf
            from repro.kernels.tskernels import qr_of_stacked_triangles

            group = comms.attributes.group
            rows = slice(group * 160, (group + 1) * 160)
            desc = RowBlockDescriptor(160, 6, comms.group_comm.size)
            start, stop = desc.row_range(comms.group_comm.rank)
            local = np.array(a[rows][start:stop], copy=True)
            fact = yield from pdgeqrf(ctx, comms.group_comm, local)
            if comms.is_leader:
                if comms.leaders_comm.rank == 1:
                    comms.leaders_comm.send(fact.r, dest=0)
                    return None
                other = yield from comms.leaders_comm.recv(source=1)
                return qr_of_stacked_triangles(np.triu(fact.r), np.triu(other), want_q=False).r
            return None

        res = run_spmd(platform, prog)
        final_r = next(r for r in res.results if r is not None)
        assert r_factors_match(final_r, np.linalg.qr(a, mode="r"))
        # Exactly one wide-area message: the leaders' exchange.
        assert res.trace.inter_cluster_messages == 1


class TestPaperClaimsOnScaledDownGrid:
    """The qualitative conclusions of §V on a reduced Grid'5000 reservation."""

    @pytest.fixture(scope="class")
    def runner(self):
        return ExperimentRunner(Grid5000Settings(nodes_per_cluster=4, processes_per_node=2))

    def test_tsqr_beats_scalapack_everywhere(self, runner):
        for m in (2**17, 2**21):
            for sites in (1, 2, 4):
                ts = runner.best_tsqr_point(m, 64, sites, domain_candidates=(8,))
                scal = runner.scalapack_point(m, 64, sites)
                assert ts.gflops > scal.gflops

    def test_tsqr_scales_with_sites_for_tall_matrices(self, runner):
        points = [runner.tsqr_point(2**23, 64, s, 8) for s in (1, 2, 4)]
        speedup = points[2].gflops / points[0].gflops
        assert speedup > 3.0  # paper: "almost 4.0"
        assert points[2].gflops > points[1].gflops > points[0].gflops

    def test_scalapack_speedup_is_limited(self, runner):
        one = runner.scalapack_point(2**23, 64, 1)
        four = runner.scalapack_point(2**23, 64, 4)
        assert four.gflops / one.gflops < 2.5  # paper: hardly surpasses 2.0

    def test_performance_increases_with_m_and_n(self, runner):
        gflops_by_m = [runner.tsqr_point(m, 64, 4, 8).gflops for m in (2**16, 2**19, 2**22)]
        assert check_monotone_increase([1, 2, 3], gflops_by_m).holds
        gflops_by_n = [runner.tsqr_point(2**20, n, 4, 8).gflops for n in (64, 128, 256)]
        assert check_monotone_increase([1, 2, 3], gflops_by_n).holds

    def test_never_exceeds_practical_peak(self, runner):
        peak = runner.platform(4).practical_peak_gflops()
        point = runner.tsqr_point(2**23, 512, 4, 8)
        assert check_property2_bounded_by_domain_rate(point.gflops, peak).holds

    def test_property1_q_costs_double(self, runner):
        r_only = runner.tsqr_point(2**20, 64, 2, 8)
        with_q = runner.run_point(
            type(r_only.spec)(
                algorithm="tsqr", m=2**20, n=64, n_sites=2, domains_per_cluster=8, want_q=True
            )
        )
        assert check_property1_q_costs_double(r_only.time_s, with_q.time_s).holds

    def test_tuned_tree_sends_minimal_wan_messages(self, runner):
        point = runner.tsqr_point(2**20, 64, 4, 8)
        # 4 sites, R-only reduction: exactly 3 inter-cluster messages.
        assert point.inter_cluster_messages == 3

    def test_scalapack_wan_messages_grow_with_n(self, runner):
        narrow = runner.scalapack_point(2**18, 64, 4)
        wide = runner.scalapack_point(2**18, 128, 4)
        assert wide.inter_cluster_messages > narrow.inter_cluster_messages
        assert narrow.inter_cluster_messages > 10  # far more than TSQR's 3


class TestModelAgainstSimulator:
    """Eq. (1) with Table I counts should predict the simulator's ordering."""

    def test_model_and_simulation_agree_on_who_wins(self, platform16):
        m, n = 2**20, 64
        p = platform16.n_processes
        machine = MachineParameters.from_link(
            latency_s=8e-3,
            bandwidth_bytes_per_s=1.125e7,
            domain_gflops=platform16.kernel_model.rate("qr_leaf", n) / 1e9,
        )
        scal_pred, tsqr_pred = predict_pair(m, n, p, machine)
        scal_sim = run_scalapack_qr(platform16, ScaLAPACKConfig(m=m, n=n))
        tsqr_sim = run_parallel_tsqr(platform16, TSQRConfig(m=m, n=n))
        assert (tsqr_pred.time_s < scal_pred.time_s) == (
            tsqr_sim.makespan_s < scal_sim.makespan_s
        )

    def test_measured_message_ratio_tracks_model(self, platform16):
        m, n = 2**18, 64
        p = platform16.n_processes
        scal = run_scalapack_qr(platform16, ScaLAPACKConfig(m=m, n=n))
        ts = run_parallel_tsqr(platform16, TSQRConfig(m=m, n=n))
        model_ratio = scalapack_costs(m, n, p).messages / tsqr_costs(m, n, p).messages
        measured_ratio = (
            scal.trace.messages_per_rank_max / max(ts.trace.messages_per_rank_max, 1)
        )
        # Same order of magnitude: the baseline sends ~2N times more messages.
        assert measured_ratio > model_ratio / 10
