"""Tests for the evaluation harness: platform, workloads, runner, reporting.

The figure sweeps themselves are exercised (at full scale, but with reduced
point counts) by the benchmarks; here we test the harness machinery and a few
cheap evaluation points.
"""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.grid5000 import (
    CLUSTER_NAMES,
    PAPER_LATENCY_MS,
    Grid5000Settings,
    grid5000_grid,
    grid5000_network,
    grid5000_platform,
    site_subsets,
)
from repro.experiments.figures import table2_sweep
from repro.experiments.paper_data import PAPER_QUALITATIVE_CLAIMS, paper_reference
from repro.experiments.report import ascii_series, ascii_table, format_points, write_csv
from repro.experiments.runner import ExperimentRunner, PointSpec
from repro.experiments.workloads import (
    figure67_m_values,
    generate_matrix,
    paper_m_values,
    reduced_m_values,
)


class TestGrid5000Platform:
    def test_grid_matches_paper_clusters(self):
        grid = grid5000_grid()
        assert grid.cluster_names == CLUSTER_NAMES
        assert grid.cluster("orsay").n_nodes == 312
        assert grid.cluster("sophia").n_nodes == 56

    def test_reserved_platform_sizes(self):
        assert grid5000_platform(1).n_processes == 64
        assert grid5000_platform(2).n_processes == 128
        assert grid5000_platform(4).n_processes == 256

    def test_practical_peak_close_to_940(self):
        platform = grid5000_platform(4)
        assert platform.practical_peak_gflops() == pytest.approx(940, rel=0.01)

    def test_theoretical_peak_exceeds_practical(self):
        platform = grid5000_platform(4)
        assert platform.theoretical_peak_gflops() > platform.practical_peak_gflops()

    def test_network_reproduces_table3a(self):
        net = grid5000_network()
        lat = net.latency_matrix_ms(list(CLUSTER_NAMES))
        for (a, b), value in PAPER_LATENCY_MS.items():
            key = (a, b) if (a, b) in lat else (b, a)
            assert lat[key] == pytest.approx(value)

    def test_inter_cluster_latency_two_orders_of_magnitude(self):
        net = grid5000_network()
        lat = net.latency_matrix_ms(list(CLUSTER_NAMES))
        assert lat[("orsay", "toulouse")] / lat[("orsay", "orsay")] > 100

    def test_site_subsets(self):
        assert site_subsets(1) == ["orsay"]
        assert len(site_subsets(4)) == 4
        with pytest.raises(ConfigurationError):
            site_subsets(3)

    def test_settings_knobs_apply(self):
        settings = Grid5000Settings(nodes_per_cluster=2, processes_per_node=1)
        assert grid5000_platform(2, settings).n_processes == 4


class TestWorkloads:
    def test_paper_m_values_respect_caps(self):
        for n in (64, 128, 256, 512):
            values = paper_m_values(n)
            assert all(m * n <= 2**32 and m <= 33_554_432 for m in values)
            assert values == sorted(values)

    def test_sweeps_reach_the_paper_extremes(self):
        assert paper_m_values(64)[-1] == 33_554_432
        assert paper_m_values(128)[-1] == 33_554_432
        assert paper_m_values(512)[-1] == 8_388_608

    def test_reduced_values_are_subset_spanning_range(self):
        full = paper_m_values(64)
        reduced = reduced_m_values(64, points=4)
        assert set(reduced).issubset(full)
        assert reduced[0] == full[0] and reduced[-1] == full[-1]
        assert len(reduced) == 4

    def test_reduced_needs_two_points(self):
        with pytest.raises(ConfigurationError):
            reduced_m_values(64, points=1)

    def test_unknown_n_rejected(self):
        with pytest.raises(ConfigurationError):
            paper_m_values(100)
        with pytest.raises(ConfigurationError):
            figure67_m_values(100)

    def test_generate_matrix(self):
        assert generate_matrix(100, 8).shape == (100, 8)


class TestRunner:
    @pytest.fixture(scope="class")
    def runner(self):
        # A scaled-down reservation keeps these tests fast while exercising
        # the full runner logic (2 clusters x 2 nodes x 2 processes).
        return ExperimentRunner(Grid5000Settings(nodes_per_cluster=2, processes_per_node=2))

    def test_point_specs_validated(self):
        with pytest.raises(ConfigurationError):
            PointSpec(algorithm="magic", m=10, n=5, n_sites=1)
        with pytest.raises(ConfigurationError):
            PointSpec(algorithm="tsqr", m=10, n=5, n_sites=1)

    def test_tsqr_point_runs_and_caches(self, runner):
        point = runner.tsqr_point(2**15, 64, 2, 4)
        again = runner.tsqr_point(2**15, 64, 2, 4)
        assert point is again  # memoised
        assert point.gflops > 0
        assert point.inter_cluster_messages >= 1

    def test_scalapack_point_runs(self, runner):
        point = runner.scalapack_point(2**15, 64, 2)
        assert point.gflops > 0
        assert point.total_messages > 0

    def test_tsqr_beats_scalapack(self, runner):
        ts = runner.tsqr_point(2**18, 64, 2, 4)
        scal = runner.scalapack_point(2**18, 64, 2)
        assert ts.gflops > scal.gflops

    def test_best_tsqr_point_picks_max(self, runner):
        best = runner.best_tsqr_point(2**15, 64, 2, domain_candidates=(2, 4))
        for dpc in (2, 4):
            assert best.gflops >= runner.tsqr_point(2**15, 64, 2, dpc).gflops

    def test_best_over_sites(self, runner):
        best = runner.best_over_sites("tsqr", 2**18, 64, sites=(1, 2), domain_candidates=(4,))
        assert best.spec.n_sites in (1, 2)

    @pytest.mark.parametrize("algorithm", ["tsqr", "scalapack"])
    def test_best_over_sites_forwards_want_q(self, runner, algorithm):
        # Regression: the flag used to be dropped, making a Q-included
        # Fig. 8-style hull impossible to request.
        best = runner.best_over_sites(
            algorithm, 2**16, 64, sites=(1, 2), domain_candidates=(4,), want_q=True
        )
        assert best.spec.want_q is True
        r_only = runner.best_over_sites(
            algorithm, 2**16, 64, sites=(1, 2), domain_candidates=(4,)
        )
        assert r_only.spec.want_q is False
        assert best.time_s > r_only.time_s

    def test_invalid_domains_per_cluster(self, runner):
        with pytest.raises(ConfigurationError):
            runner.tsqr_point(2**15, 64, 2, 3)

    def test_point_rows_are_flat(self, runner):
        row = runner.tsqr_point(2**15, 64, 2, 4).as_row()
        assert row["algorithm"] == "tsqr"
        assert "Gflop/s" in row


class TestTable2Sweep:
    @pytest.fixture(scope="class")
    def runner(self):
        return ExperimentRunner(Grid5000Settings(nodes_per_cluster=2, processes_per_node=2))

    @pytest.fixture(scope="class")
    def rows(self, runner):
        # dpc=4 is one domain per process (the pure TSQR of the paper's
        # Table II); dpc=1 groups 4 processes per domain and exercises the
        # distributed PDORGQR finish of the downward sweep.
        return table2_sweep(
            runner, m=2**16, n=64, n_sites=2, domain_counts=(1, 4)
        )

    def test_row_structure(self, rows):
        assert [row["algorithm"] for row in rows] == ["TSQR", "TSQR", "ScaLAPACK QR2"]
        assert all(row["model msg ratio"] == 2.0 for row in rows)
        assert all(row["model flop ratio"] == 2.0 for row in rows)

    def test_pure_tsqr_row_doubles_exactly(self, rows):
        pure = next(r for r in rows if r["processes/domain"] == 1)
        assert pure["msg ratio"] == pytest.approx(2.0)
        assert pure["volume ratio"] == pytest.approx(2.0)
        assert pure["flop ratio"] == pytest.approx(2.0, rel=1e-3)

    def test_grouped_domain_row_completes_with_q(self, rows):
        grouped = next(r for r in rows if r["processes/domain"] == 4)
        assert grouped["msgs (Q+R)"] > grouped["msgs (R)"]
        assert grouped["flop ratio"] == pytest.approx(2.0, rel=0.1)
        assert grouped["time ratio"] > 1.2


class TestPaperData:
    def test_reference_lookup(self):
        assert paper_reference("fig5", 64, 4) == pytest.approx(95.0)
        assert paper_reference("fig4", 512, 1) == pytest.approx(70.0)
        assert paper_reference("fig5", 64, 3) is None

    def test_qualitative_claims_documented(self):
        assert "tsqr_beats_scalapack" in PAPER_QUALITATIVE_CLAIMS
        assert len(PAPER_QUALITATIVE_CLAIMS) >= 6


class TestReport:
    def test_ascii_table_alignment(self):
        text = ascii_table(["a", "value"], [[1, 2.5], ["xy", 0.000001]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1

    def test_format_points_empty(self):
        assert format_points([]) == "(no results)"

    def test_ascii_series_renders(self):
        text = ascii_series({"tsqr": [(1e5, 10.0), (1e7, 100.0)]}, xlabel="M", ylabel="Gflop/s")
        assert "legend" in text
        assert "Gflop/s" in text

    def test_write_csv_roundtrip(self, tmp_path):
        rows = [{"a": 1, "b": 2.5}, {"a": 3, "b": 4.5}]
        path = write_csv(tmp_path / "out" / "data.csv", rows)
        content = path.read_text().splitlines()
        assert content[0] == "a,b"
        assert len(content) == 3

    def test_write_csv_empty(self, tmp_path):
        path = write_csv(tmp_path / "empty.csv", [])
        assert path.read_text() == ""
