"""Tests for the DAG-CAQR sweep artefact and its runner plumbing."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.figures import dag_caqr_sweep, dag_cholesky_sweep
from repro.experiments.runner import ExperimentRunner, PointSpec

#: Reduced workload: same shape as the paper-scale artefact, CI-sized.
SWEEP = dict(n=128, m_values=(16384,), tile_size=32)


class TestPointSpec:
    def test_dag_points_need_caqr(self):
        with pytest.raises(ConfigurationError, match="DAG runtime"):
            PointSpec(algorithm="scalapack", m=64, n=8, n_sites=1, runtime="dag")

    def test_policies_need_dag_runtime(self):
        with pytest.raises(ConfigurationError, match="placement/priority"):
            PointSpec(
                algorithm="caqr", m=64, n=8, n_sites=1, tile_size=8, priority="fifo"
            )

    def test_unknown_policies_rejected(self):
        with pytest.raises(ConfigurationError, match="placement"):
            PointSpec(
                algorithm="caqr", m=64, n=8, n_sites=1, tile_size=8,
                runtime="dag", placement="striped",
            )
        with pytest.raises(ConfigurationError, match="runtime"):
            PointSpec(algorithm="caqr", m=64, n=8, n_sites=1, tile_size=8, runtime="mpi")

    def test_cholesky_lu_points_are_dag_only(self):
        with pytest.raises(ConfigurationError, match="runtime"):
            PointSpec(algorithm="cholesky", m=64, n=64, n_sites=1, tile_size=8)
        with pytest.raises(ConfigurationError, match="runtime"):
            PointSpec(
                algorithm="lu", m=64, n=32, n_sites=1, tile_size=8, runtime="spmd"
            )
        with pytest.raises(ConfigurationError, match="tile_size"):
            PointSpec(algorithm="cholesky", m=64, n=64, n_sites=1, runtime="dag")
        with pytest.raises(ConfigurationError, match="factor only"):
            PointSpec(
                algorithm="lu", m=64, n=32, n_sites=1, tile_size=8,
                runtime="dag", want_q=True,
            )


class TestSweep:
    def test_rows_record_the_three_inequalities(self):
        rows = dag_caqr_sweep(ExperimentRunner(), **SWEEP)
        assert len(rows) == 3  # one per priority policy
        for row in rows:
            dag = row["DAG makespan (s)"]
            spmd = row["SPMD makespan (s)"]
            cp = row["critical path (s)"]
            assert cp <= dag <= spmd
            assert 0.0 <= row["idle fraction (mean)"] <= 1.0
            assert row["msgs (DAG)"] > 0 and row["msgs (SPMD)"] > 0

    def test_sweep_rows_identical_jobs_1_vs_n(self):
        """Parallel prefetch must be invisible: byte-identical rows."""
        serial = dag_caqr_sweep(ExperimentRunner(jobs=1), **SWEEP)
        parallel = dag_caqr_sweep(ExperimentRunner(jobs=2), **SWEEP)
        assert serial == parallel

    def test_dag_point_carries_critical_path(self):
        runner = ExperimentRunner()
        point = runner.dag_caqr_point(16384, 128, 4, tile_size=32)
        assert point.critical_path_s is not None
        assert 0.0 < point.critical_path_s <= point.time_s
        spmd = runner.caqr_point(16384, 128, 4, tile_size=32)
        assert spmd.critical_path_s is None


class TestCholeskySweep:
    def test_rows_report_exact_model_agreement(self):
        rows = dag_cholesky_sweep(
            ExperimentRunner(), n_values=(1024,), tile_size=128
        )
        assert len(rows) == 3  # one per priority policy
        for row in rows:
            assert row["algorithm"] == "DAG-Cholesky"
            assert row["msg ratio"] == 1.0
            assert row["volume ratio"] == 1.0
            assert row["critical path (s)"] <= row["makespan (s)"]
            assert 0.0 <= row["idle fraction (mean)"] <= 1.0

    def test_cholesky_and_lu_points_run(self):
        runner = ExperimentRunner()
        chol = runner.dag_cholesky_point(512, 2, tile_size=64)
        assert chol.critical_path_s is not None
        assert 0.0 < chol.critical_path_s <= chol.time_s
        lu = runner.dag_lu_point(1024, 512, 2, tile_size=64)
        assert 0.0 < lu.critical_path_s <= lu.time_s
        assert lu.gflops > 0
