"""Tests for the DAG-CAQR sweep artefact and its runner plumbing."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.figures import (
    dag_caqr_sweep,
    dag_cholesky_sweep,
    dag_failures_sweep,
    failure_schedule_pairs,
)
from repro.experiments.runner import ExperimentRunner, PointSpec

#: Reduced workload: same shape as the paper-scale artefact, CI-sized.
SWEEP = dict(n=128, m_values=(16384,), tile_size=32)


class TestPointSpec:
    def test_dag_points_need_caqr(self):
        with pytest.raises(ConfigurationError, match="DAG runtime"):
            PointSpec(algorithm="scalapack", m=64, n=8, n_sites=1, runtime="dag")

    def test_policies_need_dag_runtime(self):
        with pytest.raises(ConfigurationError, match="placement/priority"):
            PointSpec(
                algorithm="caqr", m=64, n=8, n_sites=1, tile_size=8, priority="fifo"
            )

    def test_unknown_policies_rejected(self):
        with pytest.raises(ConfigurationError, match="placement"):
            PointSpec(
                algorithm="caqr", m=64, n=8, n_sites=1, tile_size=8,
                runtime="dag", placement="striped",
            )
        with pytest.raises(ConfigurationError, match="runtime"):
            PointSpec(algorithm="caqr", m=64, n=8, n_sites=1, tile_size=8, runtime="mpi")

    def test_cholesky_lu_points_are_dag_only(self):
        with pytest.raises(ConfigurationError, match="runtime"):
            PointSpec(algorithm="cholesky", m=64, n=64, n_sites=1, tile_size=8)
        with pytest.raises(ConfigurationError, match="runtime"):
            PointSpec(
                algorithm="lu", m=64, n=32, n_sites=1, tile_size=8, runtime="spmd"
            )
        with pytest.raises(ConfigurationError, match="tile_size"):
            PointSpec(algorithm="cholesky", m=64, n=64, n_sites=1, runtime="dag")
        with pytest.raises(ConfigurationError, match="factor only"):
            PointSpec(
                algorithm="lu", m=64, n=32, n_sites=1, tile_size=8,
                runtime="dag", want_q=True,
            )


class TestSweep:
    def test_rows_record_the_three_inequalities(self):
        rows = dag_caqr_sweep(ExperimentRunner(), **SWEEP)
        assert len(rows) == 3  # one per priority policy
        for row in rows:
            dag = row["DAG makespan (s)"]
            spmd = row["SPMD makespan (s)"]
            cp = row["critical path (s)"]
            assert cp <= dag <= spmd
            assert 0.0 <= row["idle fraction (mean)"] <= 1.0
            assert row["msgs (DAG)"] > 0 and row["msgs (SPMD)"] > 0

    def test_sweep_rows_identical_jobs_1_vs_n(self):
        """Parallel prefetch must be invisible: byte-identical rows."""
        serial = dag_caqr_sweep(ExperimentRunner(jobs=1), **SWEEP)
        parallel = dag_caqr_sweep(ExperimentRunner(jobs=2), **SWEEP)
        assert serial == parallel

    def test_dag_point_carries_critical_path(self):
        runner = ExperimentRunner()
        point = runner.dag_caqr_point(16384, 128, 4, tile_size=32)
        assert point.critical_path_s is not None
        assert 0.0 < point.critical_path_s <= point.time_s
        spmd = runner.caqr_point(16384, 128, 4, tile_size=32)
        assert spmd.critical_path_s is None


class TestCholeskySweep:
    def test_rows_report_exact_model_agreement(self):
        rows = dag_cholesky_sweep(
            ExperimentRunner(), n_values=(1024,), tile_size=128
        )
        assert len(rows) == 3  # one per priority policy
        for row in rows:
            assert row["algorithm"] == "DAG-Cholesky"
            assert row["msg ratio"] == 1.0
            assert row["volume ratio"] == 1.0
            assert row["critical path (s)"] <= row["makespan (s)"]
            assert 0.0 <= row["idle fraction (mean)"] <= 1.0

    def test_failures_need_the_dag_runtime(self):
        with pytest.raises(ConfigurationError, match="runtime='dag'"):
            PointSpec(algorithm="tsqr", m=65536, n=32, n_sites=1,
                      domains_per_cluster=4, failures=((0, 0.1),))

    def test_failure_schedule_normalised(self):
        spec = PointSpec(algorithm="cholesky", m=512, n=512, n_sites=1,
                         tile_size=64, runtime="dag",
                         failures=[[2, 0.2], (0, 0.1)])
        assert spec.failures == ((0, 0.1), (2, 0.2))
        empty = PointSpec(algorithm="cholesky", m=512, n=512, n_sites=1,
                          tile_size=64, runtime="dag", failures=())
        assert empty.failures is None  # same simulation, same cache key
        with pytest.raises(ConfigurationError, match="non-negative"):
            PointSpec(algorithm="cholesky", m=512, n=512, n_sites=1,
                      tile_size=64, runtime="dag", failures=((-1, 0.1),))
        with pytest.raises(ConfigurationError, match="non-negative"):
            PointSpec(algorithm="cholesky", m=512, n=512, n_sites=1,
                      tile_size=64, runtime="dag", failures=((0, -0.1),))

    def test_cholesky_and_lu_points_run(self):
        runner = ExperimentRunner()
        chol = runner.dag_cholesky_point(512, 2, tile_size=64)
        assert chol.critical_path_s is not None
        assert 0.0 < chol.critical_path_s <= chol.time_s
        lu = runner.dag_lu_point(1024, 512, 2, tile_size=64)
        assert 0.0 < lu.critical_path_s <= lu.time_s
        assert lu.gflops > 0


class TestFailuresSweep:
    def test_schedule_pairs_are_deterministic_and_in_window(self):
        busy = tuple(1.0 + 0.1 * r for r in range(16))
        pairs = failure_schedule_pairs(4, 16, busy)
        assert pairs == failure_schedule_pairs(4, 16, busy)
        ranks = [r for r, _ in pairs]
        assert len(set(ranks)) == len(ranks)  # stride 7 never repeats a rank
        assert all(0 <= r < 16 for r in ranks)
        # each death sits inside its own rank's busy window, so the
        # deadline is guaranteed to fire at an op entry or compute charge
        for rank, at_time in pairs:
            assert 0.0 < at_time < busy[rank]

    def test_schedule_pairs_idle_rank_dies_at_startup(self):
        busy = [1.0] * 16
        busy[3] = 0.0  # the first stride victim computed nothing
        assert failure_schedule_pairs(1, 16, busy)[0] == (3, 0.0)

    def test_rows_account_for_every_failure(self):
        runner = ExperimentRunner()
        rows = dag_failures_sweep(
            runner, n=1024, tile_size=128, failure_counts=(0, 1, 2)
        )
        assert [row["failures"] for row in rows] == [0, 1, 2]
        baseline = rows[0]
        assert baseline["dead ranks"] == "-"
        assert baseline["overhead (s)"] == 0.0
        assert baseline["tasks re-executed"] == 0
        for row in rows[1:]:
            assert len(row["dead ranks"].split()) == row["failures"]
            assert row["recovery rounds"] >= 1
            assert row["makespan (s)"] >= baseline["makespan (s)"]
            assert row["failure-free (s)"] == baseline["makespan (s)"]
            assert row["tasks re-executed"] >= 0
        # overhead grows (weakly) with the number of deaths on this workload
        overheads = [row["overhead (s)"] for row in rows]
        assert overheads[0] <= overheads[-1]

    def test_no_survivor_rejected(self):
        with pytest.raises(ConfigurationError, match="no survivor"):
            dag_failures_sweep(
                ExperimentRunner(), n=1024, tile_size=128,
                failure_counts=(10**6,),
            )

    def test_sweep_is_reproducible(self):
        kwargs = dict(n=1024, tile_size=128, failure_counts=(1,))
        first = dag_failures_sweep(ExperimentRunner(), **kwargs)
        second = dag_failures_sweep(ExperimentRunner(), **kwargs)
        assert first == second
