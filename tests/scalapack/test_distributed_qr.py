"""Tests for the distributed QR baseline (PDGEQR2 / PDGEQRF / PDORGQR / driver)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, FactorizationError, SimulationError
from repro.gridsim.executor import run_spmd
from repro.scalapack.descriptor import RowBlockDescriptor
from repro.scalapack.driver import ScaLAPACKConfig, run_scalapack_qr, scalapack_qr_program
from repro.scalapack.pdgeqr2 import larft_from_gram, pdgeqr2
from repro.scalapack.pdgeqrf import DistributedQR, pdgeqrf
from repro.scalapack.pdorgqr import pdorgqr
from repro.kernels.householder import geqr2, larft
from repro.util.random_matrices import random_tall_skinny
from repro.util.validation import check_qr, r_factors_match
from repro.virtual.matrix import VirtualMatrix


def _distribute(matrix, comm_size, rank):
    desc = RowBlockDescriptor(matrix.shape[0], matrix.shape[1], comm_size)
    start, stop = desc.row_range(rank)
    return np.array(matrix[start:stop], copy=True), (start, stop)


class TestLarftFromGram:
    def test_matches_direct_larft(self):
        a = random_tall_skinny(30, 6, seed=1)
        fact = geqr2(a)
        direct = larft(fact.v, fact.tau)
        via_gram = larft_from_gram(fact.v.T @ fact.v, fact.tau)
        assert np.allclose(direct, via_gram, atol=1e-12)

    def test_shape_mismatch(self):
        from repro.exceptions import ShapeError

        with pytest.raises(ShapeError):
            larft_from_gram(np.eye(3), np.zeros(2))


class TestPdgeqr2:
    def test_r_matches_lapack(self, platform8):
        a = random_tall_skinny(400, 12, seed=2)

        def prog(ctx):
            local, _ = _distribute(a, ctx.comm.size, ctx.comm.rank)
            fact = yield from pdgeqr2(ctx, ctx.comm, local)
            return fact.r

        res = run_spmd(platform8, prog)
        assert r_factors_match(res.results[0], np.linalg.qr(a, mode="r"))
        assert all(r is None for r in res.results[1:])

    def test_two_allreduces_per_column(self, platform4_single_site):
        n = 6
        a = random_tall_skinny(80, n, seed=3)

        def prog(ctx):
            local, _ = _distribute(a, ctx.comm.size, ctx.comm.rank)
            yield from pdgeqr2(ctx, ctx.comm, local)

        res = run_spmd(platform4_single_site, prog)
        # 2 allreduces per column except a single one for the last column;
        # each binary-tree allreduce over 4 ranks = 3 up + 3 down = 6 messages.
        expected_collectives = 2 * n - 1
        assert res.trace.total_messages == expected_collectives * 6

    def test_rank0_must_hold_enough_rows(self, platform8):
        a = random_tall_skinny(16, 10, seed=4)  # 2 rows per rank < 10 columns

        def prog(ctx):
            local, _ = _distribute(a, ctx.comm.size, ctx.comm.rank)
            yield from pdgeqr2(ctx, ctx.comm, local)

        with pytest.raises(SimulationError):
            run_spmd(platform8, prog)


class TestPdgeqrf:
    @pytest.mark.parametrize("n,nb,nx", [(12, 4, 4), (16, 4, 8), (10, 64, 128)])
    def test_blocked_matches_lapack(self, platform8, n, nb, nx):
        a = random_tall_skinny(480, n, seed=5)

        def prog(ctx):
            local, _ = _distribute(a, ctx.comm.size, ctx.comm.rank)
            fact = yield from pdgeqrf(ctx, ctx.comm, local, nb=nb, nx=nx)
            return fact.r

        res = run_spmd(platform8, prog)
        assert r_factors_match(res.results[0], np.linalg.qr(a, mode="r"))

    def test_blocking_adds_only_few_reductions(self, platform4_single_site):
        # Under the 1-D block-row layout every process takes part in the panel
        # factorization either way, so blocking only adds the two per-panel
        # update reductions (it trades nothing in message count, only in BLAS3
        # locality) — the per-column reductions remain the dominant term, which
        # is exactly the bottleneck the paper identifies.
        a = random_tall_skinny(320, 16, seed=6)

        def prog(ctx, nb, nx):
            local, _ = _distribute(a, ctx.comm.size, ctx.comm.rank)
            yield from pdgeqrf(ctx, ctx.comm, local, nb=nb, nx=nx)

        unblocked = run_spmd(platform4_single_site, prog, 64, 128)
        blocked = run_spmd(platform4_single_site, prog, 4, 4)
        # Three blocked panels (columns 0, 4 and 8): each adds two trailing
        # update reductions but saves the within-panel update of its last
        # column, so the net cost is one extra allreduce per blocked panel.
        n_blocked_panels = 3
        per_allreduce = 6  # 3 up + 3 down messages on 4 ranks
        assert (
            blocked.trace.total_messages
            == unblocked.trace.total_messages + n_blocked_panels * per_allreduce
        )

    def test_invalid_nb(self, platform4_single_site):
        def prog(ctx):
            local = np.zeros((10, 2))
            yield from pdgeqrf(ctx, ctx.comm, local, nb=0)

        with pytest.raises(SimulationError):
            run_spmd(platform4_single_site, prog)


class TestPdorgqr:
    def test_empty_factorization_rejected(self):
        # Regression: the virtual flag used to evaluate to the empty *list*
        # for a panel-less factorization; it is now a bool and the degenerate
        # input is rejected with a clear error before any communication.
        empty = DistributedQR(panels=[], r=None, local_rows=8, n=4, nb=64)
        with pytest.raises(FactorizationError, match="no panels"):
            pdorgqr(None, None, empty, row_start=0)

    def test_c_init_forms_q_times_c(self, platform8):
        # pdorgqr seeded with a coefficient block C must return Q @ C — the
        # contract the TSQR downward sweep relies on.
        n = 8
        a = random_tall_skinny(320, n, seed=11)
        c = np.random.default_rng(12).standard_normal((n, n))

        def prog(ctx, with_c):
            local, (start, _) = _distribute(a, ctx.comm.size, ctx.comm.rank)
            fact = yield from pdgeqrf(ctx, ctx.comm, local)
            if with_c:
                rows = max(0, min(start + fact.local_rows, n) - start)
                c_init = np.array(c[start : start + rows, :], copy=True)
                return (yield from pdorgqr(ctx, ctx.comm, fact, row_start=start, c_init=c_init))
            return (yield from pdorgqr(ctx, ctx.comm, fact, row_start=start))

        q = np.vstack(run_spmd(platform8, prog, False).results)
        qc = np.vstack(run_spmd(platform8, prog, True).results)
        assert np.allclose(qc, q @ c, atol=1e-12)

    def test_c_init_shape_validated(self, platform4_single_site):
        a = random_tall_skinny(64, 4, seed=13)

        def prog(ctx):
            local, (start, _) = _distribute(a, ctx.comm.size, ctx.comm.rank)
            fact = yield from pdgeqrf(ctx, ctx.comm, local)
            return (yield from pdorgqr(ctx, ctx.comm, fact, row_start=start, c_init=np.zeros((1, 7))))

        with pytest.raises(SimulationError, match="does not fit"):
            run_spmd(platform4_single_site, prog)

    def test_virtual_mode_returns_virtual_payload(self, platform4_single_site):
        def prog(ctx):
            desc = RowBlockDescriptor(4096, 16, ctx.comm.size)
            start, stop = desc.row_range(ctx.comm.rank)
            fact = yield from pdgeqrf(ctx, ctx.comm, VirtualMatrix(stop - start, 16))
            return (yield from pdorgqr(ctx, ctx.comm, fact, row_start=start))

        res = run_spmd(platform4_single_site, prog)
        assert all(isinstance(q, VirtualMatrix) for q in res.results)


class TestDriver:
    def test_real_run_r_and_q(self, platform8):
        a = random_tall_skinny(320, 8, seed=7)
        result = run_scalapack_qr(platform8, ScaLAPACKConfig(m=320, n=8, matrix=a, want_q=True))
        assert r_factors_match(result.r, np.linalg.qr(a, mode="r"))
        check_qr(a, result.q, result.r)

    def test_virtual_run_reports_performance(self, platform8):
        result = run_scalapack_qr(platform8, ScaLAPACKConfig(m=2**18, n=64))
        assert result.r is None
        assert result.gflops > 0
        assert result.trace.total_messages > 0

    def test_messages_scale_with_n(self, platform8):
        narrow = run_scalapack_qr(platform8, ScaLAPACKConfig(m=2**18, n=64))
        wide = run_scalapack_qr(platform8, ScaLAPACKConfig(m=2**18, n=128))
        # ScaLAPACK QR2 sends ~2N log(P) messages: doubling N roughly doubles them.
        ratio = wide.trace.total_messages / narrow.trace.total_messages
        assert 1.7 <= ratio <= 2.3

    def test_q_costs_more_messages_and_time(self, platform8):
        # Forming Q adds the block-reflector applications of PDORGQR; our
        # PDORGQR is blocked, so the increase is real but smaller than the
        # unblocked 2x of the paper's Table II model (see EXPERIMENTS.md).
        r_only = run_scalapack_qr(platform8, ScaLAPACKConfig(m=2**18, n=64))
        with_q = run_scalapack_qr(platform8, ScaLAPACKConfig(m=2**18, n=64, want_q=True))
        assert with_q.makespan_s > 1.2 * r_only.makespan_s
        assert with_q.trace.total_messages > r_only.trace.total_messages

    def test_virtual_q_formation(self, platform8):
        result = run_scalapack_qr(platform8, ScaLAPACKConfig(m=2**16, n=32, want_q=True))
        assert result.q is None  # virtual payloads never materialise Q

    def test_wide_matrix_rejected(self):
        with pytest.raises(ConfigurationError):
            ScaLAPACKConfig(m=10, n=20)

    def test_matrix_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            ScaLAPACKConfig(m=100, n=4, matrix=np.zeros((10, 4)))

    def test_program_usable_as_domain_factorization(self, platform4_single_site):
        """The driver program must compose under a sub-communicator (QCG-TSQR usage)."""
        a = random_tall_skinny(120, 6, seed=8)

        def prog(ctx):
            sub = yield from ctx.comm.split(color=ctx.comm.rank % 2)
            desc = RowBlockDescriptor(120, 6, sub.size)
            start, stop = desc.row_range(sub.rank)
            local = np.array(a[start:stop], copy=True)
            fact = yield from pdgeqrf(ctx, sub, local)
            return fact.r

        res = run_spmd(platform4_single_site, prog)
        # Both sub-groups factor the same matrix: both roots agree with LAPACK.
        reference = np.linalg.qr(a, mode="r")
        roots = [r for r in res.results if r is not None]
        assert len(roots) == 2
        for r in roots:
            assert r_factors_match(r, reference)
