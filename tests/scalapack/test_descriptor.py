"""Tests for the distribution descriptors (block-row and 1-D block-cyclic)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DistributionError
from repro.scalapack.descriptor import BlockCyclic1D, RowBlockDescriptor


class TestRowBlockDescriptor:
    def test_ranges_cover_matrix(self):
        desc = RowBlockDescriptor(100, 8, 6)
        stops = [desc.row_range(r) for r in range(6)]
        assert stops[0][0] == 0 and stops[-1][1] == 100
        assert sum(desc.local_rows(r) for r in range(6)) == 100

    def test_owner_and_mapping_roundtrip(self):
        desc = RowBlockDescriptor(50, 4, 3)
        for i in (0, 16, 17, 49):
            owner, local = desc.global_to_local(i)
            assert desc.owner_of_row(i) == owner
            assert desc.local_to_global(owner, local) == i

    def test_out_of_range_row(self):
        with pytest.raises(DistributionError):
            RowBlockDescriptor(10, 2, 2).owner_of_row(10)

    def test_out_of_range_local(self):
        desc = RowBlockDescriptor(10, 2, 2)
        with pytest.raises(DistributionError):
            desc.local_to_global(0, 99)

    def test_invalid_rank(self):
        with pytest.raises(DistributionError):
            RowBlockDescriptor(10, 2, 2).row_range(5)

    def test_invalid_process_count(self):
        with pytest.raises(DistributionError):
            RowBlockDescriptor(10, 2, 0)


class TestBlockCyclic1D:
    def test_owner_pattern(self):
        desc = BlockCyclic1D(n_items=10, nb=2, p=2)
        owners = [desc.owner(g) for g in range(10)]
        assert owners == [0, 0, 1, 1, 0, 0, 1, 1, 0, 0]

    def test_local_count_matches_numroc(self):
        desc = BlockCyclic1D(n_items=23, nb=3, p=4)
        counts = [desc.local_count(r) for r in range(4)]
        assert sum(counts) == 23
        assert counts == [len(desc.local_indices(r)) for r in range(4)]

    def test_global_local_roundtrip(self):
        desc = BlockCyclic1D(n_items=29, nb=4, p=3)
        for g in range(29):
            owner = desc.owner(g)
            local = desc.global_to_local(g)
            assert desc.local_to_global(owner, local) == g

    def test_local_indices_are_sorted_and_disjoint(self):
        desc = BlockCyclic1D(n_items=40, nb=5, p=3)
        all_indices = np.concatenate([desc.local_indices(r) for r in range(3)])
        assert len(np.unique(all_indices)) == 40

    def test_local_to_global_out_of_range(self):
        desc = BlockCyclic1D(n_items=10, nb=2, p=2)
        with pytest.raises(DistributionError):
            desc.local_to_global(0, 50)

    def test_invalid_parameters(self):
        with pytest.raises(DistributionError):
            BlockCyclic1D(10, 0, 2)
        with pytest.raises(DistributionError):
            BlockCyclic1D(10, 2, 0)
        with pytest.raises(DistributionError):
            BlockCyclic1D(-1, 2, 2)
