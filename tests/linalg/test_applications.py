"""Tests for the application layer: block orthogonalization, least squares,
block eigensolver, randomized SVD."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, FactorizationError, ShapeError
from repro.linalg.block_ortho import block_gram_schmidt, orthogonalize_against, orthonormalize
from repro.linalg.eigensolver import ORTHO_SCHEMES, block_subspace_iteration
from repro.linalg.least_squares import lstsq_normal_equations, lstsq_tsqr
from repro.linalg.randomized import randomized_range_finder, randomized_svd
from repro.util.random_matrices import (
    default_rng,
    matrix_with_condition_number,
    random_matrix,
    random_tall_skinny,
)
from repro.util.validation import orthogonality_error


class TestBlockOrtho:
    def test_orthonormalize_full_rank(self):
        block = random_tall_skinny(200, 8, seed=1)
        q, r, rank = orthonormalize(block)
        assert rank == 8
        assert orthogonality_error(q) < 1e-12
        assert np.allclose(q @ r, block, atol=1e-10)

    def test_orthonormalize_detects_rank_deficiency(self):
        block = random_tall_skinny(100, 5, seed=2)
        block[:, 4] = block[:, 0] + block[:, 1]
        _, _, rank = orthonormalize(block)
        assert rank == 4

    def test_orthogonalize_against_removes_components(self):
        basis, _, _ = orthonormalize(random_tall_skinny(150, 4, seed=3))
        block = random_tall_skinny(150, 3, seed=4)
        residual, coeffs = orthogonalize_against(basis, block)
        assert np.linalg.norm(basis.T @ residual) < 1e-10
        assert np.allclose(basis @ coeffs + residual, block, atol=1e-10)

    def test_orthogonalize_against_shape_mismatch(self):
        with pytest.raises(ShapeError):
            orthogonalize_against(np.zeros((10, 2)), np.zeros((11, 2)))

    def test_block_gram_schmidt_extends_basis(self):
        basis, _, _ = orthonormalize(random_tall_skinny(200, 4, seed=5))
        new_block = random_tall_skinny(200, 3, seed=6)
        q_new, coeffs, r_new = block_gram_schmidt(basis, new_block)
        assert orthogonality_error(np.hstack([basis, q_new])) < 1e-11
        reconstructed = basis @ coeffs + q_new @ r_new
        assert np.allclose(reconstructed, new_block, atol=1e-9)

    def test_block_gram_schmidt_without_basis(self):
        block = random_tall_skinny(60, 4, seed=7)
        q_new, coeffs, _ = block_gram_schmidt(None, block)
        assert coeffs.shape == (0, 4)
        assert orthogonality_error(q_new) < 1e-12


class TestLeastSquares:
    def test_matches_numpy_lstsq(self):
        a = random_tall_skinny(500, 12, seed=8)
        x_true = np.arange(1.0, 13.0)
        b = a @ x_true + 1e-3 * default_rng(9).standard_normal(500)
        ours = lstsq_tsqr(a, b)
        reference, *_ = np.linalg.lstsq(a, b, rcond=None)
        assert np.allclose(ours.x, reference, atol=1e-8)

    def test_multiple_right_hand_sides(self):
        a = random_tall_skinny(300, 6, seed=10)
        b = random_matrix(300, 3, seed=11)
        ours = lstsq_tsqr(a, b)
        reference, *_ = np.linalg.lstsq(a, b, rcond=None)
        assert ours.x.shape == (6, 3)
        assert np.allclose(ours.x, reference, atol=1e-8)

    def test_exact_system_has_zero_residual(self):
        a = random_tall_skinny(100, 5, seed=12)
        x_true = np.ones(5)
        result = lstsq_tsqr(a, a @ x_true)
        assert result.residual_norm < 1e-10
        assert np.allclose(result.x, x_true, atol=1e-10)

    def test_more_accurate_than_normal_equations_when_ill_conditioned(self):
        a = matrix_with_condition_number(400, 8, 1e6, seed=13)
        x_true = np.ones(8)
        b = a @ x_true
        tsqr_err = np.linalg.norm(lstsq_tsqr(a, b).x - x_true)
        normal_err = np.linalg.norm(lstsq_normal_equations(a, b).x - x_true)
        assert tsqr_err < normal_err

    def test_rank_deficient_raises(self):
        a = random_tall_skinny(50, 4, seed=14)
        a[:, 3] = a[:, 2]
        with pytest.raises(FactorizationError):
            lstsq_tsqr(a, np.ones(50))

    def test_wide_matrix_rejected(self):
        with pytest.raises(ShapeError):
            lstsq_tsqr(np.zeros((3, 5)), np.zeros(3))

    def test_rhs_shape_mismatch(self):
        with pytest.raises(ShapeError):
            lstsq_tsqr(np.zeros((5, 2)), np.zeros(4))


class TestEigensolver:
    @staticmethod
    def _operator(n=120, seed=15):
        rng = default_rng(seed)
        q, _ = np.linalg.qr(rng.standard_normal((n, n)))
        eigenvalues = np.concatenate([[10.0, 8.0, 6.0, 4.0], rng.uniform(0.0, 1.0, n - 4)])
        return (q * eigenvalues) @ q.T, np.sort(eigenvalues)[::-1]

    def test_finds_dominant_eigenvalues(self):
        a, eigs = self._operator()
        result = block_subspace_iteration(a, a.shape[0], 4, ortho="tsqr", tolerance=1e-9)
        assert result.converged
        assert np.allclose(result.eigenvalues, eigs[:4], atol=1e-6)

    def test_eigenvectors_are_orthonormal(self):
        a, _ = self._operator(seed=16)
        result = block_subspace_iteration(a, a.shape[0], 3, ortho="tsqr")
        assert orthogonality_error(result.eigenvectors) < 1e-8

    def test_matrix_free_operator(self):
        a, eigs = self._operator(seed=17)
        result = block_subspace_iteration(lambda x: a @ x, a.shape[0], 2, ortho="tsqr")
        assert np.allclose(result.eigenvalues[:2], eigs[:2], atol=1e-6)

    @pytest.mark.parametrize("scheme", sorted(ORTHO_SCHEMES))
    def test_all_ortho_schemes_work_on_well_conditioned_problems(self, scheme):
        a, eigs = self._operator(seed=18)
        result = block_subspace_iteration(a, a.shape[0], 2, ortho=scheme, max_iterations=300)
        assert np.allclose(result.eigenvalues[:2], eigs[:2], atol=1e-5)

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ConfigurationError):
            block_subspace_iteration(np.eye(4), 4, 2, ortho="magic")

    def test_invalid_block_size(self):
        with pytest.raises(ShapeError):
            block_subspace_iteration(np.eye(4), 4, 9)

    def test_operator_shape_mismatch(self):
        with pytest.raises(ShapeError):
            block_subspace_iteration(np.eye(3), 4, 2)


class TestRandomizedSVD:
    def test_range_finder_captures_dominant_space(self):
        u = np.linalg.qr(random_matrix(200, 5, seed=19))[0]
        v = np.linalg.qr(random_matrix(50, 5, seed=20))[0]
        a = (u * np.array([100, 50, 20, 10, 5])) @ v.T
        q = randomized_range_finder(a, 5, seed=21)
        # Projection of A onto the found range should capture almost everything.
        assert np.linalg.norm(a - q @ (q.T @ a)) < 1e-8 * np.linalg.norm(a)

    def test_low_rank_matrix_recovered(self):
        rng = default_rng(22)
        a = rng.standard_normal((300, 40)) @ rng.standard_normal((40, 8)) @ rng.standard_normal((8, 60))
        result = randomized_svd(a, rank=8, seed=23)
        assert np.linalg.norm(result.reconstruct() - a) < 1e-8 * np.linalg.norm(a)

    def test_singular_values_match_numpy(self):
        a = random_matrix(120, 30, seed=24)
        result = randomized_svd(a, rank=5, n_power_iterations=3, seed=25)
        reference = np.linalg.svd(a, compute_uv=False)[:5]
        assert np.allclose(result.s, reference, rtol=1e-2)

    def test_invalid_sketch_size(self):
        with pytest.raises(ShapeError):
            randomized_range_finder(random_matrix(10, 5, seed=26), 9)
