"""Tests for distributed CAQR on the simulated grid (repro.programs.caqr)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.model.costs import caqr_costs
from repro.programs.caqr import CAQRConfig, run_parallel_caqr
from repro.util.random_matrices import random_matrix
from repro.util.validation import r_factors_match

TREES = ("flat", "binary", "grid-hierarchical")


class TestConfig:
    def test_rejects_empty_matrix(self):
        with pytest.raises(ConfigurationError, match="positive"):
            CAQRConfig(m=0, n=4)

    def test_rejects_bad_tile_size(self):
        with pytest.raises(ConfigurationError, match="tile size"):
            CAQRConfig(m=8, n=8, tile_size=0)

    def test_rejects_unknown_panel_tree(self):
        with pytest.raises(ConfigurationError, match="unknown panel tree"):
            CAQRConfig(m=8, n=8, panel_tree="fractal")

    def test_rejects_matrix_shape_mismatch(self):
        with pytest.raises(ConfigurationError, match="does not match"):
            CAQRConfig(m=8, n=8, matrix=np.zeros((8, 4)))

    def test_fat_matrices_allowed(self):
        config = CAQRConfig(m=4, n=9)
        assert config.virtual and config.flop_count() > 0


class TestRealPayloads:
    @pytest.mark.parametrize("tree", TREES)
    @pytest.mark.parametrize(
        "m,n,tile",
        [
            (120, 60, 16),   # several ranks, several panels
            (200, 50, 8),    # many tile rows per rank
            (37, 29, 10),    # nothing divides anything
            (40, 80, 16),    # fat matrix
            (10, 6, 64),     # single tile, idle ranks
        ],
    )
    def test_r_matches_lapack(self, platform8, m, n, tile, tree):
        a = random_matrix(m, n, seed=m * 31 + n)
        config = CAQRConfig(m=m, n=n, tile_size=tile, panel_tree=tree, matrix=a)
        result = run_parallel_caqr(platform8, config)
        assert result.r.shape == (min(m, n), n)
        assert r_factors_match(result.r, np.linalg.qr(a, mode="r"))

    def test_single_site_platform(self, platform4_single_site):
        a = random_matrix(90, 45, seed=2)
        result = run_parallel_caqr(
            platform4_single_site,
            CAQRConfig(m=90, n=45, tile_size=12, panel_tree="binary", matrix=a),
        )
        assert r_factors_match(result.r, np.linalg.qr(a, mode="r"))

    def test_idle_ranks_return_empty_blocks(self, platform8):
        # 2 tile rows over 8 ranks: 6 ranks own nothing and must not break
        # the assembly.
        a = random_matrix(20, 12, seed=4)
        result = run_parallel_caqr(
            platform8, CAQRConfig(m=20, n=12, tile_size=10, matrix=a)
        )
        owning = [res for res in result.simulation.results if res.local_rows > 0]
        assert len(owning) == 2
        assert r_factors_match(result.r, np.linalg.qr(a, mode="r"))


class TestVirtualPayloads:
    def test_virtual_run_produces_time_and_counts(self, platform8):
        result = run_parallel_caqr(platform8, CAQRConfig(m=2**14, n=256, tile_size=32))
        assert result.r is None
        assert result.makespan_s > 0
        assert result.gflops > 0
        assert result.trace.total_messages > 0

    @pytest.mark.parametrize("tree", TREES)
    def test_virtual_and_real_runs_trace_identically(self, platform8, tree):
        """The paper-scale sweeps must exercise the schedule the numerics use."""
        a = random_matrix(200, 50, seed=9)
        real = run_parallel_caqr(
            platform8, CAQRConfig(m=200, n=50, tile_size=8, panel_tree=tree, matrix=a)
        )
        virtual = run_parallel_caqr(
            platform8, CAQRConfig(m=200, n=50, tile_size=8, panel_tree=tree)
        )
        assert real.trace.n_messages == virtual.trace.n_messages
        assert real.trace.bytes_by_link == virtual.trace.bytes_by_link
        assert real.trace.messages_per_rank_max == virtual.trace.messages_per_rank_max
        assert real.trace.flops_per_rank_max == pytest.approx(
            virtual.trace.flops_per_rank_max
        )
        assert real.makespan_s == pytest.approx(virtual.makespan_s)

    def test_grid_tree_minimises_wan_messages(self, platform16):
        tuned = run_parallel_caqr(
            platform16,
            CAQRConfig(m=2**13, n=128, tile_size=32, panel_tree="grid-hierarchical"),
        )
        oblivious = run_parallel_caqr(
            platform16, CAQRConfig(m=2**13, n=128, tile_size=32, panel_tree="binary")
        )
        assert tuned.trace.inter_cluster_messages < oblivious.trace.inter_cluster_messages
        # Up and (while trailing columns remain) down messages on the 3
        # inter-cluster edges of every panel reduction.
        nt = 128 // 32
        assert tuned.trace.inter_cluster_messages == 3 * (2 * nt - 1)

    def test_message_count_independent_of_panel_width(self, platform8):
        narrow = run_parallel_caqr(platform8, CAQRConfig(m=2**13, n=128, tile_size=32))
        wide = run_parallel_caqr(platform8, CAQRConfig(m=2**13, n=256, tile_size=64))
        # Same tile-row count and same number of panels: the message count
        # depends on the tiling, never on the panel width (the CAQR argument).
        assert narrow.trace.total_messages == wide.trace.total_messages


class TestAgainstCostModel:
    @pytest.mark.parametrize("tree", TREES)
    def test_counts_match_model_exactly(self, platform8, tree):
        m, n, tile = 2**12, 192, 32
        result = run_parallel_caqr(
            platform8, CAQRConfig(m=m, n=n, tile_size=tile, panel_tree=tree)
        )
        p = platform8.n_processes
        clusters = [platform8.placement.cluster_of(r) for r in range(p)]
        model = caqr_costs(m, n, p, tile_size=tile, panel_tree=tree, clusters=clusters)
        assert result.trace.total_messages == model.messages
        measured_volume = sum(result.trace.bytes_by_link.values()) / 8.0
        assert measured_volume == pytest.approx(model.volume_doubles, rel=1e-12)
        assert result.trace.flops_per_rank_max == pytest.approx(model.flops, rel=1e-12)

    def test_model_rejects_bad_cluster_list(self):
        with pytest.raises(ConfigurationError, match="cluster names"):
            caqr_costs(64, 64, 4, clusters=["a", "b"])
