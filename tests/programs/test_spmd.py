"""Tests for the extracted SPMD program layer (repro.programs.spmd).

The layer was extracted from ``repro.tsqr.parallel``; these tests pin its
contracts directly (domain resolution, layout invariants, payload dispatch,
result assembly, run harness) and assert the extraction was behaviour
preserving for QCG-TSQR: same error messages, same trace counters, same
clocks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, FactorizationError, SimulationError
from repro.gridsim.executor import run_spmd
from repro.programs.spmd import (
    assemble_row_blocks,
    build_domain_layout,
    domain_reduction_tree,
    domain_row_ranges,
    local_block_payload,
    resolve_domain_count,
    run_program,
    triangle_nbytes,
)
from repro.tsqr.parallel import TSQRConfig, run_parallel_tsqr
from repro.util.random_matrices import random_tall_skinny
from repro.virtual.matrix import VirtualMatrix


class TestResolveDomainCount:
    def test_none_means_one_domain_per_process(self):
        assert resolve_domain_count(None, 8) == 8

    def test_divisor_accepted(self):
        assert resolve_domain_count(4, 8) == 4

    def test_too_many_domains_rejected(self):
        with pytest.raises(ConfigurationError, match="16 domains requested"):
            resolve_domain_count(16, 8)

    def test_non_divisor_rejected(self):
        with pytest.raises(ConfigurationError, match="multiple of the"):
            resolve_domain_count(3, 8)


class TestDomainRowRanges:
    def test_unweighted_is_block_split(self):
        assert domain_row_ranges(10, 4) == [(0, 3), (3, 6), (6, 8), (8, 10)]

    def test_weighted_counts_match(self):
        ranges = domain_row_ranges(100, 2, domain_weights=(3.0, 1.0))
        assert ranges == [(0, 75), (75, 100)]

    def test_weight_count_mismatch_rejected(self):
        with pytest.raises(ConfigurationError, match="3 weights for 2 domains"):
            domain_row_ranges(100, 2, domain_weights=(1.0, 1.0, 1.0))


class TestPayloadDispatch:
    def test_real_payload_is_a_private_copy(self):
        a = np.arange(20, dtype=np.float64).reshape(5, 4)
        block = local_block_payload(a, slice(1, 3), 4)
        assert block.shape == (2, 4)
        block[:] = -1.0
        assert a[1, 0] == 4.0  # the original is untouched

    def test_virtual_payload_is_shape_only(self):
        block = local_block_payload(None, slice(0, 0), 4, n_rows=7)
        assert isinstance(block, VirtualMatrix)
        assert block.shape == (7, 4)

    def test_virtual_payload_requires_row_count(self):
        with pytest.raises(ConfigurationError, match="explicit row count"):
            local_block_payload(None, slice(0, 5), 4)

    def test_triangle_nbytes_is_paper_volume(self):
        # n(n+1)/2 doubles: the paper's N^2/2 volume term, in bytes.
        assert triangle_nbytes(64) == 64 * 65 // 2 * 8


class TestAssembleRowBlocks:
    def test_blocks_stacked_in_rank_order(self):
        blocks = {2: np.full((1, 2), 2.0), 0: np.full((2, 2), 0.0), 1: np.full((1, 2), 1.0)}
        out = assemble_row_blocks(blocks)
        np.testing.assert_allclose(out[:, 0], [0.0, 0.0, 1.0, 2.0])

    def test_missing_blocks_named_in_error(self):
        blocks = {0: np.zeros((1, 2)), 3: None, 5: None}
        with pytest.raises(FactorizationError, match=r"rank\(s\) \[3, 5\] returned no Q"):
            assemble_row_blocks(blocks)

    def test_what_parameter_names_the_factor(self):
        with pytest.raises(FactorizationError, match="no R block"):
            assemble_row_blocks({0: None}, what="R")

    def test_empty_blocks_are_skipped(self):
        blocks = {0: np.zeros((2, 3)), 1: np.zeros((0, 3)), 2: np.ones((1, 3))}
        assert assemble_row_blocks(blocks).shape == (3, 3)


class TestBuildDomainLayout:
    def test_layout_fields_consistent(self, platform8):
        def prog(ctx):
            layout = yield from build_domain_layout(ctx.comm, m=800, n=10, n_domains=4)
            assert layout.ppd == 2
            assert layout.domain == ctx.comm.rank // 2
            assert layout.is_leader == (ctx.comm.rank % 2 == 0)
            assert layout.domain_comm.size == 2
            assert layout.dom_rows == 200
            assert layout.local_rows == 100
            # global slice = domain offset + local offset
            expected_start = layout.domain * 200 + (ctx.comm.rank % 2) * 100
            assert layout.global_row_slice == slice(expected_start, expected_start + 100)
            return layout.domain

        res = run_spmd(platform8, prog)
        assert res.results == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_min_rows_error_message_preserved(self, platform8):
        # The exact wording callers (and the TSQR tests) rely on.
        def prog(ctx):
            return (yield from build_domain_layout(
                ctx.comm, m=40, n=10, n_domains=8, min_rows=10
            ))

        with pytest.raises(SimulationError, match="fewer than n=10"):
            run_spmd(platform8, prog)


class TestDomainReductionTree:
    def test_program_and_harness_agree(self, platform16):
        """The tree built inside the program equals the harness-side one."""
        harness_tree = domain_reduction_tree(platform16, "grid-hierarchical", 8, 2)

        def prog(ctx):
            tree = domain_reduction_tree(
                ctx.platform, "grid-hierarchical", 8, 2,
                world_rank_of=ctx.comm.core.world_rank,
            )
            return (tree.edges(), tree.domain_clusters)

        res = run_spmd(platform16, prog)
        for edges, clusters in res.results:
            assert edges == harness_tree.edges()
            assert clusters == harness_tree.domain_clusters

    def test_grid_tree_is_cluster_aware(self, platform16):
        tree = domain_reduction_tree(platform16, "grid-hierarchical", 16, 1)
        # 4 clusters: exactly 3 inter-cluster edges, the paper's minimum.
        assert tree.n_inter_cluster_messages() == 3


class TestRunProgram:
    def test_gflops_uses_the_given_flop_count(self, platform8):
        def prog(ctx):
            ctx.compute(1e9, kernel="gemm")
            return ctx.rank

        run = run_program(platform8, prog, flop_count=8e9)
        assert run.makespan_s > 0
        assert run.gflops == pytest.approx(8.0 / run.makespan_s, rel=1e-12)
        assert run.results == list(range(8))

    def test_rebased_tsqr_counters_unchanged(self, platform8):
        """Extraction regression: the layered QCG-TSQR keeps its trace shape.

        Pure TSQR over 8 one-process domains reduces along 7 tree edges; with
        R only that is exactly 7 point-to-point messages, each carrying the
        half-triangular n(n+1)/2 doubles.
        """
        result = run_parallel_tsqr(platform8, TSQRConfig(m=2**15, n=64))
        assert result.trace.total_messages == 7
        assert sum(result.trace.bytes_by_link.values()) == 7 * triangle_nbytes(64)

    def test_rebased_tsqr_numerics_unchanged(self, platform8):
        a = random_tall_skinny(320, 10, seed=3)
        result = run_parallel_tsqr(
            platform8, TSQRConfig(m=320, n=10, matrix=a, want_q=True, n_domains=4)
        )
        np.testing.assert_allclose(result.q @ result.r, a, atol=1e-10)
