"""Shared fixtures: small simulated platforms and reference matrices.

The unit and integration tests run on deliberately tiny platforms (a handful
of ranks over one or two "clusters") so the whole suite stays fast while
still exercising every code path the paper-scale benchmarks use.
"""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture(scope="session", autouse=True)
def _isolated_result_cache(tmp_path_factory):
    """Point the persistent result cache at a session tmp dir.

    CLI invocations under test default to ``results/cache`` in the working
    tree; redirecting ``REPRO_CACHE_DIR`` keeps test runs from writing (or
    reading!) the developer's real cache.  Tests that need a fresh store
    still pass an explicit ``--cache-dir``.
    """
    mp = pytest.MonkeyPatch()
    mp.setenv("REPRO_CACHE_DIR", str(tmp_path_factory.mktemp("result-cache")))
    yield
    mp.undo()

from repro.gridsim import (
    ClusterSpec,
    GridSpec,
    KernelRateModel,
    LinkSpec,
    NetworkModel,
    NodeSpec,
    Platform,
    ProcessorSpec,
    block_placement,
)
from repro.util.random_matrices import matrix_with_condition_number, random_tall_skinny


def make_grid(n_clusters: int = 2, nodes: int = 2, ppn: int = 2) -> GridSpec:
    """Small grid of identical clusters used throughout the tests."""
    node = NodeSpec(processor=ProcessorSpec("test-cpu", 8.0, 3.67), processes_per_node=ppn)
    clusters = tuple(
        ClusterSpec(name=f"site{i}", n_nodes=nodes, node=node) for i in range(n_clusters)
    )
    return GridSpec(name="test-grid", clusters=clusters)


def make_network() -> NetworkModel:
    """Hierarchical network with realistic-looking latencies."""
    return NetworkModel(
        intra_node=LinkSpec.from_us_mbits(17.0, 5000.0),
        intra_cluster=LinkSpec.from_ms_mbits(0.06, 890.0),
        inter_cluster_default=LinkSpec.from_ms_mbits(8.0, 90.0),
    )


def make_platform(n_clusters: int = 2, nodes: int = 2, ppn: int = 2) -> Platform:
    """Platform with ``n_clusters * nodes * ppn`` ranks."""
    grid = make_grid(n_clusters, nodes, ppn)
    placement = block_placement(grid, nodes_per_cluster=nodes, processes_per_node=ppn)
    return Platform(
        grid=grid,
        network=make_network(),
        placement=placement,
        kernel_model=KernelRateModel(),
        name="test-platform",
    )


@pytest.fixture(scope="session")
def platform8() -> Platform:
    """Two clusters x two nodes x two processes = 8 ranks."""
    return make_platform(2, 2, 2)


@pytest.fixture(scope="session")
def platform4_single_site() -> Platform:
    """One cluster x two nodes x two processes = 4 ranks."""
    return make_platform(1, 2, 2)


@pytest.fixture(scope="session")
def platform16() -> Platform:
    """Four clusters x two nodes x two processes = 16 ranks."""
    return make_platform(4, 2, 2)


@pytest.fixture()
def tall_matrix() -> np.ndarray:
    """A deterministic 240 x 12 tall-and-skinny matrix."""
    return random_tall_skinny(240, 12, seed=7)


@pytest.fixture()
def ill_conditioned_matrix() -> np.ndarray:
    """A tall matrix with condition number 1e10 (stresses stability)."""
    return matrix_with_condition_number(300, 10, 1e10, seed=11)


@pytest.fixture()
def reference_r(tall_matrix) -> np.ndarray:
    """LAPACK reference R factor of :func:`tall_matrix`."""
    return np.linalg.qr(tall_matrix, mode="r")
