"""Tests for the Householder QR kernels (GEQR2/GEQRF/LARFT/LARFB/ORGQR/ORMQR)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.kernels.householder import (
    apply_q,
    form_q,
    geqr2,
    geqrf,
    householder_reflector,
    larfb,
    larft,
)
from repro.util.random_matrices import graded_matrix, random_matrix, random_tall_skinny
from repro.util.validation import check_qr, r_factors_match


class TestReflector:
    def test_annihilates_tail(self):
        x = np.array([3.0, 4.0, 0.0, -2.0])
        v, tau, beta = householder_reflector(x)
        h = np.eye(4) - tau * np.outer(v, v)
        y = h @ x
        assert np.isclose(abs(y[0]), np.linalg.norm(x))
        assert np.allclose(y[1:], 0.0, atol=1e-14)
        assert np.isclose(y[0], beta)

    def test_reflector_is_orthogonal(self):
        x = random_matrix(6, 1, seed=1)[:, 0]
        v, tau, _ = householder_reflector(x)
        h = np.eye(6) - tau * np.outer(v, v)
        assert np.allclose(h @ h.T, np.eye(6), atol=1e-14)

    def test_zero_tail_gives_identity(self):
        v, tau, beta = householder_reflector(np.array([5.0, 0.0, 0.0]))
        assert tau == 0.0
        assert beta == 5.0

    def test_single_element(self):
        v, tau, beta = householder_reflector(np.array([-3.0]))
        assert tau == 0.0 and beta == -3.0

    def test_sign_choice_avoids_cancellation(self):
        x = np.array([1.0, 1e-8])
        _, _, beta = householder_reflector(x)
        assert beta < 0  # opposite sign of x[0]

    def test_rejects_matrix_input(self):
        with pytest.raises(ShapeError):
            householder_reflector(np.zeros((2, 2)))


class TestGeqr2:
    @pytest.mark.parametrize("m,n", [(10, 4), (25, 25), (7, 3), (40, 1)])
    def test_factorization_is_exact(self, m, n):
        a = random_matrix(m, n, seed=m * 100 + n)
        fact = geqr2(a)
        check_qr(a, fact.q(), fact.r)

    def test_matches_numpy_r(self):
        a = random_tall_skinny(60, 8, seed=3)
        fact = geqr2(a)
        assert r_factors_match(fact.r, np.linalg.qr(a, mode="r"))

    def test_wide_matrix(self):
        a = random_matrix(4, 9, seed=5)
        fact = geqr2(a)
        q = fact.q()
        assert q.shape == (4, 4)
        assert np.allclose(q @ fact.r, a, atol=1e-12)

    def test_v_is_unit_lower(self):
        a = random_tall_skinny(12, 5, seed=6)
        fact = geqr2(a)
        for j in range(5):
            assert fact.v[j, j] == pytest.approx(1.0)
            assert np.allclose(fact.v[:j, j], 0.0)


class TestLarftLarfb:
    def test_compact_wy_matches_successive_reflectors(self):
        a = random_tall_skinny(20, 6, seed=7)
        fact = geqr2(a)
        t = larft(fact.v, fact.tau)
        c = random_matrix(20, 3, seed=8)
        via_block = larfb(fact.v, t, c, transpose=True)
        via_loop = apply_q(fact.v, fact.tau, c, transpose=True)
        assert np.allclose(via_block, via_loop, atol=1e-12)

    def test_larfb_untransposed_is_inverse(self):
        a = random_tall_skinny(15, 5, seed=9)
        fact = geqr2(a)
        t = larft(fact.v, fact.tau)
        c = random_matrix(15, 2, seed=10)
        roundtrip = larfb(fact.v, t, larfb(fact.v, t, c, transpose=True), transpose=False)
        assert np.allclose(roundtrip, c, atol=1e-12)

    def test_larft_upper_triangular(self):
        a = random_tall_skinny(18, 6, seed=11)
        fact = geqr2(a)
        t = larft(fact.v, fact.tau)
        assert np.allclose(np.tril(t, -1), 0.0)

    def test_shape_validation(self):
        with pytest.raises(ShapeError):
            larft(np.zeros((5, 3)), np.zeros(2))
        with pytest.raises(ShapeError):
            larfb(np.zeros((5, 2)), np.eye(2), np.zeros((4, 2)))


class TestGeqrf:
    @pytest.mark.parametrize("block_size", [1, 2, 3, 8, 64])
    def test_blocked_matches_unblocked(self, block_size):
        a = random_tall_skinny(50, 13, seed=12)
        blocked = geqrf(a, block_size=block_size)
        unblocked = geqr2(a)
        assert r_factors_match(blocked.r, unblocked.r)
        check_qr(a, blocked.q(), blocked.r)

    def test_graded_matrix_is_still_accurate(self):
        a = graded_matrix(120, 10, ratio=1e10, seed=13)
        fact = geqrf(a, block_size=4)
        check_qr(a, fact.q(), fact.r)

    def test_invalid_block_size(self):
        with pytest.raises(ShapeError):
            geqrf(np.zeros((4, 2)), block_size=0)

    def test_one_column(self):
        a = random_tall_skinny(30, 1, seed=14)
        fact = geqrf(a)
        check_qr(a, fact.q(), fact.r)


class TestApplyFormQ:
    def test_form_q_is_orthonormal(self):
        a = random_tall_skinny(40, 9, seed=15)
        fact = geqrf(a, block_size=4)
        q = form_q(fact.v, fact.tau)
        assert np.allclose(q.T @ q, np.eye(9), atol=1e-12)

    def test_apply_q_transpose_then_q_is_identity(self):
        a = random_tall_skinny(30, 7, seed=16)
        fact = geqrf(a)
        c = random_matrix(30, 4, seed=17)
        back = apply_q(fact.v, fact.tau, apply_q(fact.v, fact.tau, c, transpose=True))
        assert np.allclose(back, c, atol=1e-12)

    def test_apply_q_vector(self):
        a = random_tall_skinny(30, 7, seed=18)
        fact = geqrf(a)
        x = random_matrix(30, 1, seed=19)[:, 0]
        y = apply_q(fact.v, fact.tau, x, transpose=True)
        assert y.shape == (30,)

    def test_qt_times_a_is_r(self):
        a = random_tall_skinny(30, 6, seed=20)
        fact = geqrf(a)
        qt_a = fact.qt_times(a)
        assert np.allclose(np.triu(qt_a[:6]), fact.r, atol=1e-11)
        assert np.allclose(qt_a[6:], 0.0, atol=1e-11)

    def test_form_q_too_many_columns(self):
        a = random_tall_skinny(10, 3, seed=21)
        fact = geqrf(a)
        with pytest.raises(ShapeError):
            form_q(fact.v, fact.tau, n_columns=11)

    def test_apply_q_row_mismatch(self):
        a = random_tall_skinny(10, 3, seed=22)
        fact = geqrf(a)
        with pytest.raises(ShapeError):
            apply_q(fact.v, fact.tau, np.zeros((9, 2)))
