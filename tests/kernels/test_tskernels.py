"""Tests for the TSQR combine kernel (QR of stacked triangles)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.kernels.householder import geqrf
from repro.kernels.tskernels import qr_of_stacked, qr_of_stacked_triangles, stack_pair
from repro.util.random_matrices import random_tall_skinny
from repro.util.validation import r_factors_match


def _triangles(n=6, seeds=(1, 2)):
    r1 = np.triu(np.random.default_rng(seeds[0]).standard_normal((n, n)))
    r2 = np.triu(np.random.default_rng(seeds[1]).standard_normal((n, n)))
    return r1, r2


class TestStackPair:
    def test_stacks_vertically(self):
        r1, r2 = _triangles(4)
        stacked = stack_pair(r1, r2)
        assert stacked.shape == (8, 4)
        assert np.array_equal(stacked[:4], r1)

    def test_empty_operand_allowed(self):
        r1, _ = _triangles(3)
        stacked = stack_pair(r1, np.zeros((0, 3)))
        assert stacked.shape == (3, 3)

    def test_column_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            stack_pair(np.zeros((2, 3)), np.zeros((2, 4)))


class TestCombine:
    def test_r_matches_direct_qr_of_stack(self):
        r1, r2 = _triangles(5)
        combined = qr_of_stacked_triangles(r1, r2)
        direct = np.linalg.qr(np.vstack([r1, r2]), mode="r")
        assert r_factors_match(combined.r, direct)

    def test_result_has_nonnegative_diagonal(self):
        r1, r2 = _triangles(7, seeds=(3, 4))
        combined = qr_of_stacked_triangles(r1, r2)
        assert np.all(np.diag(combined.r) >= 0)

    def test_q_reconstructs_stack(self):
        r1, r2 = _triangles(6, seeds=(5, 6))
        combined = qr_of_stacked_triangles(r1, r2)
        assert np.allclose(combined.q @ combined.r, np.vstack([r1, r2]), atol=1e-12)

    def test_q_split_into_top_and_bottom(self):
        r1, r2 = _triangles(4, seeds=(7, 8))
        combined = qr_of_stacked_triangles(r1, r2)
        assert combined.q_top.shape == (4, 4)
        assert combined.q_bottom.shape == (4, 4)
        assert np.allclose(np.vstack([combined.q_top, combined.q_bottom]), combined.q)

    def test_want_q_false_skips_q(self):
        r1, r2 = _triangles(5, seeds=(9, 10))
        combined = qr_of_stacked_triangles(r1, r2, want_q=False)
        assert combined.q.shape[1] == 0
        assert np.all(np.diag(combined.r) >= 0)

    def test_non_triangular_input_rejected(self):
        full = np.random.default_rng(11).standard_normal((4, 4))
        with pytest.raises(ShapeError):
            qr_of_stacked_triangles(full, np.triu(full))

    def test_general_stack_accepts_rectangular(self):
        a = random_tall_skinny(9, 4, seed=12)
        b = random_tall_skinny(6, 4, seed=13)
        ra = geqrf(a).r
        rb = geqrf(b).r
        combined = qr_of_stacked(ra, rb)
        direct = np.linalg.qr(np.vstack([a, b]), mode="r")
        assert r_factors_match(combined.r, direct)


class TestAlgebraicProperties:
    """The combine must be associative (and commutative after normalisation)
    for TSQR to run on an arbitrary reduction tree (paper §II-C)."""

    def test_associativity(self):
        rs = [np.triu(np.random.default_rng(s).standard_normal((5, 5))) for s in (20, 21, 22)]
        left = qr_of_stacked_triangles(qr_of_stacked_triangles(rs[0], rs[1]).r, rs[2]).r
        right = qr_of_stacked_triangles(rs[0], qr_of_stacked_triangles(rs[1], rs[2]).r).r
        assert r_factors_match(left, right, rtol=1e-10)

    def test_commutativity_after_normalisation(self):
        r1, r2 = _triangles(6, seeds=(23, 24))
        ab = qr_of_stacked_triangles(r1, r2).r
        ba = qr_of_stacked_triangles(r2, r1).r
        assert np.allclose(ab, ba, atol=1e-10)

    def test_identity_element_is_empty_factor(self):
        r1, _ = _triangles(5, seeds=(25, 26))
        combined = qr_of_stacked_triangles(r1, np.zeros((0, 5)))
        assert r_factors_match(combined.r, r1)
