"""Tests for the CAQR tile kernels (GEQRT / UNMQR / TSQRT / TSMQR)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.kernels.tiled import geqrt, tsmqr, tsqrt, unmqr
from repro.util.random_matrices import random_matrix
from repro.util.validation import r_factors_match


class TestGeqrtUnmqr:
    def test_geqrt_r_matches_lapack(self):
        tile = random_matrix(12, 8, seed=1)
        fact = geqrt(tile)
        assert r_factors_match(fact.r, np.linalg.qr(tile, mode="r"))

    def test_unmqr_applies_qt(self):
        tile = random_matrix(10, 6, seed=2)
        c = random_matrix(10, 4, seed=3)
        fact = geqrt(tile)
        explicit_q, _ = np.linalg.qr(tile)
        expected = explicit_q.T @ c
        got = unmqr(fact, c, transpose=True)
        # Compare through |Q^T c| projections: signs of Q columns may differ.
        assert np.allclose(np.abs(got[:6]), np.abs(expected), atol=1e-10)

    def test_unmqr_roundtrip(self):
        tile = random_matrix(9, 5, seed=4)
        c = random_matrix(9, 3, seed=5)
        fact = geqrt(tile)
        back = unmqr(fact, unmqr(fact, c, transpose=True), transpose=False)
        assert np.allclose(back, c, atol=1e-12)

    def test_unmqr_shape_mismatch(self):
        fact = geqrt(random_matrix(8, 4, seed=6))
        with pytest.raises(ShapeError):
            unmqr(fact, np.zeros((7, 2)))


class TestTsqrtTsmqr:
    def test_tsqrt_eliminates_bottom_tile(self):
        n = 5
        r_top = np.triu(random_matrix(n, n, seed=7))
        bottom = random_matrix(8, n, seed=8)
        ts = tsqrt(r_top, bottom)
        direct = np.linalg.qr(np.vstack([r_top, bottom]), mode="r")
        assert r_factors_match(ts.r, direct)

    def test_tsmqr_consistent_with_stacked_application(self):
        n = 4
        r_top = np.triu(random_matrix(n, n, seed=9))
        bottom = random_matrix(6, n, seed=10)
        ts = tsqrt(r_top, bottom)
        c_top = random_matrix(n, 3, seed=11)
        c_bottom = random_matrix(6, 3, seed=12)
        new_top, new_bottom = tsmqr(ts, c_top, c_bottom, transpose=True)
        assert new_top.shape == (n, 3)
        assert new_bottom.shape == (6, 3)
        # Norm is preserved by an orthogonal transformation.
        before = np.linalg.norm(np.vstack([c_top, c_bottom]))
        after = np.linalg.norm(np.vstack([new_top, new_bottom]))
        assert np.isclose(before, after)

    def test_tsmqr_roundtrip(self):
        n = 3
        ts = tsqrt(np.triu(random_matrix(n, n, seed=13)), random_matrix(5, n, seed=14))
        c_top = random_matrix(n, 2, seed=15)
        c_bottom = random_matrix(5, 2, seed=16)
        t1, b1 = tsmqr(ts, c_top, c_bottom, transpose=True)
        t2, b2 = tsmqr(ts, t1, b1, transpose=False)
        assert np.allclose(t2, c_top, atol=1e-12)
        assert np.allclose(b2, c_bottom, atol=1e-12)

    def test_column_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            tsqrt(np.triu(random_matrix(3, 3, seed=17)), random_matrix(4, 2, seed=18))

    def test_tsmqr_row_mismatch_rejected(self):
        ts = tsqrt(np.triu(random_matrix(3, 3, seed=19)), random_matrix(4, 3, seed=20))
        with pytest.raises(ShapeError):
            tsmqr(ts, np.zeros((3, 2)), np.zeros((5, 2)))
