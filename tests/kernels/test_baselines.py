"""Tests for the baseline orthogonalization kernels: Givens, Gram-Schmidt, CholQR.

These kernels exist as comparison points (paper §II-C history and §II-E
stability discussion); the tests check both their correctness on well-behaved
inputs and the *instability* that motivates TSQR on ill-conditioned ones.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import FactorizationError, ShapeError
from repro.kernels.cholqr import cholqr, cholqr2
from repro.kernels.givens import givens_qr, givens_rotation
from repro.kernels.gram_schmidt import cgs, cgs2, mgs
from repro.util.random_matrices import matrix_with_condition_number, random_tall_skinny
from repro.util.validation import check_qr, orthogonality_error, r_factors_match


class TestGivens:
    def test_rotation_zeroes_second_entry(self):
        c, s = givens_rotation(3.0, 4.0)
        g = np.array([[c, s], [-s, c]])
        y = g @ np.array([3.0, 4.0])
        assert np.isclose(y[0], 5.0)
        assert np.isclose(y[1], 0.0)

    def test_rotation_handles_zeros(self):
        assert givens_rotation(1.0, 0.0) == (1.0, 0.0)
        c, s = givens_rotation(0.0, -2.0)
        assert np.isclose(c, 0.0) and np.isclose(abs(s), 1.0)

    def test_qr_matches_householder(self):
        a = random_tall_skinny(30, 6, seed=1)
        q, r = givens_qr(a)
        check_qr(a, q, r)
        assert r_factors_match(r, np.linalg.qr(a, mode="r"))

    def test_r_only_mode(self):
        a = random_tall_skinny(20, 5, seed=2)
        q, r = givens_qr(a, want_q=False)
        assert q is None
        assert r_factors_match(r, np.linalg.qr(a, mode="r"))

    def test_rejects_non_matrix(self):
        with pytest.raises(ShapeError):
            givens_qr(np.zeros(5))


class TestGramSchmidt:
    @pytest.mark.parametrize("scheme", [cgs, mgs, cgs2])
    def test_well_conditioned_input(self, scheme):
        a = random_tall_skinny(80, 10, seed=3)
        q, r = scheme(a)
        check_qr(a, q, r, residual_tol=1e-12, orthogonality_tol=1e-10)

    def test_cgs_loses_orthogonality_on_ill_conditioned_input(self):
        a = matrix_with_condition_number(300, 12, 1e12, seed=4)
        q, _ = cgs(a)
        assert orthogonality_error(q) > 1e-4

    def test_mgs_is_better_than_cgs(self):
        a = matrix_with_condition_number(300, 12, 1e10, seed=5)
        q_cgs, _ = cgs(a)
        q_mgs, _ = mgs(a)
        assert orthogonality_error(q_mgs) < orthogonality_error(q_cgs)

    def test_cgs2_restores_orthogonality(self):
        a = matrix_with_condition_number(300, 12, 1e10, seed=6)
        q, _ = cgs2(a)
        assert orthogonality_error(q) < 1e-11

    def test_rank_deficiency_raises(self):
        a = random_tall_skinny(30, 4, seed=7)
        a[:, 3] = a[:, 0]
        with pytest.raises(FactorizationError):
            cgs(a)

    def test_wide_matrix_rejected(self):
        with pytest.raises(ShapeError):
            mgs(np.zeros((3, 5)))


class TestCholQR:
    def test_well_conditioned_input(self):
        a = random_tall_skinny(100, 8, seed=8)
        q, r = cholqr(a)
        check_qr(a, q, r, orthogonality_tol=1e-10)

    def test_r_matches_householder(self):
        a = random_tall_skinny(60, 6, seed=9)
        _, r = cholqr(a)
        assert r_factors_match(r, np.linalg.qr(a, mode="r"), rtol=1e-8)

    def test_breakdown_on_extremely_ill_conditioned_input(self):
        a = matrix_with_condition_number(200, 8, 1e16, seed=10)
        with pytest.raises(FactorizationError):
            cholqr(a)

    def test_cholqr_loses_orthogonality_quadratically(self):
        a = matrix_with_condition_number(400, 10, 1e7, seed=11)
        q, _ = cholqr(a)
        # kappa^2 * eps ~ 1e14 * 1e-16 ~ 1e-2: clearly worse than machine eps.
        assert orthogonality_error(q) > 1e-6

    def test_cholqr2_recovers_orthogonality(self):
        a = matrix_with_condition_number(400, 10, 1e6, seed=12)
        q, r = cholqr2(a)
        assert orthogonality_error(q) < 1e-12
        check_qr(a, q, r, orthogonality_tol=1e-11)

    def test_wide_matrix_rejected(self):
        with pytest.raises(ShapeError):
            cholqr(np.zeros((3, 5)))
