"""Tests for the virtual (shape-only) matrix payloads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ShapeError, VirtualPayloadError
from repro.virtual.matrix import VirtualMatrix, is_virtual, nbytes_of, shape_of, vstack_shapes


class TestVirtualMatrix:
    def test_shape_and_elements(self):
        v = VirtualMatrix(10, 4)
        assert v.shape == (10, 4)
        assert v.n_elements == 40
        assert v.nbytes == 320

    def test_upper_triangle_stores_half(self):
        v = VirtualMatrix(6, 6, structure="upper")
        assert v.n_elements == 21
        assert v.nbytes == 21 * 8

    def test_upper_trapezoid(self):
        v = VirtualMatrix(3, 5, structure="upper")
        # 3x3 triangle (6) plus the 3x2 rectangle to its right.
        assert v.n_elements == 6 + 6

    def test_zero_sized_matrix_allowed(self):
        v = VirtualMatrix(0, 4)
        assert v.n_elements == 0

    def test_negative_dimension_rejected(self):
        with pytest.raises(ShapeError):
            VirtualMatrix(-1, 3)

    def test_unknown_structure_rejected(self):
        with pytest.raises(ShapeError):
            VirtualMatrix(3, 3, structure="diagonal")

    def test_builders(self):
        v = VirtualMatrix(10, 4)
        assert v.rows(5).shape == (5, 4)
        assert v.columns(2).shape == (10, 2)
        assert v.as_upper().is_upper
        assert not v.as_upper().as_general().is_upper

    def test_like_real_array(self):
        a = np.zeros((7, 3), dtype=np.float64)
        v = VirtualMatrix.like(a)
        assert v.shape == (7, 3)
        assert v.dtype == "float64"

    def test_like_rejects_1d(self):
        with pytest.raises(ShapeError):
            VirtualMatrix.like(np.zeros(4))

    def test_cannot_be_converted_to_array(self):
        with pytest.raises(VirtualPayloadError):
            np.asarray(VirtualMatrix(3, 3))


class TestHelpers:
    def test_is_virtual(self):
        assert is_virtual(VirtualMatrix(2, 2))
        assert not is_virtual(np.zeros((2, 2)))

    def test_shape_of_both_kinds(self):
        assert shape_of(VirtualMatrix(4, 5)) == (4, 5)
        assert shape_of(np.zeros((4, 5))) == (4, 5)

    def test_shape_of_rejects_vector(self):
        with pytest.raises(ShapeError):
            shape_of(np.zeros(4))

    def test_nbytes_of_real_array(self):
        assert nbytes_of(np.zeros((4, 5))) == 160

    def test_nbytes_of_assume_upper(self):
        assert nbytes_of(np.zeros((4, 4)), assume_upper=True) == 10 * 8

    def test_vstack_shapes(self):
        assert vstack_shapes([VirtualMatrix(3, 4), np.zeros((2, 4))]) == (5, 4)

    def test_vstack_shapes_column_mismatch(self):
        with pytest.raises(ShapeError):
            vstack_shapes([VirtualMatrix(3, 4), VirtualMatrix(3, 5)])

    def test_vstack_shapes_empty_list(self):
        with pytest.raises(ShapeError):
            vstack_shapes([])
