"""Tests for the analytic flop-count formulas."""

from __future__ import annotations

import pytest

from repro.exceptions import ShapeError
from repro.virtual.flops import (
    apply_q_flops,
    form_q_flops,
    gemm_flops,
    larfb_flops,
    larft_flops,
    qr_flops,
    scalapack_qr_flops_per_process,
    stacked_triangle_qr_flops,
    tsqr_critical_path_flops,
    tsqr_flops_per_domain,
)


def test_qr_flops_matches_textbook_tall_case():
    m, n = 100_000, 64
    assert qr_flops(m, n) == pytest.approx(2 * m * n * n - 2 / 3 * n**3, rel=1e-12)


def test_qr_flops_square_case():
    n = 500
    assert qr_flops(n, n) == pytest.approx(4 / 3 * n**3, rel=1e-6)


def test_qr_flops_monotone_in_m():
    assert qr_flops(2000, 32) > qr_flops(1000, 32)


def test_qr_flops_rejects_negative():
    with pytest.raises(ShapeError):
        qr_flops(-1, 4)


def test_stacked_triangle_cost_is_two_thirds_cube():
    assert stacked_triangle_qr_flops(64) == pytest.approx(2 / 3 * 64**3)


def test_form_q_costs_same_as_factorization_for_thin_q():
    m, n = 50_000, 128
    assert form_q_flops(m, n) == pytest.approx(qr_flops(m, n), rel=1e-9)


def test_apply_q_flops_positive_and_scales_with_k():
    assert apply_q_flops(1000, 10, 8) > apply_q_flops(1000, 10, 4)


def test_gemm_flops():
    assert gemm_flops(10, 20, 30) == 2 * 10 * 20 * 30


def test_larft_larfb_flops_positive():
    assert larft_flops(100, 8) > 0
    assert larfb_flops(100, 50, 8) > 0


def test_tsqr_critical_path_adds_log_term():
    m, n = 1_000_000, 64
    flat = tsqr_critical_path_flops(m, n, 1)
    p64 = tsqr_critical_path_flops(m, n, 64)
    # per-domain share shrinks but the 2/3 log2(P) N^3 term is added
    assert p64 == pytest.approx((2 * m * n * n - 2 / 3 * n**3) / 64 + 6 * 2 / 3 * n**3)
    assert flat == pytest.approx(2 * m * n * n - 2 / 3 * n**3)


def test_tsqr_q_doubles_critical_path():
    r_only = tsqr_critical_path_flops(10_000, 32, 8)
    with_q = tsqr_critical_path_flops(10_000, 32, 8, want_q=True)
    assert with_q == pytest.approx(2 * r_only)


def test_scalapack_flops_per_process_scales_inversely_with_p():
    one = scalapack_qr_flops_per_process(100_000, 64, 1)
    four = scalapack_qr_flops_per_process(100_000, 64, 4)
    assert one == pytest.approx(4 * four)


def test_tsqr_flops_per_domain():
    m, n, p = 64_000, 32, 8
    expected = 2 * (m / p) * n * n - 2 / 3 * n**3
    assert tsqr_flops_per_domain(m, n, p) == pytest.approx(expected)


def test_invalid_p_rejected():
    with pytest.raises(ShapeError):
        tsqr_critical_path_flops(100, 10, 0)
    with pytest.raises(ShapeError):
        scalapack_qr_flops_per_process(100, 10, 0)
