"""Tests for TSQR reduction trees and their locality analysis (Fig. 1 vs Fig. 2)."""

from __future__ import annotations

import pytest

from repro.exceptions import TreeError
from repro.tsqr.trees import (
    binary_reduction_tree,
    flat_reduction_tree,
    grid_hierarchical_tree,
    tree_for,
)


def _clusters(per_cluster: int, names=("a", "b", "c", "d")) -> list[str]:
    return [name for name in names for _ in range(per_cluster)]


class TestBasicShapes:
    def test_flat_tree(self):
        tree = flat_reduction_tree(6)
        assert tree.kind == "flat"
        assert tree.depth() == 1
        assert tree.n_messages() == 5

    def test_binary_tree_depth(self):
        tree = binary_reduction_tree(64)
        assert tree.depth() == 6
        assert tree.n_messages() == 63

    def test_single_domain(self):
        tree = binary_reduction_tree(1)
        assert tree.n_messages() == 0
        assert tree.depth() == 0

    def test_children_and_parent_consistent(self):
        tree = binary_reduction_tree(10)
        for child, parent in tree.edges():
            assert tree.parent(child) == parent
            assert child in tree.children(parent)

    def test_mismatched_cluster_labels_rejected(self):
        with pytest.raises(TreeError):
            flat_reduction_tree(4, ["a", "b"])


class TestGridHierarchicalTree:
    def test_inter_cluster_messages_is_sites_minus_one(self):
        for n_sites, per_cluster in ((2, 8), (3, 4), (4, 16)):
            clusters = _clusters(per_cluster, names=[f"s{i}" for i in range(n_sites)])
            tree = grid_hierarchical_tree(clusters)
            assert tree.n_inter_cluster_messages() == n_sites - 1

    def test_inter_cluster_count_independent_of_domain_count(self):
        small = grid_hierarchical_tree(_clusters(2))
        large = grid_hierarchical_tree(_clusters(64))
        assert small.n_inter_cluster_messages() == large.n_inter_cluster_messages() == 3

    def test_total_messages_still_n_minus_one(self):
        clusters = _clusters(8)
        tree = grid_hierarchical_tree(clusters)
        assert tree.n_messages() == len(clusters) - 1

    def test_binary_tree_crosses_clusters_more_often(self):
        clusters = _clusters(8)
        tuned = grid_hierarchical_tree(clusters)
        oblivious = binary_reduction_tree(len(clusters), clusters)
        assert tuned.n_inter_cluster_messages() <= oblivious.n_inter_cluster_messages()
        assert tuned.n_inter_cluster_messages() == 3

    def test_single_cluster_has_no_wan_messages(self):
        tree = grid_hierarchical_tree(["only"] * 16)
        assert tree.n_inter_cluster_messages() == 0

    def test_clusters_listed_in_first_seen_order(self):
        tree = grid_hierarchical_tree(["b", "b", "a", "a"])
        assert tree.clusters() == ["b", "a"]

    def test_describe_mentions_kind(self):
        assert "grid-hierarchical" in grid_hierarchical_tree(_clusters(2)).describe()


class TestFactory:
    def test_tree_for_names(self):
        assert tree_for("flat", 4).kind == "flat"
        assert tree_for("binary", 4).kind == "binary"
        assert tree_for("grid-hierarchical", 4, _clusters(1)).kind == "grid-hierarchical"
        assert tree_for("hierarchical", 4).kind == "grid-hierarchical"

    def test_unknown_kind_rejected(self):
        with pytest.raises(TreeError):
            tree_for("ternary", 4)

    def test_intra_vs_inter_split_adds_up(self):
        clusters = _clusters(4)
        tree = tree_for("grid-hierarchical", len(clusters), clusters)
        assert tree.n_intra_cluster_messages() + tree.n_inter_cluster_messages() == tree.n_messages()
