"""Tests for QCG-TSQR: the parallel TSQR on the simulated grid."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, FactorizationError, SimulationError
from repro.gridsim.executor import run_spmd
from repro.tsqr import parallel as parallel_mod
from repro.tsqr.parallel import TSQRConfig, run_parallel_tsqr, tsqr_reduce_op
from repro.util.random_matrices import random_tall_skinny
from repro.util.validation import (
    check_qr,
    factorization_residual,
    orthogonality_error,
    r_factors_match,
)
from repro.virtual.matrix import VirtualMatrix


@pytest.fixture()
def matrix8():
    return random_tall_skinny(320, 10, seed=21)


class TestConfig:
    def test_wide_matrix_rejected(self):
        with pytest.raises(ConfigurationError):
            TSQRConfig(m=5, n=10)

    def test_matrix_shape_checked(self):
        with pytest.raises(ConfigurationError):
            TSQRConfig(m=100, n=4, matrix=np.zeros((50, 4)))

    def test_domains_must_divide_processes(self):
        config = TSQRConfig(m=1000, n=4, n_domains=3)
        with pytest.raises(ConfigurationError):
            config.resolve_domains(8)

    def test_domains_cannot_exceed_processes(self):
        config = TSQRConfig(m=1000, n=4, n_domains=16)
        with pytest.raises(ConfigurationError):
            config.resolve_domains(8)

    def test_flop_count_doubles_with_q(self):
        r_only = TSQRConfig(m=1000, n=8).flop_count()
        with_q = TSQRConfig(m=1000, n=8, want_q=True).flop_count()
        assert with_q == pytest.approx(2 * r_only)


class TestRealPayloads:
    def test_r_matches_lapack_one_domain_per_process(self, platform8, matrix8):
        config = TSQRConfig(m=320, n=10, matrix=matrix8)
        result = run_parallel_tsqr(platform8, config)
        assert r_factors_match(result.r, np.linalg.qr(matrix8, mode="r"))

    @pytest.mark.parametrize("tree", ["binary", "flat", "grid-hierarchical"])
    def test_tree_kind_does_not_change_r(self, platform8, matrix8, tree):
        config = TSQRConfig(m=320, n=10, matrix=matrix8, tree_kind=tree)
        result = run_parallel_tsqr(platform8, config)
        assert r_factors_match(result.r, np.linalg.qr(matrix8, mode="r"))

    def test_scalapack_domains(self, platform8, matrix8):
        # 4 domains of 2 processes each: domains factored with the distributed QR.
        config = TSQRConfig(m=320, n=10, matrix=matrix8, n_domains=4)
        result = run_parallel_tsqr(platform8, config)
        assert r_factors_match(result.r, np.linalg.qr(matrix8, mode="r"))

    def test_single_domain_is_pure_scalapack(self, platform8, matrix8):
        config = TSQRConfig(m=320, n=10, matrix=matrix8, n_domains=1)
        result = run_parallel_tsqr(platform8, config)
        assert r_factors_match(result.r, np.linalg.qr(matrix8, mode="r"))

    def test_explicit_q(self, platform8, matrix8):
        config = TSQRConfig(m=320, n=10, matrix=matrix8, want_q=True)
        result = run_parallel_tsqr(platform8, config)
        assert result.q is not None
        check_qr(matrix8, result.q, result.r)

    def test_broadcast_r_gives_r_everywhere(self, platform8, matrix8):
        config = TSQRConfig(m=320, n=10, matrix=matrix8, broadcast_r=True)
        result = run_parallel_tsqr(platform8, config)
        for rank_result in result.simulation.results:
            assert rank_result.r is not None
            assert r_factors_match(rank_result.r, np.linalg.qr(matrix8, mode="r"))

    def test_weighted_domains(self, platform8, matrix8):
        weights = tuple([2.0] * 4 + [1.0] * 4)
        config = TSQRConfig(m=320, n=10, matrix=matrix8, domain_weights=weights)
        result = run_parallel_tsqr(platform8, config)
        assert r_factors_match(result.r, np.linalg.qr(matrix8, mode="r"))

    def test_too_many_domains_for_rows_rejected(self, platform8):
        # Pins the contract documented by repro.util.partition.split_counts:
        # the partition helpers tolerate empty/short groups, but the TSQR
        # driver requires every domain to hold at least n rows and says so.
        small = random_tall_skinny(40, 10, seed=3)
        config = TSQRConfig(m=40, n=10, matrix=small)  # 8 domains x 5 rows < 10 columns
        with pytest.raises(SimulationError, match="fewer than n=10"):
            run_parallel_tsqr(platform8, config)


class TestExplicitQMultiProcessDomains:
    """The downward sweep through domains factored by the distributed QR.

    Regression coverage for the former hard error: ``want_q=True`` with
    ``processes_per_domain > 1`` used to raise ``ConfigurationError``; it now
    finishes the sweep with the distributed PDORGQR.
    """

    TOL = 1e-12

    @pytest.mark.parametrize("n_domains", [4, 2, 1])  # ppd = 2, 4, 8 on 8 ranks
    @pytest.mark.parametrize("tree", ["binary", "flat", "grid-hierarchical"])
    def test_q_exact_for_grouped_domains(self, platform8, matrix8, n_domains, tree):
        config = TSQRConfig(
            m=320, n=10, matrix=matrix8, want_q=True, n_domains=n_domains, tree_kind=tree
        )
        result = run_parallel_tsqr(platform8, config)
        assert result.q is not None and result.q.shape == (320, 10)
        assert factorization_residual(matrix8, result.q, result.r) <= self.TOL
        assert orthogonality_error(result.q) <= self.TOL
        assert r_factors_match(result.r, np.linalg.qr(matrix8, mode="r"))

    @pytest.mark.parametrize("n_domains", [2, 4])
    def test_q_with_weighted_domains(self, platform8, matrix8, n_domains):
        weights = tuple(2.0 if d == 0 else 1.0 for d in range(n_domains))
        config = TSQRConfig(
            m=320, n=10, matrix=matrix8, want_q=True, n_domains=n_domains,
            domain_weights=weights,
        )
        result = run_parallel_tsqr(platform8, config)
        assert factorization_residual(matrix8, result.q, result.r) <= self.TOL
        assert orthogonality_error(result.q) <= self.TOL

    def test_q_combined_with_broadcast_r(self, platform8, matrix8):
        config = TSQRConfig(
            m=320, n=10, matrix=matrix8, want_q=True, broadcast_r=True, n_domains=4
        )
        result = run_parallel_tsqr(platform8, config)
        assert factorization_residual(matrix8, result.q, result.r) <= self.TOL
        assert orthogonality_error(result.q) <= self.TOL
        # broadcast_r still reaches every rank when the sweep runs too.
        for rank_result in result.simulation.results:
            assert rank_result.r is not None

    def test_q_assembled_in_rank_order(self, platform8, matrix8):
        config = TSQRConfig(m=320, n=10, matrix=matrix8, want_q=True, n_domains=2)
        result = run_parallel_tsqr(platform8, config)
        # Each rank's block must sit at its own row offset: compare against
        # the blocks returned by the ranks themselves.
        offset = 0
        for rank_result in sorted(result.simulation.results, key=lambda r: r.rank):
            rows = rank_result.local_rows
            np.testing.assert_allclose(
                result.q[offset : offset + rows, :], rank_result.q_local
            )
            offset += rows
        assert offset == 320

    def test_missing_q_block_raises_with_rank_list(self, platform8, matrix8, monkeypatch):
        original = parallel_mod.qcg_tsqr_program

        def dropping(ctx, config):
            res = yield from original(ctx, config)
            if res.rank in (3, 5):
                res.q_local = None
            return res

        monkeypatch.setattr(parallel_mod, "qcg_tsqr_program", dropping)
        config = TSQRConfig(m=320, n=10, matrix=matrix8, want_q=True)
        with pytest.raises((FactorizationError, SimulationError), match=r"\[3, 5\]"):
            run_parallel_tsqr(platform8, config)

    def test_virtual_q_run_completes_for_grouped_domains(self, platform8):
        config = TSQRConfig(m=2**18, n=64, want_q=True, n_domains=2)
        result = run_parallel_tsqr(platform8, config)
        assert result.q is None  # virtual payloads never materialise Q
        assert result.makespan_s > 0
        assert result.trace.total_messages > 0

    @pytest.mark.parametrize("n_domains", [8, 4, 2])
    def test_virtual_and_real_q_runs_trace_identically(self, platform8, matrix8, n_domains):
        """The 33M-row sweeps must exercise the same schedule the numerics use."""
        real = run_parallel_tsqr(
            platform8,
            TSQRConfig(m=320, n=10, matrix=matrix8, want_q=True, n_domains=n_domains),
        )
        virtual = run_parallel_tsqr(
            platform8, TSQRConfig(m=320, n=10, want_q=True, n_domains=n_domains)
        )
        assert real.trace.n_messages == virtual.trace.n_messages
        assert real.trace.bytes_by_link == virtual.trace.bytes_by_link
        assert real.trace.messages_per_rank_max == virtual.trace.messages_per_rank_max
        assert real.trace.flops_per_rank_max == pytest.approx(
            virtual.trace.flops_per_rank_max
        )
        assert real.makespan_s == pytest.approx(virtual.makespan_s)

    def test_sweep_messages_mirror_reduction(self, platform8):
        """Property 1 on the wire: the sweep doubles messages and volume."""
        r_only = run_parallel_tsqr(platform8, TSQRConfig(m=2**18, n=64))
        with_q = run_parallel_tsqr(platform8, TSQRConfig(m=2**18, n=64, want_q=True))
        assert with_q.trace.total_messages == 2 * r_only.trace.total_messages
        r_bytes = sum(r_only.trace.bytes_by_link.values())
        q_bytes = sum(with_q.trace.bytes_by_link.values())
        assert q_bytes == 2 * r_bytes


class TestVirtualPayloads:
    def test_virtual_run_produces_time_and_counts(self, platform8):
        config = TSQRConfig(m=2**18, n=64)
        result = run_parallel_tsqr(platform8, config)
        assert result.r is None
        assert result.makespan_s > 0
        assert result.gflops > 0
        assert result.trace.total_messages > 0

    def test_grid_tree_minimises_wan_messages(self, platform16):
        config = TSQRConfig(m=2**18, n=64, tree_kind="grid-hierarchical")
        tuned = run_parallel_tsqr(platform16, config)
        oblivious = run_parallel_tsqr(
            platform16, TSQRConfig(m=2**18, n=64, tree_kind="binary")
        )
        # 4 clusters: the tuned tree needs exactly 3 wide-area messages.
        assert tuned.trace.inter_cluster_messages == 3
        assert tuned.trace.inter_cluster_messages <= oblivious.trace.inter_cluster_messages

    def test_message_count_independent_of_n(self, platform8):
        narrow = run_parallel_tsqr(platform8, TSQRConfig(m=2**18, n=64))
        wide = run_parallel_tsqr(platform8, TSQRConfig(m=2**18, n=256))
        assert narrow.trace.total_messages == wide.trace.total_messages

    def test_fewer_domains_means_more_messages(self, platform8):
        few = run_parallel_tsqr(platform8, TSQRConfig(m=2**18, n=64, n_domains=2))
        many = run_parallel_tsqr(platform8, TSQRConfig(m=2**18, n=64, n_domains=8))
        # Grouped domains run the per-column ScaLAPACK factorization inside
        # each group, which costs many more messages overall.
        assert few.trace.total_messages > many.trace.total_messages

    def test_want_q_roughly_doubles_time(self, platform8):
        r_only = run_parallel_tsqr(platform8, TSQRConfig(m=2**20, n=64))
        with_q = run_parallel_tsqr(platform8, TSQRConfig(m=2**20, n=64, want_q=True))
        ratio = with_q.makespan_s / r_only.makespan_s
        assert 1.6 <= ratio <= 2.4  # paper Property 1

    def test_performance_increases_with_m(self, platform8):
        small = run_parallel_tsqr(platform8, TSQRConfig(m=2**15, n=64))
        large = run_parallel_tsqr(platform8, TSQRConfig(m=2**22, n=64))
        assert large.gflops > small.gflops  # paper Property 3

    def test_performance_increases_with_n(self, platform8):
        narrow = run_parallel_tsqr(platform8, TSQRConfig(m=2**20, n=64))
        wide = run_parallel_tsqr(platform8, TSQRConfig(m=2**20, n=256))
        assert wide.gflops > narrow.gflops  # paper Property 4


class TestAllreduceFormulation:
    def test_tsqr_as_single_allreduce(self, platform8, matrix8):
        """Paper §II-C: TSQR is one allreduce with the stacked-QR operator."""
        from repro.kernels.householder import geqrf
        from repro.util.partition import block_ranges

        op = tsqr_reduce_op(10)

        def prog(ctx):
            start, stop = block_ranges(320, ctx.comm.size)[ctx.comm.rank]
            local_r = geqrf(matrix8[start:stop, :]).r
            return (yield from ctx.comm.allreduce(np.triu(local_r), op=op))

        res = run_spmd(platform8, prog, collective_tree="hierarchical")
        reference = np.linalg.qr(matrix8, mode="r")
        for r in res.results:
            assert r_factors_match(r, reference)

    def test_allreduce_op_handles_virtual_payloads(self, platform8):
        op = tsqr_reduce_op(16)

        def prog(ctx):
            return (yield from ctx.comm.allreduce(VirtualMatrix(16, 16, structure="upper"), op=op))

        res = run_spmd(platform8, prog)
        assert all(isinstance(r, VirtualMatrix) for r in res.results)
