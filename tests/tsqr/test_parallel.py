"""Tests for QCG-TSQR: the parallel TSQR on the simulated grid."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, SimulationError
from repro.gridsim.executor import run_spmd
from repro.tsqr.parallel import TSQRConfig, run_parallel_tsqr, tsqr_reduce_op
from repro.util.random_matrices import random_tall_skinny
from repro.util.validation import check_qr, r_factors_match
from repro.virtual.matrix import VirtualMatrix


@pytest.fixture()
def matrix8():
    return random_tall_skinny(320, 10, seed=21)


class TestConfig:
    def test_wide_matrix_rejected(self):
        with pytest.raises(ConfigurationError):
            TSQRConfig(m=5, n=10)

    def test_matrix_shape_checked(self):
        with pytest.raises(ConfigurationError):
            TSQRConfig(m=100, n=4, matrix=np.zeros((50, 4)))

    def test_domains_must_divide_processes(self):
        config = TSQRConfig(m=1000, n=4, n_domains=3)
        with pytest.raises(ConfigurationError):
            config.resolve_domains(8)

    def test_domains_cannot_exceed_processes(self):
        config = TSQRConfig(m=1000, n=4, n_domains=16)
        with pytest.raises(ConfigurationError):
            config.resolve_domains(8)

    def test_flop_count_doubles_with_q(self):
        r_only = TSQRConfig(m=1000, n=8).flop_count()
        with_q = TSQRConfig(m=1000, n=8, want_q=True).flop_count()
        assert with_q == pytest.approx(2 * r_only)


class TestRealPayloads:
    def test_r_matches_lapack_one_domain_per_process(self, platform8, matrix8):
        config = TSQRConfig(m=320, n=10, matrix=matrix8)
        result = run_parallel_tsqr(platform8, config)
        assert r_factors_match(result.r, np.linalg.qr(matrix8, mode="r"))

    @pytest.mark.parametrize("tree", ["binary", "flat", "grid-hierarchical"])
    def test_tree_kind_does_not_change_r(self, platform8, matrix8, tree):
        config = TSQRConfig(m=320, n=10, matrix=matrix8, tree_kind=tree)
        result = run_parallel_tsqr(platform8, config)
        assert r_factors_match(result.r, np.linalg.qr(matrix8, mode="r"))

    def test_scalapack_domains(self, platform8, matrix8):
        # 4 domains of 2 processes each: domains factored with the distributed QR.
        config = TSQRConfig(m=320, n=10, matrix=matrix8, n_domains=4)
        result = run_parallel_tsqr(platform8, config)
        assert r_factors_match(result.r, np.linalg.qr(matrix8, mode="r"))

    def test_single_domain_is_pure_scalapack(self, platform8, matrix8):
        config = TSQRConfig(m=320, n=10, matrix=matrix8, n_domains=1)
        result = run_parallel_tsqr(platform8, config)
        assert r_factors_match(result.r, np.linalg.qr(matrix8, mode="r"))

    def test_explicit_q(self, platform8, matrix8):
        config = TSQRConfig(m=320, n=10, matrix=matrix8, want_q=True)
        result = run_parallel_tsqr(platform8, config)
        assert result.q is not None
        check_qr(matrix8, result.q, result.r)

    def test_want_q_with_grouped_domains_rejected(self, platform8, matrix8):
        config = TSQRConfig(m=320, n=10, matrix=matrix8, want_q=True, n_domains=4)
        with pytest.raises((ConfigurationError, SimulationError)):
            run_parallel_tsqr(platform8, config)

    def test_broadcast_r_gives_r_everywhere(self, platform8, matrix8):
        config = TSQRConfig(m=320, n=10, matrix=matrix8, broadcast_r=True)
        result = run_parallel_tsqr(platform8, config)
        for rank_result in result.simulation.results:
            assert rank_result.r is not None
            assert r_factors_match(rank_result.r, np.linalg.qr(matrix8, mode="r"))

    def test_weighted_domains(self, platform8, matrix8):
        weights = tuple([2.0] * 4 + [1.0] * 4)
        config = TSQRConfig(m=320, n=10, matrix=matrix8, domain_weights=weights)
        result = run_parallel_tsqr(platform8, config)
        assert r_factors_match(result.r, np.linalg.qr(matrix8, mode="r"))

    def test_too_many_domains_for_rows_rejected(self, platform8):
        small = random_tall_skinny(40, 10, seed=3)
        config = TSQRConfig(m=40, n=10, matrix=small)  # 8 domains x 5 rows < 10 columns
        with pytest.raises(SimulationError):
            run_parallel_tsqr(platform8, config)


class TestVirtualPayloads:
    def test_virtual_run_produces_time_and_counts(self, platform8):
        config = TSQRConfig(m=2**18, n=64)
        result = run_parallel_tsqr(platform8, config)
        assert result.r is None
        assert result.makespan_s > 0
        assert result.gflops > 0
        assert result.trace.total_messages > 0

    def test_grid_tree_minimises_wan_messages(self, platform16):
        config = TSQRConfig(m=2**18, n=64, tree_kind="grid-hierarchical")
        tuned = run_parallel_tsqr(platform16, config)
        oblivious = run_parallel_tsqr(
            platform16, TSQRConfig(m=2**18, n=64, tree_kind="binary")
        )
        # 4 clusters: the tuned tree needs exactly 3 wide-area messages.
        assert tuned.trace.inter_cluster_messages == 3
        assert tuned.trace.inter_cluster_messages <= oblivious.trace.inter_cluster_messages

    def test_message_count_independent_of_n(self, platform8):
        narrow = run_parallel_tsqr(platform8, TSQRConfig(m=2**18, n=64))
        wide = run_parallel_tsqr(platform8, TSQRConfig(m=2**18, n=256))
        assert narrow.trace.total_messages == wide.trace.total_messages

    def test_fewer_domains_means_more_messages(self, platform8):
        few = run_parallel_tsqr(platform8, TSQRConfig(m=2**18, n=64, n_domains=2))
        many = run_parallel_tsqr(platform8, TSQRConfig(m=2**18, n=64, n_domains=8))
        # Grouped domains run the per-column ScaLAPACK factorization inside
        # each group, which costs many more messages overall.
        assert few.trace.total_messages > many.trace.total_messages

    def test_want_q_roughly_doubles_time(self, platform8):
        r_only = run_parallel_tsqr(platform8, TSQRConfig(m=2**20, n=64))
        with_q = run_parallel_tsqr(platform8, TSQRConfig(m=2**20, n=64, want_q=True))
        ratio = with_q.makespan_s / r_only.makespan_s
        assert 1.6 <= ratio <= 2.4  # paper Property 1

    def test_performance_increases_with_m(self, platform8):
        small = run_parallel_tsqr(platform8, TSQRConfig(m=2**15, n=64))
        large = run_parallel_tsqr(platform8, TSQRConfig(m=2**22, n=64))
        assert large.gflops > small.gflops  # paper Property 3

    def test_performance_increases_with_n(self, platform8):
        narrow = run_parallel_tsqr(platform8, TSQRConfig(m=2**20, n=64))
        wide = run_parallel_tsqr(platform8, TSQRConfig(m=2**20, n=256))
        assert wide.gflops > narrow.gflops  # paper Property 4


class TestAllreduceFormulation:
    def test_tsqr_as_single_allreduce(self, platform8, matrix8):
        """Paper §II-C: TSQR is one allreduce with the stacked-QR operator."""
        from repro.kernels.householder import geqrf
        from repro.util.partition import block_ranges

        op = tsqr_reduce_op(10)

        def prog(ctx):
            start, stop = block_ranges(320, ctx.comm.size)[ctx.comm.rank]
            local_r = geqrf(matrix8[start:stop, :]).r
            return ctx.comm.allreduce(np.triu(local_r), op=op)

        res = run_spmd(platform8, prog, collective_tree="hierarchical")
        reference = np.linalg.qr(matrix8, mode="r")
        for r in res.results:
            assert r_factors_match(r, reference)

    def test_allreduce_op_handles_virtual_payloads(self, platform8):
        op = tsqr_reduce_op(16)

        def prog(ctx):
            return ctx.comm.allreduce(VirtualMatrix(16, 16, structure="upper"), op=op)

        res = run_spmd(platform8, prog)
        assert all(isinstance(r, VirtualMatrix) for r in res.results)
