"""Tests for sequential TSQR and its implicit Q representation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.tsqr.sequential import blocked_household_qr, tsqr, tsqr_r
from repro.tsqr.trees import grid_hierarchical_tree
from repro.util.random_matrices import (
    graded_matrix,
    matrix_with_condition_number,
    random_tall_skinny,
)
from repro.util.validation import check_qr, orthogonality_error, r_factors_match


class TestRFactor:
    @pytest.mark.parametrize("n_domains", [1, 2, 3, 7, 16])
    def test_matches_lapack(self, tall_matrix, reference_r, n_domains):
        r = tsqr_r(tall_matrix, n_domains)
        assert r_factors_match(r, reference_r)

    @pytest.mark.parametrize("tree", ["binary", "flat", "grid-hierarchical"])
    def test_tree_shape_does_not_change_r(self, tall_matrix, reference_r, tree):
        r = tsqr_r(tall_matrix, 8, tree=tree)
        assert r_factors_match(r, reference_r)

    def test_r_has_nonnegative_diagonal(self, tall_matrix):
        r = tsqr_r(tall_matrix, 6)
        assert np.all(np.diag(r) >= 0)

    def test_r_is_upper_triangular(self, tall_matrix):
        r = tsqr_r(tall_matrix, 5)
        assert np.allclose(np.tril(r, -1), 0.0)

    def test_default_domain_count(self):
        a = random_tall_skinny(1000, 8, seed=1)
        result = tsqr(a, want_q=False)
        assert r_factors_match(result.r, np.linalg.qr(a, mode="r"))

    def test_short_leaf_blocks_supported(self):
        # 10 domains of a 25 x 4 matrix: some leaves have fewer rows than columns.
        a = random_tall_skinny(25, 4, seed=2)
        r = tsqr_r(a, 10)
        assert r_factors_match(r, np.linalg.qr(a, mode="r"))

    def test_explicit_tree_object(self, tall_matrix, reference_r):
        clusters = ["c0"] * 4 + ["c1"] * 4
        tree = grid_hierarchical_tree(clusters)
        r = tsqr_r(tall_matrix, 8, tree=tree)
        assert r_factors_match(r, reference_r)

    def test_tree_domain_count_mismatch(self, tall_matrix):
        tree = grid_hierarchical_tree(["a"] * 4)
        with pytest.raises(ShapeError):
            tsqr(tall_matrix, 8, tree=tree)

    def test_wide_matrix_rejected(self):
        with pytest.raises(ShapeError):
            tsqr(np.zeros((3, 5)))

    def test_single_column(self):
        a = random_tall_skinny(100, 1, seed=3)
        result = tsqr(a, 4, want_q=True)
        assert result.r.shape == (1, 1)
        assert np.isclose(abs(result.r[0, 0]), np.linalg.norm(a))


class TestQFactor:
    @pytest.mark.parametrize("n_domains", [1, 2, 5, 12])
    def test_full_factorization(self, tall_matrix, n_domains):
        result = tsqr(tall_matrix, n_domains, want_q=True)
        check_qr(tall_matrix, result.q.explicit(), result.r)

    def test_q_shape(self, tall_matrix):
        result = tsqr(tall_matrix, 6, want_q=True)
        assert result.q.shape == tall_matrix.shape

    def test_qt_times_a_equals_r(self, tall_matrix):
        result = tsqr(tall_matrix, 6, want_q=True)
        qta = result.q.rmatmat(tall_matrix)
        assert np.allclose(np.triu(qta), result.r, atol=1e-10)

    def test_apply_vector(self, tall_matrix):
        result = tsqr(tall_matrix, 4, want_q=True)
        x = np.arange(float(tall_matrix.shape[1]))
        y = result.q.matmat(x)
        assert y.shape == (tall_matrix.shape[0],)
        assert np.allclose(y, result.q.explicit() @ x, atol=1e-11)

    def test_rmatmat_vector(self, tall_matrix):
        result = tsqr(tall_matrix, 4, want_q=True)
        b = np.ones(tall_matrix.shape[0])
        y = result.q.rmatmat(b)
        assert y.shape == (tall_matrix.shape[1],)

    def test_orthogonality_on_ill_conditioned_matrix(self, ill_conditioned_matrix):
        result = tsqr(ill_conditioned_matrix, 8, want_q=True)
        q = result.q.explicit()
        # TSQR stays orthogonal where CGS/CholQR would have lost many digits.
        assert orthogonality_error(q) < 1e-12

    def test_graded_columns(self):
        a = graded_matrix(400, 9, ratio=1e12, seed=4)
        result = tsqr(a, 8, want_q=True)
        check_qr(a, result.q.explicit(), result.r)

    def test_want_q_false_raises_on_apply(self, tall_matrix):
        result = tsqr(tall_matrix, 4, want_q=False)
        assert result.q is None

    def test_row_order_preserved_for_non_ordered_tree(self, tall_matrix):
        # Binary heap tree combines domains out of row order; Q rows must
        # still come back in the original order.
        result = tsqr(tall_matrix, 7, tree="binary", want_q=True)
        assert np.allclose(result.q.explicit() @ result.r, tall_matrix, atol=1e-10)


class TestBlockedHouseholderQR:
    def test_matches_numpy(self):
        a = random_tall_skinny(120, 20, seed=5)
        q, r = blocked_household_qr(a, block_size=8)
        check_qr(a, q, r)
        assert r_factors_match(r, np.linalg.qr(a, mode="r"))

    def test_stability_comparison_with_cholqr(self):
        a = matrix_with_condition_number(500, 12, 1e9, seed=6)
        result = tsqr(a, 10, want_q=True)
        assert orthogonality_error(result.q.explicit()) < 1e-12
