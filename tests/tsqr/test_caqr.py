"""Tests for tiled CAQR on general matrices."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ShapeError
from repro.tsqr.caqr import caqr, caqr_r
from repro.util.random_matrices import random_matrix
from repro.util.validation import check_qr, r_factors_match


class TestRFactor:
    @pytest.mark.parametrize(
        "m,n,tile",
        [(60, 40, 16), (45, 45, 16), (64, 20, 8), (37, 29, 10), (20, 50, 8)],
    )
    def test_matches_lapack(self, m, n, tile):
        a = random_matrix(m, n, seed=m + n)
        r = caqr_r(a, tile_size=tile)
        assert r_factors_match(r, np.linalg.qr(a, mode="r"))

    @pytest.mark.parametrize("tree", ["flat", "binary", "grid-hierarchical"])
    def test_panel_tree_does_not_change_r(self, tree):
        a = random_matrix(70, 30, seed=3)
        r = caqr_r(a, tile_size=12, panel_tree=tree)
        assert r_factors_match(r, np.linalg.qr(a, mode="r"))

    def test_single_tile_matrix(self):
        a = random_matrix(10, 6, seed=4)
        r = caqr_r(a, tile_size=64)
        assert r_factors_match(r, np.linalg.qr(a, mode="r"))

    def test_invalid_tile_size(self):
        with pytest.raises(ShapeError):
            caqr(random_matrix(8, 8, seed=5), tile_size=0)

    def test_rejects_non_matrix(self):
        with pytest.raises(ShapeError):
            caqr(np.zeros(5))


class TestQFactor:
    def test_thin_q_reconstructs(self):
        a = random_matrix(50, 30, seed=6)
        factors = caqr(a, tile_size=10)
        check_qr(a, factors.thin_q(), factors.r)

    def test_apply_qt_then_q_roundtrip(self):
        a = random_matrix(40, 24, seed=7)
        factors = caqr(a, tile_size=8)
        c = random_matrix(40, 5, seed=8)
        back = factors.apply_q(factors.apply_qt(c))
        assert np.allclose(back, c, atol=1e-11)

    def test_apply_qt_gives_r_on_a(self):
        a = random_matrix(48, 16, seed=9)
        factors = caqr(a, tile_size=8)
        qta = factors.apply_qt(a)
        assert np.allclose(np.triu(qta[:16]), factors.r, atol=1e-10)
        assert np.allclose(qta[16:], 0.0, atol=1e-10)

    def test_wrong_row_count_rejected(self):
        factors = caqr(random_matrix(30, 10, seed=10), tile_size=8)
        with pytest.raises(ShapeError):
            factors.apply_qt(np.zeros((29, 2)))

    def test_want_q_false_drops_transforms(self):
        factors = caqr(random_matrix(30, 10, seed=11), tile_size=8, want_q=False)
        assert factors.transforms == []
        assert r_factors_match(factors.r, np.linalg.qr(random_matrix(30, 10, seed=11), mode="r"))

    def test_want_q_false_never_accumulates_transforms(self, monkeypatch):
        """Regression: transforms must stay empty *while factoring*, not be
        built and discarded at the end — that is what makes the docstring's
        halved-memory claim true during the factorization itself."""
        import importlib

        # ``repro.tsqr.caqr`` the module, not the equally-named function the
        # package re-exports.
        caqr_mod = importlib.import_module("repro.tsqr.caqr")

        created: list[object] = []
        original = caqr_mod.CAQRTransform

        def counting(*args, **kwargs):
            tr = original(*args, **kwargs)
            created.append(tr)
            return tr

        monkeypatch.setattr(caqr_mod, "CAQRTransform", counting)
        a = random_matrix(40, 24, seed=13)
        factors = caqr_mod.caqr(a, tile_size=8, want_q=False)
        assert created == []  # no transform object was ever constructed
        assert factors.transforms == []
        assert r_factors_match(factors.r, np.linalg.qr(a, mode="r"))
        # ... while want_q=True still records them through the same path.
        factors_q = caqr_mod.caqr(a, tile_size=8, want_q=True)
        assert created and factors_q.transforms == created

    def test_square_matrix_full_q(self):
        a = random_matrix(32, 32, seed=12)
        factors = caqr(a, tile_size=8)
        q = factors.thin_q()
        assert np.allclose(q.T @ q, np.eye(32), atol=1e-11)
        assert np.allclose(q @ factors.r, a, atol=1e-10)
