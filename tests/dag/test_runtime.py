"""Tests for the DAG runtime (repro.dag.runtime) and its analysis layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dag import (
    DAGCAQRConfig,
    mean_idle_fraction,
    rank_utilization,
    run_dag_caqr,
    run_dag_tsqr,
    write_gantt_csv,
)
from repro.exceptions import ConfigurationError
from repro.model.costs import dag_caqr_costs
from repro.programs.caqr import CAQRConfig, run_parallel_caqr
from repro.util.random_matrices import random_matrix
from repro.util.validation import r_factors_match

PLACEMENTS = ("block", "block-cyclic", "owner-computes")
PRIORITIES = ("critical-path", "panel", "fifo")


class TestConfig:
    def test_rejects_bad_policies(self):
        with pytest.raises(ConfigurationError, match="placement"):
            DAGCAQRConfig(m=8, n=8, placement="striped")
        with pytest.raises(ConfigurationError, match="priority"):
            DAGCAQRConfig(m=8, n=8, priority="lifo")

    def test_mirrors_caqr_config_validation(self):
        with pytest.raises(ConfigurationError, match="positive"):
            DAGCAQRConfig(m=0, n=4)
        with pytest.raises(ConfigurationError, match="panel tree"):
            DAGCAQRConfig(m=8, n=8, panel_tree="fractal")
        with pytest.raises(ConfigurationError, match="does not match"):
            DAGCAQRConfig(m=8, n=8, matrix=np.zeros((8, 4)))


class TestRealPayloads:
    @pytest.mark.parametrize("placement", PLACEMENTS)
    @pytest.mark.parametrize("priority", PRIORITIES)
    def test_bitwise_identical_to_spmd_caqr(self, platform8, placement, priority):
        """Every placement x priority combination reproduces the SPMD R
        factor bit for bit (the graph pins each tile's operation order)."""
        m, n, tile = 120, 60, 16
        a = random_matrix(m, n, seed=7)
        spmd = run_parallel_caqr(
            platform8, CAQRConfig(m=m, n=n, tile_size=tile, matrix=a)
        )
        dag = run_dag_caqr(
            platform8,
            DAGCAQRConfig(
                m=m, n=n, tile_size=tile, placement=placement, priority=priority,
                matrix=a,
            ),
        )
        assert np.array_equal(dag.r, spmd.r)
        assert r_factors_match(dag.r, np.linalg.qr(a, mode="r"))

    @pytest.mark.parametrize("tree", ("flat", "binary", "grid-hierarchical"))
    @pytest.mark.parametrize(
        "m,n,tile",
        [
            (200, 50, 8),   # many tile rows per rank
            (37, 29, 10),   # nothing divides anything
            (40, 80, 16),   # fat matrix
            (10, 6, 64),    # single tile, idle ranks
        ],
    )
    def test_r_matches_lapack(self, platform8, m, n, tile, tree):
        a = random_matrix(m, n, seed=m * 31 + n)
        dag = run_dag_caqr(
            platform8,
            DAGCAQRConfig(m=m, n=n, tile_size=tile, panel_tree=tree, matrix=a),
        )
        assert dag.r.shape == (min(m, n), n)
        assert r_factors_match(dag.r, np.linalg.qr(a, mode="r"))


class TestVirtualPayloads:
    def test_virtual_and_real_runs_trace_identically(self, platform8):
        m, n, tile = 200, 50, 8
        a = random_matrix(m, n, seed=9)
        real = run_dag_caqr(
            platform8, DAGCAQRConfig(m=m, n=n, tile_size=tile, matrix=a)
        )
        virtual = run_dag_caqr(platform8, DAGCAQRConfig(m=m, n=n, tile_size=tile))
        assert real.trace.n_messages == virtual.trace.n_messages
        assert real.trace.bytes_by_link == virtual.trace.bytes_by_link
        assert real.trace.flops_per_rank_max == pytest.approx(
            virtual.trace.flops_per_rank_max
        )
        assert real.makespan_s == pytest.approx(virtual.makespan_s)

    def test_identical_runs_are_trace_deterministic(self, platform8):
        config = DAGCAQRConfig(m=2**12, n=96, tile_size=32)
        first = run_dag_caqr(platform8, config, record_messages=True)
        second = run_dag_caqr(platform8, config, record_messages=True)
        assert first.simulation.events == second.simulation.events
        assert first.makespan_s == second.makespan_s

    def test_counts_match_model_exactly(self, platform8):
        m, n, tile = 2**12, 192, 32
        p = platform8.n_processes
        clusters = [platform8.placement.cluster_of(r) for r in range(p)]
        for placement in PLACEMENTS:
            run = run_dag_caqr(
                platform8, DAGCAQRConfig(m=m, n=n, tile_size=tile, placement=placement)
            )
            model = dag_caqr_costs(
                m, n, p, tile_size=tile, placement=placement, clusters=clusters
            )
            assert run.trace.total_messages == model.messages
            measured_volume = sum(run.trace.bytes_by_link.values()) / 8.0
            assert measured_volume == pytest.approx(model.volume_doubles, rel=1e-12)

    def test_latency_hiding_beats_bulk_synchronous_spmd(self, platform8):
        """The headline property: dataflow execution overlaps panel
        factorization with trailing updates and beats the static schedule."""
        m, n, tile = 2**13, 128, 32
        spmd = run_parallel_caqr(platform8, CAQRConfig(m=m, n=n, tile_size=tile))
        for priority in PRIORITIES:
            dag = run_dag_caqr(
                platform8, DAGCAQRConfig(m=m, n=n, tile_size=tile, priority=priority)
            )
            assert dag.makespan_s <= spmd.makespan_s
            assert dag.critical_path_s <= dag.makespan_s + 1e-12

    def test_critical_path_bound_holds_for_every_policy(self, platform8):
        for placement in PLACEMENTS:
            dag = run_dag_caqr(
                platform8,
                DAGCAQRConfig(m=2**12, n=96, tile_size=32, placement=placement),
            )
            assert 0.0 < dag.critical_path_s <= dag.makespan_s + 1e-12


class TestAnalysis:
    def test_rank_utilization_partitions_the_makespan(self, platform8):
        dag = run_dag_caqr(platform8, DAGCAQRConfig(m=2**12, n=96, tile_size=32))
        usage = rank_utilization(dag.trace, dag.makespan_s)
        assert len(usage) == platform8.n_processes
        for u in usage:
            assert u.busy_s >= 0 and u.comm_wait_s >= 0 and u.idle_s >= 0
            assert u.total_s == pytest.approx(dag.makespan_s)
        assert 0.0 <= mean_idle_fraction(dag.trace, dag.makespan_s) <= 1.0

    def test_schedule_recording_and_gantt_export(self, platform8, tmp_path):
        dag = run_dag_caqr(
            platform8,
            DAGCAQRConfig(m=2**10, n=64, tile_size=32),
            record_schedule=True,
        )
        assert dag.schedule is not None
        assert len(dag.schedule) == dag.graph.n_tasks
        for entry in dag.schedule:
            assert entry.end_s >= entry.start_s
        path = write_gantt_csv(dag.schedule, tmp_path / "gantt.csv")
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "task,kernel,rank,start_s,end_s"
        assert len(lines) == dag.graph.n_tasks + 1


class TestTSQRGraphRuntime:
    @pytest.mark.parametrize("tree", ("flat", "binary", "grid-hierarchical"))
    def test_r_matches_lapack(self, platform8, tree):
        a = random_matrix(800, 24, seed=3)
        result = run_dag_tsqr(platform8, 800, 24, tree_kind=tree, matrix=a)
        assert result.r.shape == (24, 24)
        assert r_factors_match(result.r, np.linalg.qr(a, mode="r"))

    def test_virtual_run_costs_the_reduction(self, platform8):
        result = run_dag_tsqr(platform8, 2**18, 64)
        assert result.r is None
        assert result.makespan_s > 0
        assert result.trace.total_messages > 0
        assert result.critical_path_s <= result.makespan_s + 1e-12
