"""Tests for the registry's non-QR scenarios: tiled Cholesky and tiled LU.

The tentpole claim of the algorithm registry: the runtime, placement,
priority and analysis layers are algorithm-agnostic, so a new factorization
registered in ``dag/kernels.py`` is *exact* (bit-identical to a sequential
execution of the same kernels, numerically correct against LAPACK) under
every placement x priority policy, and its measured communication matches
the analytic model to the message.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dag import (
    DAGFactorizationConfig,
    cached_graph,
    run_dag_factorization,
)
from repro.exceptions import ConfigurationError
from repro.kernels import tiled_cholesky as chol
from repro.kernels import tiled_lu as lu
from repro.model.costs import dag_cholesky_costs, dag_lu_costs
from repro.util.partition import TileGrid
from repro.util.random_matrices import random_matrix
from repro.virtual.flops import cholesky_flops, lu_flops

PLACEMENTS = ("block", "block-cyclic", "owner-computes")
PRIORITIES = ("critical-path", "panel", "fifo")


def spd_matrix(n: int, *, seed: int = 0) -> np.ndarray:
    """A well-conditioned symmetric positive-definite test matrix."""
    a = random_matrix(n, n, seed=seed)
    return a @ a.T + n * np.eye(n)


def dominant_matrix(m: int, n: int, *, seed: int = 0) -> np.ndarray:
    """A diagonally dominant matrix (unpivoted LU is stable on these)."""
    a = random_matrix(m, n, seed=seed)
    k = min(m, n)
    a[:k, :k] += (m + n) * np.eye(k)
    return a


def reference_cholesky(a: np.ndarray, tile_size: int) -> np.ndarray:
    """Sequential tiled Cholesky: the same kernels in loop-nest order."""
    n = a.shape[0]
    grid = TileGrid(m=n, n=n, tile_size=tile_size)
    t = [[grid.tile(a, i, j).copy() for j in range(grid.nt)] for i in range(grid.mt)]
    for k in range(grid.nt):
        t[k][k] = chol.potrf(t[k][k])
        for i in range(k + 1, grid.mt):
            t[i][k] = chol.trsm(t[k][k], t[i][k])
        for j in range(k + 1, grid.nt):
            t[j][j] = chol.syrk(t[j][k], t[j][j])
            for i in range(j + 1, grid.mt):
                t[i][j] = chol.gemm(t[i][k], t[j][k], t[i][j])
    out = np.zeros((n, n))
    for i in range(grid.mt):
        for j in range(i + 1):
            grid.set_tile(out, i, j, t[i][j])
    return np.tril(out)


def reference_lu(a: np.ndarray, tile_size: int) -> np.ndarray:
    """Sequential tiled right-looking LU (no pivoting), packed ``L\\U``."""
    m, n = a.shape
    grid = TileGrid(m=m, n=n, tile_size=tile_size)
    t = [[grid.tile(a, i, j).copy() for j in range(grid.nt)] for i in range(grid.mt)]
    for k in range(grid.n_panels):
        t[k][k] = lu.getrf(t[k][k])
        for j in range(k + 1, grid.nt):
            t[k][j] = lu.trsm_row(t[k][k], t[k][j])
        for i in range(k + 1, grid.mt):
            t[i][k] = lu.trsm_col(t[k][k], t[i][k])
        for j in range(k + 1, grid.nt):
            for i in range(k + 1, grid.mt):
                t[i][j] = lu.gemm(t[i][k], t[k][j], t[i][j])
    out = np.zeros((m, n))
    for i in range(grid.mt):
        for j in range(grid.nt):
            grid.set_tile(out, i, j, t[i][j])
    return out


def unpack_lu(packed: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Split a packed ``L\\U`` into the unit-lower ``L`` and upper ``U``."""
    m, n = packed.shape
    k = min(m, n)
    l_factor = np.tril(packed[:, :k], -1) + np.eye(m, k)
    u_factor = np.triu(packed[:k, :])
    return l_factor, u_factor


class TestConfigValidation:
    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown algorithm"):
            DAGFactorizationConfig(m=8, n=8, algorithm="qlp")

    def test_cholesky_requires_square(self):
        with pytest.raises(ConfigurationError, match="square"):
            DAGFactorizationConfig(m=16, n=8, algorithm="cholesky")

    def test_panel_tree_rejected_off_qr(self):
        with pytest.raises(ConfigurationError, match="panel tree"):
            DAGFactorizationConfig(m=8, n=8, algorithm="cholesky", panel_tree="flat")
        with pytest.raises(ConfigurationError, match="panel tree"):
            DAGFactorizationConfig(m=16, n=8, algorithm="lu", panel_tree="flat")

    def test_policy_validation_covers_new_algorithms(self):
        with pytest.raises(ConfigurationError, match="placement"):
            DAGFactorizationConfig(m=8, n=8, algorithm="cholesky", placement="striped")
        with pytest.raises(ConfigurationError, match="priority"):
            DAGFactorizationConfig(m=16, n=8, algorithm="lu", priority="lifo")

    def test_matrix_shape_checked(self):
        with pytest.raises(ConfigurationError, match="does not match"):
            DAGFactorizationConfig(
                m=8, n=8, algorithm="cholesky", matrix=np.zeros((8, 4))
            )


class TestCholeskyExactness:
    @pytest.mark.parametrize("placement", PLACEMENTS)
    @pytest.mark.parametrize("priority", PRIORITIES)
    def test_bitwise_identical_to_sequential_reference(
        self, platform8, placement, priority
    ):
        """The graph's edges pin each tile's operation sequence, so every
        schedule reproduces the sequential tiled factorization bit for bit."""
        n, tile = 96, 16
        a = spd_matrix(n, seed=3)
        run = run_dag_factorization(
            platform8,
            DAGFactorizationConfig(
                m=n, n=n, tile_size=tile, placement=placement, priority=priority,
                matrix=a, algorithm="cholesky",
            ),
        )
        assert np.array_equal(run.r, reference_cholesky(a, tile))

    @pytest.mark.parametrize("n,tile", [(64, 16), (96, 32), (130, 24)])
    def test_matches_lapack(self, platform8, n, tile):
        a = spd_matrix(n, seed=n)
        run = run_dag_factorization(
            platform8,
            DAGFactorizationConfig(m=n, n=n, tile_size=tile, matrix=a,
                                   algorithm="cholesky"),
        )
        l_ref = np.linalg.cholesky(a)
        assert np.linalg.norm(run.r - l_ref) / np.linalg.norm(l_ref) < 1e-12
        assert np.linalg.norm(run.r @ run.r.T - a) / np.linalg.norm(a) < 1e-12


class TestLUExactness:
    @pytest.mark.parametrize("placement", PLACEMENTS)
    @pytest.mark.parametrize("priority", PRIORITIES)
    def test_bitwise_identical_to_sequential_reference(
        self, platform8, placement, priority
    ):
        m, n, tile = 120, 88, 16
        a = dominant_matrix(m, n, seed=5)
        run = run_dag_factorization(
            platform8,
            DAGFactorizationConfig(
                m=m, n=n, tile_size=tile, placement=placement, priority=priority,
                matrix=a, algorithm="lu",
            ),
        )
        assert np.array_equal(run.r, reference_lu(a, tile))

    @pytest.mark.parametrize("m,n,tile", [(64, 64, 16), (96, 48, 16), (60, 96, 16),
                                          (130, 70, 24)])
    def test_factors_reconstruct_the_matrix(self, platform8, m, n, tile):
        """Tall, square and wide shapes: ``L U`` recovers ``A`` to roundoff."""
        a = dominant_matrix(m, n, seed=m + n)
        run = run_dag_factorization(
            platform8,
            DAGFactorizationConfig(m=m, n=n, tile_size=tile, matrix=a, algorithm="lu"),
        )
        l_factor, u_factor = unpack_lu(run.r)
        err = np.linalg.norm(l_factor @ u_factor - a) / np.linalg.norm(a)
        assert err < 1e-12


class TestCountsMatchModel:
    @pytest.mark.parametrize("placement", PLACEMENTS)
    def test_cholesky_counts_exact(self, platform8, placement):
        n, tile = 1024, 64
        p = platform8.n_processes
        run = run_dag_factorization(
            platform8,
            DAGFactorizationConfig(m=n, n=n, tile_size=tile, placement=placement,
                                   algorithm="cholesky"),
        )
        model = dag_cholesky_costs(n, p, tile_size=tile, placement=placement)
        assert run.trace.total_messages == model.messages
        measured_volume = sum(run.trace.bytes_by_link.values()) / 8.0
        assert measured_volume == pytest.approx(model.volume_doubles, rel=1e-12)

    @pytest.mark.parametrize("placement", PLACEMENTS)
    def test_lu_counts_exact(self, platform8, placement):
        m, n, tile = 1536, 1024, 128
        p = platform8.n_processes
        run = run_dag_factorization(
            platform8,
            DAGFactorizationConfig(m=m, n=n, tile_size=tile, placement=placement,
                                   algorithm="lu"),
        )
        model = dag_lu_costs(m, n, p, tile_size=tile, placement=placement)
        assert run.trace.total_messages == model.messages
        measured_volume = sum(run.trace.bytes_by_link.values()) / 8.0
        assert measured_volume == pytest.approx(model.volume_doubles, rel=1e-12)

    def test_graph_flops_within_10pct_of_closed_form(self):
        """Summed per-task flop counts agree with the ``n^3/3`` / LU closed
        forms (the gap is the structured small-order terms of the tiles)."""
        n, tile = 2048, 128
        g = cached_graph("cholesky", n, n, tile)
        total = sum(t.flops for t in g.tasks)
        assert total == pytest.approx(cholesky_flops(n), rel=0.10)
        m = 3072
        g = cached_graph("lu", m, n, tile)
        total = sum(t.flops for t in g.tasks)
        assert total == pytest.approx(lu_flops(m, n), rel=0.10)

    def test_critical_path_bounds_makespan(self, platform8):
        for algorithm, m, n in (("cholesky", 2048, 2048), ("lu", 2048, 1024)):
            run = run_dag_factorization(
                platform8,
                DAGFactorizationConfig(m=m, n=n, tile_size=128, algorithm=algorithm),
            )
            assert 0.0 < run.critical_path_s <= run.makespan_s


class TestGraphCache:
    def test_same_arguments_return_the_same_object(self):
        a = cached_graph("cholesky", 512, 512, 64)
        b = cached_graph("cholesky", 512, 512, 64)
        assert a is b  # the analyses' per-graph caches key on identity

    def test_algorithms_cannot_collide(self):
        """The cache key includes the algorithm kind: identical shape
        parameters for different algorithms are distinct entries."""
        chol_graph = cached_graph("cholesky", 512, 512, 64)
        lu_graph = cached_graph("lu", 512, 512, 64)
        qr_graph = cached_graph("qr", 512, 512, 64)
        assert chol_graph is not lu_graph
        assert chol_graph is not qr_graph
        assert {g.kind for g in (chol_graph, lu_graph, qr_graph)} == {
            "tiled-cholesky", "tiled-lu", "tiled-qr"
        }

    def test_shape_parameters_are_all_keyed(self):
        assert cached_graph("cholesky", 512, 512, 64) is not cached_graph(
            "cholesky", 512, 512, 32
        )
        assert cached_graph("qr", 512, 256, 64, 2) is not cached_graph(
            "qr", 512, 256, 64, 2, "flat"
        )


class TestVirtualPayloads:
    def test_virtual_and_real_runs_trace_identically(self, platform8):
        """Virtual Cholesky charges the same flops and bytes as a real run."""
        n, tile = 256, 64
        a = spd_matrix(n, seed=9)
        real = run_dag_factorization(
            platform8,
            DAGFactorizationConfig(m=n, n=n, tile_size=tile, matrix=a,
                                   algorithm="cholesky"),
            record_messages=True,
        )
        virtual = run_dag_factorization(
            platform8,
            DAGFactorizationConfig(m=n, n=n, tile_size=tile, algorithm="cholesky"),
            record_messages=True,
        )
        assert real.simulation.events == virtual.simulation.events
        assert real.makespan_s == virtual.makespan_s
