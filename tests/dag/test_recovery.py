"""DAG re-execution recovery: bit-identical results despite rank deaths.

The contract: given a deterministic failure schedule, the fault-tolerant
DAG runtime re-places the dead ranks' unfinished work (plus the transitive
closure of lost tile versions) onto survivors, and a real-mode run returns
the factor **bit-identical** to the failure-free run — while the same
schedule against the SPMD runtime deterministically raises, which is the
capability gap the recovery layer demonstrates.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.dag.runtime as runtime_mod
from repro.dag import (
    DAGCAQRConfig,
    DAGFactorizationConfig,
    build_recovery_plan,
    cached_graph,
    lost_version_closure,
    run_dag_factorization,
)
from repro.exceptions import ConfigurationError, RankFailedError
from repro.gridsim.failures import FailureSchedule, RankFailure
from repro.programs.caqr import CAQRConfig, run_parallel_caqr
from repro.util.random_matrices import random_matrix

BACKENDS = ("coroutine", "threads")


def spd_matrix(n: int, *, seed: int = 0) -> np.ndarray:
    a = random_matrix(n, n, seed=seed)
    return a @ a.T + n * np.eye(n)


def qr_config(seed: int = 3) -> DAGCAQRConfig:
    a = random_matrix(256, 96, seed=seed)
    return DAGCAQRConfig(m=256, n=96, tile_size=32, matrix=a)


# ---------------------------------------------------------------------------
# The closure itself (unit level, synthetic survivor state)
# ---------------------------------------------------------------------------

class TestLostVersionClosure:
    def graph(self):
        return cached_graph("cholesky", 128, 128, 64)  # 4 tasks: POTRF/TRSM/SYRK/POTRF

    def test_nothing_lost_means_nothing_to_do(self):
        g = self.graph()
        H = g.n_handles
        done = set(range(len(g.tasks)))
        final = {(g.last_writer(h) + 1) * H + h for h in range(H)}
        assert lost_version_closure(g, done, final, final) == set()

    def test_lost_result_version_readds_its_writer(self):
        g = self.graph()
        H = g.n_handles
        done = set(range(len(g.tasks)))
        last = len(g.tasks) - 1
        wanted = {(last + 1) * H + h for h in g.tasks[last].writes}
        # Nothing survives: the writer must re-run, and so (transitively)
        # must the producers of every version it reads.
        closure = lost_version_closure(g, done, set(), wanted)
        assert last in closure
        for h, p in zip(g.tasks[last].reads, g.tasks[last].read_producers):
            if p >= 0:
                assert p in closure

    def test_surviving_inputs_stop_the_chase(self):
        g = self.graph()
        H = g.n_handles
        done = set(range(len(g.tasks)))
        last = len(g.tasks) - 1
        wanted = {(last + 1) * H + h for h in g.tasks[last].writes}
        # Every version the writer reads survives: only the writer re-runs.
        available = {
            (p + 1) * H + h
            for h, p in zip(g.tasks[last].reads, g.tasks[last].read_producers)
        }
        assert lost_version_closure(g, done, available, wanted) == {last}

    def test_never_executed_tasks_are_always_in(self):
        g = self.graph()
        closure = lost_version_closure(g, set(), set(), set())
        assert closure == set(range(len(g.tasks)))


# ---------------------------------------------------------------------------
# End-to-end: bit-identical factors, every algorithm, both backends
# ---------------------------------------------------------------------------

class TestBitIdenticalRecovery:
    @pytest.mark.parametrize("engine", BACKENDS)
    def test_qr_r_is_bit_identical_across_schedules(self, platform4_single_site, engine):
        cfg = qr_config()
        base = run_dag_factorization(platform4_single_site, cfg, engine=engine)
        schedules = [
            FailureSchedule([RankFailure(1, at_time=0.0)]),
            FailureSchedule([RankFailure(2, after_events=40)]),
            FailureSchedule([RankFailure(0, at_time=0.001), RankFailure(3, after_events=25)]),
        ]
        for schedule in schedules:
            res = run_dag_factorization(
                platform4_single_site, cfg, failures=schedule, engine=engine
            )
            assert np.array_equal(res.r, base.r)
            assert res.recovery is not None
            assert res.recovery.dead_ranks == schedule.ranks
            assert res.recovery.tasks_executed > 0
            assert res.recovery.makespan_s == res.makespan_s
            assert res.recovery.makespan_overhead_s > 0.0

    @pytest.mark.parametrize(
        "algorithm,matrix",
        [
            ("cholesky", spd_matrix(128, seed=5)),
            ("lu", spd_matrix(128, seed=6)),  # SPD is diagonally dominant enough
        ],
    )
    def test_cholesky_and_lu_recover_bit_identically(
        self, platform4_single_site, algorithm, matrix
    ):
        cfg = DAGFactorizationConfig(
            m=128, n=128, tile_size=32, matrix=matrix, algorithm=algorithm
        )
        base = run_dag_factorization(platform4_single_site, cfg)
        res = run_dag_factorization(
            platform4_single_site,
            cfg,
            failures=FailureSchedule([RankFailure(3, after_events=6)]),
        )
        assert np.array_equal(res.r, base.r)
        assert res.recovery is not None and res.recovery.rounds >= 1

    def test_multiple_failures_make_multiple_rounds(self, platform4_single_site):
        cfg = qr_config()
        base = run_dag_factorization(platform4_single_site, cfg)
        res = run_dag_factorization(
            platform4_single_site,
            cfg,
            failures=FailureSchedule(
                [RankFailure(0, at_time=0.001), RankFailure(3, after_events=25)]
            ),
        )
        assert np.array_equal(res.r, base.r)
        assert res.recovery.rounds == 2
        assert res.recovery.dead_ranks == (0, 3)

    def test_virtual_mode_recovers_the_whole_graph(self, platform8):
        cfg = DAGFactorizationConfig(m=1024, n=1024, tile_size=128, algorithm="cholesky")
        res = run_dag_factorization(
            platform8, cfg, failures=FailureSchedule([RankFailure(5, at_time=0.0004)])
        )
        assert res.r is None
        assert res.recovery is not None
        assert res.recovery.tasks_executed > 0

    def test_inert_schedule_reports_no_recovery(self, platform4_single_site):
        cfg = qr_config()
        res = run_dag_factorization(
            platform4_single_site,
            cfg,
            failures=FailureSchedule([RankFailure(1, at_time=1e9)]),
        )
        base = run_dag_factorization(platform4_single_site, cfg)
        assert np.array_equal(res.r, base.r)
        assert res.recovery is None

    def test_killing_every_rank_is_rejected(self, platform4_single_site):
        cfg = qr_config()
        schedule = FailureSchedule.from_pairs([(r, 0.0) for r in range(4)])
        with pytest.raises(ConfigurationError, match="survive"):
            run_dag_factorization(platform4_single_site, cfg, failures=schedule)


# ---------------------------------------------------------------------------
# Determinism and the exactly-once accounting
# ---------------------------------------------------------------------------

class TestDeterminismAndAccounting:
    def test_repeated_runs_are_bit_deterministic(self, platform4_single_site):
        cfg = qr_config()
        schedule = FailureSchedule([RankFailure(2, after_events=40)])
        runs = [
            run_dag_factorization(
                platform4_single_site,
                cfg,
                failures=schedule,
                engine=engine,
                record_messages=True,
            )
            for engine in BACKENDS
            for _ in range(2)
        ]
        first = runs[0]
        for other in runs[1:]:
            assert np.array_equal(other.r, first.r)
            assert other.makespan_s == first.makespan_s
            assert other.trace == first.trace
            assert other.recovery == first.recovery
            assert other.simulation.events == first.simulation.events

    def test_rank_failure_events_are_traced(self, platform4_single_site):
        cfg = qr_config()
        res = run_dag_factorization(
            platform4_single_site,
            cfg,
            failures=FailureSchedule([RankFailure(1, after_events=10)]),
        )
        [(rank, time)] = res.trace.rank_failures
        assert rank == 1
        assert res.recovery.death_times == (time,)

    @pytest.mark.parametrize("after_events", [10, 40, 80])
    def test_report_matches_independent_closure(
        self, platform4_single_site, monkeypatch, after_events
    ):
        """The accounting equals the closure recomputed from first principles.

        The planner's inputs (survivor done sets and store keys) are
        snapshotted at plan-build time; the test recomputes the
        lost-version closure independently and checks both counters.
        """
        captured: list[dict] = []
        real_build = build_recovery_plan

        def spy(graph, survivors, registry, wanted, original_rank_of):
            captured.append(
                {
                    "graph": graph,
                    "survivors": tuple(survivors),
                    "done": {r: set(registry[r]["done"]) for r in survivors},
                    "stored": {r: set(registry[r]["store"]) for r in survivors},
                    "wanted": tuple(wanted),
                }
            )
            return real_build(graph, survivors, registry, wanted, original_rank_of)

        monkeypatch.setattr(runtime_mod, "build_recovery_plan", spy)
        cfg = qr_config()
        res = run_dag_factorization(
            platform4_single_site,
            cfg,
            failures=FailureSchedule([RankFailure(1, after_events=after_events)]),
        )
        assert len(captured) == res.recovery.rounds == 1
        snap = captured[0]
        done = set().union(*snap["done"].values())
        available = set().union(*snap["stored"].values())
        wanted = {vkey for _h, vkey in snap["wanted"]}
        closure = lost_version_closure(snap["graph"], done, available, wanted)
        assert res.recovery.tasks_executed == len(closure)
        assert res.recovery.tasks_reexecuted == len(closure & done)


# ---------------------------------------------------------------------------
# The capability gap: SPMD cannot recover, the DAG runtime can
# ---------------------------------------------------------------------------

class TestSPMDCapabilityGap:
    @pytest.mark.parametrize("engine", BACKENDS)
    def test_same_schedule_kills_spmd_but_not_dag(self, platform4_single_site, engine):
        schedule = FailureSchedule([RankFailure(1, at_time=0.0)])
        a = random_matrix(256, 96, seed=3)
        with pytest.raises(RankFailedError, match="revoked"):
            run_parallel_caqr(
                platform4_single_site,
                CAQRConfig(m=256, n=96, tile_size=32, matrix=a),
                engine=engine,
                failures=schedule,
            )
        res = run_dag_factorization(
            platform4_single_site,
            DAGCAQRConfig(m=256, n=96, tile_size=32, matrix=a),
            engine=engine,
            failures=schedule,
        )
        base = run_dag_factorization(
            platform4_single_site, DAGCAQRConfig(m=256, n=96, tile_size=32, matrix=a)
        )
        assert np.array_equal(res.r, base.r)
