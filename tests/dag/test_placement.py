"""Tests for placement and priority policies (repro.dag.placement)."""

from __future__ import annotations

import pytest

from repro.dag.graph import tiled_qr_graph
from repro.dag.placement import place_tasks, priority_order
from repro.exceptions import ConfigurationError
from repro.gridsim.kernelmodel import KernelRateModel


@pytest.fixture(scope="module")
def graph():
    return tiled_qr_graph(96, 48, 16, n_groups=3)  # mt=6, nt=3


class TestPlacement:
    def test_block_matches_spmd_distribution(self, graph):
        placement = place_tasks(graph, "block", 3)
        # 6 tile rows over 3 ranks: rows (0,1)->0, (2,3)->1, (4,5)->2.
        for task in graph.tasks:
            if task.kernel == "geqrt":
                assert placement.task_rank[task.id] == task.i // 2

    def test_block_cyclic_deals_rows_round_robin(self, graph):
        placement = place_tasks(graph, "block-cyclic", 2)
        for task in graph.tasks:
            if task.kernel == "geqrt":
                assert placement.task_rank[task.id] == task.i % 2

    def test_owner_computes_follows_output_tile(self, graph):
        placement = place_tasks(graph, "owner-computes", 3)
        for task in graph.tasks:
            if task.kernel == "unmqr":
                assert placement.task_rank[task.id] == (task.i + task.j) % 3

    def test_every_policy_covers_all_tasks(self, graph):
        for policy in ("block", "block-cyclic", "owner-computes"):
            placement = place_tasks(graph, policy, 4)
            assert len(placement.task_rank) == graph.n_tasks
            assert all(0 <= r < 4 for r in placement.task_rank)

    def test_rejects_unknown_policy(self, graph):
        with pytest.raises(ConfigurationError, match="placement"):
            place_tasks(graph, "striped", 2)

    def test_rejects_bad_rank_count(self, graph):
        with pytest.raises(ConfigurationError, match="positive"):
            place_tasks(graph, "block", 0)


class TestPriority:
    def test_fifo_is_identity(self, graph):
        order = priority_order(graph, "fifo")
        assert order == tuple(range(graph.n_tasks))

    def test_panel_prefers_factorization_kernels(self, graph):
        order = priority_order(graph, "panel")
        worst_panel = max(
            order[t.id] for t in graph.tasks if t.kernel in ("geqrt", "tsqrt")
        )
        best_update = min(
            order[t.id] for t in graph.tasks if t.kernel in ("unmqr", "tsmqr")
        )
        assert worst_panel < best_update

    def test_critical_path_prefers_deeper_chains(self, graph):
        order = priority_order(graph, "critical-path", KernelRateModel())
        # The panel-0 diagonal geqrt heads the longest chain of the whole
        # factorization; the final panel's geqrt ends one.
        first = next(t for t in graph.tasks if t.kernel == "geqrt" and t.k == 0 and t.i == 0)
        last = next(t for t in graph.tasks if t.kernel == "geqrt" and t.k == 2 and t.i == 2)
        assert order[first.id] < order[last.id]

    def test_critical_path_needs_kernel_model(self, graph):
        with pytest.raises(ConfigurationError, match="kernel model"):
            priority_order(graph, "critical-path")

    def test_rejects_unknown_policy(self, graph):
        with pytest.raises(ConfigurationError, match="priority"):
            priority_order(graph, "lifo")
