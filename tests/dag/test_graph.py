"""Tests for the task-graph layer (repro.dag.graph)."""

from __future__ import annotations

import hashlib
import os
import subprocess
import sys

import pytest

from repro.dag.graph import (
    TaskGraph,
    cached_graph,
    graph_cache_info,
    set_graph_cache_size,
    tiled_qr_graph,
    tsqr_graph,
)
from repro.exceptions import ConfigurationError
from repro.util.units import DOUBLE_BYTES


def _toy_graph() -> TaskGraph:
    g = TaskGraph()
    g.handle("x", (4, 4))
    g.handle("y", (4, 4))
    return g


def _add(g: TaskGraph, reads=(), writes=()) -> int:
    return g.add_task(
        "tsqr_leaf",
        reads=tuple(g.handle_id(k) for k in reads),
        writes=tuple(g.handle_id(k) for k in writes),
        flops=1.0,
        width=4,
        kernel_class="qr_leaf",
        host_row=0,
    )


class TestEdgeDerivation:
    def test_read_after_write(self):
        g = _toy_graph()
        w = _add(g, writes=("x",))
        r = _add(g, reads=("x",))
        assert g.preds[r] == (w,)
        assert g.tasks[r].read_producers == (w,)

    def test_write_after_read(self):
        g = _toy_graph()
        w1 = _add(g, writes=("x",))
        r = _add(g, reads=("x",))
        w2 = _add(g, writes=("x",))  # must wait for the reader
        assert r in g.preds[w2] and w1 in g.preds[w2]

    def test_write_after_write(self):
        g = _toy_graph()
        w1 = _add(g, writes=("x",))
        w2 = _add(g, writes=("x",))
        assert g.preds[w2] == (w1,)

    def test_initial_reads_have_no_producer(self):
        g = _toy_graph()
        r = _add(g, reads=("x", "y"))
        assert g.preds[r] == ()
        assert g.tasks[r].read_producers == (-1, -1)

    def test_edges_point_forward(self):
        """Task ids are a topological order (the runtime relies on this)."""
        g = tiled_qr_graph(96, 96, 16, n_groups=3)
        for tid, deps in enumerate(g.preds):
            assert all(p < tid for p in deps)

    def test_successors_and_sinks_are_consistent(self):
        g = tiled_qr_graph(64, 32, 16, n_groups=2)
        succs = g.successors()
        n_edges = sum(len(s) for s in succs)
        assert n_edges == g.n_edges
        for sink in g.sinks():
            assert not succs[sink]


class TestTiledQRGraph:
    def test_single_tile_is_one_geqrt(self):
        g = tiled_qr_graph(8, 8, 16)
        assert [t.kernel for t in g.tasks] == ["geqrt"]

    def test_two_by_two_tiling_task_mix(self):
        # mt = nt = 2, one group: panel 0 = 2 geqrt + 2 unmqr + tsqrt +
        # tsmqr, panel 1 = 1 geqrt.
        g = tiled_qr_graph(32, 32, 16)
        kinds = sorted(t.kernel for t in g.tasks)
        assert kinds == ["geqrt", "geqrt", "geqrt", "tsmqr", "tsqrt", "unmqr", "unmqr"]

    def test_group_structure_matches_spmd_participants(self):
        # 4 tile rows over 2 groups: each panel has an intra-group chain and
        # one cross-group combine, exactly like the SPMD program.
        g = tiled_qr_graph(64, 32, 16, n_groups=2)
        cross = [
            t for t in g.tasks
            if t.kernel == "tsqrt" and t.i == 0 and t.i2 == 2  # group 1's top row
        ]
        assert len(cross) == 1  # panel 0 only (panel 1 row 1 is group 0's)

    def test_panel_factor_wire_bytes_are_triangular(self):
        g = tiled_qr_graph(32, 32, 16)
        geqrt0 = g.tasks[0]
        tile_handle = geqrt0.writes[0]
        assert g.handle_keys[tile_handle] == ("A", 0, 0)
        assert geqrt0.write_nbytes[0] == 16 * 17 // 2 * DOUBLE_BYTES

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ConfigurationError):
            tiled_qr_graph(0, 8, 4)
        with pytest.raises(ConfigurationError):
            tiled_qr_graph(8, 8, 4, n_groups=0)

    def test_cluster_count_must_match_groups(self):
        with pytest.raises(ConfigurationError, match="cluster names"):
            tiled_qr_graph(32, 16, 8, n_groups=2, group_clusters=["a"])


class TestTSQRGraph:
    def test_leaves_and_combines(self):
        g = tsqr_graph(4000, 50, 4, tree_kind="binary")
        leaves = [t for t in g.tasks if t.kernel == "tsqr_leaf"]
        combines = [t for t in g.tasks if t.kernel == "tsqr_combine"]
        assert len(leaves) == 4
        assert len(combines) == 3  # one per tree edge

    def test_r_wire_bytes_are_the_papers_half_triangle(self):
        n = 32
        g = tsqr_graph(1024, n, 2)
        r_handle = g.handle_id(("R", 0))
        assert g.handle_nbytes[r_handle] == n * (n + 1) // 2 * DOUBLE_BYTES

    def test_rejects_short_domains(self):
        with pytest.raises(ConfigurationError, match="fewer"):
            tsqr_graph(100, 60, 2)


class TestGraphCache:
    """The configurable cached_graph front (capacity, eviction, env knob)."""

    @pytest.fixture(autouse=True)
    def _restore_capacity(self):
        """Every test resizes freely; the suite's capacity is put back after."""
        before = graph_cache_info().maxsize
        yield
        set_graph_cache_size(before)

    def test_hit_returns_the_same_object(self):
        set_graph_cache_size(4)
        assert cached_graph("qr", 64, 32, 16) is cached_graph("qr", 64, 32, 16)

    def test_eviction_then_rebuild_is_structurally_identical(self):
        """An evicted graph rebuilds to the exact same structure.

        Capacity 1 forces the eviction deterministically: building any
        second graph drops the first.  The rebuilt first graph is a *new
        object* (the eviction really happened) with an *identical
        fingerprint* (handles, tasks, edges, wire sizes) — eviction can
        change performance, never results.
        """
        set_graph_cache_size(1)
        first = cached_graph("qr", 96, 96, 16, 3, "binary", None)
        fingerprint = _graph_fingerprint(first)
        cached_graph("cholesky", 64, 64, 16)  # evicts the QR graph
        rebuilt = cached_graph("qr", 96, 96, 16, 3, "binary", None)
        assert rebuilt is not first
        assert _graph_fingerprint(rebuilt) == fingerprint

    def test_capacity_zero_disables_caching(self):
        set_graph_cache_size(0)
        assert cached_graph("qr", 64, 32, 16) is not cached_graph("qr", 64, 32, 16)

    def test_resize_rejects_negative(self):
        with pytest.raises(ConfigurationError, match=">= 0"):
            set_graph_cache_size(-1)

    def test_env_var_sets_the_import_time_capacity(self):
        code = (
            "from repro.dag.graph import graph_cache_info; "
            "print(graph_cache_info().maxsize)"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            env={**os.environ, "REPRO_GRAPH_CACHE_SIZE": "5"},
            capture_output=True, text=True, check=True,
        )
        assert out.stdout.strip() == "5"

    def test_env_var_rejects_garbage(self):
        proc = subprocess.run(
            [sys.executable, "-c", "import repro.dag.graph"],
            env={**os.environ, "REPRO_GRAPH_CACHE_SIZE": "many"},
            capture_output=True, text=True,
        )
        assert proc.returncode != 0
        assert "REPRO_GRAPH_CACHE_SIZE" in proc.stderr


def _graph_fingerprint(graph) -> str:
    """Canonical digest of a graph's full structure: handles, tasks, edges.

    Mirrors the fingerprint of tests/gridsim/test_engine_equivalence.py so
    a cache-eviction rebuild is checked against the same notion of
    structural identity the golden-graph tests pin.
    """
    parts = [
        ("kind", graph.kind),
        ("n_groups", graph.n_groups),
        (
            "handles",
            tuple(zip(graph.handle_keys, graph.handle_shapes, graph.handle_nbytes)),
        ),
    ]
    for t in graph.tasks:
        parts.append(
            (
                t.id, t.kernel, t.kernel_class, t.k, t.i, t.i2, t.j,
                t.flops, t.width, t.host_row,
                t.reads, t.read_producers, t.writes, t.write_nbytes,
                tuple(graph.preds[t.id]),
            )
        )
    return hashlib.sha256(repr(parts).encode()).hexdigest()
