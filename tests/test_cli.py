"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_factor_defaults(self):
        args = build_parser().parse_args(["factor"])
        assert args.command == "factor"
        assert args.rows == 100_000
        assert args.tree == "binary"

    def test_simulate_arguments(self):
        args = build_parser().parse_args(
            ["simulate", "--algorithm", "scalapack", "--sites", "2", "--rows", "123"]
        )
        assert args.algorithm == "scalapack"
        assert args.sites == 2
        assert args.rows == 123

    def test_invalid_site_count_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--sites", "3"])

    def test_figure_requires_id(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure"])

    def test_figure_domain_sweep_argument(self):
        args = build_parser().parse_args(
            ["figure", "--id", "fig6", "--domains", "1,16,64", "--points", "2"]
        )
        assert args.domains == "1,16,64"
        assert args.points == 2


class TestCommands:
    def test_factor_reports_quality(self, capsys):
        code = main(["factor", "--rows", "4000", "--cols", "8", "--domains", "4", "--want-q"])
        out = capsys.readouterr().out
        assert code == 0
        assert "agreement with LAPACK : yes" in out
        assert "||I - Q^T Q||" in out

    def test_factor_r_only(self, capsys):
        code = main(["factor", "--rows", "2000", "--cols", "4", "--tree", "grid-hierarchical"])
        out = capsys.readouterr().out
        assert code == 0
        assert "grid-hierarchical" in out

    def test_simulate_tsqr(self, capsys):
        code = main(
            ["simulate", "--algorithm", "tsqr", "--rows", "262144", "--cols", "64",
             "--sites", "1", "--domains-per-cluster", "16"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Gflop/s" in out
        assert "practical peak" in out

    def test_simulate_scalapack(self, capsys):
        code = main(
            ["simulate", "--algorithm", "scalapack", "--rows", "262144", "--cols", "64",
             "--sites", "1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "scalapack" in out

    def test_figure_table1_to_csv(self, capsys, tmp_path):
        target = tmp_path / "table1.csv"
        code = main(["figure", "--id", "table1", "--cols", "64", "--csv", str(target)])
        out = capsys.readouterr().out
        assert code == 0
        assert "TSQR" in out
        assert target.exists()
        assert "algorithm" in target.read_text().splitlines()[0]

    def test_figure_fig7(self, capsys):
        # A reduced sweep (2 of the 4 M values, 3 of the 7 domain counts)
        # keeps this test fast while exercising the full fig7 path.
        code = main(["figure", "--id", "fig7", "--cols", "64",
                     "--points", "2", "--domains", "1,8,64"])
        out = capsys.readouterr().out
        assert code == 0
        assert "fig7" in out
        assert "M = 65,536" in out
        assert "M = 8,388,608" in out
