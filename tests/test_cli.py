"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_factor_defaults(self):
        args = build_parser().parse_args(["factor"])
        assert args.command == "factor"
        assert args.rows == 100_000
        assert args.tree == "binary"

    def test_simulate_arguments(self):
        args = build_parser().parse_args(
            ["simulate", "--algorithm", "scalapack", "--sites", "2", "--rows", "123"]
        )
        assert args.algorithm == "scalapack"
        assert args.sites == 2
        assert args.rows == 123

    def test_invalid_site_count_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--sites", "3"])

    def test_figure_requires_id(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure"])

    def test_figure_domain_sweep_argument(self):
        args = build_parser().parse_args(
            ["figure", "--id", "fig6", "--domains", "1,16,64", "--points", "2"]
        )
        assert args.domains == "1,16,64"
        assert args.points == 2

    def test_figure_want_q_flag(self):
        args = build_parser().parse_args(["figure", "--id", "fig7", "--want-q"])
        assert args.want_q is True
        assert build_parser().parse_args(["figure", "--id", "fig7"]).want_q is False

    def test_figure_table2_sweep_arguments(self):
        args = build_parser().parse_args(
            ["figure", "--id", "table2-sweep", "--rows", "1048576", "--domains", "1,64"]
        )
        assert args.figure_id == "table2-sweep"
        assert args.rows == 1_048_576
        assert args.domains == "1,64"

    def test_figure_caqr_sweep_arguments(self):
        args = build_parser().parse_args(
            ["figure", "--id", "caqr-sweep", "--tile-size", "32",
             "--panel-tree", "grid-hierarchical"]
        )
        assert args.figure_id == "caqr-sweep"
        assert args.tile_size == 32
        assert args.panel_tree == "grid-hierarchical"
        # defaults resolve per artefact inside the handler
        assert build_parser().parse_args(["figure", "--id", "caqr-sweep"]).tile_size is None

    def test_invalid_panel_tree_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["figure", "--id", "caqr-sweep", "--panel-tree", "fractal"]
            )

    def test_epilog_mentions_caqr_sweep(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--help"])
        assert "caqr-sweep" in capsys.readouterr().out


class TestCommands:
    def test_factor_reports_quality(self, capsys):
        code = main(["factor", "--rows", "4000", "--cols", "8", "--domains", "4", "--want-q"])
        out = capsys.readouterr().out
        assert code == 0
        assert "agreement with LAPACK : yes" in out
        assert "||I - Q^T Q||" in out

    def test_factor_r_only(self, capsys):
        code = main(["factor", "--rows", "2000", "--cols", "4", "--tree", "grid-hierarchical"])
        out = capsys.readouterr().out
        assert code == 0
        assert "grid-hierarchical" in out

    def test_simulate_tsqr(self, capsys):
        code = main(
            ["simulate", "--algorithm", "tsqr", "--rows", "262144", "--cols", "64",
             "--sites", "1", "--domains-per-cluster", "16"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Gflop/s" in out
        assert "practical peak" in out

    def test_simulate_scalapack(self, capsys):
        code = main(
            ["simulate", "--algorithm", "scalapack", "--rows", "262144", "--cols", "64",
             "--sites", "1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "scalapack" in out

    def test_figure_table1_to_csv(self, capsys, tmp_path):
        target = tmp_path / "table1.csv"
        code = main(["figure", "--id", "table1", "--cols", "64", "--csv", str(target)])
        out = capsys.readouterr().out
        assert code == 0
        assert "TSQR" in out
        assert target.exists()
        assert "algorithm" in target.read_text().splitlines()[0]

    def test_figure_fig7(self, capsys):
        # A reduced sweep (2 of the 4 M values, 3 of the 7 domain counts)
        # keeps this test fast while exercising the full fig7 path.
        code = main(["figure", "--id", "fig7", "--cols", "64",
                     "--points", "2", "--domains", "1,8,64"])
        out = capsys.readouterr().out
        assert code == 0
        assert "fig7" in out
        assert "M = 65,536" in out
        assert "M = 8,388,608" in out

    def test_figure_fig7_want_q(self, capsys):
        # The Q-included domain sweep of the Table II scenario: exercises the
        # downward sweep for both grouped (dpc=16: 4 processes per domain)
        # and one-process domains at full 64-process platform scale.
        code = main(["figure", "--id", "fig7", "--cols", "64",
                     "--points", "2", "--domains", "16,64", "--want-q"])
        out = capsys.readouterr().out
        assert code == 0
        assert "fig7-N64-Q" in out
        assert "Q included" in out

    def test_figure_rejects_inapplicable_flags(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError, match="--rows"):
            main(["figure", "--id", "table2", "--rows", "4000000"])
        with pytest.raises(ConfigurationError, match="--want-q"):
            main(["figure", "--id", "table2", "--want-q"])
        with pytest.raises(ConfigurationError, match="--domains"):
            main(["figure", "--id", "fig4", "--domains", "1,64"])
        with pytest.raises(ConfigurationError, match="--tile-size"):
            main(["figure", "--id", "fig4", "--tile-size", "32"])
        with pytest.raises(ConfigurationError, match="--points"):
            main(["figure", "--id", "caqr-sweep", "--points", "5"])
        with pytest.raises(ConfigurationError, match="--points"):
            main(["figure", "--id", "table1", "--points", "5"])
        with pytest.raises(ConfigurationError, match="--panel-tree"):
            main(["figure", "--id", "table1", "--panel-tree", "binary"])
        # CAQR computes R only and accepts no domain sweep.
        with pytest.raises(ConfigurationError, match="--want-q"):
            main(["figure", "--id", "caqr-sweep", "--want-q"])
        with pytest.raises(ConfigurationError, match="--domains"):
            main(["figure", "--id", "caqr-sweep", "--domains", "1,64"])
        # --jobs parallelises sweep points; the single-point artefacts would
        # silently ignore it, and a non-positive worker count is nonsense.
        with pytest.raises(ConfigurationError, match="--jobs"):
            main(["figure", "--id", "table1", "--jobs", "4"])
        with pytest.raises(ConfigurationError, match="--jobs"):
            main(["figure", "--id", "fig3", "--jobs", "2"])
        with pytest.raises(ConfigurationError, match="--jobs"):
            main(["figure", "--id", "fig4", "--jobs", "0"])
        # The DAG policy flags only make sense for the dag-caqr-sweep artefact.
        with pytest.raises(ConfigurationError, match="--placement"):
            main(["figure", "--id", "caqr-sweep", "--placement", "block"])
        with pytest.raises(ConfigurationError, match="--priority"):
            main(["figure", "--id", "fig4", "--priority", "fifo"])

    def test_simulate_rejects_inapplicable_flags(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError, match="--runtime"):
            main(["simulate", "--algorithm", "tsqr", "--runtime", "dag"])
        with pytest.raises(ConfigurationError, match="--tile-size"):
            main(["simulate", "--algorithm", "scalapack", "--tile-size", "32"])
        with pytest.raises(ConfigurationError, match="--placement"):
            main(["simulate", "--algorithm", "caqr", "--placement", "block"])
        with pytest.raises(ConfigurationError, match="--priority"):
            main(["simulate", "--algorithm", "caqr", "--runtime", "spmd",
                  "--priority", "fifo"])
        with pytest.raises(ConfigurationError, match="--domains-per-cluster"):
            main(["simulate", "--algorithm", "caqr", "--domains-per-cluster", "4"])
        with pytest.raises(ConfigurationError, match="R only"):
            main(["simulate", "--algorithm", "caqr", "--want-q"])

    def test_simulate_rejects_inapplicable_cholesky_lu_flags(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError, match="DAG runtime"):
            main(["simulate", "--algorithm", "cholesky", "--runtime", "spmd"])
        with pytest.raises(ConfigurationError, match="square"):
            main(["simulate", "--algorithm", "cholesky", "--rows", "128",
                  "--cols", "64"])
        with pytest.raises(ConfigurationError, match="factor only"):
            main(["simulate", "--algorithm", "lu", "--want-q"])
        with pytest.raises(ConfigurationError, match="--domains-per-cluster"):
            main(["simulate", "--algorithm", "lu", "--domains-per-cluster", "4"])

    def test_figure_rejects_inapplicable_cholesky_sweep_flags(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError, match="--panel-tree"):
            main(["figure", "--id", "dag-cholesky-sweep", "--panel-tree", "binary"])
        with pytest.raises(ConfigurationError, match="--rows"):
            main(["figure", "--id", "dag-cholesky-sweep", "--rows", "4096"])
        with pytest.raises(ConfigurationError, match="--placement"):
            main(["figure", "--id", "caqr-sweep", "--placement", "block"])

    def test_simulate_dag_cholesky_and_lu(self, capsys):
        code = main(
            ["simulate", "--algorithm", "cholesky", "--cols", "512",
             "--sites", "2", "--tile-size", "64", "--priority", "fifo"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cholesky" in out
        assert "critical-path lower bound" in out
        code = main(
            ["simulate", "--algorithm", "lu", "--rows", "1024", "--cols", "512",
             "--sites", "2", "--tile-size", "64", "--placement", "owner-computes"]
        )
        assert code == 0
        assert "lu" in capsys.readouterr().out

    def test_figure_dag_cholesky_sweep_to_csv(self, capsys, tmp_path):
        csv_path = tmp_path / "chol.csv"
        code = main(
            ["figure", "--id", "dag-cholesky-sweep", "--cols", "1024",
             "--tile-size", "128", "--priority", "critical-path",
             "--csv", str(csv_path)]
        )
        assert code == 0
        import csv

        with csv_path.open() as fh:
            rows = list(csv.DictReader(fh))
        assert rows and rows[0]["algorithm"] == "DAG-Cholesky"
        # measured-vs-model agreement is exact for the dataflow counts
        for col in ("msg ratio", "volume ratio"):
            assert 0.9 <= float(rows[0][col]) <= 1.1, col

    def test_simulate_dag_caqr(self, capsys):
        code = main(
            ["simulate", "--algorithm", "caqr", "--runtime", "dag",
             "--rows", "16384", "--cols", "128", "--sites", "4",
             "--tile-size", "32", "--priority", "fifo"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "critical-path lower bound" in out

    def test_figure_dag_caqr_sweep_to_csv(self, capsys, tmp_path):
        csv_path = tmp_path / "dag.csv"
        code = main(
            ["figure", "--id", "dag-caqr-sweep", "--rows", "16384",
             "--cols", "128", "--tile-size", "32", "--priority", "critical-path",
             "--csv", str(csv_path)]
        )
        assert code == 0
        content = csv_path.read_text()
        assert "DAG makespan (s)" in content
        assert "critical path (s)" in content
        assert "idle fraction (mean)" in content

    def test_figure_caqr_sweep_to_csv(self, capsys, tmp_path):
        target = tmp_path / "caqr_sweep.csv"
        code = main(["figure", "--id", "caqr-sweep", "--rows", "16384", "--cols", "128",
                     "--tile-size", "32", "--panel-tree", "binary", "--csv", str(target)])
        out = capsys.readouterr().out
        assert code == 0
        assert "CAQR" in out
        import csv

        with target.open() as fh:
            rows = list(csv.DictReader(fh))
        assert rows, "the sweep must emit at least one row"
        # measured-vs-model agreement is part of the artefact's contract even
        # at reduced scale
        for col in ("msg ratio", "volume ratio", "flop ratio"):
            assert 0.9 <= float(rows[0][col]) <= 1.1, col

    def test_figure_caqr_sweep_single_tile_row(self, capsys):
        # A matrix no taller than one tile has a single participating rank,
        # zero messages and zero volume — a legitimate degenerate sweep that
        # must report agreement (ratio 1.0), not divide by zero.
        code = main(["figure", "--id", "caqr-sweep", "--rows", "64", "--cols", "128",
                     "--tile-size", "64", "--panel-tree", "binary"])
        out = capsys.readouterr().out
        assert code == 0
        assert "CAQR" in out

    def test_figure_table2_sweep_to_csv(self, capsys, tmp_path):
        target = tmp_path / "table2_sweep.csv"
        code = main(["figure", "--id", "table2-sweep", "--cols", "64",
                     "--rows", "1048576", "--domains", "64", "--csv", str(target)])
        out = capsys.readouterr().out
        assert code == 0
        assert "msg ratio" in out
        header = target.read_text().splitlines()[0]
        assert "volume ratio" in header and "flop ratio" in header


class TestServiceCommands:
    """The service tier at CLI level: serve/query plus the persistent cache."""

    def test_serve_and_query_parser_flags(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--jobs", "2", "--batch-window-ms", "1"]
        )
        assert args.command == "serve"
        assert args.port == 0 and args.jobs == 2
        args = build_parser().parse_args(
            ["query", "--connect", "localhost:8642", "--burst", "8"]
        )
        assert args.connect == "localhost:8642"
        assert args.burst == 8
        args = build_parser().parse_args(
            ["query", "--best-tile", "--candidates", "16,32", "--top-k", "2"]
        )
        assert args.best_tile and args.candidates == "16,32" and args.top_k == 2

    def test_epilog_mentions_the_service(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--help"])
        out = capsys.readouterr().out
        assert "repro serve" in out
        assert "--best-tile" in out

    def test_repeated_figure_simulates_zero_points(self, capsys, tmp_path):
        """The satellite pin: a re-run answers entirely from the store."""
        args = ["figure", "--id", "table1", "--cols", "64",
                "--cache-dir", str(tmp_path)]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "cache: " in first
        assert "cache: 0 simulated" not in first  # the first run did the work

        assert main(args) == 0
        second = capsys.readouterr().out
        assert "cache: 0 simulated" in second  # the re-run simulated NOTHING

    def test_no_cache_escape_hatch(self, capsys, tmp_path):
        args = ["figure", "--id", "table1", "--cols", "64", "--no-cache"]
        assert main(args) == 0
        assert "cache:" not in capsys.readouterr().out

    def test_simulate_warm_across_invocations(self, capsys, tmp_path):
        args = ["simulate", "--algorithm", "tsqr", "--rows", "262144",
                "--cols", "64", "--sites", "1", "--domains-per-cluster", "16",
                "--cache-dir", str(tmp_path)]
        assert main(args) == 0
        assert "cache: 1 simulated, 0 warm" in capsys.readouterr().out
        assert main(args) == 0
        assert "cache: 0 simulated, 1 warm" in capsys.readouterr().out

    def test_query_local_answers_json(self, capsys, tmp_path):
        import json

        args = ["query", "--algorithm", "tsqr", "--rows", "262144",
                "--cols", "64", "--sites", "1", "--domains-per-cluster", "16",
                "--cache-dir", str(tmp_path)]
        assert main(args) == 0
        cold = json.loads(capsys.readouterr().out)
        assert cold["ok"] and cold["source"] == "simulated"
        assert main(args) == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm["source"] == "disk"  # a fresh process: the disk tier answered
        assert warm["time_s"] == cold["time_s"]
        assert warm["key"] == cold["key"]

    def test_query_best_tile(self, capsys, tmp_path):
        args = ["query", "--algorithm", "caqr", "--runtime", "dag",
                "--rows", "16384", "--cols", "128", "--sites", "4",
                "--best-tile", "--candidates", "16,32", "--top-k", "1",
                "--cache-dir", str(tmp_path)]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "best tile size:" in out
        assert "escalated 1 of 2 candidates" in out

    def test_query_rejects_inapplicable_flags(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError, match="--burst needs --connect"):
            main(["query", "--burst", "4"])
        with pytest.raises(ConfigurationError, match="--stats needs --connect"):
            main(["query", "--stats"])
        with pytest.raises(ConfigurationError, match="--burst must be >= 1"):
            main(["query", "--connect", "localhost:1", "--burst", "0"])
        with pytest.raises(ConfigurationError, match="--candidates"):
            main(["query", "--candidates", "16,32"])
        with pytest.raises(ConfigurationError, match="drop --connect"):
            main(["query", "--connect", "localhost:1", "--best-tile"])
        with pytest.raises(ConfigurationError, match="server owns the cache"):
            main(["query", "--connect", "localhost:1", "--no-cache"])
        with pytest.raises(ConfigurationError, match="HOST:PORT"):
            main(["query", "--connect", "nocolon"])
        with pytest.raises(ConfigurationError, match="tiled algorithms"):
            main(["query", "--best-tile", "--algorithm", "tsqr"])
        with pytest.raises(ConfigurationError, match="drop --tile-size"):
            main(["query", "--algorithm", "caqr", "--best-tile",
                  "--tile-size", "32"])

    def test_serve_rejects_bad_flags(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError, match="--jobs"):
            main(["serve", "--jobs", "0"])
        with pytest.raises(ConfigurationError, match="mutually exclusive"):
            main(["serve", "--no-cache", "--cache-dir", "somewhere"])
        with pytest.raises(ConfigurationError, match="batch_window_s"):
            main(["serve", "--batch-window-ms", "-1"])


class TestFailureCommands:
    """Fault injection at CLI level: --fail-rank/--fail-at, dag-failures,
    client resilience knobs."""

    def test_simulate_with_failure_reports_recovery(self, capsys):
        code = main(
            ["simulate", "--algorithm", "cholesky", "--cols", "512",
             "--sites", "2", "--tile-size", "64",
             "--fail-rank", "2", "--fail-at", "0.0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "recovered from rank death(s) 2" in out
        assert "re-executed" in out
        assert "of the failure-free run" in out

    def test_simulate_failure_flags_rejected_for_spmd(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError, match="--runtime dag"):
            main(["simulate", "--algorithm", "tsqr",
                  "--fail-rank", "0", "--fail-at", "0.1"])
        with pytest.raises(ConfigurationError, match="--runtime dag"):
            main(["simulate", "--algorithm", "caqr", "--runtime", "spmd",
                  "--fail-rank", "0", "--fail-at", "0.1"])

    def test_simulate_failure_flags_come_in_pairs(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError, match="pairs"):
            main(["simulate", "--algorithm", "cholesky", "--cols", "512",
                  "--tile-size", "64", "--fail-rank", "0"])
        with pytest.raises(ConfigurationError, match="pairs"):
            main(["simulate", "--algorithm", "cholesky", "--cols", "512",
                  "--tile-size", "64", "--fail-rank", "0", "--fail-at", "0.1",
                  "--fail-at", "0.2"])

    def test_figure_dag_failures_to_csv(self, capsys, tmp_path):
        csv_path = tmp_path / "failures.csv"
        code = main(
            ["figure", "--id", "dag-failures", "--cols", "1024",
             "--tile-size", "128", "--failure-counts", "0,1",
             "--csv", str(csv_path)]
        )
        assert code == 0
        import csv

        with csv_path.open() as fh:
            rows = list(csv.DictReader(fh))
        assert [r["failures"] for r in rows] == ["0", "1"]
        baseline, failing = rows
        assert baseline["dead ranks"] == "-"
        assert float(baseline["overhead (s)"]) == 0.0
        assert failing["dead ranks"] != "-"
        assert int(failing["recovery rounds"]) >= 1
        # the failing run pays for re-execution on fewer ranks
        assert float(failing["makespan (s)"]) >= float(baseline["makespan (s)"])
        assert float(failing["failure-free (s)"]) == float(baseline["makespan (s)"])

    def test_figure_failure_counts_rejected_elsewhere(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError, match="--failure-counts"):
            main(["figure", "--id", "fig4", "--failure-counts", "0,1"])
        with pytest.raises(ConfigurationError, match="no failure counts"):
            main(["figure", "--id", "dag-failures", "--failure-counts", ""])
        with pytest.raises(ConfigurationError, match=">= 0"):
            main(["figure", "--id", "dag-failures", "--failure-counts", "0,-1"])

    def test_query_resilience_flags_need_connect(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError, match="--connect"):
            main(["query", "--algorithm", "tsqr", "--retries", "2"])
        with pytest.raises(ConfigurationError, match="--connect"):
            main(["query", "--algorithm", "tsqr", "--timeout", "1.0"])
        with pytest.raises(ConfigurationError, match="retries"):
            main(["query", "--connect", "localhost:1", "--retries", "-1"])
        with pytest.raises(ConfigurationError, match="timeout"):
            main(["query", "--connect", "localhost:1", "--timeout", "0"])

    def test_epilog_mentions_failure_injection(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--help"])
        out = capsys.readouterr().out
        assert "--fail-rank" in out
        assert "dag-failures" in out
        assert "--retries" in out


class TestObservabilityCommands:
    def test_figure_trace_hotspots_to_csv(self, capsys, tmp_path):
        csv_path = tmp_path / "hotspots.csv"
        code = main(
            ["figure", "--id", "trace-hotspots", "--rows", "16384",
             "--cols", "128", "--tile-size", "32", "--csv", str(csv_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "wait (s)" in out
        assert "wait share" in out
        import csv

        with csv_path.open() as fh:
            rows = list(csv.DictReader(fh))
        assert rows
        waits = [float(r["wait (s)"]) for r in rows]
        assert waits == sorted(waits, reverse=True)
        assert all(0.0 <= float(r["wait share"]) <= 1.0 for r in rows)
        assert all(
            r["link"] in ("intra-node", "intra-cluster", "inter-cluster")
            for r in rows
        )

    def test_figure_trace_hotspots_accepts_policy_flags(self, capsys, tmp_path):
        code = main(
            ["figure", "--id", "trace-hotspots", "--rows", "16384",
             "--cols", "128", "--tile-size", "32", "--placement",
             "block-cyclic", "--priority", "fifo", "--panel-tree", "binary",
             "--csv", str(tmp_path / "h.csv")]
        )
        assert code == 0

    def test_figure_trace_hotspots_rejects_inapplicable_flags(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError, match="--failure-counts"):
            main(["figure", "--id", "trace-hotspots", "--failure-counts", "0,1"])
        with pytest.raises(ConfigurationError, match="--want-q"):
            main(["figure", "--id", "trace-hotspots", "--want-q"])
        with pytest.raises(ConfigurationError, match="--points"):
            main(["figure", "--id", "trace-hotspots", "--points", "2"])

    def test_simulate_trace_out_perfetto(self, capsys, tmp_path):
        out_path = tmp_path / "trace.perfetto.json"
        code = main(
            ["simulate", "--algorithm", "caqr", "--runtime", "dag",
             "--rows", "16384", "--cols", "128", "--tile-size", "32",
             "--trace-out", str(out_path)]
        )
        assert code == 0
        assert "streaming timeline written to" in capsys.readouterr().out
        import json

        payload = json.loads(out_path.read_text())
        assert payload["traceEvents"]
        assert payload["otherData"]["n_ranks"] > 0

    def test_simulate_trace_out_csv(self, capsys, tmp_path):
        out_path = tmp_path / "trace.csv"
        code = main(
            ["simulate", "--algorithm", "tsqr", "--cols", "64",
             "--trace-out", str(out_path)]
        )
        assert code == 0
        header = out_path.read_text().splitlines()[0]
        assert header == "rank,window,t_start_s,t_end_s,busy_s,comm_wait_s,recv_bytes"

    def test_query_stats_json_needs_stats(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError, match="--json only applies"):
            main(["query", "--connect", "localhost:1", "--json"])

    def test_epilog_mentions_observability(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--help"])
        out = capsys.readouterr().out
        assert "trace-hotspots" in out
        assert "--trace-out" in out
