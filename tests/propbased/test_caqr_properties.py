"""Property-based (hypothesis) CAQR correctness on awkward shapes.

The sequential tiled CAQR must agree with LAPACK for *any* matrix shape and
tile size, not only the friendly divisible ones the unit tests enumerate:
non-divisible tile sizes, fat matrices (``m < n``), tile sizes larger than
the whole matrix, single-tile inputs, one-row/one-column edge cases.  For
every sampled configuration the R factor must match ``numpy.linalg.qr`` up
to row signs and the materialised thin Q must be orthonormal with
``Q R = A`` to machine precision.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.tsqr.caqr import caqr, caqr_r
from repro.util.validation import (
    factorization_residual,
    orthogonality_error,
    r_factors_match,
)

# Every example runs a full tiled factorization plus a LAPACK reference;
# moderate example counts keep the suite fast.
NUMERIC = settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])

shapes = st.tuples(st.integers(1, 48), st.integers(1, 48))
tiles = st.integers(1, 56)


def _matrix(m: int, n: int, seed: int) -> np.ndarray:
    return np.random.default_rng(seed).standard_normal((m, n))


@NUMERIC
@given(shape=shapes, tile=tiles, seed=st.integers(0, 2**16), want_q=st.booleans())
def test_r_matches_lapack_for_any_shape_and_tile(shape, tile, seed, want_q):
    m, n = shape
    a = _matrix(m, n, seed)
    factors = caqr(a, tile_size=tile, want_q=want_q)
    assert factors.r.shape == (min(m, n), n)
    assert r_factors_match(factors.r, np.linalg.qr(a, mode="r"))


@NUMERIC
@given(
    shape=shapes,
    tile=tiles,
    seed=st.integers(0, 2**16),
    tree=st.sampled_from(["flat", "binary", "grid-hierarchical"]),
)
def test_thin_q_orthonormal_and_reconstructs(shape, tile, seed, tree):
    m, n = shape
    a = _matrix(m, n, seed)
    factors = caqr(a, tile_size=tile, panel_tree=tree)
    q = factors.thin_q()
    k = min(m, n)
    assert q.shape == (m, k)
    scale = np.sqrt(max(m, n)) * max(k, 1)
    assert orthogonality_error(q) <= 1e-13 * scale
    assert factorization_residual(a, q, factors.r) <= 1e-13 * scale


@NUMERIC
@given(n=st.integers(1, 32), fat_extra=st.integers(1, 32), tile=tiles, seed=st.integers(0, 2**16))
def test_fat_matrices(n, fat_extra, tile, seed):
    """m < n: R is m x n upper-trapezoidal and still matches LAPACK."""
    m = n
    a = _matrix(m, n + fat_extra, seed)
    r = caqr_r(a, tile_size=tile)
    assert r.shape == (m, n + fat_extra)
    assert r_factors_match(r, np.linalg.qr(a, mode="r"))


@NUMERIC
@given(shape=shapes, seed=st.integers(0, 2**16))
def test_tile_larger_than_matrix_is_single_tile(shape, seed):
    """tile_size > max(m, n): one tile; CAQR degenerates to a dense QR."""
    m, n = shape
    a = _matrix(m, n, seed)
    r = caqr_r(a, tile_size=max(m, n) + 7)
    assert r_factors_match(r, np.linalg.qr(a, mode="r"))
