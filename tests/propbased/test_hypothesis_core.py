"""Property-based tests (hypothesis) on the core data structures and invariants.

Covered invariants:

* partitioning: contiguous block splits always cover the index space exactly;
* the TSQR combine operator: associativity/commutativity up to signs, and the
  R factor of the stack being independent of how the stack was split;
* reduction trees: spanning, acyclic, minimal wide-area message count of the
  grid-hierarchical tree;
* TSQR itself: for random shapes, domain counts and tree families, the R
  factor matches LAPACK and Q stays orthogonal;
* virtual flop formulas: positivity, monotonicity and symmetry properties;
* block-cyclic index maps: global -> (owner, local) -> global round-trips.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.kernels.tskernels import qr_of_stacked_triangles
from repro.scalapack.descriptor import BlockCyclic1D, RowBlockDescriptor
from repro.tsqr.sequential import tsqr
from repro.tsqr.trees import grid_hierarchical_tree, tree_for
from repro.util.partition import block_ranges, partition_rows_weighted, split_counts
from repro.util.validation import orthogonality_error, r_factors_match
from repro.virtual.flops import qr_flops, stacked_triangle_qr_flops, tsqr_critical_path_flops

# Numerical property tests re-run the linear algebra on every example; keep
# the example counts moderate so the suite stays fast.
FAST = settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
NUMERIC = settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])


# --------------------------------------------------------------------------
# Partitioning invariants
# --------------------------------------------------------------------------


@FAST
@given(n=st.integers(0, 10_000), parts=st.integers(1, 64))
def test_split_counts_cover_and_balance(n, parts):
    counts = split_counts(n, parts)
    assert sum(counts) == n
    assert len(counts) == parts
    assert max(counts) - min(counts) <= 1


@FAST
@given(n=st.integers(1, 10_000), parts=st.integers(1, 64))
def test_block_ranges_are_contiguous(n, parts):
    ranges = block_ranges(n, parts)
    assert ranges[0][0] == 0
    assert ranges[-1][1] == n
    for (_, stop), (start, _) in zip(ranges, ranges[1:]):
        assert stop == start


@FAST
@given(
    m=st.integers(1, 5_000),
    weights=st.lists(st.floats(0.0, 10.0), min_size=1, max_size=12).filter(
        lambda w: sum(w) > 0
    ),
)
def test_weighted_partition_covers_rows(m, weights):
    ranges = partition_rows_weighted(m, weights)
    assert ranges[0][0] == 0 and ranges[-1][1] == m
    sizes = [b - a for a, b in ranges]
    assert all(s >= 0 for s in sizes)
    assert sum(sizes) == m


# --------------------------------------------------------------------------
# Block-cyclic index arithmetic
# --------------------------------------------------------------------------


@FAST
@given(n=st.integers(1, 500), nb=st.integers(1, 17), p=st.integers(1, 9))
def test_block_cyclic_roundtrip_and_counts(n, nb, p):
    desc = BlockCyclic1D(n_items=n, nb=nb, p=p)
    assert sum(desc.local_count(r) for r in range(p)) == n
    for g in range(0, n, max(1, n // 13)):
        owner = desc.owner(g)
        assert desc.local_to_global(owner, desc.global_to_local(g)) == g


@FAST
@given(m=st.integers(1, 2_000), n=st.integers(1, 64), p=st.integers(1, 32))
def test_row_block_descriptor_partitions_rows(m, n, p):
    desc = RowBlockDescriptor(m, n, p)
    assert sum(desc.local_rows(r) for r in range(p)) == m
    for i in range(0, m, max(1, m // 11)):
        owner, local = desc.global_to_local(i)
        assert desc.local_to_global(owner, local) == i


# --------------------------------------------------------------------------
# The TSQR combine operator
# --------------------------------------------------------------------------


def _random_triangle(n: int, seed: int) -> np.ndarray:
    return np.triu(np.random.default_rng(seed).standard_normal((n, n)))


@NUMERIC
@given(n=st.integers(1, 12), seeds=st.tuples(st.integers(0, 10_000), st.integers(0, 10_000)))
def test_combine_commutative_up_to_signs(n, seeds):
    r1, r2 = _random_triangle(n, seeds[0]), _random_triangle(n, seeds[1])
    ab = qr_of_stacked_triangles(r1, r2, want_q=False).r
    ba = qr_of_stacked_triangles(r2, r1, want_q=False).r
    assert np.allclose(ab, ba, atol=1e-9 * max(1.0, np.linalg.norm(ab)))


@NUMERIC
@given(
    n=st.integers(1, 10),
    seeds=st.tuples(st.integers(0, 10_000), st.integers(0, 10_000), st.integers(0, 10_000)),
)
def test_combine_associative(n, seeds):
    r = [_random_triangle(n, s) for s in seeds]
    left = qr_of_stacked_triangles(
        qr_of_stacked_triangles(r[0], r[1], want_q=False).r, r[2], want_q=False
    ).r
    right = qr_of_stacked_triangles(
        r[0], qr_of_stacked_triangles(r[1], r[2], want_q=False).r, want_q=False
    ).r
    assert r_factors_match(left, right, rtol=1e-8)


@NUMERIC
@given(n=st.integers(1, 10), seed=st.integers(0, 10_000))
def test_combine_preserves_gram_matrix(n, seed):
    """R^T R of the combine equals the Gram matrix of the stacked input."""
    r1, r2 = _random_triangle(n, seed), _random_triangle(n, seed + 1)
    combined = qr_of_stacked_triangles(r1, r2, want_q=False).r
    gram_in = r1.T @ r1 + r2.T @ r2
    assert np.allclose(combined.T @ combined, gram_in, atol=1e-8 * max(1.0, np.linalg.norm(gram_in)))


# --------------------------------------------------------------------------
# Reduction trees
# --------------------------------------------------------------------------


@FAST
@given(
    per_cluster=st.lists(st.integers(1, 9), min_size=1, max_size=6),
)
def test_grid_tree_minimal_wan_messages(per_cluster):
    clusters = [f"c{i}" for i, k in enumerate(per_cluster) for _ in range(k)]
    tree = grid_hierarchical_tree(clusters)
    assert tree.n_messages() == len(clusters) - 1
    assert tree.n_inter_cluster_messages() == len(per_cluster) - 1


@FAST
@given(n=st.integers(1, 200), kind=st.sampled_from(["flat", "binary", "grid-hierarchical"]))
def test_any_tree_is_spanning(n, kind):
    tree = tree_for(kind, n)
    # Every non-root domain has exactly one parent and is reachable.
    parents = {child for child, _ in tree.edges()}
    assert len(parents) == n - 1
    assert tree.root not in parents
    assert tree.depth() <= n


# --------------------------------------------------------------------------
# TSQR end-to-end numerical invariants
# --------------------------------------------------------------------------


@NUMERIC
@given(
    m=st.integers(12, 300),
    n=st.integers(1, 12),
    n_domains=st.integers(1, 12),
    tree=st.sampled_from(["flat", "binary", "grid-hierarchical"]),
    seed=st.integers(0, 10_000),
)
def test_tsqr_matches_lapack_for_random_shapes(m, n, n_domains, tree, seed):
    if m < n:
        m = n + m
    a = np.random.default_rng(seed).standard_normal((m, n))
    result = tsqr(a, n_domains, tree=tree, want_q=True)
    assert r_factors_match(result.r, np.linalg.qr(a, mode="r"), rtol=1e-8)
    q = result.q.explicit()
    assert orthogonality_error(q) < 1e-10 * np.sqrt(m) * max(n, 1)
    assert np.allclose(q @ result.r, a, atol=1e-9 * max(1.0, np.linalg.norm(a)))


# --------------------------------------------------------------------------
# Flop formulas
# --------------------------------------------------------------------------


@FAST
@given(m=st.integers(1, 10**7), n=st.integers(1, 1024))
def test_qr_flops_positive_and_monotone_in_m(m, n):
    assert qr_flops(m, n) >= 0
    assert qr_flops(m + 1, n) >= qr_flops(m, n)


@FAST
@given(
    m=st.integers(2, 10**7),
    n=st.integers(1, 512),
    p=st.integers(1, 256),
)
def test_tsqr_critical_path_flops_bounds(m, n, p):
    total = 2.0 * m * n * n - 2.0 / 3.0 * n**3
    critical = tsqr_critical_path_flops(m, n, p)
    assert critical >= total / p - 1e-6
    assert stacked_triangle_qr_flops(n) >= 0
