"""Property-based tests (hypothesis) for the canonical service keys.

The cache key must be a pure function of the simulation semantics.  These
properties drive randomly drawn valid configurations through every spelling
a query might use and assert:

* dict-order invariance — any permutation of the config fields hashes the
  same;
* default-filling invariance — a config and its fully-canonicalised explicit
  form share one key;
* alias invariance — the CLI spellings (``rows``/``cols``/``sites``) hash
  like the spec field names;
* irrelevant-field invariance — fields an algorithm never consumes do not
  enter its key;
* no collisions — two configurations that canonicalise differently never
  share a key (they would silently serve each other's results).
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dag.placement import PLACEMENT_POLICIES, PRIORITY_POLICIES
from repro.service.keys import (
    _SPEC_FIELDS,
    canonical_spec,
    config_key,
    spec_from_config,
)

FAST = settings(max_examples=60, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])

_TREES = ("flat", "binary", "grid-hierarchical")


@st.composite
def spec_configs(draw) -> dict:
    """One valid query configuration, with optional fields randomly present."""
    algorithm = draw(st.sampled_from(("tsqr", "scalapack", "caqr", "cholesky", "lu")))
    config: dict[str, object] = {
        "algorithm": algorithm,
        "m": draw(st.integers(1, 1 << 25)),
        "n": draw(st.integers(1, 512)),
        "n_sites": draw(st.sampled_from((1, 2, 4))),
    }
    if algorithm == "cholesky":
        config["m"] = config["n"]
    if algorithm == "tsqr":
        config["domains_per_cluster"] = draw(st.sampled_from((1, 2, 4, 8, 16, 32, 64)))
    if algorithm in ("tsqr", "scalapack") and draw(st.booleans()):
        config["want_q"] = draw(st.booleans())
    if algorithm in ("tsqr", "caqr") and draw(st.booleans()):
        config["tree_kind"] = draw(st.sampled_from(_TREES))
    runtime = "spmd"
    if algorithm in ("caqr", "cholesky", "lu"):
        config["tile_size"] = draw(st.sampled_from((8, 16, 32, 64, 128)))
        runtime = "dag" if algorithm != "caqr" else draw(st.sampled_from(("spmd", "dag")))
        if algorithm == "caqr" or draw(st.booleans()):
            config["runtime"] = runtime
    if runtime == "dag":
        if draw(st.booleans()):
            config["placement"] = draw(st.sampled_from(PLACEMENT_POLICIES))
        if draw(st.booleans()):
            config["priority"] = draw(st.sampled_from(PRIORITY_POLICIES))
    return config


@FAST
@given(config=spec_configs(), seed=st.randoms(use_true_random=False))
def test_dict_order_invariance(config, seed):
    items = list(config.items())
    seed.shuffle(items)
    assert config_key(dict(items)) == config_key(config)


@FAST
@given(config=spec_configs())
def test_default_filling_invariance(config):
    """A config and its fully-explicit canonical form share one key."""
    canon = canonical_spec(spec_from_config(config))
    explicit = {f: getattr(canon, f) for f in _SPEC_FIELDS}
    assert config_key(explicit) == config_key(config)


@FAST
@given(config=spec_configs())
def test_cli_alias_invariance(config):
    aliased = {
        {"m": "rows", "n": "cols", "n_sites": "sites",
         "tree_kind": "panel_tree"}.get(k, k): v
        for k, v in config.items()
    }
    assert config_key(aliased) == config_key(config)


@FAST
@given(config=spec_configs(), dpc=st.sampled_from((1, 2, 64)))
def test_irrelevant_domains_never_enter_the_key(config, dpc):
    """domains_per_cluster is TSQR's field; every other algorithm ignores it."""
    if config["algorithm"] == "tsqr":
        return
    assert config_key({**config, "domains_per_cluster": dpc}) == config_key(config)


@FAST
@given(config=spec_configs(), tree=st.sampled_from(_TREES))
def test_irrelevant_tree_never_enters_the_key(config, tree):
    """ScaLAPACK and the DAG-only algorithms have no panel reduction tree."""
    if config["algorithm"] not in ("scalapack", "cholesky", "lu"):
        return
    assert config_key({**config, "tree_kind": tree}) == config_key(config)


@FAST
@given(a=spec_configs(), b=spec_configs())
def test_no_collisions_across_configs(a, b):
    """Different canonical configurations never share a key, equal ones always do."""
    canon_a = canonical_spec(spec_from_config(a))
    canon_b = canonical_spec(spec_from_config(b))
    if canon_a == canon_b:
        assert config_key(a) == config_key(b)
    else:
        assert config_key(a) != config_key(b)


@FAST
@given(config=spec_configs())
def test_key_shape_and_determinism(config):
    key = config_key(config)
    assert key == config_key(config)
    assert len(key) == 64
    assert set(key) <= set("0123456789abcdef")
