"""Property-based (hypothesis) correctness of DAG failure recovery.

Random failure schedules against small tiled QR and Cholesky graphs: for
*every* sampled schedule the recovered factor must be bit-identical to the
failure-free run, repeated runs must produce identical traces (failures
included), and the exactly-once accounting must be internally consistent.
These properties are the fault-tolerance analogue of the policy-invisibility
properties in ``test_dag_properties.py``: a failure schedule changes when
and where kernels run — never the numbers.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dag import DAGCAQRConfig, DAGFactorizationConfig, run_dag_factorization
from repro.gridsim.failures import FailureSchedule, RankFailure
from tests.conftest import make_platform
from tests.dag.test_cholesky_lu import spd_matrix

# Every example simulates a failure-free baseline plus a failing run with
# full recovery; keep the example counts moderate.
RECOVERY = settings(
    max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

#: One platform for the whole module (session fixtures are unavailable
#: inside @given bodies).
PLATFORM = make_platform(1, 2, 2)
N_RANKS = PLATFORM.n_processes


@st.composite
def failure_schedules(draw) -> FailureSchedule:
    """1-2 distinct ranks, each dying at a random time or event count."""
    n_failures = draw(st.integers(1, 2))
    ranks = draw(
        st.lists(
            st.integers(0, N_RANKS - 1),
            min_size=n_failures,
            max_size=n_failures,
            unique=True,
        )
    )
    failures = []
    for rank in ranks:
        if draw(st.booleans()):
            failures.append(RankFailure(rank, at_time=draw(st.floats(0.0, 0.02))))
        else:
            failures.append(RankFailure(rank, after_events=draw(st.integers(0, 120))))
    return FailureSchedule(failures)


def _consistent_report(res, schedule: FailureSchedule) -> None:
    rec = res.recovery
    if rec is None:  # the schedule never fired — a legitimate outcome
        return
    assert set(rec.dead_ranks) <= set(schedule.ranks)
    assert len(rec.dead_ranks) == len(rec.death_times)
    assert rec.rounds >= 1
    assert rec.tasks_executed >= rec.tasks_reexecuted >= 0
    assert rec.makespan_s == res.makespan_s


@RECOVERY
@given(schedule=failure_schedules(), seed=st.integers(0, 2**16))
def test_qr_recovery_is_bit_identical_for_any_schedule(schedule, seed):
    a = np.random.default_rng(seed).standard_normal((192, 64))
    cfg = DAGCAQRConfig(m=192, n=64, tile_size=32, matrix=a)
    base = run_dag_factorization(PLATFORM, cfg)
    res = run_dag_factorization(
        PLATFORM, cfg, failures=schedule, baseline_makespan_s=base.makespan_s
    )
    assert np.array_equal(res.r, base.r)
    _consistent_report(res, schedule)


@RECOVERY
@given(schedule=failure_schedules(), seed=st.integers(0, 2**16))
def test_cholesky_recovery_is_bit_identical_for_any_schedule(schedule, seed):
    a = spd_matrix(96, seed=seed)
    cfg = DAGFactorizationConfig(m=96, n=96, tile_size=32, matrix=a, algorithm="cholesky")
    base = run_dag_factorization(PLATFORM, cfg)
    res = run_dag_factorization(
        PLATFORM, cfg, failures=schedule, baseline_makespan_s=base.makespan_s
    )
    assert np.array_equal(res.r, base.r)
    _consistent_report(res, schedule)


@RECOVERY
@given(schedule=failure_schedules())
def test_failing_runs_are_bit_deterministic(schedule):
    """Two identical runs under the same schedule: identical traces, events,
    death times and accounting — on both engine backends."""
    cfg = DAGCAQRConfig(m=192, n=64, tile_size=32)  # virtual: trace-only
    runs = [
        run_dag_factorization(
            PLATFORM,
            cfg,
            failures=schedule,
            engine=engine,
            record_messages=True,
            baseline_makespan_s=1.0,
        )
        for engine in ("coroutine", "threads")
        for _ in range(2)
    ]
    first = runs[0]
    for other in runs[1:]:
        assert other.makespan_s == first.makespan_s
        assert other.trace == first.trace
        assert other.recovery == first.recovery
        assert other.simulation.events == first.simulation.events
        assert other.trace.rank_failures == first.trace.rank_failures
