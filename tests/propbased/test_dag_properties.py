"""Property-based (hypothesis) correctness of the task-DAG runtime.

DAG-CAQR must agree with LAPACK *and* reproduce the SPMD CAQR program bit
for bit on any shape — non-divisible tiles, fat panels, single-tile inputs —
under every placement and priority policy.  The scheduling policies change
*when and where* each kernel runs, never its operands, so the sampled policy
must be invisible in the numbers.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dag import DAGCAQRConfig, run_dag_caqr
from repro.programs.caqr import CAQRConfig, run_parallel_caqr
from repro.util.validation import r_factors_match
from tests.conftest import make_platform

# Every example runs a full distributed factorization twice (DAG + SPMD)
# plus a LAPACK reference; moderate example counts keep the suite fast.
NUMERIC = settings(
    max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

#: One platform for the whole module (session fixtures are unavailable
#: inside @given bodies).
PLATFORM = make_platform(2, 2, 2)

shapes = st.tuples(st.integers(1, 40), st.integers(1, 40))
tiles = st.integers(1, 48)
placements = st.sampled_from(["block", "block-cyclic", "owner-computes"])
priorities = st.sampled_from(["critical-path", "panel", "fifo"])
trees = st.sampled_from(["flat", "binary", "grid-hierarchical"])


def _matrix(m: int, n: int, seed: int) -> np.ndarray:
    return np.random.default_rng(seed).standard_normal((m, n))


@NUMERIC
@given(
    shape=shapes,
    tile=tiles,
    seed=st.integers(0, 2**16),
    placement=placements,
    priority=priorities,
    tree=trees,
)
def test_dag_caqr_matches_lapack_and_spmd_bitwise(
    shape, tile, seed, placement, priority, tree
):
    m, n = shape
    a = _matrix(m, n, seed)
    spmd = run_parallel_caqr(
        PLATFORM, CAQRConfig(m=m, n=n, tile_size=tile, panel_tree=tree, matrix=a)
    )
    dag = run_dag_caqr(
        PLATFORM,
        DAGCAQRConfig(
            m=m, n=n, tile_size=tile, panel_tree=tree,
            placement=placement, priority=priority, matrix=a,
        ),
    )
    assert dag.r.shape == (min(m, n), n)
    assert np.array_equal(dag.r, spmd.r)
    assert r_factors_match(dag.r, np.linalg.qr(a, mode="r"))


@NUMERIC
@given(n=st.integers(1, 24), fat_extra=st.integers(1, 24), tile=tiles,
       seed=st.integers(0, 2**16), priority=priorities)
def test_fat_panels(n, fat_extra, tile, seed, priority):
    """m < n: R is upper-trapezoidal and still matches LAPACK."""
    m = n
    a = _matrix(m, n + fat_extra, seed)
    dag = run_dag_caqr(
        PLATFORM,
        DAGCAQRConfig(m=m, n=n + fat_extra, tile_size=tile, priority=priority, matrix=a),
    )
    assert dag.r.shape == (m, n + fat_extra)
    assert r_factors_match(dag.r, np.linalg.qr(a, mode="r"))


@NUMERIC
@given(shape=shapes, seed=st.integers(0, 2**16), placement=placements)
def test_tile_larger_than_matrix_is_single_task(shape, seed, placement):
    m, n = shape
    a = _matrix(m, n, seed)
    dag = run_dag_caqr(
        PLATFORM,
        DAGCAQRConfig(
            m=m, n=n, tile_size=max(m, n) + 5, placement=placement, matrix=a
        ),
    )
    assert dag.graph.n_tasks == 1
    assert r_factors_match(dag.r, np.linalg.qr(a, mode="r"))
