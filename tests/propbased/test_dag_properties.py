"""Property-based (hypothesis) correctness of the task-DAG runtime.

DAG-CAQR must agree with LAPACK *and* reproduce the SPMD CAQR program bit
for bit on any shape — non-divisible tiles, fat panels, single-tile inputs —
under every placement and priority policy.  The scheduling policies change
*when and where* each kernel runs, never its operands, so the sampled policy
must be invisible in the numbers.

The registry generalization adds structural properties over all three
algorithms (QR, Cholesky, LU) on awkward tile shapes: the derived edges are
exactly the RAW/WAW/WAR closure of the declared read/write sets, task ids
are a topological order, and ``communication_counts`` matches the measured
trace of a virtual run message for message and byte for byte.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dag import (
    DAGCAQRConfig,
    DAGFactorizationConfig,
    build_tiled_graph,
    communication_counts,
    place_tasks,
    run_dag_caqr,
    run_dag_factorization,
)
from repro.programs.caqr import CAQRConfig, run_parallel_caqr
from repro.util.validation import r_factors_match
from tests.conftest import make_platform
from tests.dag.test_cholesky_lu import (
    dominant_matrix,
    reference_cholesky,
    reference_lu,
    spd_matrix,
)

# Every example runs a full distributed factorization twice (DAG + SPMD)
# plus a LAPACK reference; moderate example counts keep the suite fast.
NUMERIC = settings(
    max_examples=12, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

#: One platform for the whole module (session fixtures are unavailable
#: inside @given bodies).
PLATFORM = make_platform(2, 2, 2)

shapes = st.tuples(st.integers(1, 40), st.integers(1, 40))
tiles = st.integers(1, 48)
placements = st.sampled_from(["block", "block-cyclic", "owner-computes"])
priorities = st.sampled_from(["critical-path", "panel", "fifo"])
trees = st.sampled_from(["flat", "binary", "grid-hierarchical"])


def _matrix(m: int, n: int, seed: int) -> np.ndarray:
    return np.random.default_rng(seed).standard_normal((m, n))


@NUMERIC
@given(
    shape=shapes,
    tile=tiles,
    seed=st.integers(0, 2**16),
    placement=placements,
    priority=priorities,
    tree=trees,
)
def test_dag_caqr_matches_lapack_and_spmd_bitwise(
    shape, tile, seed, placement, priority, tree
):
    m, n = shape
    a = _matrix(m, n, seed)
    spmd = run_parallel_caqr(
        PLATFORM, CAQRConfig(m=m, n=n, tile_size=tile, panel_tree=tree, matrix=a)
    )
    dag = run_dag_caqr(
        PLATFORM,
        DAGCAQRConfig(
            m=m, n=n, tile_size=tile, panel_tree=tree,
            placement=placement, priority=priority, matrix=a,
        ),
    )
    assert dag.r.shape == (min(m, n), n)
    assert np.array_equal(dag.r, spmd.r)
    assert r_factors_match(dag.r, np.linalg.qr(a, mode="r"))


@NUMERIC
@given(n=st.integers(1, 24), fat_extra=st.integers(1, 24), tile=tiles,
       seed=st.integers(0, 2**16), priority=priorities)
def test_fat_panels(n, fat_extra, tile, seed, priority):
    """m < n: R is upper-trapezoidal and still matches LAPACK."""
    m = n
    a = _matrix(m, n + fat_extra, seed)
    dag = run_dag_caqr(
        PLATFORM,
        DAGCAQRConfig(m=m, n=n + fat_extra, tile_size=tile, priority=priority, matrix=a),
    )
    assert dag.r.shape == (m, n + fat_extra)
    assert r_factors_match(dag.r, np.linalg.qr(a, mode="r"))


@NUMERIC
@given(shape=shapes, seed=st.integers(0, 2**16), placement=placements)
def test_tile_larger_than_matrix_is_single_task(shape, seed, placement):
    m, n = shape
    a = _matrix(m, n, seed)
    dag = run_dag_caqr(
        PLATFORM,
        DAGCAQRConfig(
            m=m, n=n, tile_size=max(m, n) + 5, placement=placement, matrix=a
        ),
    )
    assert dag.graph.n_tasks == 1
    assert r_factors_match(dag.r, np.linalg.qr(a, mode="r"))


# ---------------------------------------------------------------------------
# Registry-wide structural properties: QR, Cholesky and LU graphs
# ---------------------------------------------------------------------------

#: Structural checks build graphs only (no simulation) — they can afford
#: more examples than the full-factorization properties above.
STRUCTURAL = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

algorithms = st.sampled_from(["qr", "cholesky", "lu"])


def _graph_for(algorithm: str, shape: tuple[int, int], tile: int):
    m, n = shape
    if algorithm == "cholesky":
        n = m  # square only
    return build_tiled_graph(algorithm, m, n, tile)


@STRUCTURAL
@given(algorithm=algorithms, shape=shapes, tile=tiles)
def test_edges_are_exactly_the_read_write_closure(algorithm, shape, tile):
    """Replay every task's declared read/write sets through an independent
    RAW/WAW/WAR derivation and require the graph's edges to match exactly."""
    graph = _graph_for(algorithm, shape, tile)
    last_writer: dict[int, int] = {}
    readers_since: dict[int, list[int]] = {}
    for task in graph.tasks:
        deps = set()
        for h in task.reads:
            if h in last_writer:
                deps.add(last_writer[h])  # RAW
        for h in task.writes:
            if h in last_writer:
                deps.add(last_writer[h])  # WAW
            deps.update(readers_since.get(h, ()))  # WAR
        deps.discard(task.id)
        assert tuple(sorted(deps)) == graph.preds[task.id]
        expected_producers = tuple(last_writer.get(h, -1) for h in task.reads)
        assert task.read_producers == expected_producers
        for h in task.reads:
            readers_since.setdefault(h, []).append(task.id)
        for h in task.writes:
            last_writer[h] = task.id
            readers_since[h] = []


@STRUCTURAL
@given(algorithm=algorithms, shape=shapes, tile=tiles)
def test_task_ids_are_a_topological_order(algorithm, shape, tile):
    """Acyclicity by construction: every edge points strictly forward, and
    writers read what they overwrite (the communication plan's contract)."""
    graph = _graph_for(algorithm, shape, tile)
    assert graph.n_tasks > 0
    for task in graph.tasks:
        assert all(p < task.id for p in graph.preds[task.id])
        for h in task.writes:
            if graph.handle_keys[h][0] == "A":
                assert h in task.reads  # writers read what they overwrite


@NUMERIC
@given(
    algorithm=algorithms,
    shape=st.tuples(st.integers(1, 20), st.integers(1, 20)),
    tile=st.integers(1, 24),
    placement=placements,
    priority=priorities,
)
def test_communication_counts_match_measured_traces(
    algorithm, shape, tile, placement, priority
):
    """The analysis layer's counts ARE the runtime's: a virtual run of any
    algorithm on any shape measures exactly the planned messages/bytes."""
    m, n = shape
    if algorithm == "cholesky":
        n = m
    run = run_dag_factorization(
        PLATFORM,
        DAGFactorizationConfig(
            m=m, n=n, tile_size=tile, placement=placement, priority=priority,
            algorithm=algorithm,
        ),
    )
    plan = place_tasks(run.graph, placement, PLATFORM.n_processes)
    messages, nbytes = communication_counts(run.graph, plan)
    assert run.trace.total_messages == messages
    assert sum(run.trace.bytes_by_link.values()) == nbytes


@NUMERIC
@given(
    n=st.integers(1, 40),
    tile=tiles,
    seed=st.integers(0, 2**16),
    placement=placements,
    priority=priorities,
)
def test_dag_cholesky_matches_sequential_reference_bitwise(
    n, tile, seed, placement, priority
):
    a = spd_matrix(n, seed=seed)
    run = run_dag_factorization(
        PLATFORM,
        DAGFactorizationConfig(
            m=n, n=n, tile_size=tile, placement=placement, priority=priority,
            matrix=a, algorithm="cholesky",
        ),
    )
    assert np.array_equal(run.r, reference_cholesky(a, tile))


@NUMERIC
@given(
    shape=shapes,
    tile=tiles,
    seed=st.integers(0, 2**16),
    placement=placements,
    priority=priorities,
)
def test_dag_lu_matches_sequential_reference_bitwise(
    shape, tile, seed, placement, priority
):
    m, n = shape
    a = dominant_matrix(m, n, seed=seed)
    run = run_dag_factorization(
        PLATFORM,
        DAGFactorizationConfig(
            m=m, n=n, tile_size=tile, placement=placement, priority=priority,
            matrix=a, algorithm="lu",
        ),
    )
    assert np.array_equal(run.r, reference_lu(a, tile))
