"""Streaming statistics vs event-list recomputation (the PR's acceptance test).

The streaming layer maintains its snapshot online, with no event list.  These
tests pin the equivalence contract from three directions:

* every statistic that *can* be recomputed from a ``record_messages=True``
  event stream — latency/size histograms per link, per-kernel flop
  histograms, the received-bytes timeline, the per-link traffic totals —
  matches the online snapshot **bit for bit**, on both engine backends;
* the statistics that events cannot reproduce (wait-derived: hot spots, the
  busy/wait timelines — the frozen event format carries neither per-receive
  wait nor flop end times) are instead pinned by recording-vs-non-recording
  and coroutine-vs-threads equality of the full snapshot;
* turning streaming off yields ``stats=None`` / empty hot spots while the
  rest of the summary stays equal, and pinned traces stay bit-identical
  either way (the observer never participates in scheduling).
"""

from __future__ import annotations

import pytest

from repro.dag.runtime import DAGCAQRConfig, run_dag_caqr
from repro.gridsim.executor import SPMDExecutor
from repro.obs.stats import stats_from_events
from repro.tsqr.parallel import TSQRConfig, qcg_tsqr_program, run_parallel_tsqr

CONFIG = TSQRConfig(m=262_144, n=32, n_domains=4, tree_kind="grid-hierarchical")
ENGINES = ("coroutine", "threads")

#: Snapshot fields an event replay can reconstruct exactly.
REPLAYABLE = (
    "n_ranks",
    "horizon_s",
    "window_s",
    "latency_by_link",
    "size_by_link",
    "flops_by_kernel",
    "recv_bytes_timeline",
)


def _tsqr_run(platform, *, engine, record=False, streaming=None):
    executor = SPMDExecutor(
        platform, record_messages=record, engine=engine, streaming_stats=streaming
    )
    return executor.run(qcg_tsqr_program, CONFIG)


class TestReplayEquivalence:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_online_matches_event_recomputation(self, platform8, engine):
        sim = _tsqr_run(platform8, engine=engine, record=True)
        online = sim.trace.stats
        assert online is not None
        replayed = stats_from_events(
            sim.events, n_ranks=platform8.n_processes, makespan=sim.makespan
        )
        for name in REPLAYABLE:
            assert getattr(online, name) == getattr(replayed, name), name

    @pytest.mark.parametrize("engine", ENGINES)
    def test_traffic_counts_match_event_recomputation(self, platform8, engine):
        sim = _tsqr_run(platform8, engine=engine, record=True)
        online = sim.trace.stats.link_traffic
        replayed = stats_from_events(
            sim.events, n_ranks=platform8.n_processes, makespan=sim.makespan
        ).link_traffic
        # The wait_s column is wait-derived (0 under replay); messages and
        # bytes must agree exactly.
        assert set(online) == set(replayed)
        for link, classes in online.items():
            assert set(classes) == set(replayed[link])
            for cls, totals in classes.items():
                assert totals["messages"] == replayed[link][cls]["messages"]
                assert totals["nbytes"] == replayed[link][cls]["nbytes"]


class TestObserverInvariance:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_recording_does_not_change_the_snapshot(self, platform8, engine):
        recorded = _tsqr_run(platform8, engine=engine, record=True)
        bare = _tsqr_run(platform8, engine=engine, record=False)
        assert bare.trace.stats == recorded.trace.stats
        assert bare.trace.hot_spots == recorded.trace.hot_spots
        assert bare.events == []  # non-recording runs retain no event list

    def test_backends_produce_identical_snapshots(self, platform8):
        coro = _tsqr_run(platform8, engine="coroutine")
        threads = _tsqr_run(platform8, engine="threads")
        assert coro.trace.stats == threads.trace.stats
        assert coro.trace.hot_spots == threads.trace.hot_spots
        assert coro.makespan == threads.makespan

    def test_streaming_off_leaves_the_summary_equal(self, platform8):
        on = _tsqr_run(platform8, engine="coroutine", streaming=True)
        off = _tsqr_run(platform8, engine="coroutine", streaming=False)
        assert off.trace.stats is None
        assert off.trace.hot_spots == ()
        assert on.trace.stats is not None
        # stats/hot_spots are compare=False: the summaries still compare
        # equal, and the simulation itself is bit-identical.
        assert on.trace == off.trace
        assert on.makespan == off.makespan
        assert on.clocks == off.clocks

    def test_env_knob_disables_streaming(self, platform8, monkeypatch):
        monkeypatch.setenv("REPRO_STREAMING_STATS", "0")
        sim = _tsqr_run(platform8, engine="coroutine")
        assert sim.trace.stats is None
        monkeypatch.setenv("REPRO_STREAMING_STATS", "1")
        sim = _tsqr_run(platform8, engine="coroutine")
        assert sim.trace.stats is not None


class TestDagRuntime:
    CONFIG = DAGCAQRConfig(m=1024, n=256, tile_size=64)  # matrix None: virtual

    @pytest.mark.parametrize("engine", ENGINES)
    def test_dag_online_matches_event_recomputation(self, platform8, engine):
        run = run_dag_caqr(
            platform8, self.CONFIG, record_messages=True, engine=engine
        )
        sim = run.simulation
        online = run.trace.stats
        assert online is not None
        replayed = stats_from_events(
            sim.events, n_ranks=platform8.n_processes, makespan=sim.makespan
        )
        for name in REPLAYABLE:
            assert getattr(online, name) == getattr(replayed, name), name

    def test_dag_backends_produce_identical_snapshots(self, platform8):
        coro = run_dag_caqr(platform8, self.CONFIG, engine="coroutine")
        threads = run_dag_caqr(platform8, self.CONFIG, engine="threads")
        assert coro.trace.stats == threads.trace.stats
        assert coro.trace.hot_spots == threads.trace.hot_spots


class TestSnapshotContents:
    def test_snapshot_is_populated(self, platform8):
        sim = _tsqr_run(platform8, engine="coroutine")
        stats = sim.trace.stats
        assert stats.n_ranks == platform8.n_processes
        assert stats.horizon_s == sim.makespan
        assert stats.window_s > 0.0
        assert stats.horizon_s < len(next(iter(stats.recv_bytes_timeline.values()))) * stats.window_s * 2
        assert stats.latency_by_link  # some link saw latency
        assert stats.flops_by_kernel
        total_bytes = sum(
            sum(series) for series in stats.recv_bytes_timeline.values()
        )
        assert total_bytes == sum(
            cls["nbytes"]
            for classes in stats.link_traffic.values()
            for cls in classes.values()
        ) - sum(
            # Collective tree edges (recv_time 0) are counted in traffic but
            # excluded from the timeline.
            cls["nbytes"]
            for classes in stats.link_traffic.values()
            for name, cls in classes.items()
            if name != "p2p"
        )

    def test_hotspots_are_ranked_and_consistent(self, platform8):
        sim = _tsqr_run(platform8, engine="coroutine")
        spots = sim.trace.hot_spots
        assert spots  # the hierarchical reduction must contend somewhere
        waits = [s.wait_s for s in spots]
        assert waits == sorted(waits, reverse=True)
        for s in spots:
            assert s.wait_s > 0.0
            assert s.messages > 0
            assert s.link in ("intra-node", "intra-cluster", "inter-cluster")

    def test_run_parallel_tsqr_streaming_knob(self, platform8):
        run = run_parallel_tsqr(platform8, CONFIG, streaming_stats=False)
        assert run.trace.stats is None
        run = run_parallel_tsqr(platform8, CONFIG)
        assert run.trace.stats is not None
