"""Tests of the service tier's wall-clock metrics."""

from __future__ import annotations

import json
import logging

import pytest

from repro.obs.metrics import ServiceMetrics


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestObservation:
    def test_latency_histograms_are_per_op(self):
        m = ServiceMetrics()
        m.observe_request("query", 0.010)
        m.observe_request("query", 0.030)
        m.observe_request("stats", 0.001)
        d = m.as_dict()
        assert d["request_latency_s"]["query"]["n"] == 2
        assert d["request_latency_s"]["stats"]["n"] == 1

    def test_max_is_exact_not_bucketed(self):
        m = ServiceMetrics()
        m.observe_request("query", 0.0123)
        assert m.as_dict()["request_latency_s"]["query"]["max"] == 0.0123
        m.observe_queue_depth(7)
        m.observe_queue_depth(3)
        assert m.as_dict()["queue_depth"]["max"] == 7
        m.observe_batch(5)
        assert m.as_dict()["batch_size"]["max"] == 5

    def test_quantiles_bound_the_observations(self):
        m = ServiceMetrics()
        for _ in range(100):
            m.observe_request("query", 0.003)
        q = m.as_dict()["request_latency_s"]["query"]
        assert 0.003 <= q["p99"] <= 0.006  # upper bucket edge, <= 2x

    def test_empty_metrics_serialise(self):
        d = ServiceMetrics().as_dict()
        assert d["request_latency_s"] == {}
        assert d["queue_depth"]["n"] == 0
        json.dumps(d)  # JSON-safe as the stats reply requires


class TestLogging:
    def test_maybe_log_paces_itself(self, caplog):
        clock = FakeClock()
        m = ServiceMetrics(log_every_s=60.0, clock=clock)
        with caplog.at_level(logging.INFO, logger="repro.service"):
            assert not m.maybe_log()  # within the first interval
            clock.now = 61.0
            assert m.maybe_log()
            assert not m.maybe_log()  # interval restarted
            clock.now = 122.0
            assert m.maybe_log()
        assert len(caplog.records) == 2

    def test_log_line_is_structured_json(self, caplog):
        clock = FakeClock()
        m = ServiceMetrics(log_every_s=1.0, clock=clock)
        m.observe_request("query", 0.01)
        clock.now = 2.0
        with caplog.at_level(logging.INFO, logger="repro.service"):
            assert m.maybe_log({"queries": 12})
        record = json.loads(caplog.records[0].message)
        assert record["event"] == "service-metrics"
        assert record["queries"] == 12
        assert record["request_latency_s"]["query"]["n"] == 1
