"""Unit tests of the streaming accumulator itself (synthetic event feeds)."""

from __future__ import annotations

import pytest

from repro.gridsim.network import LinkClass
from repro.obs.stats import COLLECTIVE_TAGS, StreamingTraceStats

INTRA_NODE = list(LinkClass).index(LinkClass.INTRA_NODE)
INTER = list(LinkClass).index(LinkClass.INTER_CLUSTER)


def _msg(stats, *, source=0, dest=1, nbytes=100, link=INTER, tag="42",
         send=1.0, recv=2.0, wait=0.0):
    stats.on_message(source, dest, nbytes, link, tag, send, recv, wait)


class TestTrafficClasses:
    def test_collective_tags_are_split_from_p2p(self):
        stats = StreamingTraceStats(4)
        _msg(stats, tag="reduce")
        _msg(stats, tag="reduce")
        _msg(stats, tag="7")  # a stringified user tag: p2p
        traffic = stats.snapshot().link_traffic
        inter = traffic[LinkClass.INTER_CLUSTER.value]
        assert inter["reduce"]["messages"] == 2
        assert inter["p2p"]["messages"] == 1

    def test_known_collective_tags(self):
        assert COLLECTIVE_TAGS == {
            "barrier", "bcast", "reduce", "allgather", "gather", "scatter"
        }

    def test_wait_accumulates_into_the_traffic_column(self):
        stats = StreamingTraceStats(4)
        _msg(stats, wait=0.5)
        _msg(stats, wait=0.25)
        _msg(stats, wait=0.0)
        traffic = stats.snapshot().link_traffic
        assert traffic[LinkClass.INTER_CLUSTER.value]["p2p"]["wait_s"] == 0.75


class TestHotSpots:
    def test_only_waiting_messages_register(self):
        stats = StreamingTraceStats(4)
        _msg(stats, wait=0.0)
        assert stats.top_hotspots() == ()
        _msg(stats, wait=0.1)
        (spot,) = stats.top_hotspots()
        assert (spot.source, spot.dest, spot.messages) == (0, 1, 1)

    def test_ranking_is_by_wait_then_site_key(self):
        stats = StreamingTraceStats(8)
        _msg(stats, source=3, dest=4, wait=0.1)
        _msg(stats, source=1, dest=2, wait=0.3)
        _msg(stats, source=5, dest=6, wait=0.3, link=INTRA_NODE)
        spots = stats.top_hotspots()
        assert [(s.source, s.dest) for s in spots] == [(5, 6), (1, 2), (3, 4)]
        # Equal waits tie-break on (link index, source, dest): INTRA_NODE
        # precedes INTER_CLUSTER in the LinkClass order.
        assert INTRA_NODE < INTER

    def test_top_k_caps_the_report(self):
        stats = StreamingTraceStats(64, top_k=3)
        for d in range(10):
            _msg(stats, source=0, dest=d, wait=0.01 * (d + 1))
        spots = stats.top_hotspots()
        assert len(spots) == 3
        assert [s.dest for s in spots] == [9, 8, 7]

    def test_site_table_overflows_into_a_sentinel(self):
        stats = StreamingTraceStats(64, max_sites=2, top_k=10)
        _msg(stats, source=0, dest=1, wait=0.1)
        _msg(stats, source=0, dest=2, wait=0.2)
        _msg(stats, source=0, dest=3, wait=0.4)  # table full: overflow slot
        _msg(stats, source=0, dest=4, wait=0.8)  # joins the same slot
        spots = stats.top_hotspots()
        overflow = [s for s in spots if s.source == -1 and s.dest == -1]
        assert len(overflow) == 1
        assert overflow[0].wait_s == 0.4 + 0.8
        assert overflow[0].messages == 2
        # Total accounted wait is conserved despite the cap.
        assert sum(s.wait_s for s in spots) == pytest.approx(1.5)


class TestHorizon:
    def test_on_tick_is_max_only_and_geometric(self):
        stats = StreamingTraceStats(4)
        nxt = stats.on_tick(1.0)
        assert nxt == stats.next_tick == 1.0 * 1.25 + 1e-4
        stats.on_tick(0.5)  # going backwards must not lower the horizon
        assert stats.horizon == 1.0

    def test_finalize_pins_the_horizon_to_the_makespan(self):
        stats = StreamingTraceStats(4)
        _msg(stats, recv=0.25)
        stats.finalize(3.0)
        assert stats.horizon == 3.0
        stats.finalize(1.0)  # never lowers
        assert stats.horizon == 3.0

    def test_collective_edges_do_not_move_the_horizon(self):
        stats = StreamingTraceStats(4)
        # Tree edges record recv_time 0.0 and carry no absolute times.
        _msg(stats, tag="reduce", send=0.0, recv=0.0)
        assert stats.horizon == 0.0
        assert stats.snapshot().recv_bytes_timeline == {}
