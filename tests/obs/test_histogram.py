"""Unit tests of the log-bucketed histogram primitives."""

from __future__ import annotations

import math

import pytest

from repro.obs.stats import HistogramSummary, LogHistogram


class TestLogHistogram:
    def test_integer_bucketing_uses_bit_length(self):
        h = LogHistogram()
        for v in (1, 2, 3, 4, 7, 8):
            h.add(v)
        # 1 -> bucket 1; 2,3 -> bucket 2; 4..7 -> bucket 3; 8 -> bucket 4.
        assert dict(h.counts) == {1: 1, 2: 2, 3: 2, 4: 1}
        assert h.n == 6
        assert h.total == 25

    def test_float_bucketing_uses_frexp(self):
        h = LogHistogram()
        h.add(0.75)  # [0.5, 1)  -> exponent 0
        h.add(1.5)   # [1, 2)    -> exponent 1
        h.add(3.0)   # [2, 4)    -> exponent 2
        assert dict(h.counts) == {0: 1, 1: 1, 2: 1}

    def test_bucket_edges_are_half_open(self):
        # An exact power of two belongs to the bucket it is the LOWER edge
        # of: [2**(i-1), 2**i) means 2.0 -> exponent 2, not 1.
        h = LogHistogram()
        h.add(2.0)
        assert dict(h.counts) == {2: 1}
        assert math.frexp(2.0)[1] == 2

    def test_tiny_latencies_do_not_clamp(self):
        # Sub-microsecond latencies get honest negative exponents instead of
        # piling into a clamped bucket 0 (the dict-keyed design's point).
        h = LogHistogram()
        h.add(1e-7)
        (exponent,) = h.counts
        assert exponent < 0
        assert 2.0 ** (exponent - 1) <= 1e-7 < 2.0 ** exponent

    def test_nonpositive_values_land_in_bucket_zero(self):
        h = LogHistogram()
        h.add(0)
        h.add(0.0)
        assert dict(h.counts) == {0: 2}

    def test_freeze_sorts_buckets(self):
        h = LogHistogram()
        for v in (8, 1, 3):
            h.add(v)
        frozen = h.freeze()
        assert frozen.buckets == ((1, 1), (2, 1), (4, 1))
        assert frozen.n == 3
        assert frozen.total == 12


class TestHistogramSummary:
    def test_quantiles_return_upper_bucket_edges(self):
        h = LogHistogram()
        for _ in range(99):
            h.add(1.5)  # bucket 1, upper edge 2.0
        h.add(100.0)  # bucket 7, upper edge 128.0
        frozen = h.freeze()
        assert frozen.p50 == 2.0
        assert frozen.p95 == 2.0
        assert frozen.p99 == 2.0
        assert frozen.quantile(1.0) == 128.0
        assert frozen.max_edge == 128.0

    def test_quantile_is_conservative_within_2x(self):
        h = LogHistogram()
        values = [0.001 * (i + 1) for i in range(100)]
        for v in values:
            h.add(v)
        frozen = h.freeze()
        true_p95 = sorted(values)[94]
        assert true_p95 <= frozen.p95 <= 2.0 * true_p95

    def test_empty_summary_is_all_zero(self):
        frozen = HistogramSummary()
        assert frozen.p50 == 0.0
        assert frozen.mean == 0.0
        assert frozen.max_edge == 0.0

    def test_mean_is_exact_not_bucketed(self):
        h = LogHistogram()
        h.add(1.0)
        h.add(3.0)
        assert h.freeze().mean == pytest.approx(2.0)

    def test_as_dict_round_trips_the_buckets(self):
        h = LogHistogram()
        h.add(4)
        d = h.freeze().as_dict()
        assert d["buckets"] == [[3, 1]]
        assert set(d) == {"n", "total", "mean", "p50", "p95", "p99", "max", "buckets"}
