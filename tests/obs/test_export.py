"""Tests of the Perfetto / CSV exporters over a real simulated run."""

from __future__ import annotations

import csv
import json

import pytest

from repro.gridsim.executor import SPMDExecutor
from repro.gridsim.trace import TraceSummary
from repro.obs.export import (
    resolve_stats,
    write_hotspots_csv,
    write_perfetto_trace,
    write_timeline_csv,
)
from repro.tsqr.parallel import TSQRConfig, qcg_tsqr_program

CONFIG = TSQRConfig(m=262_144, n=32, n_domains=4, tree_kind="grid-hierarchical")


@pytest.fixture(scope="module")
def sim(platform8):
    return SPMDExecutor(platform8).run(qcg_tsqr_program, CONFIG)


class TestResolveStats:
    def test_accepts_summary_and_raw_stats(self, sim):
        assert resolve_stats(sim.trace) is sim.trace.stats
        assert resolve_stats(sim.trace.stats) is sim.trace.stats

    def test_rejects_cache_rebuilt_summaries(self):
        with pytest.raises(ValueError, match="no streaming statistics"):
            resolve_stats(TraceSummary())


class TestPerfetto:
    def test_chrome_trace_shape(self, sim, tmp_path):
        path = write_perfetto_trace(tmp_path / "t.json", sim.trace, title="unit")
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        assert payload["otherData"]["title"] == "unit"
        assert payload["otherData"]["n_ranks"] == sim.trace.stats.n_ranks
        assert {e["ph"] for e in events} <= {"M", "X"}
        names = {e["name"] for e in events}
        assert {"process_name", "thread_name", "busy"} <= names
        # Every duration event starts within the horizon (wait slices are
        # placed after the window's busy time, hence the one-window slack).
        limit_us = (sim.trace.stats.horizon_s + sim.trace.stats.window_s) * 1e6
        for e in events:
            if e["ph"] == "X":
                assert 0 <= e["ts"] <= limit_us
                assert e["dur"] >= 0

    def test_busy_slices_sum_to_the_timeline(self, sim, tmp_path):
        path = write_perfetto_trace(tmp_path / "t.json", sim.trace)
        events = json.loads(path.read_text())["traceEvents"]
        by_rank: dict[int, float] = {}
        for e in events:
            if e["ph"] == "X" and e["name"] == "busy":
                by_rank[e["tid"]] = by_rank.get(e["tid"], 0.0) + e["args"]["busy_s"]
        stats = sim.trace.stats
        for rank, series in stats.busy_timeline.items():
            assert by_rank[rank] == pytest.approx(sum(series))


class TestTimelineCsv:
    def test_rows_reproduce_the_snapshot(self, sim, tmp_path):
        path = write_timeline_csv(tmp_path / "t.csv", sim.trace)
        with path.open(newline="") as fh:
            rows = list(csv.DictReader(fh))
        assert rows  # the run had activity
        stats = sim.trace.stats
        busy_total = sum(float(r["busy_s"]) for r in rows)
        assert busy_total == pytest.approx(
            sum(sum(s) for s in stats.busy_timeline.values())
        )
        recv_total = sum(int(r["recv_bytes"]) for r in rows)
        assert recv_total == sum(
            sum(s) for s in stats.recv_bytes_timeline.values()
        )
        for r in rows:  # window edges are consistent with window_s
            assert float(r["t_end_s"]) == pytest.approx(
                float(r["t_start_s"]) + stats.window_s
            )

    def test_all_zero_windows_are_skipped(self, sim, tmp_path):
        path = write_timeline_csv(tmp_path / "t.csv", sim.trace)
        with path.open(newline="") as fh:
            for r in csv.DictReader(fh):
                assert (
                    float(r["busy_s"]) != 0.0
                    or float(r["comm_wait_s"]) != 0.0
                    or int(r["recv_bytes"]) != 0
                )


class TestHotspotsCsv:
    def test_rows_match_the_summary(self, sim, tmp_path):
        path = write_hotspots_csv(tmp_path / "h.csv", sim.trace.hot_spots)
        with path.open(newline="") as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == len(sim.trace.hot_spots)
        for i, (row, spot) in enumerate(zip(rows, sim.trace.hot_spots), 1):
            assert int(row["rank"]) == i
            assert row["link"] == spot.link
            assert float(row["wait_s"]) == spot.wait_s
