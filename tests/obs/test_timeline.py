"""Unit tests of the width-doubling windowed timeline."""

from __future__ import annotations

import pytest

from repro.obs.timeline import WindowedTimeline


def test_rejects_non_power_of_two_window_counts():
    with pytest.raises(ValueError):
        WindowedTimeline(4, n_windows=48)
    with pytest.raises(ValueError):
        WindowedTimeline(4, n_windows=1)


def test_rows_allocated_lazily():
    tl = WindowedTimeline(1024, n_windows=4, base_s=1.0)
    assert tl._rows == {}
    tl.add_busy(7, 0.5, 0.5)
    assert set(tl._rows) == {7}


def test_single_window_attribution():
    tl = WindowedTimeline(2, n_windows=4, base_s=1.0)
    tl.add_busy(0, 0.5, 0.4)
    tl.add_busy(0, 2.5, 0.6)
    busy, wait, nbytes = tl.snapshot(horizon=3.0)
    assert busy[0] == (0.4, 0.0, 0.6, 0.0)
    assert wait == {}
    assert nbytes == {}


def test_grow_folds_pairwise_and_doubles_width():
    tl = WindowedTimeline(1, n_windows=4, base_s=1.0)
    for t in (0.5, 1.5, 2.5, 3.5):
        tl.add_bytes(0, t, 10)
    # t=5.0 is past the last window: one doubling to width 2.0.
    tl.add_bytes(0, 5.0, 100)
    _busy, _wait, nbytes = tl.snapshot(horizon=5.0)
    assert nbytes[0] == (20, 20, 100, 0)


def test_fold_is_equivalent_to_direct_binning():
    # The determinism claim: an event's final window after any sequence of
    # doublings equals binning it directly at the final width.
    events = [(0.3, 1), (1.9, 2), (7.2, 4), (30.0, 8), (121.5, 16), (2.2, 32)]
    grown = WindowedTimeline(1, n_windows=8, base_s=1.0)
    for t, v in events:
        grown.add_bytes(0, t, v)
    final_width = grown.snapshot_width(max(t for t, _ in events))
    direct = WindowedTimeline(1, n_windows=8, base_s=final_width)
    for t, v in events:
        direct.add_bytes(0, t, v)
    horizon = max(t for t, _ in events)
    assert grown.snapshot(horizon) == direct.snapshot(horizon)


def test_snapshot_folds_copies_not_the_live_rows():
    tl = WindowedTimeline(1, n_windows=4, base_s=1.0)
    tl.add_busy(0, 0.5, 1.0)
    before = tuple(tl._rows[0][1])
    tl.snapshot(horizon=1000.0)  # forces folding to a much wider window
    assert tuple(tl._rows[0][1]) == before
    assert tl._rows[0][0] == 1.0  # width untouched


def test_snapshot_width_covers_the_horizon():
    tl = WindowedTimeline(1, n_windows=64, base_s=1e-6)
    w = tl.snapshot_width(0.05)
    assert 64 * w > 0.05
    assert 64 * (w / 2) <= 0.05


def test_all_zero_series_are_skipped():
    tl = WindowedTimeline(2, n_windows=4, base_s=1.0)
    tl.add_wait(1, 0.5, 0.25)
    busy, wait, nbytes = tl.snapshot(horizon=1.0)
    assert busy == {}
    assert wait == {1: (0.25, 0.0, 0.0, 0.0)}
    assert nbytes == {}


def test_bytes_series_stays_integer():
    tl = WindowedTimeline(1, n_windows=2, base_s=1.0)
    tl.add_bytes(0, 0.1, 3)
    tl.add_bytes(0, 1.1, 4)
    tl.add_bytes(0, 3.9, 5)  # forces a fold
    _busy, _wait, nbytes = tl.snapshot(horizon=3.9)
    assert nbytes[0] == (7, 5)
    assert all(isinstance(v, int) for v in nbytes[0])
