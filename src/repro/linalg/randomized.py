"""Randomized low-rank approximation using TSQR for the range finder.

The randomized SVD (Halko-Martinsson-Tropp) multiplies the matrix by a random
tall-and-skinny block and orthonormalizes the product — a textbook consumer
of a stable, communication-light TS QR.  Included as one of the
application-level examples motivated by the paper's §II-E scope discussion.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ShapeError
from repro.linalg.block_ortho import orthonormalize
from repro.util.random_matrices import default_rng

__all__ = ["RandomizedSVDResult", "randomized_svd", "randomized_range_finder"]


@dataclass(frozen=True)
class RandomizedSVDResult:
    """Rank-``k`` approximate SVD ``A ~= U diag(s) V^T``."""

    u: np.ndarray
    s: np.ndarray
    vt: np.ndarray

    def reconstruct(self) -> np.ndarray:
        """Return the rank-``k`` approximation of the original matrix."""
        return (self.u * self.s) @ self.vt


def randomized_range_finder(
    a: np.ndarray,
    size: int,
    *,
    n_power_iterations: int = 1,
    seed: int = 0,
    n_domains: int | None = None,
) -> np.ndarray:
    """Orthonormal basis approximately spanning the range of ``a``.

    Every orthonormalization (including those stabilising the power
    iterations) goes through TSQR.
    """
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2:
        raise ShapeError("expected a 2-D matrix")
    if size <= 0 or size > min(a.shape):
        raise ShapeError(f"sketch size {size} invalid for shape {a.shape}")
    rng = default_rng(seed)
    y = a @ rng.standard_normal((a.shape[1], size))
    q, _, _ = orthonormalize(y, n_domains=n_domains)
    for _ in range(n_power_iterations):
        z, _, _ = orthonormalize(a.T @ q, n_domains=n_domains)
        q, _, _ = orthonormalize(a @ z, n_domains=n_domains)
    return q


def randomized_svd(
    a: np.ndarray,
    rank: int,
    *,
    oversampling: int = 10,
    n_power_iterations: int = 1,
    seed: int = 0,
    n_domains: int | None = None,
) -> RandomizedSVDResult:
    """Rank-``rank`` randomized SVD with TSQR-based orthonormalizations."""
    a = np.asarray(a, dtype=np.float64)
    sketch = min(rank + oversampling, min(a.shape))
    q = randomized_range_finder(
        a, sketch, n_power_iterations=n_power_iterations, seed=seed, n_domains=n_domains
    )
    b = q.T @ a
    u_small, s, vt = np.linalg.svd(b, full_matrices=False)
    u = q @ u_small
    return RandomizedSVDResult(u=u[:, :rank], s=s[:rank], vt=vt[:rank, :])
