"""Block subspace iteration using TSQR as its orthogonalization scheme.

Paper §II-E names block eigensolvers (BLOPEX, SLEPc, PRIMME) as the
applications that "currently rely on unstable orthogonalization schemes to
avoid too many communications" and that TSQR serves directly.  This module
provides a compact block subspace-iteration (a.k.a. orthogonal/simultaneous
iteration) eigensolver in which the per-iteration orthonormalization is
pluggable, so the examples and tests can contrast:

* ``"tsqr"``       — the paper's stable, single-reduction scheme;
* ``"cgs"``        — classical Gram-Schmidt (cheap, unstable);
* ``"cholqr"``     — CholeskyQR (cheap, breaks down when ill-conditioned);
* ``"householder"``— plain LAPACK-style QR (stable, more synchronisation in a
  distributed setting).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.exceptions import ConfigurationError, ShapeError
from repro.kernels.cholqr import cholqr
from repro.kernels.gram_schmidt import cgs
from repro.kernels.householder import geqrf
from repro.tsqr.sequential import tsqr
from repro.util.random_matrices import default_rng

__all__ = ["SubspaceIterationResult", "block_subspace_iteration", "ORTHO_SCHEMES"]


def _ortho_tsqr(block: np.ndarray) -> np.ndarray:
    result = tsqr(block, want_q=True)
    return result.q.explicit()


def _ortho_cgs(block: np.ndarray) -> np.ndarray:
    q, _ = cgs(block)
    return q


def _ortho_cholqr(block: np.ndarray) -> np.ndarray:
    q, _ = cholqr(block)
    return q


def _ortho_householder(block: np.ndarray) -> np.ndarray:
    return geqrf(block).q()


#: Registry of orthogonalization schemes usable by the eigensolver.
ORTHO_SCHEMES: dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "tsqr": _ortho_tsqr,
    "cgs": _ortho_cgs,
    "cholqr": _ortho_cholqr,
    "householder": _ortho_householder,
}


@dataclass(frozen=True)
class SubspaceIterationResult:
    """Outcome of a block subspace iteration run."""

    eigenvalues: np.ndarray
    eigenvectors: np.ndarray
    iterations: int
    residual_norms: np.ndarray
    converged: bool


def block_subspace_iteration(
    operator: np.ndarray | Callable[[np.ndarray], np.ndarray],
    n_rows: int,
    block_size: int,
    *,
    ortho: str = "tsqr",
    max_iterations: int = 200,
    tolerance: float = 1e-8,
    seed: int = 0,
) -> SubspaceIterationResult:
    """Find the dominant eigenpairs of a symmetric operator.

    Parameters
    ----------
    operator:
        Either a symmetric matrix or a callable computing ``A @ X`` for a
        block of vectors ``X`` (the usual matrix-free interface of block
        eigensolvers).
    n_rows:
        Dimension of the operator.
    block_size:
        Number of eigenpairs sought (= width of the iterated block).
    ortho:
        Orthogonalization scheme applied to the block every iteration; one of
        :data:`ORTHO_SCHEMES`.
    max_iterations, tolerance:
        Stop when every Ritz residual ``||A v - lambda v||`` falls below
        ``tolerance * |lambda_max|`` or after ``max_iterations`` sweeps.
    seed:
        Seed of the random starting block.
    """
    if ortho not in ORTHO_SCHEMES:
        raise ConfigurationError(f"unknown orthogonalization scheme {ortho!r}")
    if block_size <= 0 or block_size > n_rows:
        raise ShapeError(f"block size {block_size} invalid for dimension {n_rows}")
    if callable(operator):
        matvec = operator
    else:
        mat = np.asarray(operator, dtype=np.float64)
        if mat.shape != (n_rows, n_rows):
            raise ShapeError(f"operator has shape {mat.shape}, expected {(n_rows, n_rows)}")
        matvec = lambda block: mat @ block  # noqa: E731 - small closure

    orthonormalize = ORTHO_SCHEMES[ortho]
    rng = default_rng(seed)
    v = orthonormalize(rng.standard_normal((n_rows, block_size)))

    eigenvalues = np.zeros(block_size)
    residuals = np.full(block_size, np.inf)
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        av = matvec(v)
        # Rayleigh-Ritz on the current subspace.
        h = v.T @ av
        h = (h + h.T) / 2.0
        evals, evecs = np.linalg.eigh(h)
        order = np.argsort(evals)[::-1]
        evals, evecs = evals[order], evecs[:, order]
        ritz_vectors = v @ evecs
        residual_block = matvec(ritz_vectors) - ritz_vectors * evals
        residuals = np.linalg.norm(residual_block, axis=0)
        eigenvalues = evals
        scale = max(abs(evals[0]), 1e-300)
        if np.all(residuals <= tolerance * scale):
            v = ritz_vectors
            converged = True
            break
        v = orthonormalize(av)
    else:  # pragma: no cover - loop always breaks or exhausts
        pass
    if not converged:
        # One last Rayleigh-Ritz to report coherent vectors.
        ritz_vectors = v
    return SubspaceIterationResult(
        eigenvalues=eigenvalues,
        eigenvectors=ritz_vectors,
        iterations=iterations,
        residual_norms=residuals,
        converged=converged,
    )
