"""Application layer: the consumers of TSQR named in the paper's scope (§II-E).

* :mod:`block_ortho`   — block orthogonalization / BCGS2 built on TSQR;
* :mod:`least_squares` — backward-stable tall least-squares solvers;
* :mod:`eigensolver`   — block subspace iteration with pluggable
  orthogonalization (TSQR vs the unstable schemes it replaces);
* :mod:`randomized`    — randomized SVD with TSQR range finding.
"""

from repro.linalg.block_ortho import block_gram_schmidt, orthogonalize_against, orthonormalize
from repro.linalg.eigensolver import (
    ORTHO_SCHEMES,
    SubspaceIterationResult,
    block_subspace_iteration,
)
from repro.linalg.least_squares import LeastSquaresResult, lstsq_normal_equations, lstsq_tsqr
from repro.linalg.randomized import RandomizedSVDResult, randomized_range_finder, randomized_svd

__all__ = [
    "block_gram_schmidt",
    "orthogonalize_against",
    "orthonormalize",
    "ORTHO_SCHEMES",
    "SubspaceIterationResult",
    "block_subspace_iteration",
    "LeastSquaresResult",
    "lstsq_normal_equations",
    "lstsq_tsqr",
    "RandomizedSVDResult",
    "randomized_range_finder",
    "randomized_svd",
]
