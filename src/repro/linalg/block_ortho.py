"""Block orthogonalization built on TSQR.

Paper §II-E: block iterative methods (block eigensolvers, block Krylov and
s-step solvers) repeatedly need an orthonormal basis of a set of long vectors
and, for communication reasons, often fall back on unstable schemes
(classical Gram-Schmidt, CholeskyQR).  TSQR provides the same single-reduction
communication pattern with unconditional stability; this module packages it
as the orthogonalization primitive those methods need:

* :func:`orthonormalize` — orthonormal basis of a block of vectors;
* :func:`block_gram_schmidt` — orthogonalize a new block against an existing
  basis (BCGS2-style: project, re-project, then TSQR the remainder);
* :func:`orthogonalize_against` — single projection step.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ShapeError
from repro.tsqr.sequential import tsqr

__all__ = ["orthonormalize", "orthogonalize_against", "block_gram_schmidt"]


def orthonormalize(
    block: np.ndarray, *, n_domains: int | None = None, rtol: float = 1e-12
) -> tuple[np.ndarray, np.ndarray, int]:
    """Return an orthonormal basis of the columns of ``block`` via TSQR.

    Returns ``(q, r, rank)`` where ``q`` has orthonormal columns spanning the
    column space of ``block``; columns whose diagonal entry of R falls below
    ``rtol * max(diag(R))`` are treated as numerically dependent and the
    reported ``rank`` excludes them (``q`` keeps its full width so block
    iterations do not have to reshape, but only the first ``rank`` columns
    are trustworthy).
    """
    block = np.asarray(block, dtype=np.float64)
    if block.ndim != 2:
        raise ShapeError("orthonormalize expects a 2-D block of column vectors")
    result = tsqr(block, n_domains, want_q=True)
    q = result.q.explicit()
    diag = np.abs(np.diagonal(result.r))
    scale = diag.max() if diag.size else 0.0
    rank = int(np.sum(diag > rtol * scale)) if scale > 0 else 0
    return q, result.r, rank


def orthogonalize_against(
    basis: np.ndarray, block: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Project ``block`` against an orthonormal ``basis`` (one BGS step).

    Returns ``(residual, coefficients)`` with
    ``residual = block - basis @ coefficients``.  In a distributed setting
    this is a single reduction of the ``k x b`` coefficient matrix, which is
    why block methods favour it.
    """
    basis = np.asarray(basis, dtype=np.float64)
    block = np.asarray(block, dtype=np.float64)
    if basis.shape[0] != block.shape[0]:
        raise ShapeError(
            f"basis has {basis.shape[0]} rows but the block has {block.shape[0]}"
        )
    coeffs = basis.T @ block
    return block - basis @ coeffs, coeffs


def block_gram_schmidt(
    basis: np.ndarray | None,
    block: np.ndarray,
    *,
    n_domains: int | None = None,
    reorthogonalize: bool = True,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Orthogonalize ``block`` against ``basis`` and orthonormalize the rest.

    The classical building block of block Krylov methods (BCGS2 when
    ``reorthogonalize`` is True): the new block is projected against the
    existing basis (twice, for stability), and the remainder is orthonormalized
    with TSQR.

    Returns ``(q_new, proj_coeffs, r_new)`` such that
    ``block ~= basis @ proj_coeffs + q_new @ r_new`` with
    ``basis^T q_new ~= 0`` and ``q_new`` orthonormal.
    """
    block = np.asarray(block, dtype=np.float64)
    if basis is None or basis.size == 0:
        q_new, r_new, _ = orthonormalize(block, n_domains=n_domains)
        k = 0 if basis is None else basis.shape[1]
        return q_new, np.zeros((k, block.shape[1])), r_new
    residual, coeffs = orthogonalize_against(basis, block)
    if reorthogonalize:
        residual, coeffs2 = orthogonalize_against(basis, residual)
        coeffs = coeffs + coeffs2
    q_new, r_new, _ = orthonormalize(residual, n_domains=n_domains)
    return q_new, coeffs, r_new
