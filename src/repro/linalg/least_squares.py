"""Tall least-squares solvers built on TSQR.

The canonical downstream use of a tall-and-skinny QR: solve
``min_x || A x - b ||_2`` for an ``m x n`` matrix with ``m >> n``.  The QR
approach is backward stable (unlike the normal equations, which square the
condition number) and needs a single pass over ``A`` plus one reduction —
which is why TSQR-based least squares is the standard in Dask/Spark-style
systems and a natural "example application" of the paper's kernel.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.linalg import solve_triangular

from repro.exceptions import FactorizationError, ShapeError
from repro.tsqr.sequential import tsqr

__all__ = ["LeastSquaresResult", "lstsq_tsqr", "lstsq_normal_equations"]


@dataclass(frozen=True)
class LeastSquaresResult:
    """Solution of a tall least-squares problem."""

    x: np.ndarray
    residual_norm: float
    r: np.ndarray

    @property
    def n(self) -> int:
        """Number of unknowns."""
        return self.x.shape[0]


def lstsq_tsqr(
    a: np.ndarray, b: np.ndarray, *, n_domains: int | None = None
) -> LeastSquaresResult:
    """Solve ``min ||A x - b||`` with TSQR (backward stable).

    ``b`` may be a vector or a matrix of right-hand sides; the returned ``x``
    matches its shape.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 2 or a.shape[0] < a.shape[1]:
        raise ShapeError("lstsq_tsqr expects a tall 2-D matrix")
    if b.shape[0] != a.shape[0]:
        raise ShapeError(f"b has {b.shape[0]} rows, expected {a.shape[0]}")
    result = tsqr(a, n_domains, want_q=True)
    diag = np.abs(np.diagonal(result.r))
    if diag.size and diag.min() <= 1e-12 * max(diag.max(), 1e-300):
        raise FactorizationError("matrix is numerically rank deficient")
    qtb = result.q.rmatmat(b if b.ndim > 1 else b[:, None])
    x = solve_triangular(result.r, qtb, lower=False)
    residual = a @ x - (b if b.ndim > 1 else b[:, None])
    res_norm = float(np.linalg.norm(residual))
    if b.ndim == 1:
        x = x[:, 0]
    return LeastSquaresResult(x=x, residual_norm=res_norm, r=result.r)


def lstsq_normal_equations(a: np.ndarray, b: np.ndarray) -> LeastSquaresResult:
    """Solve the same problem via the normal equations (the unstable baseline).

    Kept for the stability comparisons: its error grows with ``kappa(A)^2``,
    which is exactly the behaviour the TSQR-based solver avoids.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    gram = a.T @ a
    rhs = a.T @ (b if b.ndim > 1 else b[:, None])
    try:
        x = np.linalg.solve(gram, rhs)
    except np.linalg.LinAlgError as exc:
        raise FactorizationError("normal equations are numerically singular") from exc
    residual = a @ x - (b if b.ndim > 1 else b[:, None])
    res_norm = float(np.linalg.norm(residual))
    try:
        r = np.linalg.cholesky(gram).T
    except np.linalg.LinAlgError as exc:
        raise FactorizationError(
            "Cholesky of the Gram matrix failed: the normal equations have "
            "squared the condition number past breakdown"
        ) from exc
    if b.ndim == 1:
        x = x[:, 0]
    return LeastSquaresResult(x=x, residual_norm=res_norm, r=r)
