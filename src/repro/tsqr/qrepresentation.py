"""Implicit representation of the TSQR orthogonal factor.

TSQR never forms the global ``m x n`` Q during the factorization: each leaf
keeps the Householder factors of its block and each combine keeps the small
orthogonal factor of its stacked-triangle QR.  The global Q is the product of
the block-diagonal leaf factors with the tree factors, and most consumers
only ever need ``Q @ C`` or ``Q^T @ C`` for a narrow ``C`` — which this
module evaluates by walking the tree, exactly how the distributed algorithm
would.

The representation is a binary tree of :class:`QLeaf` / :class:`QCombine`
nodes mirroring the order in which the reduction combined factors.  Because
a reduction tree may merge domains in an order different from their row
order, every leaf carries its global row range and the apply routines
scatter/gather rows through those ranges, so results always come back in the
original row order of the factored matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ShapeError
from repro.kernels.householder import HouseholderQR, apply_q
from repro.kernels.tskernels import StackedQR

__all__ = ["QLeaf", "QCombine", "QNode", "TSQRQFactor"]


@dataclass(frozen=True)
class QLeaf:
    """Leaf of the Q tree: the Householder factorization of one domain block."""

    factor: HouseholderQR
    row_start: int
    row_stop: int

    @property
    def m(self) -> int:
        """Number of original matrix rows covered by this leaf."""
        return self.row_stop - self.row_start

    @property
    def r_rows(self) -> int:
        """Number of rows of the R factor this leaf feeds into the reduction."""
        return min(self.factor.m, self.factor.n)

    def apply(self, c: np.ndarray, out: np.ndarray) -> None:
        """Accumulate ``Q_leaf @ c`` into the leaf's rows of ``out``."""
        if c.shape[0] != self.r_rows:
            raise ShapeError(f"expected {self.r_rows} rows, got {c.shape[0]}")
        padded = np.zeros((self.factor.m, c.shape[1]))
        padded[: self.r_rows, :] = c
        out[self.row_start : self.row_stop, :] = apply_q(
            self.factor.v, self.factor.tau, padded, transpose=False
        )

    def apply_transpose(self, c: np.ndarray) -> np.ndarray:
        """Return ``Q_leaf^T @ c_rows`` for this leaf's slice of ``c``."""
        block = c[self.row_start : self.row_stop, :]
        return apply_q(self.factor.v, self.factor.tau, block, transpose=True)[: self.r_rows, :]


@dataclass(frozen=True)
class QCombine:
    """Internal node: the stacked-triangle QR that merged two partial factors."""

    stacked: StackedQR
    top: "QNode"
    bottom: "QNode"

    @property
    def m(self) -> int:
        """Original rows covered by the subtree."""
        return self.top.m + self.bottom.m

    @property
    def r_rows(self) -> int:
        """Rows of the R factor this node passes upward."""
        return self.stacked.r.shape[0]

    def apply(self, c: np.ndarray, out: np.ndarray) -> None:
        """Push ``c`` down through the combine's Q and into both subtrees."""
        if self.stacked.q.size == 0:
            raise ShapeError(
                "this TSQR run kept only R factors (want_q=False); "
                "re-run with want_q=True to apply Q"
            )
        if c.shape[0] != self.r_rows:
            raise ShapeError(f"expected {self.r_rows} rows, got {c.shape[0]}")
        y = self.stacked.q @ c
        rows_top = self.stacked.rows_top
        self.top.apply(y[:rows_top, :][: self.top.r_rows, :], out)
        self.bottom.apply(y[rows_top:, :][: self.bottom.r_rows, :], out)

    def apply_transpose(self, c: np.ndarray) -> np.ndarray:
        """Pull both subtrees' contributions up through the combine's Q^T."""
        if self.stacked.q.size == 0:
            raise ShapeError(
                "this TSQR run kept only R factors (want_q=False); "
                "re-run with want_q=True to apply Q"
            )
        top = self.top.apply_transpose(c)
        bottom = self.bottom.apply_transpose(c)
        stacked = np.vstack([top, bottom])
        return self.stacked.q.T @ stacked


#: Either kind of node.
QNode = QLeaf | QCombine


@dataclass(frozen=True)
class TSQRQFactor:
    """The implicit orthogonal factor produced by a TSQR run.

    ``root`` is the top of the combine tree, ``m``/``n`` the shape of the
    factored matrix.  The factor behaves like a thin ``m x n`` Q:

    * :meth:`matmat` computes ``Q @ C`` for an ``n x k`` matrix;
    * :meth:`rmatmat` computes ``Q^T @ C`` for an ``m x k`` matrix;
    * :meth:`explicit` materialises the thin Q (small problems / tests).
    """

    root: QNode
    m: int
    n: int

    @property
    def shape(self) -> tuple[int, int]:
        """Shape of the (thin) orthogonal factor."""
        return (self.m, self.n)

    def matmat(self, c: np.ndarray) -> np.ndarray:
        """Return ``Q @ c`` where ``c`` has ``n`` rows."""
        c = np.atleast_2d(np.asarray(c, dtype=np.float64))
        squeeze = False
        if c.shape[0] == 1 and self.n != 1 and c.shape[1] == self.n:
            c = c.T
            squeeze = True
        if c.shape[0] != self.n:
            raise ShapeError(f"expected {self.n} rows, got {c.shape[0]}")
        out = np.zeros((self.m, c.shape[1]))
        self.root.apply(c[: self.root.r_rows, :], out)
        return out[:, 0] if squeeze else out

    def rmatmat(self, c: np.ndarray) -> np.ndarray:
        """Return ``Q^T @ c`` where ``c`` has ``m`` rows."""
        c = np.asarray(c, dtype=np.float64)
        vector = c.ndim == 1
        c = c[:, None] if vector else c
        if c.shape[0] != self.m:
            raise ShapeError(f"expected {self.m} rows, got {c.shape[0]}")
        result = self.root.apply_transpose(c)
        # Pad to n rows when the matrix had fewer rows than columns overall
        # (cannot happen for genuinely tall inputs, kept for safety).
        if result.shape[0] < self.n:
            padded = np.zeros((self.n, c.shape[1]))
            padded[: result.shape[0], :] = result
            result = padded
        return result[:, 0] if vector else result

    def explicit(self) -> np.ndarray:
        """Materialise the thin ``m x n`` orthogonal factor."""
        return self.matmat(np.eye(self.n))

    def solve_least_squares(self, r: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Solve ``min ||A x - b||`` given this Q and the matching R factor.

        Computes ``x = R^{-1} (Q^T b)`` by back substitution; ``b`` may be a
        vector or a matrix of right-hand sides.
        """
        qtb = self.rmatmat(b)
        from scipy.linalg import solve_triangular

        return solve_triangular(r[: self.n, : self.n], qtb[: self.n], lower=False)
