"""CAQR: Communication-Avoiding QR of general (not just tall-skinny) matrices.

TSQR is the panel factorization of CAQR (paper §II-C, §II-E and §VI):
a general ``M x N`` matrix is tiled, every panel (tile column) is factored
with a TSQR-style reduction over its row tiles, and the trailing tiles are
updated with the corresponding orthogonal transformations.  The paper treats
CAQR on the grid as the natural follow-up of its TSQR study ("this present
study can be viewed as a first step towards the factorization of general
matrices on the grid"); this module implements the algorithm so that the
follow-up can actually be exercised.

The implementation is sequential (single address space) and exact; the
*reduction tree* of every panel is configurable (flat, binary, hierarchical),
which is what changes between the out-of-core, multicore and grid variants
discussed in the paper.  All transformations are retained so the orthogonal
factor can be applied or materialised afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ShapeError
from repro.kernels.tiled import TileQR, TileTSQR, geqrt, tsmqr, tsqrt, unmqr
from repro.tsqr.trees import ReductionTree, tree_for
from repro.util.partition import TileGrid

__all__ = ["CAQRTransform", "CAQRFactors", "caqr", "caqr_r"]


@dataclass(frozen=True)
class CAQRTransform:
    """One stored elementary transformation of the CAQR factorization.

    ``kind`` is ``"geqrt"`` (diagonal-tile QR; ``row`` is the tile row it was
    applied to) or ``"tsqrt"`` (stacked elimination of tile row ``row`` into
    tile row ``parent_row``).
    """

    kind: str
    panel: int
    row: int
    parent_row: int
    data: TileQR | TileTSQR


@dataclass
class CAQRFactors:
    """Factored form of a CAQR run: R plus the replayable transformations.

    The orthogonal factor is never formed during the factorization; it is
    defined implicitly by the ordered list of tile transformations.  ``Q^T``
    is applied by replaying them in factorization order, ``Q`` by replaying
    them in reverse with the non-transposed kernels.
    """

    r: np.ndarray
    m: int
    n: int
    grid: TileGrid
    transforms: list[CAQRTransform] = field(default_factory=list)

    @property
    def row_ranges(self) -> tuple[tuple[int, int], ...]:
        """Row-tile boundaries of the factorization's tiling."""
        return self.grid.row_ranges

    # ----------------------------------------------------------- application
    def _tiles_of(self, c: np.ndarray) -> list[np.ndarray]:
        return self.grid.split_rows(c)

    def _assemble(self, tiles: list[np.ndarray], ncols: int) -> np.ndarray:
        out = np.zeros((self.m, ncols))
        for (start, stop), tile in zip(self.grid.row_ranges, tiles):
            out[start:stop, :] = tile
        return out

    def apply_qt(self, c: np.ndarray) -> np.ndarray:
        """Return ``Q^T @ c`` for an ``m x k`` matrix ``c``."""
        c = np.atleast_2d(np.asarray(c, dtype=np.float64))
        vector = False
        if c.shape[0] == 1 and self.m != 1:
            c = c.T
            vector = True
        tiles = self._tiles_of(c)
        for tr in self.transforms:
            if tr.kind == "geqrt":
                tiles[tr.row] = unmqr(tr.data, tiles[tr.row], transpose=True)
            else:
                top, bottom = tsmqr(tr.data, tiles[tr.parent_row], tiles[tr.row], transpose=True)
                tiles[tr.parent_row], tiles[tr.row] = top, bottom
        out = self._assemble(tiles, c.shape[1])
        return out[:, 0] if vector else out

    def apply_q(self, c: np.ndarray) -> np.ndarray:
        """Return ``Q @ c`` for an ``m x k`` matrix ``c`` (Q is ``m x m`` here)."""
        c = np.atleast_2d(np.asarray(c, dtype=np.float64))
        vector = False
        if c.shape[0] == 1 and self.m != 1:
            c = c.T
            vector = True
        tiles = self._tiles_of(c)
        for tr in reversed(self.transforms):
            if tr.kind == "geqrt":
                tiles[tr.row] = unmqr(tr.data, tiles[tr.row], transpose=False)
            else:
                top, bottom = tsmqr(
                    tr.data, tiles[tr.parent_row], tiles[tr.row], transpose=False
                )
                tiles[tr.parent_row], tiles[tr.row] = top, bottom
        out = self._assemble(tiles, c.shape[1])
        return out[:, 0] if vector else out

    def thin_q(self) -> np.ndarray:
        """Materialise the thin ``m x min(m, n)`` orthogonal factor."""
        k = min(self.m, self.n)
        eye = np.zeros((self.m, k))
        np.fill_diagonal(eye, 1.0)
        return self.apply_q(eye)


def caqr(
    a: np.ndarray,
    tile_size: int = 64,
    *,
    panel_tree: str | None = "binary",
    want_q: bool = True,
) -> CAQRFactors:
    """Tiled CAQR factorization of a general matrix.

    Parameters
    ----------
    a:
        The ``m x n`` matrix to factor (any shape).
    tile_size:
        Row/column tile size ``b``; the last tile in each direction may be
        smaller.
    panel_tree:
        Reduction-tree family used by each panel's TSQR (``"flat"``,
        ``"binary"``, ``"grid-hierarchical"``).  The flat tree reproduces the
        out-of-core/multicore variant, the binary tree the parallel one.
    want_q:
        Keep the transformations so Q can be applied afterwards.  When False
        no transformation is ever stored — ``transforms`` stays empty
        *throughout* the factorization, not just in the returned
        :class:`CAQRFactors` — which is what actually halves the memory
        footprint while factoring.
    """
    a = np.array(a, dtype=np.float64, copy=True)
    if a.ndim != 2:
        raise ShapeError(f"caqr expects a 2-D matrix, got ndim={a.ndim}")
    if tile_size <= 0:
        raise ShapeError(f"tile size must be positive, got {tile_size}")
    m, n = a.shape
    # Shared tile index arithmetic (row and column boundaries coincide so the
    # k-th diagonal tile really sits on the global diagonal).
    grid = TileGrid(m, n, tile_size)
    mt, nt = grid.mt, grid.nt

    # Work on tile views into a copy of A, through the shared TileGrid.
    def tile(i: int, j: int) -> np.ndarray:
        return grid.tile(a, i, j)

    def set_tile(i: int, j: int, value: np.ndarray) -> None:
        grid.set_tile(a, i, j, value)

    transforms: list[CAQRTransform] = []

    for k in range(min(mt, nt)):
        rows = list(range(k, mt))
        # --- local QR of every tile of the panel + same-row trailing update
        local: dict[int, TileQR] = {}
        for i in rows:
            fact = geqrt(tile(i, k), block_size=min(32, tile_size))
            local[i] = fact
            rpad = np.zeros_like(tile(i, k))
            kk = min(fact.r.shape[0], rpad.shape[0])
            rpad[:kk, :] = fact.r[:kk, :]
            set_tile(i, k, rpad)
            for j in range(k + 1, nt):
                set_tile(i, j, unmqr(fact, tile(i, j), transpose=True))
            if want_q:
                transforms.append(
                    CAQRTransform(kind="geqrt", panel=k, row=i, parent_row=i, data=fact)
                )

        # --- reduce the per-tile triangles along the panel tree
        tree: ReductionTree = tree_for(panel_tree or "binary", len(rows))

        def _reduce(pos: int) -> None:
            parent_row = rows[pos]
            for child_pos in tree.children(pos):
                _reduce(child_pos)
                child_row = rows[child_pos]
                ts = tsqrt(
                    tile(parent_row, k), tile(child_row, k), block_size=min(32, tile_size)
                )
                new_top = np.zeros_like(tile(parent_row, k))
                kk = min(ts.r.shape[0], new_top.shape[0])
                new_top[:kk, :] = ts.r[:kk, :]
                set_tile(parent_row, k, new_top)
                set_tile(child_row, k, np.zeros_like(tile(child_row, k)))
                for j in range(k + 1, nt):
                    top, bottom = tsmqr(ts, tile(parent_row, j), tile(child_row, j), transpose=True)
                    set_tile(parent_row, j, top)
                    set_tile(child_row, j, bottom)
                if want_q:
                    transforms.append(
                        CAQRTransform(
                            kind="tsqrt", panel=k, row=child_row, parent_row=parent_row,
                            data=ts,
                        )
                    )

        # The tree is built over positions 0..len(rows)-1; position 0 is tile
        # row k, which must be the reduction root so R lands on the diagonal.
        if tree.root != 0:
            raise ShapeError("panel reduction tree must be rooted at the diagonal tile")
        _reduce(tree.root)

    k = min(m, n)
    r = np.triu(a[:k, :])
    return CAQRFactors(r=r, m=m, n=n, grid=grid, transforms=transforms)


def caqr_r(a: np.ndarray, tile_size: int = 64, *, panel_tree: str = "binary") -> np.ndarray:
    """Return only the R factor of a CAQR factorization."""
    return caqr(a, tile_size, panel_tree=panel_tree, want_q=False).r
