"""Sequential (in-memory) TSQR.

This is the algorithmic core of the paper stripped of any distribution: the
tall matrix is split into block-rows ("domains"), each block is factored with
blocked Householder QR, and the per-domain R factors are merged along a
reduction tree with the stacked-triangle QR combine.  The result is the R
factor of the whole matrix and, optionally, the implicit tree representation
of Q (:class:`~repro.tsqr.qrepresentation.TSQRQFactor`).

The sequential version is the reference oracle for the distributed one, the
engine of the out-of-core/flat-tree variant, and the building block that the
application layer (:mod:`repro.linalg`) uses when it runs on a single node.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ShapeError
from repro.kernels.householder import geqrf
from repro.kernels.tskernels import qr_of_stacked
from repro.tsqr.qrepresentation import QCombine, QLeaf, QNode, TSQRQFactor
from repro.tsqr.trees import ReductionTree, tree_for
from repro.util.partition import block_ranges
from repro.util.validation import normalize_r_signs

__all__ = ["TSQRResult", "tsqr", "tsqr_r", "blocked_household_qr"]


@dataclass(frozen=True)
class TSQRResult:
    """Outcome of a sequential TSQR run."""

    r: np.ndarray
    q: TSQRQFactor | None
    tree: ReductionTree

    @property
    def shape(self) -> tuple[int, int]:
        """Shape of the factored matrix."""
        if self.q is not None:
            return self.q.shape
        return (self.r.shape[1], self.r.shape[1])


def blocked_household_qr(a: np.ndarray, block_size: int = 64) -> tuple[np.ndarray, np.ndarray]:
    """Plain (single-domain) blocked Householder QR returning explicit (Q, R).

    Provided as the one-domain special case of TSQR and as a convenience for
    the examples; for anything tall and skinny with more than one domain,
    :func:`tsqr` does less synchronisation-sensitive work.
    """
    fact = geqrf(np.asarray(a, dtype=np.float64), block_size=block_size)
    return fact.q(), fact.r


def tsqr(
    a: np.ndarray,
    n_domains: int | None = None,
    *,
    tree: ReductionTree | str = "binary",
    want_q: bool = True,
    block_size: int = 64,
) -> TSQRResult:
    """TSQR factorization of a tall-and-skinny matrix.

    Parameters
    ----------
    a:
        The ``m x n`` matrix to factor, with ``m >= n``.
    n_domains:
        Number of block-rows.  Defaults to ``max(1, m // (4 n))`` so every
        domain stays comfortably taller than it is wide.
    tree:
        Either a prebuilt :class:`ReductionTree` over ``n_domains`` domains or
        the name of a tree family (``"binary"``, ``"flat"``,
        ``"grid-hierarchical"``).
    want_q:
        Keep the per-leaf and per-combine orthogonal factors so the global Q
        can be applied/formed.  Computing only R roughly halves the work
        (paper Property 1).
    block_size:
        Panel width of the leaf Householder factorizations.

    Returns
    -------
    TSQRResult
        ``r`` is ``n x n`` upper triangular with non-negative diagonal;
        ``q`` is the implicit orthogonal factor (or ``None``).
    """
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2:
        raise ShapeError(f"tsqr expects a 2-D matrix, got ndim={a.ndim}")
    m, n = a.shape
    if m < n:
        raise ShapeError(f"tsqr requires a tall matrix (m >= n), got {m} x {n}")
    if n == 0:
        raise ShapeError("cannot factor a matrix with zero columns")
    if n_domains is None:
        n_domains = max(1, m // max(4 * n, 1))
    if n_domains <= 0:
        raise ShapeError(f"n_domains must be positive, got {n_domains}")
    n_domains = min(n_domains, max(1, m // max(n, 1)))

    if isinstance(tree, ReductionTree):
        if tree.n_domains != n_domains:
            raise ShapeError(
                f"tree has {tree.n_domains} domains but {n_domains} were requested"
            )
        reduction_tree = tree
    else:
        reduction_tree = tree_for(tree, n_domains)

    ranges = block_ranges(m, n_domains)

    # ------------------------------------------------------------- leaves
    # Leaf factors are kept *unnormalised*: every combine sign-normalises its
    # own output consistently for Q and R, so the final pair stays an exact
    # factorization of A.
    leaf_r: list[np.ndarray] = []
    leaf_node: list[QNode] = []
    for start, stop in ranges:
        block = a[start:stop, :]
        fact = geqrf(block, block_size=block_size)
        leaf_r.append(fact.r)
        if want_q:
            leaf_node.append(QLeaf(factor=fact, row_start=start, row_stop=stop))

    # ------------------------------------------------------------ reduction
    acc_r: dict[int, np.ndarray] = dict(enumerate(leaf_r))
    acc_q: dict[int, QNode] = dict(enumerate(leaf_node)) if want_q else {}

    def _combine_into(parent: int, child: int) -> None:
        stacked = qr_of_stacked(acc_r[parent], acc_r[child], want_q=want_q)
        acc_r[parent] = stacked.r
        if want_q:
            acc_q[parent] = QCombine(stacked=stacked, top=acc_q[parent], bottom=acc_q[child])

    def _reduce(node: int) -> None:
        for child in reduction_tree.children(node):
            _reduce(child)
            _combine_into(node, child)

    _reduce(reduction_tree.root)
    r_final = acc_r[reduction_tree.root]
    # Pad/truncate to the canonical n x n triangle.
    r = np.zeros((n, n))
    k = min(r_final.shape[0], n)
    r[:k, :] = r_final[:k, :]

    q_factor: TSQRQFactor | None = None
    if want_q:
        q_factor = TSQRQFactor(root=acc_q[reduction_tree.root], m=m, n=n)
    else:
        r = normalize_r_signs(r)
    return TSQRResult(r=np.triu(r), q=q_factor, tree=reduction_tree)


def tsqr_r(
    a: np.ndarray,
    n_domains: int | None = None,
    *,
    tree: ReductionTree | str = "binary",
    block_size: int = 64,
) -> np.ndarray:
    """Return only the R factor of a TSQR factorization (paper's main mode)."""
    return tsqr(a, n_domains, tree=tree, want_q=False, block_size=block_size).r
