"""TSQR / CAQR: the paper's core contribution.

* :mod:`repro.tsqr.trees` — reduction trees (flat, binary, grid-hierarchical)
  and their locality analysis (Fig. 1 vs Fig. 2);
* :mod:`repro.tsqr.sequential` — in-memory TSQR, the reference implementation
  and single-node engine;
* :mod:`repro.tsqr.qrepresentation` — the implicit (tree-structured) Q factor;
* :mod:`repro.tsqr.parallel` — QCG-TSQR, the SPMD program articulated with the
  topology-aware middleware on the simulated grid (paper §III);
* :mod:`repro.tsqr.caqr` — tiled CAQR for general matrices (paper §VI).
"""

from repro.tsqr.caqr import CAQRFactors, CAQRTransform, caqr, caqr_r
from repro.tsqr.parallel import (
    TSQRConfig,
    TSQRRankResult,
    TSQRRunResult,
    qcg_tsqr_program,
    run_parallel_tsqr,
    tsqr_reduce_op,
)
from repro.tsqr.qrepresentation import QCombine, QLeaf, TSQRQFactor
from repro.tsqr.sequential import TSQRResult, blocked_household_qr, tsqr, tsqr_r
from repro.tsqr.trees import (
    ReductionTree,
    binary_reduction_tree,
    flat_reduction_tree,
    grid_hierarchical_tree,
    tree_for,
)

__all__ = [
    "CAQRFactors",
    "CAQRTransform",
    "caqr",
    "caqr_r",
    "TSQRConfig",
    "TSQRRankResult",
    "TSQRRunResult",
    "qcg_tsqr_program",
    "run_parallel_tsqr",
    "tsqr_reduce_op",
    "QCombine",
    "QLeaf",
    "TSQRQFactor",
    "TSQRResult",
    "blocked_household_qr",
    "tsqr",
    "tsqr_r",
    "ReductionTree",
    "binary_reduction_tree",
    "flat_reduction_tree",
    "grid_hierarchical_tree",
    "tree_for",
]
