"""TSQR / CAQR: the paper's core contribution.

* :mod:`repro.tsqr.trees` — reduction trees (flat, binary, grid-hierarchical)
  and their locality analysis (Fig. 1 vs Fig. 2);
* :mod:`repro.tsqr.sequential` — in-memory TSQR, the reference implementation
  and single-node engine;
* :mod:`repro.tsqr.qrepresentation` — the implicit (tree-structured) Q factor;
* :mod:`repro.tsqr.parallel` — QCG-TSQR, the SPMD program articulated with the
  topology-aware middleware on the simulated grid (paper §III), built on the
  shared program layer of :mod:`repro.programs.spmd`;
* :mod:`repro.tsqr.caqr` — sequential tiled CAQR for general matrices
  (paper §VI).

The *distributed* CAQR entry points (:class:`~repro.programs.caqr.CAQRConfig`,
:func:`~repro.programs.caqr.caqr_program`,
:func:`~repro.programs.caqr.run_parallel_caqr`) live in
:mod:`repro.programs.caqr` and are re-exported here lazily — the programs
package builds on this one, so the import is deferred until first use.
"""

from repro.tsqr.caqr import CAQRFactors, CAQRTransform, caqr, caqr_r
from repro.tsqr.parallel import (
    TSQRConfig,
    TSQRRankResult,
    TSQRRunResult,
    qcg_tsqr_program,
    run_parallel_tsqr,
    tsqr_reduce_op,
)
from repro.tsqr.qrepresentation import QCombine, QLeaf, TSQRQFactor
from repro.tsqr.sequential import TSQRResult, blocked_household_qr, tsqr, tsqr_r
from repro.tsqr.trees import (
    ReductionTree,
    binary_reduction_tree,
    flat_reduction_tree,
    grid_hierarchical_tree,
    tree_for,
)

#: Distributed-CAQR names re-exported lazily from :mod:`repro.programs.caqr`.
_PROGRAM_EXPORTS = frozenset(
    {"CAQRConfig", "CAQRRankResult", "CAQRRunResult", "caqr_program", "run_parallel_caqr"}
)


def __getattr__(name: str):
    """Lazy re-export of the distributed CAQR entry points (PEP 562)."""
    if name in _PROGRAM_EXPORTS:
        from repro.programs import caqr as _caqr_programs

        return getattr(_caqr_programs, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "CAQRFactors",
    "CAQRTransform",
    "caqr",
    "caqr_r",
    "CAQRConfig",
    "CAQRRankResult",
    "CAQRRunResult",
    "caqr_program",
    "run_parallel_caqr",
    "TSQRConfig",
    "TSQRRankResult",
    "TSQRRunResult",
    "qcg_tsqr_program",
    "run_parallel_tsqr",
    "tsqr_reduce_op",
    "QCombine",
    "QLeaf",
    "TSQRQFactor",
    "TSQRResult",
    "blocked_household_qr",
    "tsqr",
    "tsqr_r",
    "ReductionTree",
    "binary_reduction_tree",
    "flat_reduction_tree",
    "grid_hierarchical_tree",
    "tree_for",
]
