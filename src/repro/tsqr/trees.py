"""Reduction trees for TSQR.

TSQR is a single reduction whose operator combines two triangular factors.
*Which* tree carries that reduction is the degree of freedom the paper
exploits:

* a **flat tree** (sequential/out-of-core TSQR) visits domains one by one;
* a **binary tree** over domain indices is the classical parallel choice
  (and what a topology-oblivious MPI reduction would do);
* the **grid-hierarchical tree** — the paper's contribution — reduces with a
  binary tree *inside every cluster* first and then with a binary tree
  *across clusters*, so each wide-area link carries exactly one R factor per
  reduction, independent of the number of columns (paper Fig. 2).

A :class:`ReductionTree` couples a :class:`~repro.gridsim.collectives.TreeSchedule`
over the domain indices with the domain → cluster mapping, and can therefore
answer the Fig. 1 / Fig. 2 question directly: how many inter-cluster messages
does this reduction cost?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.exceptions import TreeError
from repro.gridsim.collectives import TreeSchedule, binary_tree, flat_tree, hierarchical_tree

__all__ = [
    "ReductionTree",
    "flat_reduction_tree",
    "binary_reduction_tree",
    "grid_hierarchical_tree",
    "tree_for",
]


@dataclass(frozen=True)
class ReductionTree:
    """A reduction tree over ``n_domains`` domains with locality metadata.

    Attributes
    ----------
    schedule:
        The underlying rooted tree (positions are domain indices).
    domain_clusters:
        ``domain_clusters[d]`` names the cluster hosting domain ``d``;
        locality queries return 0 inter-cluster edges when every domain is on
        the same (or an unspecified) cluster.
    kind:
        Human-readable tree family (``"flat"``, ``"binary"``,
        ``"grid-hierarchical"`` or ``"custom"``); informational only.
    """

    schedule: TreeSchedule
    domain_clusters: tuple[str, ...]
    kind: str = "custom"

    def __post_init__(self) -> None:
        if len(self.domain_clusters) != self.schedule.size:
            raise TreeError(
                f"{len(self.domain_clusters)} cluster labels for "
                f"{self.schedule.size} domains"
            )

    # ------------------------------------------------------------------ api
    @property
    def n_domains(self) -> int:
        """Number of domains (leaves of the reduction)."""
        return self.schedule.size

    @property
    def root(self) -> int:
        """Domain index acting as the reduction root."""
        return self.schedule.root

    def children(self, domain: int) -> tuple[int, ...]:
        """Domains whose factors are combined into ``domain``."""
        return self.schedule.children[domain]

    def parent(self, domain: int) -> int | None:
        """Domain that consumes ``domain``'s factor (None for the root)."""
        return self.schedule.parent(domain)

    def depth(self) -> int:
        """Longest root-to-leaf path length in edges."""
        return self.schedule.depth()

    def edges(self) -> list[tuple[int, int]]:
        """All (child, parent) domain pairs, i.e. the messages of the reduce."""
        return self.schedule.edges()

    def n_messages(self) -> int:
        """Total number of messages of one reduction (one per edge)."""
        return len(self.edges())

    def inter_cluster_edges(self) -> list[tuple[int, int]]:
        """Edges whose endpoints live on different clusters."""
        return [
            (c, p)
            for c, p in self.edges()
            if self.domain_clusters[c] != self.domain_clusters[p]
        ]

    def n_inter_cluster_messages(self) -> int:
        """Number of messages of one reduction that cross cluster boundaries.

        For the grid-hierarchical tree this equals ``n_clusters - 1`` —
        the paper's "two inter-cluster messages" for three clusters, and the
        provably minimal count when data is spread over every cluster.
        """
        return len(self.inter_cluster_edges())

    def n_intra_cluster_messages(self) -> int:
        """Number of messages of one reduction staying inside a cluster."""
        return self.n_messages() - self.n_inter_cluster_messages()

    def clusters(self) -> list[str]:
        """Distinct cluster names hosting at least one domain (stable order)."""
        seen: list[str] = []
        for c in self.domain_clusters:
            if c not in seen:
                seen.append(c)
        return seen

    def describe(self) -> str:
        """One-line summary used by reports and examples."""
        return (
            f"{self.kind} tree over {self.n_domains} domains "
            f"({len(self.clusters())} cluster(s)): depth {self.depth()}, "
            f"{self.n_messages()} messages of which "
            f"{self.n_inter_cluster_messages()} inter-cluster"
        )


def _uniform_clusters(n_domains: int, cluster: str = "local") -> tuple[str, ...]:
    return tuple([cluster] * n_domains)


def flat_reduction_tree(
    n_domains: int, domain_clusters: Sequence[str] | None = None
) -> ReductionTree:
    """Flat (sequential) reduction: every domain feeds the root directly."""
    clusters = tuple(domain_clusters) if domain_clusters else _uniform_clusters(n_domains)
    return ReductionTree(
        schedule=flat_tree(n_domains), domain_clusters=clusters, kind="flat"
    )


def binary_reduction_tree(
    n_domains: int, domain_clusters: Sequence[str] | None = None
) -> ReductionTree:
    """Topology-oblivious binary reduction over domain indices."""
    clusters = tuple(domain_clusters) if domain_clusters else _uniform_clusters(n_domains)
    return ReductionTree(
        schedule=binary_tree(n_domains), domain_clusters=clusters, kind="binary"
    )


def grid_hierarchical_tree(domain_clusters: Sequence[str]) -> ReductionTree:
    """The paper's tuned tree: binary inside each cluster, binary across clusters.

    ``domain_clusters[d]`` names the cluster of domain ``d``.  Domains of the
    same cluster are reduced first (binary tree over their indices, in order);
    the per-cluster roots are then reduced by a binary tree whose root is the
    first cluster's root, so every inter-cluster link carries exactly one
    message per reduction.
    """
    clusters = tuple(domain_clusters)
    if not clusters:
        raise TreeError("at least one domain is required")
    groups: dict[str, list[int]] = {}
    for d, name in enumerate(clusters):
        groups.setdefault(name, []).append(d)
    schedule = hierarchical_tree(list(groups.values()), root_group=0)
    return ReductionTree(schedule=schedule, domain_clusters=clusters, kind="grid-hierarchical")


def tree_for(
    kind: str,
    n_domains: int,
    domain_clusters: Sequence[str] | None = None,
) -> ReductionTree:
    """Factory used by configurations: build a tree of the requested ``kind``.

    ``kind`` is one of ``"flat"``, ``"binary"``, ``"grid-hierarchical"`` (the
    latter requires ``domain_clusters``; without them it degrades to a single
    intra-cluster binary tree, which is the correct single-site behaviour).
    """
    if kind == "flat":
        return flat_reduction_tree(n_domains, domain_clusters)
    if kind == "binary":
        return binary_reduction_tree(n_domains, domain_clusters)
    if kind in ("grid-hierarchical", "hierarchical", "grid"):
        clusters = (
            tuple(domain_clusters) if domain_clusters else _uniform_clusters(n_domains)
        )
        return grid_hierarchical_tree(clusters)
    raise TreeError(f"unknown reduction tree kind {kind!r}")
