"""QCG-TSQR: the parallel, topology-aware TSQR of the paper.

This is the SPMD program of paper §III articulated with the (simulated)
QCG-OMPI middleware:

1. the matrix is split into ``n_domains`` block-rows ("domains"); a domain is
   owned either by a single process (LAPACK leaf, the original TSQR) or by a
   *group* of processes that factor it together with the ScaLAPACK-style
   distributed QR — the per-cluster groups delivered by the middleware;
2. the per-domain R factors are reduced along a reduction tree; with the
   default ``grid-hierarchical`` tree the reduction is binary inside every
   cluster and binary across cluster roots, so each inter-cluster link
   carries exactly one (half-triangular) R factor per reduction, regardless
   of the number of columns — the property illustrated by paper Fig. 2;
3. optionally the orthogonal factor is produced by a symmetric downward sweep
   that pushes blocks of the identity back through the stored combine
   factors, doubling messages, volume and flops exactly as the paper's
   Table II and Property 1 state.  The sweep works for *both* domain kinds:
   a single-process domain applies its stored leaf Householder factor, while
   a multi-process domain scatters the arriving coefficient block over the
   domain communicator and finishes with the distributed
   :func:`~repro.scalapack.pdorgqr.pdorgqr`, whose allreduces mirror the
   factorization's and keep the doubling intact.

Real payloads give exact numerics (validated against LAPACK at test scale);
virtual payloads run the same communication schedule while charging analytic
flop counts, which is how the 33-million-row sweeps of the evaluation are
reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConfigurationError, FactorizationError
from repro.gridsim.executor import RankContext, SPMDExecutor, SimulationResult
from repro.gridsim.platform import Platform
from repro.gridsim.trace import TraceSummary
from repro.kernels.householder import HouseholderQR, apply_q, geqrf
from repro.kernels.tskernels import StackedQR, qr_of_stacked_triangles
from repro.scalapack.descriptor import RowBlockDescriptor
from repro.scalapack.pdgeqrf import pdgeqrf
from repro.scalapack.pdorgqr import pdorgqr
from repro.tsqr.trees import ReductionTree, tree_for
from repro.util.partition import block_ranges, partition_rows_weighted
from repro.util.units import DOUBLE_BYTES, gflops_rate
from repro.virtual.flops import qr_flops, stacked_triangle_qr_flops
from repro.virtual.matrix import MatrixLike, VirtualMatrix

__all__ = [
    "TSQRConfig",
    "TSQRRankResult",
    "TSQRRunResult",
    "qcg_tsqr_program",
    "run_parallel_tsqr",
    "tsqr_reduce_op",
]

#: Message tags of the explicit reduction / downward sweep.
_TAG_REDUCE = "tsqr-reduce"
_TAG_SWEEP = "tsqr-qsweep"


@dataclass(frozen=True)
class TSQRConfig:
    """Configuration of one QCG-TSQR run.

    ``n_domains`` defaults to one domain per process (the pure TSQR of
    Demmel et al.); smaller values group ``P / n_domains`` processes per
    domain and factor each domain with the distributed ScaLAPACK-style QR,
    which is the knob swept by the paper's Figs. 6 and 7.
    """

    m: int
    n: int
    n_domains: int | None = None
    tree_kind: str = "grid-hierarchical"
    want_q: bool = False
    broadcast_r: bool = False
    nb: int = 64
    matrix: np.ndarray | None = field(default=None, repr=False, compare=False)
    domain_weights: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        if self.m < self.n:
            raise ConfigurationError(f"TSQR requires a tall matrix, got {self.m} x {self.n}")
        if self.n <= 0:
            raise ConfigurationError("the matrix must have at least one column")
        if self.matrix is not None and self.matrix.shape != (self.m, self.n):
            raise ConfigurationError(
                f"matrix shape {self.matrix.shape} does not match ({self.m}, {self.n})"
            )
        if self.n_domains is not None and self.n_domains <= 0:
            raise ConfigurationError("n_domains must be positive")

    @property
    def virtual(self) -> bool:
        """True when the run uses shape-only payloads."""
        return self.matrix is None

    def flop_count(self) -> float:
        """Useful flops credited to the run (the Gflop/s denominator)."""
        base = qr_flops(self.m, self.n)
        return 2.0 * base if self.want_q else base

    def resolve_domains(self, n_processes: int) -> int:
        """Number of domains actually used for ``n_processes`` processes."""
        d = self.n_domains if self.n_domains is not None else n_processes
        if d > n_processes:
            raise ConfigurationError(
                f"{d} domains requested but only {n_processes} processes are available"
            )
        if n_processes % d != 0:
            raise ConfigurationError(
                f"the process count ({n_processes}) must be a multiple of the "
                f"domain count ({d})"
            )
        return d


@dataclass
class TSQRRankResult:
    """Per-rank return value of the SPMD program."""

    rank: int
    domain: int
    is_domain_leader: bool
    r: np.ndarray | None
    q_local: np.ndarray | None
    local_rows: int


def tsqr_reduce_op(n: int, *, want_q: bool = False):
    """Reduction operator turning TSQR into a single MPI allreduce.

    Returned object plugs into :meth:`CommHandle.allreduce`; the combine is
    the stacked-triangle QR and its cost is the structured ``2/3 n^3`` count
    the paper's model charges per tree level.  This is the literal reading of
    the paper's statement that "TSQR is a single complex allreduce operation".
    """
    from repro.gridsim.communicator import ReduceOp

    def _combine(a, b):
        if a is None:
            return b
        if b is None:
            return a
        if isinstance(a, VirtualMatrix) or isinstance(b, VirtualMatrix):
            return VirtualMatrix(n, n, structure="upper")
        return qr_of_stacked_triangles(np.triu(a), np.triu(b), want_q=want_q).r

    return ReduceOp(
        func=_combine,
        flops=lambda a, b: stacked_triangle_qr_flops(n) * (2.0 if want_q else 1.0),
        kernel="qr_combine",
        width=lambda a, b: n,
    )


def _triangle_nbytes(n: int) -> int:
    """Bytes of an upper-triangular ``n x n`` factor (the paper's N^2/2 term)."""
    return n * (n + 1) // 2 * DOUBLE_BYTES


def _domain_row_ranges(config: TSQRConfig, n_domains: int) -> list[tuple[int, int]]:
    """Row range of each domain, optionally weighted for heterogeneous domains."""
    if config.domain_weights is not None:
        if len(config.domain_weights) != n_domains:
            raise ConfigurationError(
                f"{len(config.domain_weights)} weights for {n_domains} domains"
            )
        return partition_rows_weighted(config.m, config.domain_weights)
    return block_ranges(config.m, n_domains)


def qcg_tsqr_program(ctx: RankContext, config: TSQRConfig) -> TSQRRankResult:
    """The QCG-TSQR SPMD program (one call per simulated MPI process)."""
    comm = ctx.comm
    p = comm.size
    n = config.n
    n_domains = config.resolve_domains(p)
    ppd = p // n_domains
    domain = comm.rank // ppd
    leader_local = domain * ppd
    is_leader = comm.rank == leader_local

    domain_ranges = _domain_row_ranges(config, n_domains)
    dom_start, dom_stop = domain_ranges[domain]
    dom_rows = dom_stop - dom_start
    if dom_rows < n:
        raise ConfigurationError(
            f"domain {domain} holds {dom_rows} rows which is fewer than n={n}; "
            "use fewer domains for this matrix"
        )

    # ------------------------------------------------------------ local data
    desc = RowBlockDescriptor(dom_rows, n, ppd)
    local_start, local_stop = desc.row_range(comm.rank - leader_local)
    local_rows = local_stop - local_start
    if config.virtual:
        a_local: np.ndarray | VirtualMatrix = VirtualMatrix(local_rows, n)
    else:
        rows = slice(dom_start + local_start, dom_start + local_stop)
        a_local = np.array(config.matrix[rows, :], dtype=np.float64, copy=True)

    # Split once per run: one communicator per domain (used by multi-process
    # domains for the ScaLAPACK factorization and by the optional broadcast).
    domain_comm = comm.split(color=domain, key=comm.rank)

    # -------------------------------------------------------- leaf factoring
    leaf_fact: HouseholderQR | None = None
    dist = None  # DistributedQR of a multi-process domain, kept for the Q sweep
    r_acc: np.ndarray | VirtualMatrix | None = None
    if ppd == 1:
        if config.virtual:
            ctx.compute(qr_flops(local_rows, n), kernel="qr_leaf", n=n)
            r_acc = VirtualMatrix(n, n, structure="upper")
        else:
            leaf_fact = geqrf(a_local, block_size=min(config.nb, n))
            ctx.compute(qr_flops(local_rows, n), kernel="qr_leaf", n=n)
            r_acc = leaf_fact.r
    else:
        dist = pdgeqrf(ctx, domain_comm, a_local, nb=config.nb)
        if is_leader:
            r_acc = dist.r if not config.virtual else VirtualMatrix(n, n, structure="upper")

    # ------------------------------------------------- reduction over domains
    placement = ctx.platform.placement
    domain_clusters = []
    for d in range(n_domains):
        leader_world = comm.core.world_rank(d * ppd)
        domain_clusters.append(placement.cluster_of(leader_world))
    tree: ReductionTree = tree_for(config.tree_kind, n_domains, domain_clusters)

    combines: list[tuple[int, StackedQR | None]] = []  # (child_domain, factors)
    if is_leader:
        for child in tree.children(domain):
            child_r = comm.recv(source=child * ppd, tag=_TAG_REDUCE)
            if config.virtual or isinstance(child_r, VirtualMatrix):
                ctx.compute(stacked_triangle_qr_flops(n), kernel="qr_combine", n=n)
                combines.append((child, None))
                r_acc = VirtualMatrix(n, n, structure="upper")
            else:
                stacked = qr_of_stacked_triangles(
                    np.triu(r_acc), np.triu(child_r), want_q=config.want_q
                )
                ctx.compute(stacked_triangle_qr_flops(n), kernel="qr_combine", n=n)
                combines.append((child, stacked))
                r_acc = stacked.r
        parent = tree.parent(domain)
        if parent is not None:
            comm.send(r_acc, dest=parent * ppd, tag=_TAG_REDUCE, nbytes=_triangle_nbytes(n))

    is_root_leader = is_leader and tree.parent(domain) is None
    r_out: np.ndarray | None = None
    if is_root_leader and not config.virtual:
        r_out = np.triu(np.asarray(r_acc))[:n, :n]

    # ------------------------------------------------------ optional R bcast
    if config.broadcast_r:
        # Reverse sweep over the reduction tree (leaders), then one broadcast
        # inside every domain: R reaches every process with the same number of
        # inter-cluster messages as the reduction itself.
        if is_leader:
            parent = tree.parent(domain)
            if parent is not None:
                r_everywhere = comm.recv(source=parent * ppd, tag=_TAG_REDUCE + "-down")
            else:
                r_everywhere = r_acc
            for child in tree.children(domain):
                comm.send(
                    r_everywhere,
                    dest=child * ppd,
                    tag=_TAG_REDUCE + "-down",
                    nbytes=_triangle_nbytes(n),
                )
        else:
            r_everywhere = None
        r_everywhere = domain_comm.bcast(r_everywhere, root=0)
        if not config.virtual:
            r_out = np.triu(np.asarray(r_everywhere))[:n, :n]

    # ------------------------------------------------- optional Q construction
    q_local: np.ndarray | None = None
    if config.want_q:
        # Downward sweep: the root pushes the n x n identity through the
        # stored combine factors; every domain ends with its m_d x n slice of Q.
        # Each sweep message is charged the paper's Table II volume of N^2/2
        # doubles: the model transmits the downward update in the compact
        # half-triangular form of the stacked-triangle factors, mirroring the
        # upward triangle, while the simulator's payload carries the explicit
        # block for the numerics.
        sweep_nbytes = _triangle_nbytes(n)
        c_block: np.ndarray | VirtualMatrix | None = None
        if is_leader:
            if is_root_leader:
                c_block = VirtualMatrix(n, n) if config.virtual else np.eye(n)
            else:
                c_block = comm.recv(source=tree.parent(domain) * ppd, tag=_TAG_SWEEP)
            # Undo the combines in reverse order: the part of the stacked Q
            # acting on this domain's rows stays here, the rest goes to the
            # child it came from.
            for child, stacked in reversed(combines):
                if config.virtual or stacked is None:
                    ctx.compute(stacked_triangle_qr_flops(n), kernel="qr_combine", n=n)
                    comm.send(
                        VirtualMatrix(n, n) if config.virtual else None,
                        dest=child * ppd,
                        tag=_TAG_SWEEP,
                        nbytes=sweep_nbytes,
                    )
                else:
                    y = stacked.q @ np.asarray(c_block)
                    ctx.compute(stacked_triangle_qr_flops(n), kernel="qr_combine", n=n)
                    top, bottom = y[: stacked.rows_top, :], y[stacked.rows_top :, :]
                    comm.send(
                        bottom, dest=child * ppd, tag=_TAG_SWEEP, nbytes=sweep_nbytes
                    )
                    c_block = top
        if ppd == 1:
            # Apply the leaf orthogonal factor to the surviving block.
            ctx.compute(qr_flops(local_rows, n), kernel="qr_leaf", n=n)
            if not config.virtual and leaf_fact is not None:
                padded = np.zeros((local_rows, n))
                padded[: min(n, local_rows), :] = np.asarray(c_block)[: min(n, local_rows), :]
                q_local = apply_q(leaf_fact.v, leaf_fact.tau, padded, transpose=False)
        else:
            # Multi-process domain: the leader scatters the rows of the sweep
            # coefficient block falling in each member's block-row range (the
            # leader's own range covers all n of them whenever the distributed
            # QR succeeded), then every member forms its slice of Q with the
            # distributed PDORGQR, whose allreduces mirror the factorization's.
            if is_leader:
                slices: list[MatrixLike] = []
                for member in range(ppd):
                    m_start, m_stop = desc.row_range(member)
                    rows = max(0, min(m_stop, n) - m_start)
                    if config.virtual:
                        slices.append(VirtualMatrix(rows, n))
                    else:
                        block = np.asarray(c_block)
                        slices.append(np.array(block[m_start : m_start + rows, :], copy=True))
                c_init = domain_comm.scatter(slices, root=0)
            else:
                c_init = domain_comm.scatter(None, root=0)
            q_block = pdorgqr(ctx, domain_comm, dist, row_start=local_start, c_init=c_init)
            if not config.virtual:
                q_local = np.asarray(q_block)

    return TSQRRankResult(
        rank=comm.rank,
        domain=domain,
        is_domain_leader=is_leader,
        r=r_out,
        q_local=q_local,
        local_rows=local_rows,
    )


@dataclass
class TSQRRunResult:
    """Harness-level outcome of one QCG-TSQR run."""

    config: TSQRConfig
    r: np.ndarray | None
    q: np.ndarray | None
    makespan_s: float
    gflops: float
    trace: TraceSummary
    tree: ReductionTree | None
    simulation: SimulationResult = field(repr=False)

    @property
    def time_s(self) -> float:
        """Simulated wall-clock time of the factorization."""
        return self.makespan_s


def run_parallel_tsqr(
    platform: Platform,
    config: TSQRConfig,
    *,
    collective_tree: str = "binary",
    record_messages: bool = False,
) -> TSQRRunResult:
    """Run QCG-TSQR on ``platform`` and summarise its performance."""
    executor = SPMDExecutor(
        platform, record_messages=record_messages, collective_tree=collective_tree
    )
    sim = executor.run(qcg_tsqr_program, config)
    results: list[TSQRRankResult] = list(sim.results)
    r = next((res.r for res in results if res.r is not None), None)
    q = None
    if config.want_q and not config.virtual:
        # Ranks own contiguous, ascending row blocks, so Q is assembled in
        # explicit rank order; a missing block is a bug, never a silent None.
        blocks = {res.rank: res.q_local for res in results}
        missing = sorted(rank for rank, block in blocks.items() if block is None)
        if missing:
            raise FactorizationError(
                f"explicit Q was requested but rank(s) {missing} returned no Q block"
            )
        q = np.vstack([blocks[rank] for rank in sorted(blocks)])
    n_domains = config.resolve_domains(platform.n_processes)
    ppd = platform.n_processes // n_domains
    clusters = [
        platform.placement.cluster_of(d * ppd) for d in range(n_domains)
    ]
    tree = tree_for(config.tree_kind, n_domains, clusters)
    return TSQRRunResult(
        config=config,
        r=r,
        q=q,
        makespan_s=sim.makespan,
        gflops=gflops_rate(config.flop_count(), sim.makespan),
        trace=sim.trace,
        tree=tree,
        simulation=sim,
    )
