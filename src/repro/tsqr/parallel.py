"""QCG-TSQR: the parallel, topology-aware TSQR of the paper.

This is the SPMD program of paper §III articulated with the (simulated)
QCG-OMPI middleware:

1. the matrix is split into ``n_domains`` block-rows ("domains"); a domain is
   owned either by a single process (LAPACK leaf, the original TSQR) or by a
   *group* of processes that factor it together with the ScaLAPACK-style
   distributed QR — the per-cluster groups delivered by the middleware;
2. the per-domain R factors are reduced along a reduction tree; with the
   default ``grid-hierarchical`` tree the reduction is binary inside every
   cluster and binary across cluster roots, so each inter-cluster link
   carries exactly one (half-triangular) R factor per reduction, regardless
   of the number of columns — the property illustrated by paper Fig. 2;
3. optionally the orthogonal factor is produced by a symmetric downward sweep
   that pushes blocks of the identity back through the stored combine
   factors, doubling messages, volume and flops exactly as the paper's
   Table II and Property 1 state.  The sweep works for *both* domain kinds:
   a single-process domain applies its stored leaf Householder factor, while
   a multi-process domain scatters the arriving coefficient block over the
   domain communicator and finishes with the distributed
   :func:`~repro.scalapack.pdorgqr.pdorgqr`, whose allreduces mirror the
   factorization's and keep the doubling intact.

Real payloads give exact numerics (validated against LAPACK at test scale);
virtual payloads run the same communication schedule while charging analytic
flop counts, which is how the 33-million-row sweeps of the evaluation are
reproduced.

The SPMD scaffolding this program runs on — domain layout and communicator
split, topology-aware reduction trees, virtual-vs-real payload dispatch,
rank-ordered result assembly and the run harness — lives in the shared
program layer :mod:`repro.programs.spmd`; this module instantiates it for
the tall-and-skinny case, and :mod:`repro.programs.caqr` for general
matrices.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConfigurationError
from repro.gridsim.executor import RankContext, SimulationResult
from repro.gridsim.platform import Platform
from repro.gridsim.trace import TraceSummary
from repro.kernels.householder import HouseholderQR, apply_q, geqrf
from repro.kernels.tskernels import StackedQR, qr_of_stacked_triangles
from repro.programs.spmd import (
    assemble_row_blocks,
    build_domain_layout,
    domain_reduction_tree,
    local_block_payload,
    resolve_domain_count,
    run_program,
    triangle_nbytes,
)
from repro.scalapack.pdgeqrf import pdgeqrf
from repro.scalapack.pdorgqr import pdorgqr
from repro.tsqr.trees import ReductionTree
from repro.virtual.flops import qr_flops, stacked_triangle_qr_flops
from repro.virtual.matrix import MatrixLike, VirtualMatrix

__all__ = [
    "TSQRConfig",
    "TSQRRankResult",
    "TSQRRunResult",
    "qcg_tsqr_program",
    "run_parallel_tsqr",
    "tsqr_reduce_op",
]

#: Message tags of the explicit reduction / downward sweep.
_TAG_REDUCE = "tsqr-reduce"
_TAG_SWEEP = "tsqr-qsweep"


@dataclass(frozen=True)
class TSQRConfig:
    """Configuration of one QCG-TSQR run.

    ``n_domains`` defaults to one domain per process (the pure TSQR of
    Demmel et al.); smaller values group ``P / n_domains`` processes per
    domain and factor each domain with the distributed ScaLAPACK-style QR,
    which is the knob swept by the paper's Figs. 6 and 7.
    """

    m: int
    n: int
    n_domains: int | None = None
    tree_kind: str = "grid-hierarchical"
    want_q: bool = False
    broadcast_r: bool = False
    nb: int = 64
    matrix: np.ndarray | None = field(default=None, repr=False, compare=False)
    domain_weights: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        if self.m < self.n:
            raise ConfigurationError(f"TSQR requires a tall matrix, got {self.m} x {self.n}")
        if self.n <= 0:
            raise ConfigurationError("the matrix must have at least one column")
        if self.matrix is not None and self.matrix.shape != (self.m, self.n):
            raise ConfigurationError(
                f"matrix shape {self.matrix.shape} does not match ({self.m}, {self.n})"
            )
        if self.n_domains is not None and self.n_domains <= 0:
            raise ConfigurationError("n_domains must be positive")

    @property
    def virtual(self) -> bool:
        """True when the run uses shape-only payloads."""
        return self.matrix is None

    def flop_count(self) -> float:
        """Useful flops credited to the run (the Gflop/s denominator)."""
        base = qr_flops(self.m, self.n)
        return 2.0 * base if self.want_q else base

    def resolve_domains(self, n_processes: int) -> int:
        """Number of domains actually used for ``n_processes`` processes."""
        return resolve_domain_count(self.n_domains, n_processes)


@dataclass
class TSQRRankResult:
    """Per-rank return value of the SPMD program."""

    rank: int
    domain: int
    is_domain_leader: bool
    r: np.ndarray | None
    q_local: np.ndarray | None
    local_rows: int


def tsqr_reduce_op(n: int, *, want_q: bool = False):
    """Reduction operator turning TSQR into a single MPI allreduce.

    Returned object plugs into :meth:`CommHandle.allreduce`; the combine is
    the stacked-triangle QR and its cost is the structured ``2/3 n^3`` count
    the paper's model charges per tree level.  This is the literal reading of
    the paper's statement that "TSQR is a single complex allreduce operation".
    """
    from repro.gridsim.communicator import ReduceOp

    def _combine(a, b):
        if a is None:
            return b
        if b is None:
            return a
        if isinstance(a, VirtualMatrix) or isinstance(b, VirtualMatrix):
            return VirtualMatrix(n, n, structure="upper")
        return qr_of_stacked_triangles(np.triu(a), np.triu(b), want_q=want_q).r

    return ReduceOp(
        func=_combine,
        flops=lambda a, b: stacked_triangle_qr_flops(n) * (2.0 if want_q else 1.0),
        kernel="qr_combine",
        width=lambda a, b: n,
    )


def qcg_tsqr_program(ctx: RankContext, config: TSQRConfig):
    """The QCG-TSQR SPMD program, a generator (one call per simulated MPI process)."""
    comm = ctx.comm
    n = config.n

    # Domain setup and the per-domain communicator split come from the shared
    # SPMD program layer; TSQR's contribution is ``min_rows=n`` (every domain
    # must produce a full ``n x n`` R factor).
    layout = yield from build_domain_layout(
        comm,
        m=config.m,
        n=n,
        n_domains=config.n_domains,
        domain_weights=config.domain_weights,
        min_rows=n,
    )
    n_domains = layout.n_domains
    ppd = layout.ppd
    domain = layout.domain
    is_leader = layout.is_leader
    desc = layout.desc
    local_start = layout.local_start
    local_rows = layout.local_rows
    domain_comm = layout.domain_comm

    # ------------------------------------------------------------ local data
    a_local = local_block_payload(
        config.matrix, layout.global_row_slice, n, n_rows=local_rows
    )

    # -------------------------------------------------------- leaf factoring
    leaf_fact: HouseholderQR | None = None
    dist = None  # DistributedQR of a multi-process domain, kept for the Q sweep
    r_acc: np.ndarray | VirtualMatrix | None = None
    if ppd == 1:
        if config.virtual:
            ctx.compute(qr_flops(local_rows, n), kernel="qr_leaf", n=n)
            r_acc = VirtualMatrix(n, n, structure="upper")
        else:
            leaf_fact = geqrf(a_local, block_size=min(config.nb, n))
            ctx.compute(qr_flops(local_rows, n), kernel="qr_leaf", n=n)
            r_acc = leaf_fact.r
    else:
        dist = yield from pdgeqrf(ctx, domain_comm, a_local, nb=config.nb)
        if is_leader:
            r_acc = dist.r if not config.virtual else VirtualMatrix(n, n, structure="upper")

    # ------------------------------------------------- reduction over domains
    # The tree is identical on every rank (a pure function of placement and
    # config): the first rank builds it, everyone else shares it — per-rank
    # O(#domains) tree construction was the engine's scaling bottleneck.
    tree: ReductionTree = ctx.shared(
        ("tsqr-domain-tree", comm.core.comm_id, config.tree_kind, n_domains, ppd),
        lambda: domain_reduction_tree(
            ctx.platform,
            config.tree_kind,
            n_domains,
            ppd,
            world_rank_of=comm.core.world_rank,
        ),
    )

    combines: list[tuple[int, StackedQR | None]] = []  # (child_domain, factors)
    if is_leader:
        for child in tree.children(domain):
            child_r = yield from comm.recv(source=child * ppd, tag=_TAG_REDUCE)
            if config.virtual or isinstance(child_r, VirtualMatrix):
                ctx.compute(stacked_triangle_qr_flops(n), kernel="qr_combine", n=n)
                combines.append((child, None))
                r_acc = VirtualMatrix(n, n, structure="upper")
            else:
                stacked = qr_of_stacked_triangles(
                    np.triu(r_acc), np.triu(child_r), want_q=config.want_q
                )
                ctx.compute(stacked_triangle_qr_flops(n), kernel="qr_combine", n=n)
                combines.append((child, stacked))
                r_acc = stacked.r
        parent = tree.parent(domain)
        if parent is not None:
            comm.send(r_acc, dest=parent * ppd, tag=_TAG_REDUCE, nbytes=triangle_nbytes(n))

    is_root_leader = is_leader and tree.parent(domain) is None
    r_out: np.ndarray | None = None
    if is_root_leader and not config.virtual:
        r_out = np.triu(np.asarray(r_acc))[:n, :n]

    # ------------------------------------------------------ optional R bcast
    if config.broadcast_r:
        # Reverse sweep over the reduction tree (leaders), then one broadcast
        # inside every domain: R reaches every process with the same number of
        # inter-cluster messages as the reduction itself.
        if is_leader:
            parent = tree.parent(domain)
            if parent is not None:
                r_everywhere = yield from comm.recv(source=parent * ppd, tag=_TAG_REDUCE + "-down")
            else:
                r_everywhere = r_acc
            for child in tree.children(domain):
                comm.send(
                    r_everywhere,
                    dest=child * ppd,
                    tag=_TAG_REDUCE + "-down",
                    nbytes=triangle_nbytes(n),
                )
        else:
            r_everywhere = None
        r_everywhere = yield from domain_comm.bcast(r_everywhere, root=0)
        if not config.virtual:
            r_out = np.triu(np.asarray(r_everywhere))[:n, :n]

    # ------------------------------------------------- optional Q construction
    q_local: np.ndarray | None = None
    if config.want_q:
        # Downward sweep: the root pushes the n x n identity through the
        # stored combine factors; every domain ends with its m_d x n slice of Q.
        # Each sweep message is charged the paper's Table II volume of N^2/2
        # doubles: the model transmits the downward update in the compact
        # half-triangular form of the stacked-triangle factors, mirroring the
        # upward triangle, while the simulator's payload carries the explicit
        # block for the numerics.
        sweep_nbytes = triangle_nbytes(n)
        c_block: np.ndarray | VirtualMatrix | None = None
        if is_leader:
            if is_root_leader:
                c_block = VirtualMatrix(n, n) if config.virtual else np.eye(n)
            else:
                c_block = yield from comm.recv(source=tree.parent(domain) * ppd, tag=_TAG_SWEEP)
            # Undo the combines in reverse order: the part of the stacked Q
            # acting on this domain's rows stays here, the rest goes to the
            # child it came from.
            for child, stacked in reversed(combines):
                if config.virtual or stacked is None:
                    ctx.compute(stacked_triangle_qr_flops(n), kernel="qr_combine", n=n)
                    comm.send(
                        VirtualMatrix(n, n) if config.virtual else None,
                        dest=child * ppd,
                        tag=_TAG_SWEEP,
                        nbytes=sweep_nbytes,
                    )
                else:
                    y = stacked.q @ np.asarray(c_block)
                    ctx.compute(stacked_triangle_qr_flops(n), kernel="qr_combine", n=n)
                    top, bottom = y[: stacked.rows_top, :], y[stacked.rows_top :, :]
                    comm.send(
                        bottom, dest=child * ppd, tag=_TAG_SWEEP, nbytes=sweep_nbytes
                    )
                    c_block = top
        if ppd == 1:
            # Apply the leaf orthogonal factor to the surviving block.
            ctx.compute(qr_flops(local_rows, n), kernel="qr_leaf", n=n)
            if not config.virtual and leaf_fact is not None:
                padded = np.zeros((local_rows, n))
                padded[: min(n, local_rows), :] = np.asarray(c_block)[: min(n, local_rows), :]
                q_local = apply_q(leaf_fact.v, leaf_fact.tau, padded, transpose=False)
        else:
            # Multi-process domain: the leader scatters the rows of the sweep
            # coefficient block falling in each member's block-row range (the
            # leader's own range covers all n of them whenever the distributed
            # QR succeeded), then every member forms its slice of Q with the
            # distributed PDORGQR, whose allreduces mirror the factorization's.
            if is_leader:
                slices: list[MatrixLike] = []
                for member in range(ppd):
                    m_start, m_stop = desc.row_range(member)
                    rows = max(0, min(m_stop, n) - m_start)
                    if config.virtual:
                        slices.append(VirtualMatrix(rows, n))
                    else:
                        block = np.asarray(c_block)
                        slices.append(np.array(block[m_start : m_start + rows, :], copy=True))
                c_init = yield from domain_comm.scatter(slices, root=0)
            else:
                c_init = yield from domain_comm.scatter(None, root=0)
            q_block = yield from pdorgqr(ctx, domain_comm, dist, row_start=local_start, c_init=c_init)
            if not config.virtual:
                q_local = np.asarray(q_block)

    return TSQRRankResult(
        rank=comm.rank,
        domain=domain,
        is_domain_leader=is_leader,
        r=r_out,
        q_local=q_local,
        local_rows=local_rows,
    )


@dataclass
class TSQRRunResult:
    """Harness-level outcome of one QCG-TSQR run."""

    config: TSQRConfig
    r: np.ndarray | None
    q: np.ndarray | None
    makespan_s: float
    gflops: float
    trace: TraceSummary
    tree: ReductionTree | None
    simulation: SimulationResult = field(repr=False)

    @property
    def time_s(self) -> float:
        """Simulated wall-clock time of the factorization."""
        return self.makespan_s


def run_parallel_tsqr(
    platform: Platform,
    config: TSQRConfig,
    *,
    collective_tree: str = "binary",
    record_messages: bool = False,
    engine: str | None = None,
    streaming_stats: bool | None = None,
) -> TSQRRunResult:
    """Run QCG-TSQR on ``platform`` and summarise its performance."""
    run = run_program(
        platform,
        qcg_tsqr_program,
        config,
        flop_count=config.flop_count(),
        collective_tree=collective_tree,
        record_messages=record_messages,
        engine=engine,
        streaming_stats=streaming_stats,
    )
    results: list[TSQRRankResult] = list(run.results)
    r = next((res.r for res in results if res.r is not None), None)
    q = None
    if config.want_q and not config.virtual:
        # Ranks own contiguous, ascending row blocks, so Q is assembled in
        # explicit rank order; a missing block is a bug, never a silent None.
        q = assemble_row_blocks({res.rank: res.q_local for res in results}, what="Q")
    n_domains = config.resolve_domains(platform.n_processes)
    ppd = platform.n_processes // n_domains
    tree = domain_reduction_tree(platform, config.tree_kind, n_domains, ppd)
    return TSQRRunResult(
        config=config,
        r=r,
        q=q,
        makespan_s=run.makespan_s,
        gflops=run.gflops,
        trace=run.trace,
        tree=tree,
        simulation=run.simulation,
    )
