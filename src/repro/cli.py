"""Command-line interface.

Three subcommands cover the common workflows without writing Python:

``factor``
    Factor a random tall-and-skinny matrix in memory with TSQR and report the
    numerical quality (residual, orthogonality, agreement with LAPACK).

``simulate``
    Run one evaluation point of the paper on the simulated Grid'5000 platform
    (QCG-TSQR or the ScaLAPACK baseline) and report simulated time, Gflop/s
    and message counts.

``figure``
    Regenerate one of the paper's figures or tables and print/save its series.

``serve`` / ``query``
    Run the simulation service (shared result cache, single-flight batched
    serving) and query it — one point, a duplicate burst, or a best-config
    question answered by the Eq. (1) predictor with top-k escalation.

Usage examples live in one place — the parser epilog (:data:`_EPILOG`),
printed by ``python -m repro --help``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.dag.placement import PLACEMENT_POLICIES, PRIORITY_POLICIES
from repro.experiments import (
    CAQR_SWEEP_N,
    DAG_CHOLESKY_SWEEP_N,
    DAG_FAILURES_SWEEP_N,
    DAG_SWEEP_N,
    ExperimentRunner,
    caqr_sweep,
    dag_caqr_sweep,
    dag_cholesky_sweep,
    dag_failures_sweep,
    figure3_network,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure67_m_values,
    format_points,
    reduced_m_values,
    table1,
    table2,
    table2_sweep,
    trace_hotspots_report,
    write_csv,
)
from repro.service import (
    EscalationPolicy,
    ResultCache,
    SimulationService,
    remote_burst,
    remote_query,
    remote_stats,
    spec_from_config,
)
from repro.tsqr.sequential import tsqr
from repro.util.random_matrices import random_tall_skinny
from repro.util.validation import factorization_residual, orthogonality_error, r_factors_match

__all__ = ["main", "build_parser"]


_EPILOG = """\
examples:
  repro factor --rows 200000 --cols 64 --domains 64 --want-q
  repro simulate --algorithm tsqr --rows 33554432 --cols 64 --sites 4 --domains-per-cluster 64
  repro figure --id fig5 --cols 64 --points 3 --csv results/fig5.csv
  repro figure --id fig6 --cols 512 --jobs 8   # sweep points in 8 worker processes
  repro figure --id table2-sweep --domains 1,64 --csv results/table2_sweep.csv
  repro figure --id caqr-sweep --tile-size 64 --panel-tree grid-hierarchical \\
      --csv results/caqr_sweep.csv   # general-matrix CAQR at paper scale (§VI)
  repro simulate --algorithm caqr --runtime dag --rows 1048576 --cols 512 \\
      --tile-size 128 --priority critical-path   # one dataflow CAQR point
  repro figure --id dag-caqr-sweep --csv results/dag_caqr_sweep.csv \\
      # task-DAG vs SPMD CAQR makespan, critical-path bound, idle fractions
  repro figure --id dag-caqr-sweep --placement block-cyclic --priority fifo \\
      --rows 16384 --cols 128 --tile-size 32   # a quick reduced policy study
  repro simulate --algorithm cholesky --rows 8192 --cols 8192 --tile-size 128 \\
      # one dataflow tiled-Cholesky point (square; the DAG runtime is implied)
  repro simulate --algorithm lu --rows 4096 --cols 2048 --tile-size 64 \\
      --placement owner-computes   # tiled LU without pivoting
  repro figure --id dag-cholesky-sweep --cols 2048 --tile-size 64 \\
      --csv results/dag_cholesky_sweep.csv   # reduced registry-scenario sweep
  repro figure --id fig5 --points 2   # re-running answers from results/cache
  repro figure --id fig5 --points 2 --no-cache   # bypass the persistent cache
  repro serve --port 8642 --jobs 4   # simulation service on the result cache
  repro query --connect 127.0.0.1:8642 --algorithm caqr --runtime dag \\
      --rows 16384 --cols 128 --tile-size 32   # warm keys answer in microseconds
  repro query --connect 127.0.0.1:8642 --burst 8 --algorithm tsqr --cols 64 \\
      # 8 identical concurrent queries; single-flight runs ONE simulation
  repro query --algorithm caqr --runtime dag --rows 16384 --cols 128 \\
      --best-tile --candidates 16,32,64 --top-k 2   # Eq.(1) ranks, top-k simulate
  repro simulate --algorithm cholesky --cols 4096 --tile-size 128 \\
      --fail-rank 5 --fail-at 0.02 --fail-rank 11 --fail-at 0.05 \\
      # two deterministic rank deaths; the DAG runtime re-executes lost work
  repro figure --id dag-failures --failure-counts 0,1,2,4 \\
      # recovery-overhead curve, written to results/dag_failures.csv
  repro query --connect 127.0.0.1:8642 --retries 4 --timeout 2.0 --cols 64 \\
      # bounded retry with exponential backoff against a flaky server
  repro figure --id trace-hotspots --rows 16384 --cols 128 --tile-size 32 \\
      # top contention sites by accumulated wait; results/trace_hotspots.csv
  repro simulate --algorithm caqr --runtime dag --rows 16384 --cols 128 \\
      --tile-size 32 --trace-out results/trace_caqr.perfetto.json \\
      # Chrome-trace/Perfetto export of the streaming busy/wait windows
  repro query --connect 127.0.0.1:8642 --stats   # pretty service counters
"""


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TSQR on the grid: reproduction of Agullo et al., IPDPS 2010.",
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    factor = sub.add_parser("factor", help="factor a random tall-and-skinny matrix with TSQR")
    factor.add_argument("--rows", type=int, default=100_000, help="number of rows M")
    factor.add_argument("--cols", type=int, default=32, help="number of columns N")
    factor.add_argument("--domains", type=int, default=None, help="number of block-row domains")
    factor.add_argument(
        "--tree",
        choices=("binary", "flat", "grid-hierarchical"),
        default="binary",
        help="reduction tree family",
    )
    factor.add_argument("--want-q", action="store_true", help="also build the implicit Q factor")
    factor.add_argument("--seed", type=int, default=0, help="random seed of the test matrix")

    simulate = sub.add_parser("simulate", help="run one evaluation point on the simulated grid")
    _add_point_flags(simulate)
    simulate.add_argument(
        "--fail-rank",
        type=int,
        action="append",
        metavar="R",
        help="kill this rank mid-run (repeatable; each use pairs with one "
        "--fail-at; needs a DAG-runtime point, which recovers by "
        "re-executing the lost work)",
    )
    simulate.add_argument(
        "--fail-at",
        type=float,
        action="append",
        metavar="T",
        help="virtual time in seconds of the matching --fail-rank death "
        "(repeatable)",
    )
    simulate.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="export the run's streaming busy/wait timeline: *.csv writes the "
        "windowed per-rank CSV, anything else a Chrome-trace/Perfetto JSON "
        "(forces a fresh simulation — cached points carry no timeline)",
    )
    _add_cache_flags(simulate)

    figure = sub.add_parser("figure", help="regenerate a figure or table of the paper")
    figure.add_argument(
        "--id",
        dest="figure_id",
        required=True,
        choices=(
            "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
            "table1", "table2", "table2-sweep", "caqr-sweep", "dag-caqr-sweep",
            "dag-cholesky-sweep", "dag-failures", "trace-hotspots",
        ),
        help="which artefact to regenerate",
    )
    figure.add_argument(
        "--cols",
        type=int,
        default=None,
        help="column count N of the panel (default: 64; caqr-sweep and "
        f"dag-caqr-sweep: the paper's widest N={CAQR_SWEEP_N}; "
        f"dag-cholesky-sweep: the matrix order, default {DAG_CHOLESKY_SWEEP_N[0]}; "
        f"dag-failures: the matrix order, default {DAG_FAILURES_SWEEP_N[0]})",
    )
    figure.add_argument(
        "--points",
        type=int,
        default=None,
        help="number of M values to sweep in fig4-fig8 (default: 3)",
    )
    figure.add_argument(
        "--rows",
        type=int,
        default=None,
        help="row count M of the table2-sweep / caqr-sweep / dag-caqr-sweep "
        "artefacts (default: the paper-scale workload)",
    )
    figure.add_argument(
        "--domains",
        type=str,
        default=None,
        help="comma-separated domains/cluster sweep for fig6/fig7/table2-sweep "
        "(default: the paper's sweep)",
    )
    figure.add_argument(
        "--want-q",
        action="store_true",
        help="also form the explicit Q factor (Table II scenario) in the fig4-fig8 sweeps",
    )
    figure.add_argument(
        "--tile-size",
        type=int,
        default=None,
        help="row/column tile size of the caqr-sweep (default: 64), "
        "dag-caqr-sweep, dag-cholesky-sweep and dag-failures (default: 128) "
        "artefacts",
    )
    figure.add_argument(
        "--panel-tree",
        choices=("flat", "binary", "grid-hierarchical"),
        default=None,
        help="restrict the caqr-sweep artefact to one panel reduction tree "
        "(default: all three families; dag-caqr-sweep: binary)",
    )
    figure.add_argument(
        "--placement",
        choices=PLACEMENT_POLICIES,
        default=None,
        help="tile placement policy of the dag-caqr-sweep and "
        "dag-cholesky-sweep artefacts (default: block)",
    )
    figure.add_argument(
        "--priority",
        choices=PRIORITY_POLICIES,
        default=None,
        help="restrict the dag-caqr-sweep / dag-cholesky-sweep artefacts to "
        "one ready-queue priority (default: all three policies)",
    )
    figure.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="simulate the sweep's points in this many parallel worker "
        "processes (fig4-fig8, table2-sweep, caqr-sweep; results are "
        "byte-identical to a serial run)",
    )
    figure.add_argument(
        "--failure-counts",
        type=str,
        default=None,
        help="comma-separated failure counts of the dag-failures sweep "
        "(default: 0,1,2,4)",
    )
    figure.add_argument(
        "--csv",
        type=str,
        default=None,
        help="write the series to this CSV file "
        "(dag-failures default: results/dag_failures.csv)",
    )
    _add_cache_flags(figure)

    serve = sub.add_parser(
        "serve", help="run the simulation service (JSON-lines protocol over TCP)"
    )
    serve.add_argument("--host", default="127.0.0.1", help="interface to listen on")
    serve.add_argument(
        "--port", type=int, default=8642, help="TCP port (0 picks a free port)"
    )
    serve.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes a batch of cold misses fans out over",
    )
    serve.add_argument(
        "--batch-window-ms",
        type=float,
        default=5.0,
        help="how long to hold the first cold miss for batch-mates (default: 5)",
    )
    _add_cache_flags(serve)

    query = sub.add_parser(
        "query", help="query the simulation service (local, or --connect to a server)"
    )
    _add_point_flags(query)
    query.add_argument(
        "--connect",
        metavar="HOST:PORT",
        default=None,
        help="send the query to a running `repro serve` instead of answering locally",
    )
    query.add_argument(
        "--burst",
        type=int,
        default=None,
        help="send this many identical concurrent queries (single-flight probe; "
        "needs --connect)",
    )
    query.add_argument(
        "--stats",
        action="store_true",
        help="fetch the server's cache/dedup counters instead of querying "
        "(needs --connect)",
    )
    query.add_argument(
        "--json",
        action="store_true",
        dest="raw_json",
        help="print the raw --stats reply as JSON instead of the pretty report",
    )
    query.add_argument(
        "--best-tile",
        action="store_true",
        help="best-config query: rank the --candidates tile sizes by the "
        "Eq. (1) predictor and simulate only the top-k shortlist",
    )
    query.add_argument(
        "--candidates",
        type=str,
        default=None,
        help="comma-separated tile-size candidates of --best-tile "
        "(default: 16,32,64,128)",
    )
    query.add_argument(
        "--top-k",
        type=int,
        default=3,
        help="most candidates allowed to escalate to full simulation (default: 3)",
    )
    query.add_argument(
        "--margin",
        type=float,
        default=0.5,
        help="predictor error band of the escalation shortlist (default: 0.5)",
    )
    query.add_argument(
        "--retries",
        type=int,
        default=None,
        help="transport retry budget of a --connect request: up to this many "
        "re-attempts with exponential backoff after a connect/read failure "
        "(default: 2; queries are idempotent, so retrying is safe)",
    )
    query.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="connect/read timeout of each --connect attempt (default: 10)",
    )
    _add_cache_flags(query)
    return parser


def _add_point_flags(parser: argparse.ArgumentParser) -> None:
    """Flags selecting one evaluation point (shared by simulate and query)."""
    parser.add_argument(
        "--algorithm",
        choices=("tsqr", "scalapack", "caqr", "cholesky", "lu"),
        default="tsqr",
        help="algorithm to run (cholesky and lu execute on the task-DAG runtime)",
    )
    parser.add_argument(
        "--rows",
        type=int,
        default=None,
        help="number of rows M (default: 1048576; cholesky: the --cols order)",
    )
    parser.add_argument("--cols", type=int, default=64, help="number of columns N")
    parser.add_argument("--sites", type=int, choices=(1, 2, 4), default=4, help="grid sites used")
    parser.add_argument(
        "--domains-per-cluster", type=int, default=None, help="TSQR domains per cluster"
    )
    parser.add_argument("--want-q", action="store_true", help="also produce the Q factor")
    parser.add_argument(
        "--runtime",
        choices=("spmd", "dag"),
        default=None,
        help="CAQR execution runtime: the bulk-synchronous SPMD program or "
        "the task-DAG dataflow runtime (default: spmd; cholesky/lu points "
        "always run on the DAG runtime)",
    )
    parser.add_argument(
        "--tile-size",
        type=int,
        default=None,
        help="row/column tile size of a tiled (caqr/cholesky/lu) point",
    )
    parser.add_argument(
        "--placement",
        choices=PLACEMENT_POLICIES,
        default=None,
        help="tile placement policy of a DAG-runtime point (default: block)",
    )
    parser.add_argument(
        "--priority",
        choices=PRIORITY_POLICIES,
        default=None,
        help="ready-queue priority of a DAG-runtime point (default: critical-path)",
    )


def _add_cache_flags(parser: argparse.ArgumentParser) -> None:
    """The persistent result-cache switches (shared by the simulating commands)."""
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the persistent result cache entirely",
    )
    parser.add_argument(
        "--cache-dir",
        type=str,
        default=None,
        help="persistent result-cache directory "
        "(default: $REPRO_CACHE_DIR or results/cache)",
    )


def _store_from_args(args: argparse.Namespace) -> ResultCache | None:
    """The persistent store selected by the cache flags (None = bypass)."""
    if args.no_cache:
        if args.cache_dir is not None:
            raise ConfigurationError("--cache-dir and --no-cache are mutually exclusive")
        return None
    return ResultCache(args.cache_dir)


def _parse_domains(spec: str) -> tuple[int, ...]:
    """Parse a comma-separated domains/cluster sweep such as ``"1,16,64"``."""
    try:
        counts = tuple(int(d) for d in spec.split(",") if d.strip())
    except ValueError as exc:
        raise ConfigurationError(f"invalid domain count in {spec!r}: {exc}") from exc
    if not counts:
        raise ConfigurationError(f"no domain counts in {spec!r}")
    return counts


def _parse_failure_counts(spec: str) -> tuple[int, ...]:
    """Parse a comma-separated failure-count sweep such as ``"0,1,2,4"``."""
    try:
        counts = tuple(int(c) for c in spec.split(",") if c.strip())
    except ValueError as exc:
        raise ConfigurationError(f"invalid failure count in {spec!r}: {exc}") from exc
    if not counts:
        raise ConfigurationError(f"no failure counts in {spec!r}")
    if any(c < 0 for c in counts):
        raise ConfigurationError(f"failure counts must be >= 0, got {spec!r}")
    return counts


def _spread(values: list[int], points: int) -> list[int]:
    """First, last and evenly spaced interior elements of ``values``."""
    if points >= len(values):
        return values
    points = max(points, 2)
    idx = sorted({round(i * (len(values) - 1) / (points - 1)) for i in range(points)})
    return [values[i] for i in idx]


def _cmd_factor(args: argparse.Namespace) -> int:
    a = random_tall_skinny(args.rows, args.cols, seed=args.seed)
    result = tsqr(a, args.domains, tree=args.tree, want_q=args.want_q)
    r_ref = np.linalg.qr(a, mode="r")
    print(f"TSQR factorization of a {args.rows:,} x {args.cols} matrix "
          f"({args.domains or 'auto'} domains, {args.tree} tree)")
    print(f"  |R| agreement with LAPACK : {'yes' if r_factors_match(result.r, r_ref) else 'NO'}")
    if args.want_q and result.q is not None:
        q = result.q.explicit()
        print(f"  ||A - QR|| / ||A||        : {factorization_residual(a, q, result.r):.2e}")
        print(f"  ||I - Q^T Q||             : {orthogonality_error(q):.2e}")
    print(f"  reduction tree            : {result.tree.describe()}")
    return 0


def _point_config_from_args(args: argparse.Namespace) -> dict[str, object]:
    """Validate the point flags and build the query configuration they select.

    Shared by ``simulate`` and ``query`` so both commands fill the same
    defaults — and therefore hash to the same cache key for the same flags.
    """
    tiled = ("caqr", "cholesky", "lu")
    dag_only = ("cholesky", "lu")
    # Reject flags the requested algorithm would silently ignore.
    if args.runtime is not None and args.algorithm not in tiled:
        raise ConfigurationError(
            "--runtime only applies to the tiled algorithms (--algorithm caqr/cholesky/lu)"
        )
    if args.runtime == "spmd" and args.algorithm in dag_only:
        raise ConfigurationError(
            f"tiled {args.algorithm} only exists on the DAG runtime; drop --runtime spmd"
        )
    if args.tile_size is not None and args.algorithm not in tiled:
        raise ConfigurationError(
            "--tile-size only applies to the tiled algorithms (--algorithm caqr/cholesky/lu)"
        )
    uses_dag = args.runtime == "dag" or args.algorithm in dag_only
    if (args.placement or args.priority) and not uses_dag:
        raise ConfigurationError(
            "--placement/--priority only apply to --runtime dag (the SPMD "
            "program has a fixed schedule)"
        )
    if args.domains_per_cluster is not None and args.algorithm != "tsqr":
        raise ConfigurationError("--domains-per-cluster only applies to --algorithm tsqr")
    if args.want_q and args.algorithm == "caqr":
        raise ConfigurationError("the distributed CAQR computes R only (its Q stays implicit)")
    if args.want_q and args.algorithm in dag_only:
        raise ConfigurationError(
            f"tiled {args.algorithm} computes the factor only "
            "(its Q/L inverses stay implicit); drop --want-q"
        )
    # Cholesky is square: the order comes from --cols unless --rows agrees.
    rows = args.rows
    if rows is None:
        rows = args.cols if args.algorithm == "cholesky" else 1_048_576
    if args.algorithm == "cholesky" and rows != args.cols:
        raise ConfigurationError(
            f"tiled cholesky needs a square matrix, got {rows} x {args.cols}; "
            "pass matching --rows/--cols (or --cols alone)"
        )
    config: dict[str, object] = {
        "algorithm": args.algorithm,
        "m": rows,
        "n": args.cols,
        "n_sites": args.sites,
        "want_q": args.want_q,
    }
    if args.algorithm == "tsqr":
        config["domains_per_cluster"] = (
            args.domains_per_cluster if args.domains_per_cluster is not None else 64
        )
    if args.algorithm in tiled:
        config["tile_size"] = args.tile_size if args.tile_size is not None else 64
        config["runtime"] = "dag" if uses_dag else "spmd"
        if args.algorithm == "caqr":
            config["tree_kind"] = "binary"  # the CLI's panel-tree default
    if uses_dag:
        config["placement"] = args.placement or "block"
        config["priority"] = args.priority or "critical-path"
    # Failure injection (the simulate command only; query has no such flags).
    fail_ranks = getattr(args, "fail_rank", None)
    fail_times = getattr(args, "fail_at", None)
    if fail_ranks or fail_times:
        if not uses_dag:
            raise ConfigurationError(
                "--fail-rank/--fail-at need the task-DAG runtime: an SPMD "
                "program's communication structure is fixed in its text, so "
                "a rank death strands every survivor in a revoked collective "
                "with no way to re-place the lost work; run with --runtime "
                "dag (or --algorithm cholesky/lu) to get re-execution "
                "recovery"
            )
        if len(fail_ranks or ()) != len(fail_times or ()):
            raise ConfigurationError(
                "--fail-rank and --fail-at come in pairs: got "
                f"{len(fail_ranks or ())} rank(s) and {len(fail_times or ())} "
                "time(s)"
            )
        config["failures"] = tuple(zip(fail_ranks, fail_times))
    return config


def _print_cache_line(runner: ExperimentRunner) -> None:
    """One-line cache summary: how much work the persistent store saved."""
    store = runner.store
    if store is None:
        return
    print(f"\ncache: {runner.simulations_run} simulated, "
          f"{store.stats.hits} warm ({store.root})")


def _cmd_simulate(args: argparse.Namespace) -> int:
    spec = spec_from_config(_point_config_from_args(args))
    # A trace export needs the full streaming snapshot (histograms,
    # timelines), which is deliberately not serialised into the result
    # cache — force a live simulation instead of a warm answer.
    store = None if args.trace_out else _store_from_args(args)
    runner = ExperimentRunner(store=store)
    point = runner.run_point(spec)
    print(format_points([point.as_row()]))
    if args.trace_out:
        from repro.obs.export import write_perfetto_trace, write_timeline_csv

        if args.trace_out.endswith(".csv"):
            path = write_timeline_csv(args.trace_out, point.trace)
        else:
            path = write_perfetto_trace(
                args.trace_out, point.trace, title=f"repro-{spec.algorithm}"
            )
        print(f"\nstreaming timeline written to {path}")
    if point.critical_path_s is not None:
        print(f"\ncritical-path lower bound: {point.critical_path_s:.4f} s "
              f"({point.critical_path_s / point.time_s * 100:.1f}% of the makespan)")
    if point.recovery:
        rec = point.recovery
        dead = " ".join(str(r) for r in rec["dead_ranks"])
        print(f"\nrecovered from rank death(s) {dead}: "
              f"{rec['rounds']} round(s), {rec['tasks_reexecuted']} task(s) "
              f"re-executed ({rec['tasks_executed']} executed in recovery), "
              f"overhead {rec['makespan_overhead_s']:.4f} s "
              f"({rec['makespan_overhead_pct']:.1f}% of the failure-free run)")
    peak = runner.platform(args.sites).practical_peak_gflops()
    print(f"\npractical peak of the reservation: {peak:.0f} Gflop/s "
          f"({point.gflops / peak * 100:.1f}% achieved)")
    _print_cache_line(runner)
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    # Reject flags that the requested artefact would silently ignore.
    if args.rows is not None and args.figure_id not in (
        "table2-sweep", "caqr-sweep", "dag-caqr-sweep", "trace-hotspots"
    ):
        raise ConfigurationError(
            "--rows only applies to --id table2-sweep, caqr-sweep, "
            "dag-caqr-sweep and trace-hotspots"
            + (
                " (tiled Cholesky is square; set the order with --cols)"
                if args.figure_id in ("dag-cholesky-sweep", "dag-failures")
                else ""
            )
        )
    if args.want_q and args.figure_id not in ("fig4", "fig5", "fig6", "fig7", "fig8"):
        raise ConfigurationError(
            "--want-q only applies to fig4..fig8 (the table2 artefacts include Q by "
            "definition, and the distributed CAQR computes R only)"
        )
    if args.domains and args.figure_id not in ("fig6", "fig7", "table2-sweep"):
        raise ConfigurationError("--domains only applies to fig6, fig7 and table2-sweep")
    if args.points is not None and args.figure_id not in (
        "fig4", "fig5", "fig6", "fig7", "fig8"
    ):
        raise ConfigurationError("--points only applies to fig4..fig8")
    if args.tile_size is not None and args.figure_id not in (
        "caqr-sweep", "dag-caqr-sweep", "dag-cholesky-sweep", "dag-failures",
        "trace-hotspots",
    ):
        raise ConfigurationError(
            "--tile-size only applies to --id caqr-sweep, dag-caqr-sweep, "
            "dag-cholesky-sweep, dag-failures and trace-hotspots"
        )
    if args.panel_tree is not None and args.figure_id not in (
        "caqr-sweep", "dag-caqr-sweep", "trace-hotspots"
    ):
        raise ConfigurationError(
            "--panel-tree only applies to --id caqr-sweep, dag-caqr-sweep "
            "and trace-hotspots"
            + (
                " (tiled Cholesky eliminates single-tile panels and has "
                "nothing to reduce)"
                if args.figure_id == "dag-cholesky-sweep"
                else ""
            )
        )
    if args.placement is not None and args.figure_id not in (
        "dag-caqr-sweep", "dag-cholesky-sweep", "dag-failures", "trace-hotspots"
    ):
        raise ConfigurationError(
            "--placement only applies to --id dag-caqr-sweep, "
            "dag-cholesky-sweep, dag-failures and trace-hotspots"
        )
    if args.priority is not None and args.figure_id not in (
        "dag-caqr-sweep", "dag-cholesky-sweep", "dag-failures", "trace-hotspots"
    ):
        raise ConfigurationError(
            "--priority only applies to --id dag-caqr-sweep, "
            "dag-cholesky-sweep, dag-failures and trace-hotspots"
        )
    if args.failure_counts is not None and args.figure_id != "dag-failures":
        raise ConfigurationError("--failure-counts only applies to --id dag-failures")
    if args.jobs is not None:
        if args.figure_id in ("fig3", "table1", "table2"):
            raise ConfigurationError(
                "--jobs only applies to the multi-point sweeps "
                "(fig4..fig8, table2-sweep, caqr-sweep, dag-caqr-sweep, "
                "dag-cholesky-sweep)"
            )
        if args.jobs < 1:
            raise ConfigurationError(f"--jobs must be >= 1, got {args.jobs}")
    runner = ExperimentRunner(jobs=args.jobs or 1, store=_store_from_args(args))
    if args.cols is not None:
        n = args.cols
    else:
        # The general-matrix artefacts default to the paper's widest panel.
        n = (
            CAQR_SWEEP_N
            if args.figure_id == "caqr-sweep"
            else DAG_SWEEP_N
            if args.figure_id == "dag-caqr-sweep"
            else DAG_CHOLESKY_SWEEP_N[0]
            if args.figure_id == "dag-cholesky-sweep"
            else DAG_FAILURES_SWEEP_N[0]
            if args.figure_id == "dag-failures"
            else DAG_SWEEP_N
            if args.figure_id == "trace-hotspots"
            else 64
        )
    if args.figure_id == "fig3":
        rows = figure3_network(runner)
    elif args.figure_id == "table1":
        rows = table1(runner, n=n)
    elif args.figure_id == "table2":
        rows = table2(runner, n=n)
    elif args.figure_id == "table2-sweep":
        kwargs = {"n": n}
        if args.rows is not None:
            kwargs["m"] = args.rows  # invalid values are rejected by TSQRConfig
        if args.domains:
            kwargs["domain_counts"] = _parse_domains(args.domains)
        rows = table2_sweep(runner, **kwargs)
    elif args.figure_id == "caqr-sweep":
        kwargs = {"n": n}
        if args.rows is not None:
            kwargs["m_values"] = (args.rows,)  # rejected by CAQRConfig if invalid
        if args.tile_size is not None:
            kwargs["tile_size"] = args.tile_size
        if args.panel_tree is not None:
            kwargs["panel_trees"] = (args.panel_tree,)
        rows = caqr_sweep(runner, **kwargs)
    elif args.figure_id == "dag-caqr-sweep":
        kwargs = {"n": n}
        if args.rows is not None:
            kwargs["m_values"] = (args.rows,)  # rejected by DAGCAQRConfig if invalid
        if args.tile_size is not None:
            kwargs["tile_size"] = args.tile_size
        if args.panel_tree is not None:
            kwargs["panel_tree"] = args.panel_tree
        if args.placement is not None:
            kwargs["placement"] = args.placement
        if args.priority is not None:
            kwargs["priorities"] = (args.priority,)
        rows = dag_caqr_sweep(runner, **kwargs)
    elif args.figure_id == "dag-cholesky-sweep":
        kwargs = {"n_values": (n,)}  # rejected by DAGFactorizationConfig if invalid
        if args.tile_size is not None:
            kwargs["tile_size"] = args.tile_size
        if args.placement is not None:
            kwargs["placement"] = args.placement
        if args.priority is not None:
            kwargs["priorities"] = (args.priority,)
        rows = dag_cholesky_sweep(runner, **kwargs)
    elif args.figure_id == "dag-failures":
        kwargs = {"n": n}  # rejected by DAGFactorizationConfig if invalid
        if args.tile_size is not None:
            kwargs["tile_size"] = args.tile_size
        if args.placement is not None:
            kwargs["placement"] = args.placement
        if args.priority is not None:
            kwargs["priority"] = args.priority
        if args.failure_counts is not None:
            kwargs["failure_counts"] = _parse_failure_counts(args.failure_counts)
        rows = dag_failures_sweep(runner, **kwargs)
    elif args.figure_id == "trace-hotspots":
        kwargs = {"n": n}
        if args.rows is not None:
            kwargs["m"] = args.rows  # rejected by DAGCAQRConfig if invalid
        if args.tile_size is not None:
            kwargs["tile_size"] = args.tile_size
        if args.panel_tree is not None:
            kwargs["panel_tree"] = args.panel_tree
        if args.placement is not None:
            kwargs["placement"] = args.placement
        if args.priority is not None:
            kwargs["priority"] = args.priority
        rows = trace_hotspots_report(runner, **kwargs)
    else:
        builder = {"fig4": figure4, "fig5": figure5, "fig6": figure6, "fig7": figure7,
                   "fig8": figure8}[args.figure_id]
        kwargs = {"want_q": args.want_q}
        points = args.points if args.points is not None else 3
        if args.figure_id in ("fig4", "fig5", "fig8"):
            kwargs["m_values"] = reduced_m_values(n, points=points)
        elif args.figure_id in ("fig6", "fig7"):
            kwargs["m_values"] = _spread(
                figure67_m_values(n, single_site=args.figure_id == "fig7"), points
            )
            if args.domains:
                kwargs["domain_counts"] = _parse_domains(args.domains)
        fig = builder(runner, n, **kwargs)
        print(f"{fig.figure_id}: {fig.title}")
        rows = fig.as_rows()
    print(format_points(rows))
    _print_cache_line(runner)
    # The fault-tolerance sweep is an acceptance artefact: it always leaves
    # its CSV behind (CI uploads it), --csv only moves it elsewhere.
    csv_path = args.csv
    if csv_path is None and args.figure_id == "dag-failures":
        csv_path = "results/dag_failures.csv"
    if csv_path is None and args.figure_id == "trace-hotspots":
        csv_path = "results/trace_hotspots.csv"
    if csv_path:
        path = write_csv(csv_path, rows)
        print(f"\nseries written to {path}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.jobs < 1:
        raise ConfigurationError(f"--jobs must be >= 1, got {args.jobs}")
    runner = ExperimentRunner(jobs=args.jobs, store=_store_from_args(args))
    service = SimulationService(runner, batch_window_s=args.batch_window_ms / 1e3)
    cache = service.cache

    async def _run() -> None:
        server = await service.serve(args.host, args.port)
        host, port = server.sockets[0].getsockname()[:2]
        where = cache.root if cache is not None else "memory only"
        print(f"repro service listening on {host}:{port} (cache: {where})", flush=True)
        async with server:
            await server.serve_forever()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    return 0


def _parse_hostport(spec: str) -> tuple[str, int]:
    """Split a ``HOST:PORT`` --connect target."""
    host, sep, port = spec.rpartition(":")
    if not sep or not host:
        raise ConfigurationError(f"--connect expects HOST:PORT, got {spec!r}")
    try:
        return host, int(port)
    except ValueError as exc:
        raise ConfigurationError(f"invalid port in --connect {spec!r}: {exc}") from exc


def _parse_tiles(spec: str) -> tuple[int, ...]:
    """Parse the comma-separated tile-size candidates of --best-tile."""
    try:
        tiles = tuple(dict.fromkeys(int(t) for t in spec.split(",") if t.strip()))
    except ValueError as exc:
        raise ConfigurationError(f"invalid tile size in {spec!r}: {exc}") from exc
    if not tiles:
        raise ConfigurationError(f"no tile sizes in {spec!r}")
    return tiles


def _cmd_query_best_tile(args: argparse.Namespace, runner: ExperimentRunner) -> int:
    """Best-config query: Eq. (1) ranks the candidates, top-k escalate."""
    if args.algorithm not in ("caqr", "cholesky", "lu"):
        raise ConfigurationError(
            "--best-tile only applies to the tiled algorithms "
            "(--algorithm caqr/cholesky/lu)"
        )
    if args.tile_size is not None:
        raise ConfigurationError("--best-tile sweeps --candidates; drop --tile-size")
    base = _point_config_from_args(args)
    tiles = _parse_tiles(args.candidates or "16,32,64,128")
    policy = EscalationPolicy(top_k=args.top_k, margin=args.margin)
    candidates = [spec_from_config({**base, "tile_size": t}) for t in tiles]
    result = policy.best_config(candidates, runner)
    simulated = {p.spec.tile_size: p for p in result.simulated}
    best_tile = result.best_candidate.spec.tile_size
    print(f"best-tile query: {args.algorithm} m={base['m']} n={base['n']} "
          f"sites={base['n_sites']} over {len(tiles)} candidates")
    print(f"{'tile':>6} {'predicted_s':>12} {'simulated_s':>12}")
    for candidate in result.ranked:
        tile = candidate.spec.tile_size
        point = simulated.get(tile)
        sim_txt = f"{point.time_s:.4f}" if point is not None else "-"
        mark = "   <- best" if tile == best_tile else ""
        print(f"{tile:>6} {candidate.predicted_s:>12.4f} {sim_txt:>12}{mark}")
    print(f"escalated {result.simulations} of {len(tiles)} candidates "
          f"(top_k={policy.top_k}, margin={policy.margin})")
    if result.degraded:
        print("degraded: true (simulation tier failed for "
              f"{len(result.errors)} shortlisted candidate(s): "
              + "; ".join(result.errors) + ")")
    if result.best is not None:
        print(f"best tile size: {best_tile} ({result.best.time_s:.4f} s simulated)")
    else:
        print(f"best tile size: {best_tile} "
              f"({result.best_candidate.predicted_s:.4f} s predicted — "
              "predictor-only answer)")
    _print_cache_line(runner)
    return 0


def _format_quantiles(q: dict) -> str:
    """One-line ``n/mean/p50/p95/p99/max`` rendering of a histogram summary."""
    return (f"n={q.get('n', 0)}  mean={q.get('mean', 0.0):.6g}  "
            f"p50={q.get('p50', 0.0):.6g}  p95={q.get('p95', 0.0):.6g}  "
            f"p99={q.get('p99', 0.0):.6g}  max={q.get('max', 0.0):.6g}")


def _print_service_stats(target: str, reply: dict) -> None:
    """Human-readable report of one ``stats`` protocol reply."""
    stats = reply.get("stats", {})
    print(f"service stats ({target})")
    print(f"  queries ............... {stats.get('queries', 0)}")
    print(f"  memory hits ........... {stats.get('memory_hits', 0)}")
    print(f"  disk hits ............. {stats.get('disk_hits', 0)}")
    print(f"  single-flight joins ... {stats.get('single_flight_joins', 0)}")
    print(f"  simulations ........... {stats.get('simulations', 0)} "
          f"(runner total: {stats.get('runner_simulations', 0)})")
    print(f"  batches ............... {stats.get('batches', 0)} "
          f"(largest: {stats.get('largest_batch', 0)})")
    print(f"  failed simulations .... {stats.get('failed_simulations', 0)}")
    cache = stats.get("cache")
    if cache is not None:
        print("\ncache (memory LRU over the content-addressed disk store)")
        print(f"  memory hits {cache.get('memory_hits', 0)} | "
              f"disk hits {cache.get('disk_hits', 0)} | "
              f"misses {cache.get('misses', 0)} | "
              f"stores {cache.get('stores', 0)} | "
              f"stale {cache.get('stale_entries', 0)} | "
              f"corrupt {cache.get('corrupt_entries', 0)}")
    metrics = stats.get("metrics")
    if metrics is not None:
        latencies = metrics.get("request_latency_s", {})
        if latencies:
            print("\nrequest latency (wall seconds)")
            for op, q in latencies.items():
                print(f"  {op:<12} {_format_quantiles(q)}")
        print("\nqueue depth at enqueue")
        print(f"  {_format_quantiles(metrics.get('queue_depth', {}))}")
        print("batch size at flush")
        print(f"  {_format_quantiles(metrics.get('batch_size', {}))}")


def _cmd_query(args: argparse.Namespace) -> int:
    if args.burst is not None and args.burst < 1:
        raise ConfigurationError(f"--burst must be >= 1, got {args.burst}")
    if args.stats and (args.burst is not None or args.best_tile):
        raise ConfigurationError("--stats is a request of its own; drop --burst/--best-tile")
    if args.raw_json and not args.stats:
        raise ConfigurationError("--json only applies to --stats")
    if args.candidates is not None and not args.best_tile:
        raise ConfigurationError("--candidates only applies to --best-tile")
    if (args.retries is not None or args.timeout is not None) and args.connect is None:
        raise ConfigurationError(
            "--retries/--timeout shape the TCP client; a local query never "
            "leaves the process — drop them or add --connect"
        )
    if args.retries is not None and args.retries < 0:
        raise ConfigurationError(f"--retries must be >= 0, got {args.retries}")
    if args.timeout is not None and args.timeout <= 0:
        raise ConfigurationError(f"--timeout must be > 0 seconds, got {args.timeout}")
    if args.connect is not None:
        # Remote mode: the server owns the cache; local cache flags are noise.
        if args.no_cache or args.cache_dir is not None:
            raise ConfigurationError(
                "--no-cache/--cache-dir configure the local cache; with "
                "--connect the server owns the cache"
            )
        if args.best_tile:
            raise ConfigurationError(
                "--best-tile queries are answered locally; drop --connect"
            )
        host, port = _parse_hostport(args.connect)
        client = {}
        if args.retries is not None:
            client["retries"] = args.retries
        if args.timeout is not None:
            client["timeout_s"] = args.timeout
        if args.stats:
            reply = remote_stats(host, port, **client)
            if args.raw_json:
                print(json.dumps(reply, indent=2, sort_keys=True))
            else:
                _print_service_stats(args.connect, reply)
            return 0
        config = _point_config_from_args(args)
        if args.burst is not None:
            replies = remote_burst(host, port, config, args.burst, **client)
            counts: dict[str, int] = {}
            for reply in replies:
                source = str(reply.get("source", "error"))
                counts[source] = counts.get(source, 0) + 1
            print(json.dumps(
                {"burst": args.burst, "sources": counts, "reply": replies[0]},
                indent=2, sort_keys=True,
            ))
            return 0
        print(json.dumps(remote_query(host, port, config, **client),
                         indent=2, sort_keys=True))
        return 0
    if args.stats:
        raise ConfigurationError("--stats needs --connect (it reads a running server)")
    if args.burst is not None:
        raise ConfigurationError(
            "--burst needs --connect (the single-flight probe is a client-side test)"
        )
    runner = ExperimentRunner(store=_store_from_args(args))
    if args.best_tile:
        return _cmd_query_best_tile(args, runner)
    service = SimulationService(runner, batch_window_s=0.0)
    reply = asyncio.run(service.submit(_point_config_from_args(args)))
    print(json.dumps(reply.as_dict(), indent=2, sort_keys=True))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point of ``python -m repro`` and the ``repro-grid`` script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "factor": _cmd_factor,
        "simulate": _cmd_simulate,
        "figure": _cmd_figure,
        "serve": _cmd_serve,
        "query": _cmd_query,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
