"""Shared shape counting: stored elements of triangular and trapezoidal blocks.

The paper's ``N^2/2``-style triangular terms appear in three places — the
wire sizes of the task-DAG graph builders (:mod:`repro.dag.graph`), the
message-volume formulas of :mod:`repro.virtual.flops`, and the SPMD
programs' triangular sends (:mod:`repro.programs.spmd`).  This module is the
single home of that counting, so the three consumers cannot drift apart.

Counts are in *doubles* (stored elements); callers multiply by
:data:`repro.util.units.DOUBLE_BYTES` for wire sizes.
"""

from __future__ import annotations

__all__ = ["trapezoid_doubles", "triangle_doubles"]


def trapezoid_doubles(h: int, w: int) -> int:
    """Stored doubles of an upper-trapezoidal ``h x w`` block.

    For ``h >= w`` this is the paper's ``w (w + 1) / 2`` half triangle; short
    blocks store ``w + (w-1) + ...`` down to their last row.  This is the
    wire size of every panel-factor handle, identical on the virtual and the
    real path.
    """
    t = min(h, w)
    return t * w - t * (t - 1) // 2


def triangle_doubles(n: int) -> int:
    """Stored doubles of an ``n x n`` triangle (the paper's ``N^2/2`` term)."""
    return n * (n + 1) // 2
