"""Seeded random matrix generators used by tests, examples and benchmarks.

The paper factors dense real double-precision tall-and-skinny matrices.  The
tests additionally need matrices with a *controlled condition number* to
exercise the stability claims (TSQR is unconditionally backward stable while
Cholesky-QR and classical Gram-Schmidt lose orthogonality as ``kappa**2``).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ShapeError

__all__ = [
    "default_rng",
    "random_matrix",
    "random_tall_skinny",
    "matrix_with_condition_number",
    "graded_matrix",
]


def default_rng(seed: int | None = 0) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` seeded deterministically.

    A fixed default seed keeps tests and benchmarks reproducible run to run,
    as required for meaningful performance comparisons.
    """
    return np.random.default_rng(seed)


def random_matrix(m: int, n: int, *, seed: int | None = 0, dtype=np.float64) -> np.ndarray:
    """Return an ``m x n`` matrix with i.i.d. standard normal entries."""
    if m < 0 or n < 0:
        raise ShapeError(f"matrix dimensions must be non-negative, got {m}x{n}")
    rng = default_rng(seed)
    return rng.standard_normal((m, n)).astype(dtype, copy=False)


def random_tall_skinny(
    m: int, n: int, *, seed: int | None = 0, dtype=np.float64
) -> np.ndarray:
    """Return a random tall-and-skinny matrix, validating ``m >= n``.

    TSQR requires at least as many rows as columns in every domain once the
    recursion bottoms out; generating genuinely tall matrices in tests avoids
    accidentally exercising the degenerate wide case.
    """
    if m < n:
        raise ShapeError(f"tall-and-skinny requires m >= n, got {m} < {n}")
    return random_matrix(m, n, seed=seed, dtype=dtype)


def matrix_with_condition_number(
    m: int, n: int, cond: float, *, seed: int | None = 0, dtype=np.float64
) -> np.ndarray:
    """Return an ``m x n`` matrix whose 2-norm condition number is ``cond``.

    Built as ``U * diag(s) * V.T`` with Haar-ish orthonormal factors obtained
    from QR of Gaussian matrices and geometrically spaced singular values from
    ``1`` down to ``1/cond``.

    Parameters
    ----------
    cond:
        Target condition number, must be ``>= 1``.
    """
    if cond < 1.0:
        raise ShapeError(f"condition number must be >= 1, got {cond}")
    if m < n:
        raise ShapeError(f"requires m >= n, got {m} < {n}")
    rng = default_rng(seed)
    u, _ = np.linalg.qr(rng.standard_normal((m, n)))
    v, _ = np.linalg.qr(rng.standard_normal((n, n)))
    if n == 1:
        s = np.ones(1)
    else:
        s = np.geomspace(1.0, 1.0 / cond, n)
    a = (u * s) @ v.T
    return a.astype(dtype, copy=False)


def graded_matrix(m: int, n: int, *, ratio: float = 1e8, seed: int | None = 0) -> np.ndarray:
    """Return a matrix whose columns have widely different norms.

    Column ``j`` is scaled by ``ratio ** (-j / (n-1))`` which stresses the
    column-norm computations of Householder QR and the loss of orthogonality
    of Gram-Schmidt variants.
    """
    a = random_matrix(m, n, seed=seed)
    if n > 1:
        scales = ratio ** (-np.arange(n) / (n - 1))
        a = a * scales
    return a
