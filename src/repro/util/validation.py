"""Numerical validation helpers for QR factorizations.

The QR factorization is unique only up to the signs of the diagonal of ``R``
(for a full-column-rank matrix).  Different algorithms (LAPACK Householder,
TSQR with different trees, ScaLAPACK, Gram-Schmidt) legitimately produce R
factors differing by a diagonal ``+-1`` matrix, so comparisons must normalize
signs first.  These helpers centralise that logic plus the standard backward
error metrics:

* *factorization residual*  ``||A - Q R|| / ||A||``
* *orthogonality error*     ``||I - Q^T Q||``

both measured in the Frobenius norm scaled as is conventional in the
communication-avoiding QR literature.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ShapeError

__all__ = [
    "normalize_r_signs",
    "normalize_qr_signs",
    "r_factors_match",
    "factorization_residual",
    "orthogonality_error",
    "relative_error",
    "check_qr",
]


def normalize_r_signs(r: np.ndarray) -> np.ndarray:
    """Return a copy of ``r`` with non-negative diagonal entries.

    Rows whose diagonal entry is negative are flipped.  Zero diagonal entries
    (rank-deficient input) are left untouched.
    """
    r = np.array(r, copy=True)
    k = min(r.shape)
    signs = np.sign(np.diagonal(r)[:k])
    signs = np.where(signs == 0, 1.0, signs)
    r[:k, :] = signs[:, None] * r[:k, :]
    return r


def normalize_qr_signs(q: np.ndarray, r: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Normalize the sign ambiguity of a QR pair so that ``diag(R) >= 0``.

    Both factors are adjusted consistently, preserving ``Q @ R``.
    """
    if q.shape[1] != r.shape[0]:
        raise ShapeError(
            f"inner dimensions of Q {q.shape} and R {r.shape} do not match"
        )
    k = min(r.shape)
    signs = np.sign(np.diagonal(r)[:k])
    signs = np.where(signs == 0, 1.0, signs)
    full = np.ones(r.shape[0])
    full[:k] = signs
    r2 = full[:, None] * r
    q2 = q * full[None, :]
    return q2, r2


def r_factors_match(r1: np.ndarray, r2: np.ndarray, *, rtol: float = 1e-10) -> bool:
    """Return True when two R factors agree up to row signs.

    The comparison is relative to the magnitude of the factors, so it remains
    meaningful for badly scaled matrices.
    """
    a = normalize_r_signs(np.triu(r1))
    b = normalize_r_signs(np.triu(r2))
    if a.shape != b.shape:
        return False
    scale = max(np.linalg.norm(a), np.linalg.norm(b), 1e-300)
    return bool(np.linalg.norm(a - b) <= rtol * scale)


def factorization_residual(a: np.ndarray, q: np.ndarray, r: np.ndarray) -> float:
    """Return the scaled backward error ``||A - QR||_F / ||A||_F``."""
    norm_a = np.linalg.norm(a)
    if norm_a == 0.0:
        return float(np.linalg.norm(q @ r))
    return float(np.linalg.norm(a - q @ r) / norm_a)


def orthogonality_error(q: np.ndarray) -> float:
    """Return ``||I - Q^T Q||_F``, the loss of orthogonality of ``Q``."""
    k = q.shape[1]
    return float(np.linalg.norm(np.eye(k) - q.T @ q))


def relative_error(actual: np.ndarray, expected: np.ndarray) -> float:
    """Return ``||actual - expected||_F / ||expected||_F`` (0-safe)."""
    denom = np.linalg.norm(expected)
    if denom == 0.0:
        return float(np.linalg.norm(actual))
    return float(np.linalg.norm(np.asarray(actual) - np.asarray(expected)) / denom)


def check_qr(
    a: np.ndarray,
    q: np.ndarray,
    r: np.ndarray,
    *,
    residual_tol: float = 1e-13,
    orthogonality_tol: float = 1e-13,
) -> dict[str, float]:
    """Validate a QR factorization and return its error metrics.

    Raises :class:`AssertionError` with a descriptive message when either the
    reconstruction residual or the orthogonality error exceeds its tolerance
    scaled by the problem size.  The scaling ``sqrt(m) * n`` keeps tolerances
    meaningful from 10x4 test matrices up to the larger integration cases.
    """
    m, n = a.shape
    scale = np.sqrt(m) * max(n, 1)
    res = factorization_residual(a, q, r)
    orth = orthogonality_error(q)
    if res > residual_tol * scale:
        raise AssertionError(
            f"QR residual too large: {res:.3e} > {residual_tol * scale:.3e}"
        )
    if orth > orthogonality_tol * scale:
        raise AssertionError(
            f"Q orthogonality error too large: {orth:.3e} > {orthogonality_tol * scale:.3e}"
        )
    upper_violation = float(np.linalg.norm(np.tril(r, -1)))
    if upper_violation > 0.0:
        raise AssertionError(f"R is not upper triangular (||tril||={upper_violation:.3e})")
    return {"residual": res, "orthogonality": orth}
