"""Row/column partitioning helpers.

TSQR splits a tall matrix into ``P`` block-rows ("domains"); ScaLAPACK
distributes rows in blocks and columns block-cyclically.  These helpers
compute the index arithmetic once, with explicit invariants, so the kernels
and the distributed drivers never re-derive it ad hoc.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.exceptions import ShapeError

__all__ = [
    "split_counts",
    "block_ranges",
    "block_partition",
    "cyclic_indices",
    "partition_rows_weighted",
    "tile_ranges",
    "TileGrid",
]


def split_counts(n: int, parts: int) -> list[int]:
    """Split ``n`` items into ``parts`` contiguous groups as evenly as possible.

    The first ``n % parts`` groups receive one extra item, mirroring the
    convention of ``numpy.array_split``.  Every group is allowed to be empty
    when ``parts > n``.  Note that the *partition helpers* tolerate empty
    groups but the distributed drivers do not: ``qcg_tsqr_program`` raises
    :class:`~repro.exceptions.ConfigurationError` for any domain holding
    fewer rows than the matrix has columns (each domain must produce a full
    ``n x n`` R factor), so TSQR runs need ``min(counts) >= n``.

    >>> split_counts(10, 4)
    [3, 3, 2, 2]
    """
    if parts <= 0:
        raise ShapeError(f"cannot split into {parts} parts")
    if n < 0:
        raise ShapeError(f"cannot split a negative count: {n}")
    base, extra = divmod(n, parts)
    return [base + 1 if i < extra else base for i in range(parts)]


def block_ranges(n: int, parts: int) -> list[tuple[int, int]]:
    """Return ``(start, stop)`` half-open ranges for :func:`split_counts`.

    >>> block_ranges(10, 4)
    [(0, 3), (3, 6), (6, 8), (8, 10)]
    """
    counts = split_counts(n, parts)
    ranges: list[tuple[int, int]] = []
    start = 0
    for c in counts:
        ranges.append((start, start + c))
        start += c
    return ranges


def tile_ranges(extent: int, tile_size: int) -> list[tuple[int, int]]:
    """Half-open fixed-size tile boundaries of one matrix dimension.

    The last tile may be shorter; a non-positive ``extent`` yields the single
    empty range (tiled algorithms treat an empty dimension as one empty
    tile).  Used by the tiled CAQR implementations (sequential and
    distributed) and by the CAQR cost model, which must agree on the
    boundaries exactly.

    >>> tile_ranges(10, 4)
    [(0, 4), (4, 8), (8, 10)]
    """
    if tile_size <= 0:
        raise ShapeError(f"tile size must be positive, got {tile_size}")
    if extent <= 0:
        return [(0, 0)]
    return [(s, min(s + tile_size, extent)) for s in range(0, extent, tile_size)]


@dataclass(frozen=True)
class TileGrid:
    """The tiling of an ``m x n`` matrix into fixed-size square-ish tiles.

    Row and column tile boundaries coincide (both are cut every
    ``tile_size``), so the ``k``-th diagonal tile really sits on the global
    diagonal — the invariant every tiled QR formulation relies on.  The last
    tile in each direction may be smaller.

    This is the *single* home of tile index arithmetic: the sequential tiled
    CAQR (:mod:`repro.tsqr.caqr`), the distributed CAQR program
    (:mod:`repro.programs.caqr`), the task-graph builders
    (:mod:`repro.dag.graph`) and the CAQR cost model all index through one
    :class:`TileGrid`, so their tile boundaries cannot drift apart.
    """

    m: int
    n: int
    tile_size: int
    row_ranges: tuple[tuple[int, int], ...] = field(init=False)
    col_ranges: tuple[tuple[int, int], ...] = field(init=False)

    def __post_init__(self) -> None:
        if self.tile_size <= 0:
            raise ShapeError(f"tile size must be positive, got {self.tile_size}")
        object.__setattr__(self, "row_ranges", tuple(tile_ranges(self.m, self.tile_size)))
        object.__setattr__(self, "col_ranges", tuple(tile_ranges(self.n, self.tile_size)))

    # --------------------------------------------------------------- extents
    @property
    def mt(self) -> int:
        """Number of tile rows."""
        return len(self.row_ranges)

    @property
    def nt(self) -> int:
        """Number of tile columns."""
        return len(self.col_ranges)

    @property
    def n_panels(self) -> int:
        """Number of panels of a tiled QR over this grid: ``min(mt, nt)``."""
        return min(self.mt, self.nt)

    def row_height(self, i: int) -> int:
        """Number of matrix rows of tile row ``i``."""
        r0, r1 = self.row_ranges[i]
        return r1 - r0

    def col_width(self, j: int) -> int:
        """Number of matrix columns of tile column ``j``."""
        c0, c1 = self.col_ranges[j]
        return c1 - c0

    def tile_shape(self, i: int, j: int) -> tuple[int, int]:
        """Shape of tile ``(i, j)``."""
        return self.row_height(i), self.col_width(j)

    # ------------------------------------------------------------- accessors
    def tile(self, a: np.ndarray, i: int, j: int) -> np.ndarray:
        """Return (a view of) tile ``(i, j)`` of matrix ``a``."""
        r0, r1 = self.row_ranges[i]
        c0, c1 = self.col_ranges[j]
        return a[r0:r1, c0:c1]

    def set_tile(self, a: np.ndarray, i: int, j: int, value: np.ndarray) -> None:
        """Store ``value`` into tile ``(i, j)`` of matrix ``a``."""
        r0, r1 = self.row_ranges[i]
        c0, c1 = self.col_ranges[j]
        a[r0:r1, c0:c1] = value

    def split_rows(self, c: np.ndarray, *, copy: bool = True) -> list[np.ndarray]:
        """Cut ``c`` into per-tile-row blocks (used by the Q replay helpers)."""
        if c.shape[0] != self.m:
            raise ShapeError(f"expected {self.m} rows, got {c.shape[0]}")
        if copy:
            return [
                np.array(c[start:stop, :], dtype=np.float64)
                for start, stop in self.row_ranges
            ]
        return [c[start:stop, :] for start, stop in self.row_ranges]


def block_partition(a: np.ndarray, parts: int, axis: int = 0) -> list[np.ndarray]:
    """Partition array ``a`` into ``parts`` contiguous blocks along ``axis``.

    Views (not copies) are returned whenever numpy allows it, following the
    HPC guidance of avoiding needless copies of large arrays.
    """
    if axis not in (0, 1):
        raise ShapeError(f"axis must be 0 or 1, got {axis}")
    n = a.shape[axis]
    blocks = []
    for start, stop in block_ranges(n, parts):
        if axis == 0:
            blocks.append(a[start:stop, ...])
        else:
            blocks.append(a[:, start:stop])
    return blocks


def cyclic_indices(n: int, parts: int, which: int, block: int = 1) -> np.ndarray:
    """Return the global indices owned by ``which`` under block-cyclic layout.

    This is the 1D block-cyclic distribution used by ScaLAPACK: items are
    dealt out in rounds of ``block`` consecutive indices per owner.

    Parameters
    ----------
    n:
        Total number of items.
    parts:
        Number of owners (process row/column count).
    which:
        Owner index in ``[0, parts)``.
    block:
        Block size ``NB`` of the cyclic distribution.
    """
    if not 0 <= which < parts:
        raise ShapeError(f"owner {which} out of range [0, {parts})")
    if block <= 0:
        raise ShapeError(f"block size must be positive, got {block}")
    idx = np.arange(n)
    owner = (idx // block) % parts
    return idx[owner == which]


def partition_rows_weighted(m: int, weights: Sequence[float]) -> list[tuple[int, int]]:
    """Partition ``m`` rows proportionally to ``weights``.

    This implements the load-balancing extension discussed at the end of
    paper §III: when domains have heterogeneous processing power, the number
    of rows attributed to each domain should be proportional to its rate.
    The returned ranges are contiguous, cover ``[0, m)`` exactly, and each
    weight-positive domain with ``m >= len(weights)`` receives at least one
    row.

    >>> partition_rows_weighted(100, [1.0, 1.0, 2.0])
    [(0, 25), (25, 50), (50, 100)]
    """
    weights = [float(w) for w in weights]
    if not weights:
        raise ShapeError("weights must be non-empty")
    if any(w < 0 for w in weights):
        raise ShapeError("weights must be non-negative")
    total = sum(weights)
    if total <= 0.0:
        raise ShapeError("at least one weight must be positive")
    parts = len(weights)
    # Largest-remainder apportionment of m rows to the weights.
    quotas = [m * w / total for w in weights]
    counts = [int(np.floor(q)) for q in quotas]
    remainders = [q - c for q, c in zip(quotas, counts)]
    missing = m - sum(counts)
    for i in sorted(range(parts), key=lambda i: remainders[i], reverse=True)[:missing]:
        counts[i] += 1
    # Guarantee a minimum of one row per positively-weighted domain when
    # possible, stealing from the largest shares.
    if m >= sum(1 for w in weights if w > 0):
        for i in range(parts):
            if weights[i] > 0 and counts[i] == 0:
                donor = int(np.argmax(counts))
                if counts[donor] > 1:
                    counts[donor] -= 1
                    counts[i] += 1
    ranges: list[tuple[int, int]] = []
    start = 0
    for c in counts:
        ranges.append((start, start + c))
        start += c
    assert start == m, "weighted partition must cover all rows"
    return ranges
