"""Shared utilities: QR validation, matrix generators, partitioning, units.

These helpers are deliberately dependency-light (numpy only) so every other
subpackage — kernels, simulator, experiment harness, tests — can use them
without import cycles.
"""

from repro.util.partition import (
    block_partition,
    block_ranges,
    cyclic_indices,
    partition_rows_weighted,
    split_counts,
)
from repro.util.random_matrices import (
    random_matrix,
    random_tall_skinny,
    matrix_with_condition_number,
    graded_matrix,
)
from repro.util.units import (
    GIGA,
    MEGA,
    bytes_of,
    flops_to_gflops,
    gflops_rate,
    mbits_per_s_to_bytes_per_s,
    seconds_to_us,
)
from repro.util.validation import (
    factorization_residual,
    normalize_qr_signs,
    normalize_r_signs,
    orthogonality_error,
    relative_error,
    check_qr,
    r_factors_match,
)

__all__ = [
    "block_partition",
    "block_ranges",
    "cyclic_indices",
    "partition_rows_weighted",
    "split_counts",
    "random_matrix",
    "random_tall_skinny",
    "matrix_with_condition_number",
    "graded_matrix",
    "GIGA",
    "MEGA",
    "bytes_of",
    "flops_to_gflops",
    "gflops_rate",
    "mbits_per_s_to_bytes_per_s",
    "seconds_to_us",
    "factorization_residual",
    "normalize_qr_signs",
    "normalize_r_signs",
    "orthogonality_error",
    "relative_error",
    "check_qr",
    "r_factors_match",
]
