"""Unit conversions used throughout the performance model and simulator.

The paper mixes units freely (Mb/s link throughput, Gflop/s processor rates,
microsecond latencies, matrices whose footprint is quoted in GB).  Keeping the
conversions in one place avoids the classic factor-of-8 and factor-of-1000
mistakes when calibrating the simulator against Table 3(a).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "KILO",
    "MEGA",
    "GIGA",
    "DOUBLE_BYTES",
    "bytes_of",
    "flops_to_gflops",
    "gflops_rate",
    "mbits_per_s_to_bytes_per_s",
    "gbits_per_s_to_bytes_per_s",
    "ms_to_seconds",
    "us_to_seconds",
    "seconds_to_us",
    "seconds_to_ms",
]

#: Decimal kilo/mega/giga (the paper reports link rates in decimal Mb/s).
KILO = 1.0e3
MEGA = 1.0e6
GIGA = 1.0e9

#: Size of a double-precision real, in bytes (the paper works in real double).
DOUBLE_BYTES = 8


def bytes_of(n_elements: int | float, dtype=np.float64) -> int:
    """Return the size in bytes of ``n_elements`` items of ``dtype``.

    Parameters
    ----------
    n_elements:
        Number of scalar elements (may be a float produced by a formula; it is
        rounded to the nearest integer).
    dtype:
        NumPy dtype of the elements; defaults to double precision as used in
        the paper's experiments.
    """
    itemsize = np.dtype(dtype).itemsize
    return int(round(float(n_elements))) * itemsize


def flops_to_gflops(flops: float) -> float:
    """Convert a flop count into Gflop (decimal giga)."""
    return float(flops) / GIGA


def gflops_rate(flops: float, seconds: float) -> float:
    """Return the achieved rate in Gflop/s for ``flops`` done in ``seconds``.

    Returns ``0.0`` for non-positive durations (e.g. an empty simulation) so
    reporting code never divides by zero.
    """
    if seconds <= 0.0:
        return 0.0
    return float(flops) / float(seconds) / GIGA


def mbits_per_s_to_bytes_per_s(mbits: float) -> float:
    """Convert a throughput in Mb/s (as in Table 3(a)) to bytes/s."""
    return float(mbits) * MEGA / 8.0


def gbits_per_s_to_bytes_per_s(gbits: float) -> float:
    """Convert a throughput in Gb/s to bytes/s."""
    return float(gbits) * GIGA / 8.0


def ms_to_seconds(ms: float) -> float:
    """Convert milliseconds to seconds."""
    return float(ms) * 1.0e-3


def us_to_seconds(us: float) -> float:
    """Convert microseconds to seconds."""
    return float(us) * 1.0e-6


def seconds_to_us(seconds: float) -> float:
    """Convert seconds to microseconds."""
    return float(seconds) * 1.0e6


def seconds_to_ms(seconds: float) -> float:
    """Convert seconds to milliseconds."""
    return float(seconds) * 1.0e3
