"""Virtual (shape-only) matrix payloads and analytic flop counts.

See :mod:`repro.virtual.matrix` for the rationale: paper-scale benchmarks run
the very same algorithms as the numerical tests, but on payloads that carry
only shapes, so the simulator can sweep 33-million-row matrices in
milliseconds while charging the correct flop and byte counts.
"""

from repro.virtual.flops import (
    apply_q_flops,
    form_q_flops,
    gemm_flops,
    larfb_flops,
    larft_flops,
    qr_flops,
    scalapack_qr_flops_per_process,
    stacked_triangle_qr_flops,
    tsqr_critical_path_flops,
    tsqr_flops_per_domain,
)
from repro.virtual.matrix import (
    MatrixLike,
    VirtualMatrix,
    is_virtual,
    nbytes_of,
    shape_of,
    vstack_shapes,
)

__all__ = [
    "apply_q_flops",
    "form_q_flops",
    "gemm_flops",
    "larfb_flops",
    "larft_flops",
    "qr_flops",
    "scalapack_qr_flops_per_process",
    "stacked_triangle_qr_flops",
    "tsqr_critical_path_flops",
    "tsqr_flops_per_domain",
    "MatrixLike",
    "VirtualMatrix",
    "is_virtual",
    "nbytes_of",
    "shape_of",
    "vstack_shapes",
]
