"""Analytic floating-point operation counts for the dense kernels.

Each function returns the classical flop count (multiplications + additions)
of the corresponding LAPACK-style kernel.  The counts follow Golub & Van Loan
and the CAQR paper (Demmel, Grigori, Hoemmen, Langou, 2008), i.e. the same
accounting the reproduced paper uses in its Tables I and II:

* Householder QR of an ``m x n`` (``m >= n``) matrix: ``2 m n^2 - 2/3 n^3``.
* QR of two stacked ``n x n`` triangles (the TSQR combine): ``2/3 n^3``
  when the structure is exploited, as assumed by the paper's model.
* Forming/applying Q doubles the corresponding counts (paper Property 1).

These formulas feed three consumers: the virtual-payload kernels (which charge
time without doing arithmetic), the performance model of paper §IV, and the
trace validation benchmarks for Tables I and II.
"""

from __future__ import annotations

from repro.exceptions import ShapeError

__all__ = [
    "qr_flops",
    "stacked_triangle_qr_flops",
    "form_q_flops",
    "apply_q_flops",
    "gemm_flops",
    "larft_flops",
    "larfb_flops",
    "tsqr_critical_path_flops",
    "scalapack_qr_flops_per_process",
    "tsqr_flops_per_domain",
]


def _require_nonnegative(**kwargs: float) -> None:
    for name, value in kwargs.items():
        if value < 0:
            raise ShapeError(f"{name} must be non-negative, got {value}")


def qr_flops(m: int, n: int) -> float:
    """Flops of a Householder QR of an ``m x n`` matrix (R factor only).

    For ``m >= n`` this is the textbook ``2 m n^2 - 2/3 n^3``; for wide
    matrices (``m < n``) the count of factoring the leading ``m`` columns and
    updating the rest is ``2 n m^2 - 2/3 m^3 + ...``; we only need the tall
    case in this project but keep the general formula for completeness.
    """
    _require_nonnegative(m=m, n=n)
    k = min(m, n)
    # Sum over the k reflectors of the cost of building and applying each:
    # sum_j 4 (m - j)(n - j)  ~=  4 m n k - 2 (m + n) k^2 + 4/3 k^3,
    # which reduces to the textbook 2 m n^2 - 2/3 n^3 for tall matrices.
    return 4.0 * m * n * k - 2.0 * (m + n) * k * k + (4.0 / 3.0) * k**3


def stacked_triangle_qr_flops(n: int) -> float:
    """Flops of the TSQR combine: QR of ``[R1; R2]`` with both upper triangular.

    Exploiting the triangular structure, the cost is ``2/3 n^3 + O(n^2)``;
    the paper's model (Table I) charges exactly ``2/3 n^3`` per tree level,
    which is what we return.
    """
    _require_nonnegative(n=n)
    return (2.0 / 3.0) * n**3


def form_q_flops(m: int, n: int, k: int | None = None) -> float:
    """Flops of forming the explicit ``m x n`` Q from ``k`` reflectors.

    LAPACK ``ORGQR`` with ``k = n`` costs ``2 m n^2 - 2/3 n^3`` additional
    flops (the same as the factorization itself), which is the origin of the
    paper's Property 1 (computing Q and R costs twice computing R alone).
    """
    if k is None:
        k = n
    _require_nonnegative(m=m, n=n, k=k)
    return 4.0 * m * n * k - 2.0 * (m + n) * k * k + (4.0 / 3.0) * k**3


def apply_q_flops(m: int, n: int, k: int) -> float:
    """Flops of applying ``k`` reflectors of length ``m`` to an ``m x n`` matrix.

    This is the LAPACK ``ORMQR``/``LARFB`` count: ``4 m n k - 2 n k^2``
    (two GEMM-like sweeps over the reflector block).
    """
    _require_nonnegative(m=m, n=n, k=k)
    return 4.0 * m * n * k - 2.0 * n * k * k


def gemm_flops(m: int, n: int, k: int) -> float:
    """Flops of a dense ``(m x k) @ (k x n)`` matrix multiplication."""
    _require_nonnegative(m=m, n=n, k=k)
    return 2.0 * m * n * k


def larft_flops(m: int, k: int) -> float:
    """Flops of forming the ``k x k`` triangular T factor of a reflector block."""
    _require_nonnegative(m=m, k=k)
    return float(m) * k * k


def larfb_flops(m: int, n: int, k: int) -> float:
    """Flops of the blocked application ``C <- (I - V T V^T) C``.

    ``V`` is ``m x k``, ``C`` is ``m x n``.  The three GEMMs cost
    ``2 m n k + 2 n k^2 + 2 m n k`` which we simplify to ``4 m n k + 2 n k^2``.
    """
    _require_nonnegative(m=m, n=n, k=k)
    return 4.0 * m * n * k + 2.0 * n * k * k


def tsqr_critical_path_flops(m: int, n: int, p: int, *, want_q: bool = False) -> float:
    """Critical-path flops per domain of TSQR on ``p`` domains (paper Table I/II).

    ``(2 m n^2 - 2/3 n^3) / p + 2/3 log2(p) n^3`` for the R factor only, and
    exactly twice that when the Q factor is also requested.
    """
    import math

    _require_nonnegative(m=m, n=n, p=p)
    if p <= 0:
        raise ShapeError("p must be positive")
    levels = math.log2(p) if p > 1 else 0.0
    base = (2.0 * m * n * n - (2.0 / 3.0) * n**3) / p + (2.0 / 3.0) * levels * n**3
    return 2.0 * base if want_q else base


def scalapack_qr_flops_per_process(m: int, n: int, p: int, *, want_q: bool = False) -> float:
    """Per-process flops of ScaLAPACK QR2 on ``p`` processes (paper Table I/II)."""
    _require_nonnegative(m=m, n=n, p=p)
    if p <= 0:
        raise ShapeError("p must be positive")
    base = (2.0 * m * n * n - (2.0 / 3.0) * n**3) / p
    return 2.0 * base if want_q else base


def tsqr_flops_per_domain(m: int, n: int, p: int) -> float:
    """Flops of the leaf factorization of one domain holding ``m/p`` rows."""
    _require_nonnegative(m=m, n=n, p=p)
    if p <= 0:
        raise ShapeError("p must be positive")
    rows = m / p
    return 2.0 * rows * n * n - (2.0 / 3.0) * n**3
