"""Analytic floating-point operation counts for the dense kernels.

Each function returns the classical flop count (multiplications + additions)
of the corresponding LAPACK-style kernel.  The scalar-argument counts are
pure and called once per simulated event, so the hottest ones are memoised
with ``lru_cache`` (bounded; a sweep reuses a handful of shapes).  The counts follow Golub & Van Loan
and the CAQR paper (Demmel, Grigori, Hoemmen, Langou, 2008), i.e. the same
accounting the reproduced paper uses in its Tables I and II:

* Householder QR of an ``m x n`` (``m >= n``) matrix: ``2 m n^2 - 2/3 n^3``.
* QR of two stacked ``n x n`` triangles (the TSQR combine): ``2/3 n^3``
  when the structure is exploited, as assumed by the paper's model.
* Forming/applying Q doubles the corresponding counts (paper Property 1).

These formulas feed three consumers: the virtual-payload kernels (which charge
time without doing arithmetic), the performance model of paper §IV, and the
trace validation benchmarks for Tables I and II.
"""

from __future__ import annotations

from functools import lru_cache

from repro.exceptions import ShapeError
from repro.util.shapes import triangle_doubles

__all__ = [
    "qr_flops",
    "stacked_triangle_qr_flops",
    "form_q_flops",
    "apply_q_flops",
    "gemm_flops",
    "larft_flops",
    "larfb_flops",
    "geqrt_flops",
    "unmqr_flops",
    "tsqrt_flops",
    "tsmqr_flops",
    "potrf_flops",
    "trsm_flops",
    "syrk_flops",
    "getrf_flops",
    "cholesky_flops",
    "lu_flops",
    "caqr_panel_leaf_flops",
    "caqr_combine_flops",
    "caqr_up_message_doubles",
    "caqr_down_message_doubles",
    "tsqr_critical_path_flops",
    "scalapack_qr_flops_per_process",
    "tsqr_flops_per_domain",
]


def _require_nonnegative(**kwargs: float) -> None:
    for name, value in kwargs.items():
        if value < 0:
            raise ShapeError(f"{name} must be non-negative, got {value}")


@lru_cache(maxsize=4096)
def qr_flops(m: int, n: int) -> float:
    """Flops of a Householder QR of an ``m x n`` matrix (R factor only).

    For ``m >= n`` this is the textbook ``2 m n^2 - 2/3 n^3``; for wide
    matrices (``m < n``) the count of factoring the leading ``m`` columns and
    updating the rest is ``2 n m^2 - 2/3 m^3 + ...``; we only need the tall
    case in this project but keep the general formula for completeness.
    """
    _require_nonnegative(m=m, n=n)
    k = min(m, n)
    # Sum over the k reflectors of the cost of building and applying each:
    # sum_j 4 (m - j)(n - j)  ~=  4 m n k - 2 (m + n) k^2 + 4/3 k^3,
    # which reduces to the textbook 2 m n^2 - 2/3 n^3 for tall matrices.
    return 4.0 * m * n * k - 2.0 * (m + n) * k * k + (4.0 / 3.0) * k**3


@lru_cache(maxsize=4096)
def stacked_triangle_qr_flops(n: int) -> float:
    """Flops of the TSQR combine: QR of ``[R1; R2]`` with both upper triangular.

    Exploiting the triangular structure, the cost is ``2/3 n^3 + O(n^2)``;
    the paper's model (Table I) charges exactly ``2/3 n^3`` per tree level,
    which is what we return.
    """
    _require_nonnegative(n=n)
    return (2.0 / 3.0) * n**3


def form_q_flops(m: int, n: int, k: int | None = None) -> float:
    """Flops of forming the explicit ``m x n`` Q from ``k`` reflectors.

    LAPACK ``ORGQR`` with ``k = n`` costs ``2 m n^2 - 2/3 n^3`` additional
    flops (the same as the factorization itself), which is the origin of the
    paper's Property 1 (computing Q and R costs twice computing R alone).
    """
    if k is None:
        k = n
    _require_nonnegative(m=m, n=n, k=k)
    return 4.0 * m * n * k - 2.0 * (m + n) * k * k + (4.0 / 3.0) * k**3


def apply_q_flops(m: int, n: int, k: int) -> float:
    """Flops of applying ``k`` reflectors of length ``m`` to an ``m x n`` matrix.

    This is the LAPACK ``ORMQR``/``LARFB`` count: ``4 m n k - 2 n k^2``
    (two GEMM-like sweeps over the reflector block).
    """
    _require_nonnegative(m=m, n=n, k=k)
    return 4.0 * m * n * k - 2.0 * n * k * k


def gemm_flops(m: int, n: int, k: int) -> float:
    """Flops of a dense ``(m x k) @ (k x n)`` matrix multiplication."""
    _require_nonnegative(m=m, n=n, k=k)
    return 2.0 * m * n * k


def larft_flops(m: int, k: int) -> float:
    """Flops of forming the ``k x k`` triangular T factor of a reflector block."""
    _require_nonnegative(m=m, k=k)
    return float(m) * k * k


@lru_cache(maxsize=4096)
def larfb_flops(m: int, n: int, k: int) -> float:
    """Flops of the blocked application ``C <- (I - V T V^T) C``.

    ``V`` is ``m x k``, ``C`` is ``m x n``.  The three GEMMs cost
    ``2 m n k + 2 n k^2 + 2 m n k`` which we simplify to ``4 m n k + 2 n k^2``.
    """
    _require_nonnegative(m=m, n=n, k=k)
    return 4.0 * m * n * k + 2.0 * n * k * k


@lru_cache(maxsize=4096)
def geqrt_flops(m: int, n: int) -> float:
    """Flops of the tiled-QR ``GEQRT`` kernel on an ``m x n`` tile.

    Householder QR of the tile plus the formation of the ``k x k`` triangular
    ``T`` factor of its compact-WY representation (the tiled kernels always
    build ``T`` so the transformation can be applied as three GEMMs).
    """
    _require_nonnegative(m=m, n=n)
    k = min(m, n)
    return qr_flops(m, n) + larft_flops(m, k)


def unmqr_flops(m: int, n_cols: int, k: int) -> float:
    """Flops of ``UNMQR``: apply a ``GEQRT`` reflector block to an ``m x n_cols`` tile.

    This is the blocked ``LARFB`` count for ``k`` reflectors of length ``m``;
    linear in ``n_cols``, so the cost of updating a whole trailing tile row
    is ``unmqr_flops(m, total_trailing_cols, k)``.
    """
    return larfb_flops(m, n_cols, k)


@lru_cache(maxsize=4096)
def tsqrt_flops(m_bottom: int, n: int) -> float:
    """Flops of ``TSQRT``: QR of an ``n x n`` triangle stacked on an ``m_bottom x n`` tile.

    Exploiting the top triangle, reflector ``j`` touches one top row plus the
    ``m_bottom`` tile rows; building and applying the ``n`` reflectors to the
    panel costs ``~2 (m_bottom + 1) n^2``, plus the ``T``-factor formation
    ``(m_bottom + 1) n^2``.  For ``m_bottom = n`` (square tiles) this is the
    ``O(n^3)`` "triangle on top of square" count of the tiled-QR literature;
    it does *not* reduce to the ``2/3 n^3`` of two stacked triangles because
    the bottom operand is a full tile.
    """
    _require_nonnegative(m_bottom=m_bottom, n=n)
    return 2.0 * (m_bottom + 1.0) * n * n + (m_bottom + 1.0) * n * n


@lru_cache(maxsize=4096)
def tsmqr_flops(m_bottom: int, n_cols: int, k: int) -> float:
    """Flops of ``TSMQR``: apply a ``TSQRT`` block to a trailing tile pair.

    ``k`` reflectors of effective length ``m_bottom + 1`` (one top row plus
    the bottom tile) are applied to ``n_cols`` trailing columns of the
    stacked pair: ``4 (m_bottom + 1) k n_cols``.  Linear in ``n_cols``, so a
    whole trailing tile row costs ``tsmqr_flops(m_bottom, total_cols, k)``.
    """
    _require_nonnegative(m_bottom=m_bottom, n_cols=n_cols, k=k)
    return 4.0 * (m_bottom + 1.0) * k * n_cols


@lru_cache(maxsize=4096)
def potrf_flops(n: int) -> float:
    """Flops of ``POTRF``: Cholesky factorization of an ``n x n`` SPD tile.

    The textbook count ``n^3/3 + n^2/2 + n/6`` (one symmetric rank-1 sweep
    per column), i.e. one sixth of the GEMM cube — the classical Cholesky
    third of LU's ``2/3 n^3``.
    """
    _require_nonnegative(n=n)
    return n**3 / 3.0 + n * n / 2.0 + n / 6.0


@lru_cache(maxsize=4096)
def trsm_flops(n_triangle, n_rhs) -> float:
    """Flops of ``TRSM``: an ``n_triangle``-sized triangular solve against
    ``n_rhs`` right-hand sides (``n_triangle^2`` per vector, multiplications
    plus additions).

    Side-agnostic: the Cholesky panel update ``A_ik L_kk^{-T}`` charges
    ``trsm_flops(w_k, h_i)``, the LU row update ``L_kk^{-1} A_kj`` charges
    ``trsm_flops(h_k, w_j)``.
    """
    _require_nonnegative(n_triangle=n_triangle, n_rhs=n_rhs)
    return float(n_triangle) * n_triangle * n_rhs


@lru_cache(maxsize=4096)
def syrk_flops(n: int, k: int) -> float:
    """Flops of ``SYRK``: the symmetric update ``C - A A^T`` of an ``n x n``
    tile from an ``n x k`` panel column, exploiting symmetry: ``n (n+1) k``.
    """
    _require_nonnegative(n=n, k=k)
    return float(n) * (n + 1.0) * k


@lru_cache(maxsize=4096)
def getrf_flops(m: int, n: int) -> float:
    """Flops of ``GETRF``: right-looking LU of an ``m x n`` tile (no pivot search).

    Summing the rank-1 trailing updates over the ``k = min(m, n)`` steps
    gives ``2 m n k - (m + n) k^2 + 2/3 k^3`` — the classical ``2/3 n^3``
    for square tiles, and exactly half the Householder QR count of
    :func:`qr_flops` term for term.
    """
    _require_nonnegative(m=m, n=n)
    k = min(m, n)
    return 2.0 * m * n * k - (m + n) * float(k) * k + (2.0 / 3.0) * k**3


def cholesky_flops(n: int) -> float:
    """Useful flops of a full ``n x n`` Cholesky factorization (paper-style
    leading term ``n^3/3``) — the Gflop/s denominator of a Cholesky run."""
    _require_nonnegative(n=n)
    return n**3 / 3.0


def lu_flops(m: int, n: int) -> float:
    """Useful flops of a full ``m x n`` LU factorization without pivoting
    (``mn^2 - n^3/3``-style count; the same closed form as one tile)."""
    return getrf_flops(m, n)


def caqr_panel_leaf_flops(heights, panel_width: int, trail_cols: int) -> float:
    """Leaf-stage flops of one rank in one CAQR panel.

    One ``geqrt`` per local tile row (``heights`` lists the row heights) plus
    the ``unmqr`` update of that row's ``trail_cols`` trailing columns.  This
    is the *single source* of the CAQR leaf accounting: the distributed
    program charges it to the simulated clock and the §IV cost model sums the
    identical quantity, so measured-vs-model comparisons cannot drift apart.
    """
    total = 0.0
    for h in heights:
        total += geqrt_flops(h, panel_width)
        if trail_cols:
            total += unmqr_flops(h, trail_cols, min(h, panel_width))
    return total


def caqr_combine_flops(h_bottom, panel_width: int, trail_cols: int) -> float:
    """One CAQR panel combine: ``tsqrt`` elimination plus the trailing ``tsmqr``.

    Used for both the local flat reduction (eliminating a rank's own tile
    rows) and the cross-rank tree combines (``h_bottom`` is then the child's
    top tile-row height); shared by the program and the cost model.
    """
    total = tsqrt_flops(h_bottom, panel_width)
    if trail_cols:
        total += tsmqr_flops(h_bottom, trail_cols, panel_width)
    return total


def caqr_up_message_doubles(panel_width: int, height: int, trail_cols: int) -> int:
    """Doubles of a CAQR up message: half triangle plus the trailing tile row.

    ``panel_width (panel_width + 1) / 2`` is the paper's ``N^2/2``-style
    triangular term for the panel factor (counted once, in
    :mod:`repro.util.shapes`); the trailing row travels dense.
    """
    _require_nonnegative(panel_width=panel_width, height=height, trail_cols=trail_cols)
    return triangle_doubles(panel_width) + height * trail_cols


def caqr_down_message_doubles(height: int, trail_cols: int) -> int:
    """Doubles of a CAQR down message: the child's updated trailing tile row."""
    _require_nonnegative(height=height, trail_cols=trail_cols)
    return height * trail_cols


def tsqr_critical_path_flops(m: int, n: int, p: int, *, want_q: bool = False) -> float:
    """Critical-path flops per domain of TSQR on ``p`` domains (paper Table I/II).

    ``(2 m n^2 - 2/3 n^3) / p + 2/3 log2(p) n^3`` for the R factor only, and
    exactly twice that when the Q factor is also requested.
    """
    import math

    _require_nonnegative(m=m, n=n, p=p)
    if p <= 0:
        raise ShapeError("p must be positive")
    levels = math.log2(p) if p > 1 else 0.0
    base = (2.0 * m * n * n - (2.0 / 3.0) * n**3) / p + (2.0 / 3.0) * levels * n**3
    return 2.0 * base if want_q else base


def scalapack_qr_flops_per_process(m: int, n: int, p: int, *, want_q: bool = False) -> float:
    """Per-process flops of ScaLAPACK QR2 on ``p`` processes (paper Table I/II)."""
    _require_nonnegative(m=m, n=n, p=p)
    if p <= 0:
        raise ShapeError("p must be positive")
    base = (2.0 * m * n * n - (2.0 / 3.0) * n**3) / p
    return 2.0 * base if want_q else base


def tsqr_flops_per_domain(m: int, n: int, p: int) -> float:
    """Flops of the leaf factorization of one domain holding ``m/p`` rows."""
    _require_nonnegative(m=m, n=n, p=p)
    if p <= 0:
        raise ShapeError("p must be positive")
    rows = m / p
    return 2.0 * rows * n * n - (2.0 / 3.0) * n**3
