"""Virtual (shape-only) matrix payloads.

The paper's experiments factor matrices of up to 33.5 million rows (16 GB).
Re-running those sweeps with real arrays would be pointless on a laptop and
impossible in memory, yet the *communication structure* of the algorithms does
not depend on matrix values at all — only on shapes.  A
:class:`VirtualMatrix` therefore carries shape, dtype and structural metadata
(general / upper-triangular) and is accepted by every kernel and distributed
driver in place of a :class:`numpy.ndarray`.  Kernels receiving a virtual
payload skip the arithmetic, charge the analytic flop count to the simulated
clock and return virtual outputs of the correct shape.

This is the mechanism that lets tests validate numerics on small real arrays
through exactly the same code paths the paper-scale benchmarks execute.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.exceptions import ShapeError, VirtualPayloadError
from repro.util.units import bytes_of

__all__ = [
    "VirtualMatrix",
    "MatrixLike",
    "is_virtual",
    "shape_of",
    "nbytes_of",
    "vstack_shapes",
]


@dataclass(frozen=True)
class VirtualMatrix:
    """A matrix stand-in carrying only its metadata.

    Attributes
    ----------
    m, n:
        Number of rows and columns.  Both may be zero (empty domains are legal
        in TSQR when there are more domains than rows).
    structure:
        ``"general"`` or ``"upper"`` (upper triangular/trapezoidal).  Only the
        triangular flag matters for communication volume: an ``n x n`` upper
        triangle is sent as ``n (n+1) / 2`` doubles, matching the paper's
        ``N^2 / 2`` volume term.
    dtype:
        NumPy dtype name; double precision by default as in the paper.
    """

    m: int
    n: int
    structure: str = "general"
    dtype: str = "float64"

    def __post_init__(self) -> None:
        if self.m < 0 or self.n < 0:
            raise ShapeError(f"virtual matrix dimensions must be >= 0, got {self.m}x{self.n}")
        if self.structure not in ("general", "upper"):
            raise ShapeError(f"unknown structure {self.structure!r}")

    # ------------------------------------------------------------------ api
    @property
    def shape(self) -> tuple[int, int]:
        """Shape tuple, mirroring :attr:`numpy.ndarray.shape`."""
        return (self.m, self.n)

    @property
    def is_upper(self) -> bool:
        """True when the payload is (upper) triangular/trapezoidal."""
        return self.structure == "upper"

    @property
    def n_elements(self) -> int:
        """Number of *stored* elements (triangles store only their upper part)."""
        if self.is_upper:
            k = min(self.m, self.n)
            rect = (self.n - k) * k
            return k * (k + 1) // 2 + rect
        return self.m * self.n

    @property
    def nbytes(self) -> int:
        """Communication footprint in bytes of the stored elements."""
        return bytes_of(self.n_elements, np.dtype(self.dtype))

    # -------------------------------------------------------------- builders
    def rows(self, m: int) -> "VirtualMatrix":
        """Return a copy with ``m`` rows (used when splitting block-rows)."""
        return replace(self, m=int(m))

    def columns(self, n: int) -> "VirtualMatrix":
        """Return a copy with ``n`` columns (used when splitting panels)."""
        return replace(self, n=int(n))

    def as_upper(self) -> "VirtualMatrix":
        """Return the same shape flagged as upper triangular."""
        return replace(self, structure="upper")

    def as_general(self) -> "VirtualMatrix":
        """Return the same shape flagged as a general dense matrix."""
        return replace(self, structure="general")

    @classmethod
    def like(cls, a: "MatrixLike", *, structure: str | None = None) -> "VirtualMatrix":
        """Build a virtual matrix with the shape/dtype of ``a``.

        ``a`` may be a real array or another virtual matrix.
        """
        if isinstance(a, VirtualMatrix):
            return a if structure is None else replace(a, structure=structure)
        arr = np.asarray(a)
        if arr.ndim != 2:
            raise ShapeError(f"expected a 2-D array, got ndim={arr.ndim}")
        return cls(arr.shape[0], arr.shape[1], structure or "general", str(arr.dtype))

    # ------------------------------------------------------------- guardrail
    def __array__(self, dtype=None, copy=None):  # pragma: no cover - guard
        raise VirtualPayloadError(
            "a VirtualMatrix cannot be converted to a numpy array; "
            "this code path requires real numeric data"
        )


#: Union type accepted by every kernel in :mod:`repro.kernels`.
MatrixLike = np.ndarray | VirtualMatrix


def is_virtual(a: MatrixLike) -> bool:
    """Return True when ``a`` is a :class:`VirtualMatrix` payload."""
    return isinstance(a, VirtualMatrix)


def shape_of(a: MatrixLike) -> tuple[int, int]:
    """Return the ``(m, n)`` shape of a real or virtual matrix."""
    if isinstance(a, VirtualMatrix):
        return a.shape
    arr = np.asarray(a)
    if arr.ndim != 2:
        raise ShapeError(f"expected a 2-D matrix, got ndim={arr.ndim}")
    return (arr.shape[0], arr.shape[1])


def nbytes_of(a: MatrixLike, *, assume_upper: bool = False) -> int:
    """Return the number of bytes needed to communicate ``a``.

    For real arrays the triangular optimisation is applied only when the
    caller asserts the structure via ``assume_upper`` (we never inspect the
    values).  Virtual matrices carry their structure themselves.
    """
    if isinstance(a, VirtualMatrix):
        return a.nbytes
    arr = np.asarray(a)
    m, n = arr.shape
    if assume_upper:
        k = min(m, n)
        elements = k * (k + 1) // 2 + (n - k) * k
    else:
        elements = m * n
    return bytes_of(elements, arr.dtype)


def vstack_shapes(shapes: list[MatrixLike]) -> tuple[int, int]:
    """Return the shape of vertically stacking the given matrices.

    All operands must have the same column count; empty blocks are allowed.
    """
    if not shapes:
        raise ShapeError("cannot stack an empty list of matrices")
    ncols = {shape_of(s)[1] for s in shapes}
    if len(ncols) != 1:
        raise ShapeError(f"cannot vstack matrices with differing column counts {ncols}")
    total_rows = sum(shape_of(s)[0] for s in shapes)
    return (total_rows, ncols.pop())
