"""The runtime layer of the task-DAG runtime: dataflow execution on gridsim.

The runtime is itself an SPMD program (reusing
:func:`repro.programs.spmd.run_program`, the scheduler and the executor
unchanged): every simulated rank owns the tasks its placement policy assigns
it and drives a **ready queue**:

* when a task completes, its outputs are **sent immediately** to every rank
  that consumes them (eager, asynchronous — the sender's clock never waits);
* a rank **receives lazily**: before picking the next task it probes its
  expected messages and collects only those whose virtual arrival time has
  passed (a free receive — the communication was hidden behind whatever the
  rank computed in the meantime);
* among the ready tasks the configured **priority policy** picks the next
  one; when nothing is ready the rank falls back to its earliest unfinished
  task in graph order and blocks on that task's missing inputs.

The id-order fallback is what makes the runtime deadlock-free: task ids are
a topological order of the graph, so around any hypothetical cycle of
blocked ranks the earliest-unfinished ids would strictly decrease — a
contradiction.  Everything else (probe results, ready-queue contents, tie
breaks) is a pure function of simulation state, so virtual traces are
bit-reproducible and identical to real-payload runs.

Values are stored **per version** — keyed by ``(producer task, handle)`` —
so a rank can hold a tile's old value for a straggling reader while a newer
version already arrived for a later task, whatever the placement policy.

``run_dag_caqr`` is the CAQR entry point (DAG counterpart of
:func:`repro.programs.caqr.run_parallel_caqr`; same kernels, same elimination
structure, bit-identical R in real mode); ``run_dag_tsqr`` runs the plain
TSQR reduction graph, demonstrating that the engine executes any dataflow
program, not one hard-wired algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from heapq import heappop, heappush

import numpy as np

from repro.dag.analysis import (
    CriticalPath,
    ScheduleEntry,
    critical_path,
    iter_messages,
)
from repro.dag.graph import TaskGraph, cached_graph, tsqr_graph
from repro.dag.kernels import AlgorithmSpec, algorithm_spec, execute_kernel
from repro.dag.placement import (
    PLACEMENT_POLICIES,
    PRIORITY_POLICIES,
    TaskPlacement,
    place_tasks,
    priority_order,
)
from repro.dag.recovery import RecoveryReport, build_recovery_plan
from repro.exceptions import ConfigurationError, RankFailedError
from repro.gridsim.communicator import CommCore, CommHandle
from repro.gridsim.executor import RankContext, SimulationResult
from repro.gridsim.failures import FailureSchedule
from repro.gridsim.kernelmodel import KernelRateModel
from repro.gridsim.platform import Platform
from repro.gridsim.trace import TraceSummary
from repro.programs.caqr import PANEL_TREE_KINDS
from repro.programs.spmd import run_program
from repro.virtual.flops import qr_flops
from repro.virtual.matrix import VirtualMatrix

__all__ = [
    "DAGCAQRConfig",
    "DAGFactorizationConfig",
    "DAGRunResult",
    "run_dag_caqr",
    "run_dag_factorization",
    "run_dag_tsqr",
]


# ---------------------------------------------------------------------------
# Configuration
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class DAGFactorizationConfig:
    """Configuration of one DAG factorization run, any registered algorithm.

    The matrix/tiling fields mirror :class:`repro.programs.caqr.CAQRConfig`
    (for QR the two runtimes factor the same problem with the same kernels
    and the same elimination structure); ``placement`` and ``priority``
    select the dataflow policies of :mod:`repro.dag.placement`;
    ``algorithm`` names the :mod:`repro.dag.kernels` registry entry
    (``qr``, ``cholesky`` or ``lu``).  ``panel_tree`` only applies to QR —
    the single-tile panels of Cholesky and LU have nothing to reduce.
    """

    m: int
    n: int
    tile_size: int = 64
    panel_tree: str = "binary"
    placement: str = "block"
    priority: str = "critical-path"
    nb: int = 32
    matrix: np.ndarray | None = field(default=None, repr=False, compare=False)
    algorithm: str = "qr"

    def __post_init__(self) -> None:
        spec = algorithm_spec(self.algorithm)  # raises for unknown names
        if self.m <= 0 or self.n <= 0:
            raise ConfigurationError(
                f"matrix dimensions must be positive, got {self.m} x {self.n}"
            )
        if spec.square_only and self.m != self.n:
            raise ConfigurationError(
                f"tiled {self.algorithm} needs a square matrix, got {self.m} x {self.n}"
            )
        if self.tile_size <= 0:
            raise ConfigurationError(f"tile size must be positive, got {self.tile_size}")
        if spec.uses_panel_tree:
            if self.panel_tree not in PANEL_TREE_KINDS:
                raise ConfigurationError(
                    f"unknown panel tree {self.panel_tree!r}; choose from {PANEL_TREE_KINDS}"
                )
        elif self.panel_tree != "binary":
            raise ConfigurationError(
                f"the panel tree only applies to QR; tiled {self.algorithm} "
                "eliminates single-tile panels and has nothing to reduce"
            )
        if self.placement not in PLACEMENT_POLICIES:
            raise ConfigurationError(
                f"unknown placement policy {self.placement!r}; "
                f"choose from {PLACEMENT_POLICIES}"
            )
        if self.priority not in PRIORITY_POLICIES:
            raise ConfigurationError(
                f"unknown priority policy {self.priority!r}; "
                f"choose from {PRIORITY_POLICIES}"
            )
        if self.matrix is not None and self.matrix.shape != (self.m, self.n):
            raise ConfigurationError(
                f"matrix shape {self.matrix.shape} does not match ({self.m}, {self.n})"
            )

    @property
    def virtual(self) -> bool:
        """True when the run uses shape-only payloads."""
        return self.matrix is None

    def flop_count(self) -> float:
        """Useful flops credited to the run (the Gflop/s denominator)."""
        return algorithm_spec(self.algorithm).total_flops(self.m, self.n)


@dataclass(frozen=True)
class DAGCAQRConfig(DAGFactorizationConfig):
    """Configuration of one DAG-CAQR run (``algorithm="qr"`` fixed)."""

    def __post_init__(self) -> None:
        if self.algorithm != "qr":
            raise ConfigurationError(
                f"DAGCAQRConfig is the QR entry point, got algorithm={self.algorithm!r}; "
                "use DAGFactorizationConfig for other algorithms"
            )
        super().__post_init__()


@dataclass(frozen=True)
class _ExecSpec:
    """What the generic task executor needs to know about one run."""

    matrix: np.ndarray | None = field(repr=False, compare=False)
    inner_b: int = 32
    record_schedule: bool = False

    @property
    def virtual(self) -> bool:
        return self.matrix is None


# ---------------------------------------------------------------------------
# Communication plan
# ---------------------------------------------------------------------------

class _CommPlan:
    """Everything the per-rank ready loops need, derived once per (graph,
    placement) pair and treated as immutable.

    Versioned value keys: ``vkey = (producer + 1) * n_handles + handle``
    (producer ``-1`` is the initial value).  A vkey doubles as the message
    tag, so concurrent versions of the same tile never collide in the
    mailboxes or the per-rank stores.
    """

    def __init__(self, graph: TaskGraph, placement: TaskPlacement) -> None:
        self.graph = graph
        self.placement = placement
        H = graph.n_handles
        self.n_handles = H
        rank_of = placement.task_rank
        p = placement.n_ranks

        self.tasks_by_rank: list[list[int]] = [[] for _ in range(p)]
        for tid, r in enumerate(rank_of):
            self.tasks_by_rank[r].append(tid)

        # Per-task local bookkeeping templates and the message plan.
        self.local_preds: list[dict[int, int]] = [{} for _ in range(p)]
        self.remote_counts: list[dict[int, int]] = [{} for _ in range(p)]
        self.local_succs: dict[int, list[int]] = {}
        self.remote_inputs: dict[int, tuple[tuple[int, int, int], ...]] = {}
        self.sends_by_task: dict[int, list[tuple[int, int, int]]] = {}
        self.init_sends_by_rank: list[list[tuple[int, int, int]]] = [[] for _ in range(p)]
        self.init_values_by_rank: list[list[int]] = [[] for _ in range(p)]
        self.expected_by_rank: list[list[tuple[int, int]]] = [[] for _ in range(p)]
        self.waiters_by_rank: list[dict[int, list[int]]] = [{} for _ in range(p)]
        #: Per rank: how many times each value version is consumed locally
        #: (task reads plus outbound sends) — the runtime frees a version on
        #: its last use, so stores stay O(live tiles), not O(history).
        self.use_counts_by_rank: list[dict[int, int]] = [{} for _ in range(p)]

        seen_initial: set[int] = set()
        for tid, task in enumerate(graph.tasks):
            me = rank_of[tid]
            raw = set(task.read_producers)
            remote = []
            uses = self.use_counts_by_rank[me]
            for h, prod in zip(task.reads, task.read_producers):
                vkey = (prod + 1) * H + h
                uses[vkey] = uses.get(vkey, 0) + 1
                if prod >= 0:
                    if rank_of[prod] != me:
                        remote.append((vkey, rank_of[prod], h))
                else:
                    src = placement.initial_owner[h]
                    if src != me:
                        remote.append((vkey, src, h))
                    elif h not in seen_initial:
                        seen_initial.add(h)
                        self.init_values_by_rank[me].append(h)
            # Non-dataflow (WAR/WAW) edges carry no message, so they are
            # only enforceable between co-located tasks.
            for pred in graph.preds[tid]:
                if pred not in raw and rank_of[pred] != me:
                    raise ConfigurationError(
                        f"task {tid} has a cross-rank anti-dependency on task "
                        f"{pred}; the DAG runtime requires writers to read "
                        "what they overwrite (all shipped builders do)"
                    )
            # Count local dependency edges (of any type) once each.
            n_local_edges = sum(1 for pr in graph.preds[tid] if rank_of[pr] == me)
            if n_local_edges:
                self.local_preds[me][tid] = n_local_edges
                for pr in graph.preds[tid]:
                    if rank_of[pr] == me:
                        self.local_succs.setdefault(pr, []).append(tid)
            if remote:
                self.remote_counts[me][tid] = len(remote)
                self.remote_inputs[tid] = tuple(remote)
                for vkey, _src, _h in remote:
                    self.waiters_by_rank[me].setdefault(vkey, []).append(tid)

        # The message plan itself comes from the single shared definition in
        # the analysis layer, so the cost model's counts and the runtime's
        # sends can never drift apart.
        for prod, h, src, dest, nbytes in iter_messages(graph, placement):
            vkey = (prod + 1) * H + h
            if prod >= 0:
                self.sends_by_task.setdefault(prod, []).append((vkey, dest, nbytes))
            else:
                if h not in seen_initial:
                    seen_initial.add(h)
                    self.init_values_by_rank[src].append(h)
                self.init_sends_by_rank[src].append((vkey, dest, nbytes))
            self.expected_by_rank[dest].append((vkey, src))
            uses = self.use_counts_by_rank[src]
            uses[vkey] = uses.get(vkey, 0) + 1  # the outbound send is one use

        # Final location of every tile handle (for result assembly).
        self.final_rank: dict[int, int] = {}
        self.final_vkey: dict[int, int] = {}
        for h in range(H):
            lw = graph.last_writer(h)
            if lw >= 0:
                self.final_rank[h] = rank_of[lw]
                self.final_vkey[h] = (lw + 1) * H + h
            else:
                self.final_rank[h] = placement.initial_owner[h]
                self.final_vkey[h] = h

    def collect_by_rank(self, handles: list[int]) -> list[list[tuple[int, int]]]:
        """Group ``handles`` by final rank as ``(handle, vkey)`` pairs."""
        out: list[list[tuple[int, int]]] = [[] for _ in range(self.placement.n_ranks)]
        for h in handles:
            rank = self.final_rank[h]
            if rank >= 0:
                out[rank].append((h, self.final_vkey[h]))
        return out


@lru_cache(maxsize=8)
def _plan_for(graph: TaskGraph, policy: str, n_ranks: int) -> tuple[TaskPlacement, _CommPlan]:
    """Memoised placement + communication plan (graphs are cached upstream)."""
    placement = place_tasks(graph, policy, n_ranks)
    return placement, _CommPlan(graph, placement)


@lru_cache(maxsize=16)
def _order_for(
    graph: TaskGraph, policy: str, kernel_model: KernelRateModel
) -> tuple[int, ...]:
    """Memoised priority order (critical-path orders cost an O(V+E) sweep)."""
    return priority_order(graph, policy, kernel_model)


@lru_cache(maxsize=8)
def _critical_path_for(graph: TaskGraph, kernel_model: KernelRateModel) -> CriticalPath:
    """Memoised critical-path bound of a cached graph."""
    return critical_path(graph, kernel_model)


# ---------------------------------------------------------------------------
# Task execution (kernel dispatch, real or virtual payloads)
# ---------------------------------------------------------------------------

def _initial_value(graph: TaskGraph, h: int, spec: _ExecSpec):
    """Initial payload of handle ``h``: a real matrix slice or a virtual tile."""
    shape = graph.handle_shapes[h]
    if spec.virtual:
        return VirtualMatrix(shape[0], shape[1])
    key = graph.handle_keys[h]
    if graph.grid is not None and len(key) == 3:
        _, i, j = key
        r0, r1 = graph.grid.row_ranges[i]
        c0, c1 = graph.grid.col_ranges[j]
        return np.array(spec.matrix[r0:r1, c0:c1], dtype=np.float64, copy=True)
    # TSQR domain block row: ("A", d).
    r0, r1 = graph.domain_ranges[key[1]]
    return np.array(spec.matrix[r0:r1, :], dtype=np.float64, copy=True)


def _execute_task(task, inputs: list, spec: _ExecSpec) -> list:
    """Run one kernel on its input values and return the written values.

    A thin alias of the registry dispatch
    (:func:`repro.dag.kernels.execute_kernel`): read/write orderings follow
    the registry's kernel plans, and the arithmetic is byte-for-byte the
    SPMD programs' (same kernels, same padding helpers), which is what
    makes the real-mode factors bit-identical.
    """
    return execute_kernel(task, inputs, spec)


# ---------------------------------------------------------------------------
# The per-rank ready loop (the SPMD program)
# ---------------------------------------------------------------------------

def dag_program(
    ctx: RankContext,
    graph: TaskGraph,
    plan: _CommPlan,
    order: tuple[int, ...],
    spec: _ExecSpec,
    collect: list[list[tuple[int, int]]],
    _capture: dict | None = None,
):
    """Dataflow execution of ``graph`` on one simulated rank.

    A generator: blocking receives and the per-task ``yield_turn`` suspend
    via ``yield from``.  ``_capture``, when given, receives references to
    this rank's live ``store``/``done``/``schedule`` so the fault-tolerant
    wrapper can salvage partial state after a :class:`RankFailedError`;
    the no-failure execution path is unchanged.
    """
    comm = ctx.comm
    me = comm.rank
    H = plan.n_handles
    tasks = graph.tasks
    my_ids = plan.tasks_by_rank[me]
    store: dict[int, object] = {}

    missing_local = dict(plan.local_preds[me])
    missing_remote = dict(plan.remote_counts[me])
    expected: dict[int, int] = dict(plan.expected_by_rank[me])
    waiters = plan.waiters_by_rank[me]
    uses = dict(plan.use_counts_by_rank[me])
    keep = {vkey for _h, vkey in collect[me]}
    done: set[int] = set()
    schedule: list[ScheduleEntry] | None = [] if spec.record_schedule else None
    if _capture is not None:
        _capture["store"] = store
        _capture["done"] = done
        _capture["schedule"] = schedule

    def _consume(vkey: int) -> None:
        # One use of a stored version; the last use frees it (result tiles
        # excepted), keeping the store O(live tiles) rather than O(history).
        left = uses[vkey] - 1
        uses[vkey] = left
        if left == 0 and vkey not in keep:
            del store[vkey]

    # Initial tiles this rank owns, then the startup sends of those needed
    # remotely (eager, like every other producer-side send).
    for h in plan.init_values_by_rank[me]:
        store[h] = _initial_value(graph, h, spec)
    for vkey, dest, nbytes in plan.init_sends_by_rank[me]:
        comm.send(store[vkey], dest=dest, tag=vkey, nbytes=nbytes)
        _consume(vkey)

    ready: list[tuple[int, int]] = []
    for tid in my_ids:
        if not missing_local.get(tid) and not missing_remote.get(tid):
            heappush(ready, (order[tid], tid))

    def _mark_arrival(vkey: int, value) -> None:
        store[vkey] = value
        for w in waiters.get(vkey, ()):
            left = missing_remote.get(w, 0) - 1
            missing_remote[w] = left
            if left == 0 and not missing_local.get(w) and w not in done:
                heappush(ready, (order[w], w))

    def _receive(vkey: int):
        src = expected.pop(vkey)
        _mark_arrival(vkey, (yield from comm.recv(source=src, tag=vkey)))

    n_done = 0
    n_mine = len(my_ids)
    fallback_pos = 0
    while n_done < n_mine:
        # Collect every expected message that has virtually arrived by now —
        # free receives, communication already hidden.  The per-task yields
        # below keep the ranks interleaved in virtual-time order, so "has it
        # arrived?" is causally meaningful, not a race against peers.
        if expected:
            now = ctx.clock()
            for vkey in [k for k, src in expected.items()
                         if (a := comm.probe(source=src, tag=k)) is not None and a <= now]:
                yield from _receive(vkey)
        tid = -1
        while ready:
            _prio, cand = heappop(ready)
            if cand not in done:
                tid = cand
                break
        if tid < 0:
            if expected:
                # Nothing ready now: advance to the next event.  Take the
                # queued message with the earliest virtual arrival (its
                # waiters are the soonest-possible work)...
                best_key, best_arrival = -1, 0.0
                for vkey, src in expected.items():
                    arrival = comm.probe(source=src, tag=vkey)
                    if arrival is not None and (best_key < 0 or arrival < best_arrival):
                        best_key, best_arrival = vkey, arrival
                if best_key >= 0:
                    yield from _receive(best_key)
                    continue
            # ...or, with nothing queued at all, block on the earliest
            # unfinished task in graph order (its local preds are
            # necessarily done).  Deterministic and deadlock-free: around
            # any cycle of ranks blocked this way the earliest-unfinished
            # task ids would strictly decrease.
            while my_ids[fallback_pos] in done:
                fallback_pos += 1
            tid = my_ids[fallback_pos]
            for vkey, _src, _h in plan.remote_inputs.get(tid, ()):
                if vkey in expected:
                    yield from _receive(vkey)
        task = tasks[tid]
        inputs = [
            store[(prod + 1) * H + h]
            for h, prod in zip(task.reads, task.read_producers)
        ]
        start = ctx.clock()
        outputs = _execute_task(task, inputs, spec)
        ctx.compute(task.flops, kernel=task.kernel_class, n=task.width)
        for h, prod in zip(task.reads, task.read_producers):
            _consume((prod + 1) * H + h)
        base = (tid + 1) * H
        for h, value in zip(task.writes, outputs):
            vkey = base + h
            if uses.get(vkey, 0) > 0 or vkey in keep:
                store[vkey] = value
        done.add(tid)
        n_done += 1
        if schedule is not None:
            schedule.append(
                ScheduleEntry(
                    task=tid, kernel=task.kernel, rank=me,
                    start_s=start, end_s=ctx.clock(),
                )
            )
        for succ in plan.local_succs.get(tid, ()):
            left = missing_local[succ] - 1
            missing_local[succ] = left
            if left == 0 and not missing_remote.get(succ) and succ not in done:
                heappush(ready, (order[succ], succ))
        for vkey, dest, nbytes in plan.sends_by_task.get(tid, ()):
            comm.send(store[vkey], dest=dest, tag=vkey, nbytes=nbytes)
            _consume(vkey)
        # Hand the CPU back so the globally earliest rank runs next: without
        # this, a compute-heavy rank would race arbitrarily far ahead in
        # virtual time and its probes would miss messages that causally had
        # long arrived.
        yield from ctx.yield_turn()

    tiles = {h: store[vkey] for h, vkey in collect[me] if vkey in store}
    return tiles, schedule


# ---------------------------------------------------------------------------
# Fault-tolerant execution (the DAG recovery protocol)
# ---------------------------------------------------------------------------

def dag_program_ft(
    ctx: RankContext,
    graph: TaskGraph,
    plan: _CommPlan,
    order: tuple[int, ...],
    spec: _ExecSpec,
    collect: list[list[tuple[int, int]]],
    report: dict,
):
    """Fault-tolerant dataflow execution: ``dag_program`` plus recovery.

    Round zero is the ordinary ready loop; a rank that observes a death
    (its communicator raises :class:`RankFailedError`) keeps its partial
    state — completed tasks and the versions still in its store — and joins
    a recovery round with the other survivors.  The trailing completion
    barrier pins the exit protocol: no rank returns while a peer might
    still fail and need this rank's surviving versions (deadlines fire at
    operation entries only, so a completed world barrier means no further
    deaths are possible).

    Each recovery round re-executes the lost-version closure on a
    survivors-only communicator; further deaths revoke *that* communicator
    and simply start the next round with the smaller survivor set.
    ``report`` (one shared dict, harness-owned) accumulates the
    exactly-once accounting across rounds.
    """
    capture: dict = {}
    try:
        tiles, schedule = yield from dag_program(
            ctx, graph, plan, order, spec, collect, _capture=capture
        )
        yield from ctx.comm.barrier()
        return tiles, schedule
    except RankFailedError:
        pass
    while True:
        try:
            return (yield from _recovery_round(
                ctx, graph, plan, spec, collect, capture, report
            ))
        except RankFailedError:
            continue


def _recovery_round(
    ctx: RankContext,
    graph: TaskGraph,
    plan: _CommPlan,
    spec: _ExecSpec,
    collect: list[list[tuple[int, int]]],
    capture: dict,
    report: dict,
):
    """One recovery round over the current survivor set.

    The model is an idealised, instantaneous failure detector: the set of
    dead ranks is global knowledge (``state.dead_ranks``), so every
    survivor independently computes the same survivor list and the round's
    plan is built exactly once through the simulation-state memo — the
    global-knowledge coordinator a real ULFM recovery would elect.

    Execution is deliberately simple (recovery is the cold path): first the
    surviving versions the plan needs elsewhere are pre-seeded with eager
    sends, then the closure's tasks run in task-id — topological — order
    with blocking tag-matched receives, which is deadlock-free by the usual
    induction on that order.  Versions produced in recovery are never
    freed; the round ends with a completion barrier and re-routed result
    delivery.
    """
    state = ctx.state
    me = ctx.rank
    dead = tuple(sorted(state.dead_ranks))
    world_ranks = ctx.comm.core.world_ranks
    survivors = tuple(r for r in world_ranks if r not in state.dead_ranks)
    era = ("dag-recovery", dead)

    registry = state.shared((*era, "registry"), dict)
    registry[me] = capture
    core = state.shared(
        (*era, "comm"),
        lambda: CommCore(state, survivors, name=f"dag-recovery-{len(dead)}"),
    )
    comm = CommHandle(core, survivors.index(me))
    # Everyone has registered once this barrier completes; the plan below
    # therefore sees a consistent global snapshot.
    yield from comm.barrier()

    wanted = tuple((h, vkey) for per_rank in collect for (h, vkey) in per_rank)

    def _build_plan():
        rplan = build_recovery_plan(
            graph, survivors, registry, wanted, plan.placement.task_rank
        )
        report["dead_ranks"] = list(dead)
        report["death_times"] = [state.death_time[r] for r in dead]
        report["rounds"] = report.get("rounds", 0) + 1
        report["tasks_reexecuted"] = (
            report.get("tasks_reexecuted", 0) + rplan.tasks_reexecuted
        )
        report["tasks_executed"] = report.get("tasks_executed", 0) + len(rplan.tasks)
        return rplan

    rplan = state.shared((*era, "plan"), _build_plan)
    local = {wr: i for i, wr in enumerate(survivors)}
    store: dict[int, object] = capture["store"]
    done: set[int] = capture["done"]
    H = plan.n_handles

    # Pre-seed surviving versions (eager sends first — this phase cannot
    # block — then the matching receives).
    for vkey, src, dest in rplan.preseed:
        if src == me:
            comm.send(store[vkey], dest=local[dest], tag=vkey)
    for vkey, src, dest in rplan.preseed:
        if dest == me:
            store[vkey] = yield from comm.recv(source=local[src], tag=vkey)

    for tid in rplan.tasks:
        if rplan.assign[tid] != me:
            continue
        for vkey, src in rplan.recvs.get(tid, ()):
            store[vkey] = yield from comm.recv(source=local[src], tag=vkey)
        for vkey in rplan.materialize.get(tid, ()):
            store[vkey] = _initial_value(graph, vkey, spec)
        task = graph.tasks[tid]
        inputs = [
            store[(prod + 1) * H + h]
            for h, prod in zip(task.reads, task.read_producers)
        ]
        outputs = _execute_task(task, inputs, spec)
        ctx.compute(task.flops, kernel=task.kernel_class, n=task.width)
        base = (tid + 1) * H
        for h, value in zip(task.writes, outputs):
            store[base + h] = value
        done.add(tid)
        for vkey, dest in rplan.sends.get(tid, ()):
            comm.send(store[vkey], dest=local[dest], tag=vkey)
        yield from ctx.yield_turn()

    # Completion barrier of the round: same exit-protocol argument as the
    # fault-free path's (no deaths are possible once it completes).
    yield from comm.barrier()
    tiles = {}
    for h, vkey in rplan.deliver.get(me, ()):
        if vkey not in store and vkey < H:
            store[vkey] = _initial_value(graph, vkey, spec)
        tiles[h] = store[vkey]
    return tiles, capture.get("schedule")


# ---------------------------------------------------------------------------
# Harnesses
# ---------------------------------------------------------------------------

@dataclass
class DAGRunResult:
    """Harness-level outcome of one DAG run.

    ``r`` is the assembled factor of a real-payload run (upper-triangular
    ``R`` for QR/TSQR, lower-triangular ``L`` for Cholesky, the packed
    ``L\\U`` for LU; ``None`` in virtual mode).  ``recovery`` is the
    fault-tolerance accounting of a run with an injected failure schedule
    (``None`` on ordinary runs, and also when the schedule never fired).
    """

    r: np.ndarray | None
    makespan_s: float
    gflops: float
    trace: TraceSummary
    critical_path: CriticalPath
    graph: TaskGraph = field(repr=False)
    placement: TaskPlacement = field(repr=False)
    schedule: tuple[ScheduleEntry, ...] | None = field(default=None, repr=False)
    simulation: SimulationResult | None = field(default=None, repr=False)
    config: DAGFactorizationConfig | None = None
    recovery: RecoveryReport | None = None

    @property
    def time_s(self) -> float:
        """Simulated wall-clock time of the run."""
        return self.makespan_s

    @property
    def critical_path_s(self) -> float:
        """Exact dependence-chain lower bound on the makespan."""
        return self.critical_path.seconds


def _merge_schedules(results) -> tuple[ScheduleEntry, ...]:
    entries: list[ScheduleEntry] = []
    for res in results:
        if res is None:  # a rank that died mid-run returns nothing
            continue
        _tiles, sched = res
        if sched:
            entries.extend(sched)
    entries.sort(key=lambda e: (e.start_s, e.rank, e.task))
    return tuple(entries)


def run_dag_factorization(
    platform: Platform,
    config: DAGFactorizationConfig,
    *,
    record_messages: bool = False,
    record_schedule: bool = False,
    engine: str | None = None,
    failures: FailureSchedule | None = None,
    baseline_makespan_s: float | None = None,
) -> DAGRunResult:
    """Run any registered DAG factorization on ``platform``.

    One harness for every algorithm in the registry: the graph comes from
    :func:`repro.dag.graph.cached_graph` keyed on the algorithm name, the
    result tiles and their assembly from the :class:`AlgorithmSpec` — the
    ready loop, placement, priority and communication layers in between are
    untouched by construction.  Real payloads return the assembled factor
    (``R``/``L``/``L\\U``); virtual payloads return ``r=None`` and the
    trace/critical-path summary only.

    ``failures`` switches the run to the fault-tolerant program: scheduled
    ranks die mid-run and the survivors re-execute the lost work, so real
    payloads still return the bit-identical factor.  The failure-free
    baseline needed for the overhead accounting is simulated internally
    unless ``baseline_makespan_s`` is supplied (sweeps pass the cached
    baseline to avoid re-simulating it per schedule).
    """
    alg: AlgorithmSpec = algorithm_spec(config.algorithm)
    p = platform.n_processes
    if failures is not None and set(failures.ranks) >= set(range(p)):
        raise ConfigurationError(
            "the failure schedule names every rank of the platform; "
            "at least one rank must survive to run the recovery"
        )
    if alg.uses_panel_tree:
        clusters = tuple(platform.placement.cluster_of(r) for r in range(p))
        graph = cached_graph(
            config.algorithm, config.m, config.n, config.tile_size,
            p, config.panel_tree, clusters,
        )
    else:
        graph = cached_graph(config.algorithm, config.m, config.n, config.tile_size)
    placement, plan = _plan_for(graph, config.placement, p)
    order = _order_for(graph, config.priority, platform.kernel_model)
    grid = graph.grid
    wanted = [graph.handle_id(key) for key in alg.result_keys(grid)]
    collect = plan.collect_by_rank(wanted if not config.virtual else [])
    spec = _ExecSpec(
        matrix=config.matrix,
        inner_b=min(config.nb, config.tile_size),
        record_schedule=record_schedule,
    )
    recovery = None
    if failures is None:
        run = run_program(
            platform,
            dag_program,
            graph,
            plan,
            order,
            spec,
            collect,
            flop_count=config.flop_count(),
            record_messages=record_messages,
            engine=engine,
        )
    else:
        if baseline_makespan_s is None:
            baseline_makespan_s = run_dag_factorization(
                platform, config, engine=engine
            ).makespan_s
        report: dict = {}
        run = run_program(
            platform,
            dag_program_ft,
            graph,
            plan,
            order,
            spec,
            collect,
            report,
            flop_count=config.flop_count(),
            record_messages=record_messages,
            engine=engine,
            failures=failures,
        )
        if report:
            recovery = RecoveryReport(
                dead_ranks=tuple(report["dead_ranks"]),
                death_times=tuple(report["death_times"]),
                rounds=report["rounds"],
                tasks_reexecuted=report["tasks_reexecuted"],
                tasks_executed=report["tasks_executed"],
                makespan_s=run.makespan_s,
                baseline_makespan_s=baseline_makespan_s,
            )
    r = None
    if not config.virtual:
        tiles_by_key = {}
        for res in run.results:
            if res is None:  # a dead rank; its tiles were re-routed
                continue
            tiles, _sched = res
            for h, value in tiles.items():
                tiles_by_key[graph.handle_keys[h]] = value
        r = alg.assemble(grid, config.m, config.n, tiles_by_key)
    return DAGRunResult(
        r=r,
        makespan_s=run.makespan_s,
        gflops=run.gflops,
        trace=run.trace,
        critical_path=_critical_path_for(graph, platform.kernel_model),
        graph=graph,
        placement=placement,
        schedule=_merge_schedules(run.results) if record_schedule else None,
        simulation=run.simulation,
        config=config,
        recovery=recovery,
    )


def run_dag_caqr(
    platform: Platform,
    config: DAGCAQRConfig,
    *,
    record_messages: bool = False,
    record_schedule: bool = False,
    engine: str | None = None,
    failures: FailureSchedule | None = None,
    baseline_makespan_s: float | None = None,
) -> DAGRunResult:
    """Run DAG-CAQR on ``platform`` and summarise its performance.

    The QR entry of :func:`run_dag_factorization`.  Real payloads return
    the global R factor — bit-identical to the SPMD CAQR program's (and
    therefore matching ``numpy.linalg.qr`` at machine precision) for
    *every* placement and priority policy; virtual payloads return
    ``r=None`` and the trace/critical-path summary only.
    """
    if config.algorithm != "qr":
        raise ConfigurationError(
            f"run_dag_caqr is the QR entry point, got algorithm={config.algorithm!r}"
        )
    return run_dag_factorization(
        platform,
        config,
        record_messages=record_messages,
        record_schedule=record_schedule,
        engine=engine,
        failures=failures,
        baseline_makespan_s=baseline_makespan_s,
    )


def run_dag_tsqr(
    platform: Platform,
    m: int,
    n: int,
    *,
    tree_kind: str = "binary",
    matrix: np.ndarray | None = None,
    priority: str = "fifo",
    record_messages: bool = False,
    record_schedule: bool = False,
    engine: str | None = None,
) -> DAGRunResult:
    """Run the TSQR reduction-tree DAG with one domain per platform rank.

    A deliberately small second workload proving the runtime is generic: the
    same ready loop executes the TSQR graph without any TSQR-specific code.
    Real payloads return the ``n x n`` R factor (sign-normalised agreement
    with LAPACK is asserted by the tests); virtual payloads cost it.
    """
    p = platform.n_processes
    clusters = tuple(platform.placement.cluster_of(r) for r in range(p))
    graph = tsqr_graph(m, n, p, tree_kind=tree_kind, domain_clusters=clusters)
    placement, plan = _plan_for(graph, "block", p)
    order = _order_for(graph, priority, platform.kernel_model)
    root_r = graph.handle_id(("R", 0))
    collect = plan.collect_by_rank([root_r] if matrix is not None else [])
    spec = _ExecSpec(matrix=matrix, inner_b=32, record_schedule=record_schedule)
    run = run_program(
        platform,
        dag_program,
        graph,
        plan,
        order,
        spec,
        collect,
        flop_count=qr_flops(m, n),
        record_messages=record_messages,
        engine=engine,
    )
    r = None
    if matrix is not None:
        for tiles, _sched in run.results:
            if root_r in tiles:
                r = np.triu(np.asarray(tiles[root_r])[:n, :])
    return DAGRunResult(
        r=r,
        makespan_s=run.makespan_s,
        gflops=run.gflops,
        trace=run.trace,
        critical_path=critical_path(graph, platform.kernel_model),
        graph=graph,
        placement=placement,
        schedule=_merge_schedules(run.results) if record_schedule else None,
        simulation=run.simulation,
    )
