"""The algorithm registry of the task-DAG runtime: kernels and loop nests.

The graph builder (:mod:`repro.dag.graph`), the executor
(:mod:`repro.dag.runtime`) and the policies (:mod:`repro.dag.placement`)
are algorithm-agnostic; everything they need to know about a factorization
lives here, in two declarative tables:

* :data:`KERNELS` — one :class:`KernelSpec` per tile kernel, declaring the
  handles it reads and writes (with shapes and triangular wire sizes), its
  analytic flop count (:mod:`repro.virtual.flops`), the rate-model class it
  is charged as, whether it is a *panel* kernel (for the panel priority
  policy), and the real/virtual implementation;
* :data:`ALGORITHMS` — one :class:`AlgorithmSpec` per factorization,
  declaring its loop nest (a generator yielding ``(kernel, k, i, i2, j)``
  tuples in program order), its total useful flops and how to assemble the
  factor from the final tiles.

Three algorithms ship: tiled QR (``geqrt``/``unmqr``/``tsqrt``/``tsmqr``
with the SPMD CAQR elimination structure), tiled Cholesky
(``potrf``/``trsm``/``syrk``/``gemm``) and tiled right-looking LU without
pivoting (``getrf``/``trsm_row``/``trsm_col``/``gemm_nn``).  Adding a fourth
is a matter of registering its kernels and loop nest — see
``docs/architecture.md`` ("The algorithm registry").

Dependency edges are *not* declared here: the graph layer derives
RAW/WAR/WAW edges from the read/write sets.  One invariant every kernel in
this table obeys (and any new one must): **a task reads every handle it
overwrites**, so all true dependencies carry data and the runtime never
needs cross-rank anti-dependency messages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Iterator, Sequence

import numpy as np

from repro.exceptions import ConfigurationError, TreeError
from repro.kernels import tiled_cholesky as chol
from repro.kernels import tiled_lu as lu
from repro.kernels.tiled import geqrt, tsmqr, tsqrt, unmqr
from repro.programs.caqr import _padded_triangle
from repro.tsqr.trees import tree_for
from repro.util.partition import TileGrid, block_ranges
from repro.util.shapes import trapezoid_doubles, triangle_doubles
from repro.util.units import DOUBLE_BYTES
from repro.virtual.flops import (
    cholesky_flops,
    gemm_flops,
    geqrt_flops,
    getrf_flops,
    lu_flops,
    potrf_flops,
    qr_flops,
    syrk_flops,
    trsm_flops,
    tsmqr_flops,
    tsqrt_flops,
    unmqr_flops,
)
from repro.virtual.matrix import VirtualMatrix

__all__ = [
    "ALGORITHMS",
    "AlgorithmSpec",
    "GraphStructure",
    "KERNELS",
    "KernelSpec",
    "TaskPlan",
    "WriteSpec",
    "algorithm_spec",
    "execute_kernel",
    "panel_kernel_names",
]


# ---------------------------------------------------------------------------
# Declarations
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class WriteSpec:
    """One handle written by a task.

    ``handle_nbytes`` overrides the dense payload size of the handle's
    declaration (``None`` = dense); ``wire_nbytes`` is the wire size of
    *this* write (``None`` = the handle's declared size) — triangular
    factors travel as the paper's ``N^2/2``-style half triangles.
    """

    key: Hashable
    shape: tuple[int, int]
    handle_nbytes: int | None = None
    wire_nbytes: int | None = None


@dataclass(frozen=True)
class TaskPlan:
    """Reads, writes and flops of one task instance, resolved on a grid."""

    reads: tuple[Hashable, ...]
    writes: tuple[WriteSpec, ...]
    flops: float


@dataclass(frozen=True)
class KernelSpec:
    """Everything the generic layers need to know about one tile kernel.

    ``plan`` maps ``(grid, k, i, i2, j)`` to the task's :class:`TaskPlan`
    (``None`` for kernels not emitted by the tiled builder, e.g. the TSQR
    reduction kernels); ``execute`` runs the kernel on its input values (in
    ``plan.reads`` order) and returns the written values (in ``plan.writes``
    order), real or virtual.  ``panel`` marks panel-factorization kernels
    for the panel priority policy.
    """

    name: str
    kernel_class: str
    panel: bool
    plan: Callable[[TileGrid, int, int, int, int], TaskPlan] | None
    execute: Callable[[object, list, object], list]


@dataclass(frozen=True)
class GraphStructure:
    """Elimination-structure knobs of a tiled graph (QR uses all of them;
    Cholesky and LU, whose panels are single tiles, need none)."""

    n_groups: int = 1
    panel_tree: str = "binary"
    group_clusters: tuple[str, ...] | None = None


@dataclass(frozen=True)
class AlgorithmSpec:
    """One registered factorization: loop nest, kernels, result assembly.

    ``loop_nest`` yields ``(kernel, k, i, i2, j)`` in program order (task
    ids follow it, so it must be a valid topological emission);
    ``result_keys`` names the handles that form the factor and ``assemble``
    stitches their final values into the dense result; ``total_flops`` is
    the useful-flop Gflop/s denominator.
    """

    name: str
    kind: str
    display: str
    kernels: tuple[str, ...]
    square_only: bool
    uses_panel_tree: bool
    loop_nest: Callable[[TileGrid, GraphStructure], Iterator[tuple]]
    total_flops: Callable[[int, int], float]
    result_keys: Callable[[TileGrid], list]
    assemble: Callable[[TileGrid, int, int, dict], np.ndarray]


# ---------------------------------------------------------------------------
# Tiled QR (the CAQR elimination structure)
# ---------------------------------------------------------------------------

def _plan_geqrt(grid: TileGrid, k: int, i: int, i2: int, j: int) -> TaskPlan:
    h = grid.row_height(i)
    wk = grid.col_width(k)
    kk = min(h, wk)
    return TaskPlan(
        reads=(("A", i, k),),
        writes=(
            WriteSpec(
                ("A", i, k),
                grid.tile_shape(i, k),
                wire_nbytes=trapezoid_doubles(h, wk) * DOUBLE_BYTES,
            ),
            WriteSpec(
                ("F", k, i),
                (h, kk),
                handle_nbytes=(h * kk + kk * kk) * DOUBLE_BYTES,
            ),
        ),
        flops=geqrt_flops(h, wk),
    )


def _plan_unmqr(grid: TileGrid, k: int, i: int, i2: int, j: int) -> TaskPlan:
    h = grid.row_height(i)
    kk = min(h, grid.col_width(k))
    return TaskPlan(
        reads=(("F", k, i), ("A", i, j)),
        writes=(WriteSpec(("A", i, j), grid.tile_shape(i, j)),),
        flops=unmqr_flops(h, grid.col_width(j), kk),
    )


def _plan_tsqrt(grid: TileGrid, k: int, i: int, i2: int, j: int) -> TaskPlan:
    wk = grid.col_width(k)
    h_top = grid.row_height(i)
    h_bot = grid.row_height(i2)
    kk = min(h_top + h_bot, wk)
    return TaskPlan(
        reads=(("A", i, k), ("A", i2, k)),
        writes=(
            WriteSpec(
                ("A", i, k),
                grid.tile_shape(i, k),
                wire_nbytes=trapezoid_doubles(h_top, wk) * DOUBLE_BYTES,
            ),
            WriteSpec(
                ("S", k, i, i2),
                (h_top + h_bot, kk),
                handle_nbytes=((h_top + h_bot) * kk + kk * kk) * DOUBLE_BYTES,
            ),
        ),
        flops=tsqrt_flops(h_bot, wk),
    )


def _plan_tsmqr(grid: TileGrid, k: int, i: int, i2: int, j: int) -> TaskPlan:
    return TaskPlan(
        reads=(("S", k, i, i2), ("A", i, j), ("A", i2, j)),
        writes=(
            WriteSpec(("A", i, j), grid.tile_shape(i, j)),
            WriteSpec(("A", i2, j), grid.tile_shape(i2, j)),
        ),
        flops=tsmqr_flops(grid.row_height(i2), grid.col_width(j), grid.col_width(k)),
    )


def _exec_geqrt(task, inputs: list, spec) -> list:
    (a,) = inputs
    fact = geqrt(a, block_size=spec.inner_b)
    return [_padded_triangle(a, fact.r), fact]


def _exec_unmqr(task, inputs: list, spec) -> list:
    fact, c = inputs
    return [unmqr(fact, c, transpose=True)]


def _exec_tsqrt(task, inputs: list, spec) -> list:
    top, bottom = inputs
    ts = tsqrt(top, bottom, block_size=spec.inner_b)
    return [_padded_triangle(top, ts.r), ts]


def _exec_tsmqr(task, inputs: list, spec) -> list:
    ts, c_top, c_bottom = inputs
    new_top, new_bottom = tsmqr(ts, c_top, c_bottom, transpose=True)
    return [new_top, new_bottom]


def _exec_tsqr_leaf(task, inputs: list, spec) -> list:
    (a,) = inputs
    if isinstance(a, VirtualMatrix):
        return [VirtualMatrix(min(a.m, a.n), a.n, structure="upper")]
    return [np.linalg.qr(np.asarray(a), mode="r")]


def _exec_tsqr_combine(task, inputs: list, spec) -> list:
    r_top, r_bottom = inputs
    if isinstance(r_top, VirtualMatrix) or isinstance(r_bottom, VirtualMatrix):
        return [VirtualMatrix(r_top.shape[0], r_top.shape[1], structure="upper")]
    stacked = np.vstack([np.asarray(r_top), np.asarray(r_bottom)])
    return [np.linalg.qr(stacked, mode="r")]


def _qr_combine_tasks(k: int, i_top: int, i_bot: int, trailing) -> Iterator[tuple]:
    yield ("tsqrt", k, i_top, i_bot, -1)
    for j in trailing:
        yield ("tsmqr", k, i_top, i_bot, j)


def _qr_loop_nest(grid: TileGrid, structure: GraphStructure) -> Iterator[tuple]:
    """The CAQR elimination order of :mod:`repro.programs.caqr`, per panel:
    leaf ``geqrt``+``unmqr`` per group row, intra-group flat ``tsqrt``
    chains, then the cross-group ``panel_tree`` reduction in tree order."""
    n_groups = structure.n_groups
    owners = block_ranges(grid.mt, n_groups)
    clusters = (
        list(structure.group_clusters)
        if structure.group_clusters is not None
        else ["local"] * n_groups
    )
    if len(clusters) != n_groups:
        raise ConfigurationError(
            f"{len(clusters)} cluster names for {n_groups} groups"
        )
    for k in range(grid.n_panels):
        trailing = range(k + 1, grid.nt)
        participants = [
            g for g in range(n_groups) if owners[g][1] > k and owners[g][1] > owners[g][0]
        ]
        tops = {g: max(owners[g][0], k) for g in participants}

        # Leaf stage: geqrt + same-row trailing updates.
        for g in participants:
            _t0, t1 = owners[g]
            for i in range(tops[g], t1):
                yield ("geqrt", k, i, -1, -1)
                for j in trailing:
                    yield ("unmqr", k, i, -1, j)

        # Intra-group flat elimination chains.
        for g in participants:
            _t0, t1 = owners[g]
            i_top = tops[g]
            for i in range(i_top + 1, t1):
                yield from _qr_combine_tasks(k, i_top, i, trailing)

        # Cross-group reduction along the panel tree.
        tree = tree_for(
            structure.panel_tree, len(participants), [clusters[g] for g in participants]
        )
        if tree.root != 0:
            raise TreeError("panel reduction tree must be rooted at the diagonal tile")

        def _emit_tree(pos: int) -> Iterator[tuple]:
            for child_pos in tree.children(pos):
                yield from _emit_tree(child_pos)
                yield from _qr_combine_tasks(
                    k, tops[participants[pos]], tops[participants[child_pos]], trailing
                )

        yield from _emit_tree(tree.root)


def _qr_result_keys(grid: TileGrid) -> list:
    return [
        ("A", i, j) for i in range(grid.n_panels) for j in range(i, grid.nt)
    ]


def _qr_assemble(grid: TileGrid, m: int, n: int, tiles: dict) -> np.ndarray:
    cover = grid.row_ranges[grid.n_panels - 1][1]
    assembled = np.zeros((cover, n))
    for key, value in tiles.items():
        _, i, j = key
        grid.set_tile(assembled, i, j, np.asarray(value))
    return np.triu(assembled[: min(m, n), :])


# ---------------------------------------------------------------------------
# Tiled Cholesky (lower, A = L L^T)
# ---------------------------------------------------------------------------

def _plan_potrf(grid: TileGrid, k: int, i: int, i2: int, j: int) -> TaskPlan:
    w = grid.col_width(k)
    return TaskPlan(
        reads=(("A", k, k),),
        writes=(
            WriteSpec(
                ("A", k, k),
                grid.tile_shape(k, k),
                wire_nbytes=triangle_doubles(w) * DOUBLE_BYTES,
            ),
        ),
        flops=potrf_flops(w),
    )


def _plan_chol_trsm(grid: TileGrid, k: int, i: int, i2: int, j: int) -> TaskPlan:
    return TaskPlan(
        reads=(("A", k, k), ("A", i, k)),
        writes=(WriteSpec(("A", i, k), grid.tile_shape(i, k)),),
        flops=trsm_flops(grid.col_width(k), grid.row_height(i)),
    )


def _plan_syrk(grid: TileGrid, k: int, i: int, i2: int, j: int) -> TaskPlan:
    return TaskPlan(
        reads=(("A", i, k), ("A", i, i)),
        writes=(WriteSpec(("A", i, i), grid.tile_shape(i, i)),),
        flops=syrk_flops(grid.col_width(i), grid.col_width(k)),
    )


def _plan_chol_gemm(grid: TileGrid, k: int, i: int, i2: int, j: int) -> TaskPlan:
    return TaskPlan(
        reads=(("A", i, k), ("A", j, k), ("A", i, j)),
        writes=(WriteSpec(("A", i, j), grid.tile_shape(i, j)),),
        flops=gemm_flops(grid.row_height(i), grid.col_width(j), grid.col_width(k)),
    )


def _exec_potrf(task, inputs: list, spec) -> list:
    (a,) = inputs
    return [chol.potrf(a)]


def _exec_chol_trsm(task, inputs: list, spec) -> list:
    l_kk, a_ik = inputs
    return [chol.trsm(l_kk, a_ik)]


def _exec_syrk(task, inputs: list, spec) -> list:
    l_ik, a_ii = inputs
    return [chol.syrk(l_ik, a_ii)]


def _exec_chol_gemm(task, inputs: list, spec) -> list:
    l_ik, l_jk, a_ij = inputs
    return [chol.gemm(l_ik, l_jk, a_ij)]


def _cholesky_loop_nest(grid: TileGrid, structure: GraphStructure) -> Iterator[tuple]:
    """Classical right-looking tile Cholesky: per panel ``k``, factor the
    diagonal tile, solve the column below it, update the trailing matrix
    (``syrk`` on diagonals, ``gemm`` below them)."""
    for k in range(grid.nt):
        yield ("potrf", k, k, -1, -1)
        for i in range(k + 1, grid.mt):
            yield ("trsm", k, i, -1, -1)
        for j in range(k + 1, grid.nt):
            yield ("syrk", k, j, -1, -1)
            for i in range(j + 1, grid.mt):
                yield ("gemm", k, i, -1, j)


def _cholesky_result_keys(grid: TileGrid) -> list:
    return [("A", i, j) for i in range(grid.mt) for j in range(i + 1)]


def _cholesky_assemble(grid: TileGrid, m: int, n: int, tiles: dict) -> np.ndarray:
    assembled = np.zeros((n, n))
    for key, value in tiles.items():
        _, i, j = key
        grid.set_tile(assembled, i, j, np.asarray(value))
    return np.tril(assembled)


# ---------------------------------------------------------------------------
# Tiled LU, right-looking, no pivoting
# ---------------------------------------------------------------------------

def _plan_getrf(grid: TileGrid, k: int, i: int, i2: int, j: int) -> TaskPlan:
    return TaskPlan(
        reads=(("A", k, k),),
        writes=(WriteSpec(("A", k, k), grid.tile_shape(k, k)),),
        flops=getrf_flops(grid.row_height(k), grid.col_width(k)),
    )


def _plan_lu_trsm_row(grid: TileGrid, k: int, i: int, i2: int, j: int) -> TaskPlan:
    return TaskPlan(
        reads=(("A", k, k), ("A", k, j)),
        writes=(WriteSpec(("A", k, j), grid.tile_shape(k, j)),),
        flops=trsm_flops(grid.row_height(k), grid.col_width(j)),
    )


def _plan_lu_trsm_col(grid: TileGrid, k: int, i: int, i2: int, j: int) -> TaskPlan:
    return TaskPlan(
        reads=(("A", k, k), ("A", i, k)),
        writes=(WriteSpec(("A", i, k), grid.tile_shape(i, k)),),
        flops=trsm_flops(grid.col_width(k), grid.row_height(i)),
    )


def _plan_lu_gemm(grid: TileGrid, k: int, i: int, i2: int, j: int) -> TaskPlan:
    return TaskPlan(
        reads=(("A", i, k), ("A", k, j), ("A", i, j)),
        writes=(WriteSpec(("A", i, j), grid.tile_shape(i, j)),),
        flops=gemm_flops(grid.row_height(i), grid.col_width(j), grid.col_width(k)),
    )


def _exec_getrf(task, inputs: list, spec) -> list:
    (a,) = inputs
    return [lu.getrf(a)]


def _exec_lu_trsm_row(task, inputs: list, spec) -> list:
    lu_kk, a_kj = inputs
    return [lu.trsm_row(lu_kk, a_kj)]


def _exec_lu_trsm_col(task, inputs: list, spec) -> list:
    lu_kk, a_ik = inputs
    return [lu.trsm_col(lu_kk, a_ik)]


def _exec_lu_gemm(task, inputs: list, spec) -> list:
    l_ik, u_kj, a_ij = inputs
    return [lu.gemm(l_ik, u_kj, a_ij)]


def _lu_loop_nest(grid: TileGrid, structure: GraphStructure) -> Iterator[tuple]:
    """Classical right-looking tile LU without pivoting: per panel ``k``,
    factor the diagonal tile, solve the row to its right and the column
    below it, then rank-``b`` update the trailing matrix."""
    for k in range(grid.n_panels):
        yield ("getrf", k, k, -1, -1)
        for j in range(k + 1, grid.nt):
            yield ("trsm_row", k, k, -1, j)
        for i in range(k + 1, grid.mt):
            yield ("trsm_col", k, i, -1, -1)
        for j in range(k + 1, grid.nt):
            for i in range(k + 1, grid.mt):
                yield ("gemm_nn", k, i, -1, j)


def _lu_result_keys(grid: TileGrid) -> list:
    return [("A", i, j) for i in range(grid.mt) for j in range(grid.nt)]


def _lu_assemble(grid: TileGrid, m: int, n: int, tiles: dict) -> np.ndarray:
    assembled = np.zeros((m, n))
    for key, value in tiles.items():
        _, i, j = key
        grid.set_tile(assembled, i, j, np.asarray(value))
    return assembled


# ---------------------------------------------------------------------------
# The registries
# ---------------------------------------------------------------------------

KERNELS: dict[str, KernelSpec] = {
    spec.name: spec
    for spec in (
        # Tiled QR (CAQR elimination structure).
        KernelSpec("geqrt", "qr_leaf", True, _plan_geqrt, _exec_geqrt),
        KernelSpec("unmqr", "qr_leaf", False, _plan_unmqr, _exec_unmqr),
        KernelSpec("tsqrt", "qr_combine", True, _plan_tsqrt, _exec_tsqrt),
        KernelSpec("tsmqr", "qr_combine", False, _plan_tsmqr, _exec_tsmqr),
        # TSQR reduction tree (built by tsqr_graph, not the tiled builder).
        KernelSpec("tsqr_leaf", "qr_leaf", True, None, _exec_tsqr_leaf),
        KernelSpec("tsqr_combine", "qr_combine", True, None, _exec_tsqr_combine),
        # Tiled Cholesky.
        KernelSpec("potrf", "qr_leaf", True, _plan_potrf, _exec_potrf),
        KernelSpec("trsm", "update", True, _plan_chol_trsm, _exec_chol_trsm),
        KernelSpec("syrk", "gemm", False, _plan_syrk, _exec_syrk),
        KernelSpec("gemm", "gemm", False, _plan_chol_gemm, _exec_chol_gemm),
        # Tiled LU (no pivoting).
        KernelSpec("getrf", "qr_leaf", True, _plan_getrf, _exec_getrf),
        KernelSpec("trsm_row", "update", True, _plan_lu_trsm_row, _exec_lu_trsm_row),
        KernelSpec("trsm_col", "update", True, _plan_lu_trsm_col, _exec_lu_trsm_col),
        KernelSpec("gemm_nn", "gemm", False, _plan_lu_gemm, _exec_lu_gemm),
    )
}


ALGORITHMS: dict[str, AlgorithmSpec] = {
    spec.name: spec
    for spec in (
        AlgorithmSpec(
            name="qr",
            kind="tiled-qr",
            display="DAG-CAQR",
            kernels=("geqrt", "unmqr", "tsqrt", "tsmqr"),
            square_only=False,
            uses_panel_tree=True,
            loop_nest=_qr_loop_nest,
            total_flops=qr_flops,
            result_keys=_qr_result_keys,
            assemble=_qr_assemble,
        ),
        AlgorithmSpec(
            name="cholesky",
            kind="tiled-cholesky",
            display="DAG-Cholesky",
            kernels=("potrf", "trsm", "syrk", "gemm"),
            square_only=True,
            uses_panel_tree=False,
            loop_nest=_cholesky_loop_nest,
            total_flops=lambda m, n: cholesky_flops(n),
            result_keys=_cholesky_result_keys,
            assemble=_cholesky_assemble,
        ),
        AlgorithmSpec(
            name="lu",
            kind="tiled-lu",
            display="DAG-LU",
            kernels=("getrf", "trsm_row", "trsm_col", "gemm_nn"),
            square_only=False,
            uses_panel_tree=False,
            loop_nest=_lu_loop_nest,
            total_flops=lu_flops,
            result_keys=_lu_result_keys,
            assemble=_lu_assemble,
        ),
    )
}


def algorithm_spec(name: str) -> AlgorithmSpec:
    """Look up a registered algorithm (raises naming the known ones)."""
    try:
        return ALGORITHMS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown algorithm {name!r}; choose from {sorted(ALGORITHMS)}"
        ) from None


def panel_kernel_names() -> frozenset[str]:
    """Kernels the panel priority policy runs first (registry ``panel`` flags)."""
    return frozenset(name for name, spec in KERNELS.items() if spec.panel)


def execute_kernel(task, inputs: list, spec) -> list:
    """Run one kernel on its input values and return the written values.

    Read/write orderings follow the :data:`KERNELS` plans; the arithmetic is
    byte-for-byte the SPMD programs' (same kernels, same padding helpers),
    which is what makes the real-mode factors bit-identical.
    """
    kspec = KERNELS.get(task.kernel)
    if kspec is None:
        raise ConfigurationError(f"unknown task kernel {task.kernel!r}")
    return kspec.execute(task, inputs, spec)
