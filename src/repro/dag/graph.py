"""The graph layer of the task-DAG runtime: tasks, tiles and dependencies.

The paper's programs (QCG-TSQR, the ScaLAPACK baseline, distributed CAQR)
are *bulk-synchronous*: every rank follows one static SPMD script, panel
factorization and trailing-matrix updates never overlap, and wide-area
latency is paid on the critical path.  The tile-algorithm line of work the
paper sits in executes the very same kernels as a *dependency DAG* instead —
any task whose inputs are ready may run, so independent work hides latency.

This module is the graph half of that runtime:

* a :class:`Task` names one kernel invocation together with its analytic
  flop count (:mod:`repro.virtual.flops`) and the *handles* it reads and
  writes;
* a :class:`TaskGraph` derives dependency edges **automatically** from those
  read/write sets (read-after-write, write-after-read, write-after-write),
  so builders only state what each task touches, never who waits for whom;
* :func:`build_tiled_graph` emits the DAG of **any registered algorithm**
  (:mod:`repro.dag.kernels`) by walking its loop nest and resolving each
  task's read/write plan on the tile grid — tiled QR, tiled Cholesky and
  tiled LU are three instances of the same builder;
* :func:`tiled_qr_graph` is the QR instance — with an elimination structure
  *identical* to the one the SPMD CAQR program executes (per-group flat
  chains, then a configurable cross-group tree), so a real-payload DAG
  execution reproduces the SPMD R factor **bit for bit**;
* :func:`tiled_cholesky_graph` / :func:`tiled_lu_graph` instantiate the
  tiled Cholesky and unpivoted-LU loop nests;
* :func:`tsqr_graph` emits the reduction-tree DAG of plain TSQR.

Handles are hashable keys: ``("A", i, j)`` is matrix tile ``(i, j)``,
``("F", k, i)`` the reflector block of ``geqrt`` on tile ``(i, k)``,
``("S", k, i_top, i_bot)`` the reflector block of a ``tsqrt`` combine, and
``("R", d)`` / ``("A", d)`` the TSQR per-domain factors.  Every handle knows
its shape and its *wire size* (triangular factors travel as the paper's
``N^2/2``-style half triangles), so virtual and real executions charge
byte-identical communication.
"""

from __future__ import annotations

import os
from functools import lru_cache
from typing import Hashable, Sequence

from repro.dag.kernels import KERNELS, GraphStructure, algorithm_spec
from repro.exceptions import ConfigurationError, TreeError
from repro.tsqr.trees import tree_for
from repro.util.partition import TileGrid, block_ranges
from repro.util.shapes import trapezoid_doubles
from repro.util.units import DOUBLE_BYTES
from repro.virtual.flops import qr_flops, stacked_triangle_qr_flops

__all__ = [
    "Task",
    "TaskGraph",
    "build_tiled_graph",
    "tiled_qr_graph",
    "tiled_cholesky_graph",
    "tiled_lu_graph",
    "tsqr_graph",
    "cached_graph",
    "cached_tiled_qr_graph",
    "clear_graph_cache",
    "graph_cache_info",
    "set_graph_cache_size",
]


class Task:
    """One kernel invocation of a task graph.

    ``reads``/``writes`` are handle ids; ``read_producers`` names, for each
    read, the task that produced the value (``-1`` for an initial input).
    ``kernel_class``/``width`` are what the kernel-rate model charges
    (``qr_leaf``/``qr_combine`` with the panel width, exactly like the SPMD
    programs), ``host_row`` the tile row (or TSQR domain) hosting the
    compute under the row-based placement policies.
    """

    __slots__ = (
        "id", "kernel", "kernel_class", "k", "i", "i2", "j",
        "flops", "width", "host_row",
        "reads", "read_producers", "writes", "write_nbytes",
    )

    def __init__(
        self,
        id: int,
        kernel: str,
        *,
        kernel_class: str,
        flops: float,
        width: int,
        host_row: int,
        reads: tuple[int, ...],
        read_producers: tuple[int, ...],
        writes: tuple[int, ...],
        write_nbytes: tuple[int, ...],
        k: int = -1,
        i: int = -1,
        i2: int = -1,
        j: int = -1,
    ) -> None:
        self.id = id
        self.kernel = kernel
        self.kernel_class = kernel_class
        self.flops = flops
        self.width = width
        self.host_row = host_row
        self.reads = reads
        self.read_producers = read_producers
        self.writes = writes
        self.write_nbytes = write_nbytes
        self.k = k
        self.i = i
        self.i2 = i2
        self.j = j

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Task(#{self.id} {self.kernel} k={self.k} i={self.i} "
            f"i2={self.i2} j={self.j})"
        )


class TaskGraph:
    """A dataflow graph over tile handles with automatic dependency edges.

    Builders declare handles (:meth:`handle`) and append tasks
    (:meth:`add_task`) stating only their read and write sets; the graph
    derives the edges:

    * **RAW** — a task reading handle ``h`` depends on ``h``'s last writer;
    * **WAR** — a task writing ``h`` depends on every reader since the last
      write (it must not clobber a value still being consumed);
    * **WAW** — a task writing ``h`` depends on the previous writer.

    Because tasks are appended in program order, every edge points from a
    lower to a higher task id — task ids are a topological order, which the
    runtime's deadlock-freedom argument and the analysis layer's single
    reverse sweep both rely on.
    """

    def __init__(self, *, kind: str = "custom") -> None:
        self.kind = kind
        self.tasks: list[Task] = []
        self.preds: list[tuple[int, ...]] = []
        self.handle_keys: list[Hashable] = []
        self.handle_shapes: list[tuple[int, int]] = []
        self.handle_nbytes: list[int] = []
        self._handle_index: dict[Hashable, int] = {}
        self._last_writer: dict[int, int] = {}
        self._readers_since: dict[int, list[int]] = {}
        self._n_edges = 0
        #: Builder metadata consumed by placement and the runtime.
        self.grid: TileGrid | None = None
        self.n_groups: int = 1
        self.domain_ranges: tuple[tuple[int, int], ...] = ()

    # -------------------------------------------------------------- handles
    def handle(self, key: Hashable, shape: tuple[int, int], nbytes: int | None = None) -> int:
        """Declare (or look up) the handle ``key`` and return its id.

        ``nbytes`` is the dense payload size; it is the wire size of the
        handle's *initial* value (task outputs carry their own wire sizes).
        """
        idx = self._handle_index.get(key)
        if idx is not None:
            return idx
        idx = len(self.handle_keys)
        self._handle_index[key] = idx
        self.handle_keys.append(key)
        self.handle_shapes.append(shape)
        self.handle_nbytes.append(
            shape[0] * shape[1] * DOUBLE_BYTES if nbytes is None else int(nbytes)
        )
        return idx

    def handle_id(self, key: Hashable) -> int:
        """Id of an existing handle (raises for unknown keys)."""
        return self._handle_index[key]

    def last_writer(self, handle: int) -> int:
        """Task id of the final writer of ``handle`` (-1 if never written)."""
        return self._last_writer.get(handle, -1)

    # ---------------------------------------------------------------- tasks
    def add_task(
        self,
        kernel: str,
        *,
        reads: Sequence[int],
        writes: Sequence[int],
        flops: float,
        width: int,
        kernel_class: str,
        host_row: int,
        write_nbytes: Sequence[int] | None = None,
        k: int = -1,
        i: int = -1,
        i2: int = -1,
        j: int = -1,
    ) -> int:
        """Append a task; dependency edges are derived from ``reads``/``writes``."""
        tid = len(self.tasks)
        producers = tuple(self._last_writer.get(h, -1) for h in reads)
        deps: set[int] = {p for p in producers if p >= 0}
        for h in writes:
            prev = self._last_writer.get(h)
            if prev is not None:
                deps.add(prev)  # WAW
            for reader in self._readers_since.get(h, ()):
                deps.add(reader)  # WAR
        deps.discard(tid)
        if write_nbytes is None:
            write_nbytes = tuple(self.handle_nbytes[h] for h in writes)
        task = Task(
            tid,
            kernel,
            kernel_class=kernel_class,
            flops=flops,
            width=width,
            host_row=host_row,
            reads=tuple(reads),
            read_producers=producers,
            writes=tuple(writes),
            write_nbytes=tuple(write_nbytes),
            k=k,
            i=i,
            i2=i2,
            j=j,
        )
        self.tasks.append(task)
        self.preds.append(tuple(sorted(deps)))
        self._n_edges += len(deps)
        for h in reads:
            self._readers_since.setdefault(h, []).append(tid)
        for h in writes:
            self._last_writer[h] = tid
            self._readers_since[h] = []
        return tid

    # -------------------------------------------------------------- queries
    @property
    def n_tasks(self) -> int:
        """Number of tasks in the graph."""
        return len(self.tasks)

    @property
    def n_handles(self) -> int:
        """Number of declared handles."""
        return len(self.handle_keys)

    @property
    def n_edges(self) -> int:
        """Number of dependency edges."""
        return self._n_edges

    def successors(self) -> list[list[int]]:
        """Adjacency list task -> dependent tasks (built on demand)."""
        succs: list[list[int]] = [[] for _ in self.tasks]
        for tid, deps in enumerate(self.preds):
            for p in deps:
                succs[p].append(tid)
        return succs

    def sinks(self) -> list[int]:
        """Tasks no other task depends on."""
        has_succ = [False] * len(self.tasks)
        for deps in self.preds:
            for p in deps:
                has_succ[p] = True
        return [tid for tid, flag in enumerate(has_succ) if not flag]

    def describe(self) -> str:
        """One-line summary used by reports and examples."""
        return (
            f"{self.kind} graph: {self.n_tasks} tasks, {self.n_edges} edges, "
            f"{self.n_handles} tile handles"
        )


# ---------------------------------------------------------------------------
# The generic tiled builder
# ---------------------------------------------------------------------------

def build_tiled_graph(
    algorithm: str,
    m: int,
    n: int,
    tile_size: int,
    *,
    structure: GraphStructure | None = None,
) -> TaskGraph:
    """Emit the task DAG of any registered tiled algorithm.

    The builder is a straight product of the registry
    (:mod:`repro.dag.kernels`): it declares every matrix tile up front, then
    walks the algorithm's loop nest in program order; for each yielded
    ``(kernel, k, i, i2, j)`` it resolves the kernel's read/write plan on
    the tile grid — declaring factor handles (``F``/``S``) at their first
    write, exactly where a hand-written builder would — and appends the
    task.  Dependency edges, task ids and wire sizes all fall out of the
    declarations, so a new algorithm needs only kernels and a loop nest.
    """
    spec = algorithm_spec(algorithm)
    if m <= 0 or n <= 0:
        raise ConfigurationError(f"matrix dimensions must be positive, got {m} x {n}")
    if spec.square_only and m != n:
        raise ConfigurationError(
            f"tiled {algorithm} needs a square matrix, got {m} x {n}"
        )
    if structure is None:
        structure = GraphStructure()
    grid = TileGrid(m, n, tile_size)
    graph = TaskGraph(kind=spec.kind)
    graph.grid = grid
    graph.n_groups = structure.n_groups

    # Declare every matrix tile up front (initial values are dense).
    for i in range(grid.mt):
        for j in range(grid.nt):
            graph.handle(("A", i, j), grid.tile_shape(i, j))

    for kname, k, i, i2, j in spec.loop_nest(grid, structure):
        kspec = KERNELS[kname]
        plan = kspec.plan(grid, k, i, i2, j)
        write_ids: list[int] = []
        wire_nbytes: list[int] = []
        for w in plan.writes:
            hid = graph.handle(w.key, w.shape, nbytes=w.handle_nbytes)
            write_ids.append(hid)
            wire_nbytes.append(
                w.wire_nbytes if w.wire_nbytes is not None else graph.handle_nbytes[hid]
            )
        graph.add_task(
            kname,
            reads=tuple(graph.handle_id(key) for key in plan.reads),
            writes=tuple(write_ids),
            write_nbytes=tuple(wire_nbytes),
            flops=plan.flops,
            width=grid.col_width(k),
            kernel_class=kspec.kernel_class,
            host_row=i,
            k=k,
            i=i,
            i2=i2,
            j=j,
        )
    return graph


# ---------------------------------------------------------------------------
# Algorithm instances
# ---------------------------------------------------------------------------

def tiled_qr_graph(
    m: int,
    n: int,
    tile_size: int,
    *,
    n_groups: int = 1,
    panel_tree: str = "binary",
    group_clusters: Sequence[str] | None = None,
) -> TaskGraph:
    """The tiled-QR DAG of an ``M x N`` matrix (geqrt/unmqr/tsqrt/tsmqr).

    The elimination structure mirrors the SPMD CAQR program of
    :mod:`repro.programs.caqr` exactly: tile rows are split into
    ``n_groups`` contiguous groups (one per simulated rank there), each
    panel is eliminated by a flat ``tsqrt`` chain *inside* every group and a
    ``panel_tree``-shaped reduction *across* group triangles, children
    combined in tree order.  Since floating-point results depend only on the
    per-tile operation sequence — which the dependency edges pin — any
    topological execution of this graph reproduces the SPMD R factor bit
    for bit.

    ``group_clusters`` names the cluster hosting each group, used by the
    ``grid-hierarchical`` panel tree exactly like the SPMD program.
    """
    if m <= 0 or n <= 0:
        raise ConfigurationError(f"matrix dimensions must be positive, got {m} x {n}")
    if n_groups <= 0:
        raise ConfigurationError(f"group count must be positive, got {n_groups}")
    return build_tiled_graph(
        "qr",
        m,
        n,
        tile_size,
        structure=GraphStructure(
            n_groups=n_groups,
            panel_tree=panel_tree,
            group_clusters=tuple(group_clusters) if group_clusters is not None else None,
        ),
    )


def tiled_cholesky_graph(n: int, tile_size: int) -> TaskGraph:
    """The tiled-Cholesky DAG of an ``N x N`` SPD matrix (potrf/trsm/syrk/gemm).

    Lower-triangular convention (``A = L L^T``); the classical right-looking
    tile loop nest, so the DAG executes the exact kernel sequence of the
    sequential blocked algorithm on every tile.
    """
    return build_tiled_graph("cholesky", n, n, tile_size)


def tiled_lu_graph(m: int, n: int, tile_size: int) -> TaskGraph:
    """The tiled-LU DAG of an ``M x N`` matrix, right-looking, no pivoting
    (getrf/trsm_row/trsm_col/gemm_nn); for diagonally dominant matrices,
    where skipping partial pivoting is numerically safe."""
    return build_tiled_graph("lu", m, n, tile_size)


def tsqr_graph(
    m: int,
    n: int,
    n_domains: int,
    *,
    tree_kind: str = "binary",
    domain_clusters: Sequence[str] | None = None,
) -> TaskGraph:
    """The TSQR reduction-tree DAG: one leaf QR per domain, one combine per edge.

    Leaves factor a domain's block row into its ``R`` handle (wire size: the
    paper's ``N^2/2`` half triangle); combines reduce a child triangle into
    its parent along the requested tree.
    """
    if m <= 0 or n <= 0:
        raise ConfigurationError(f"matrix dimensions must be positive, got {m} x {n}")
    if n_domains <= 0:
        raise ConfigurationError(f"domain count must be positive, got {n_domains}")
    ranges = block_ranges(m, n_domains)
    if min(r1 - r0 for r0, r1 in ranges) < n:
        raise ConfigurationError(
            f"every domain needs at least n={n} rows for a full R factor; "
            f"use fewer than {n_domains} domains"
        )
    graph = TaskGraph(kind="tsqr")
    graph.n_groups = n_domains
    graph.domain_ranges = tuple(ranges)
    tri_nbytes = trapezoid_doubles(n, n) * DOUBLE_BYTES
    r_of = []
    for d, (r0, r1) in enumerate(ranges):
        a = graph.handle(("A", d), (r1 - r0, n))
        r = graph.handle(("R", d), (n, n), nbytes=tri_nbytes)
        r_of.append(r)
        graph.add_task(
            "tsqr_leaf",
            reads=(a,),
            writes=(r,),
            flops=qr_flops(r1 - r0, n),
            width=n,
            kernel_class="qr_leaf",
            host_row=d,
            i=d,
        )
    tree = tree_for(tree_kind, n_domains, domain_clusters)

    def _emit(pos: int) -> None:
        for child in tree.children(pos):
            _emit(child)
            graph.add_task(
                "tsqr_combine",
                reads=(r_of[pos], r_of[child]),
                writes=(r_of[pos],),
                flops=stacked_triangle_qr_flops(n),
                width=n,
                kernel_class="qr_combine",
                host_row=pos,
                i=pos,
                i2=child,
            )

    _emit(tree.root)
    if tree.root != 0:
        raise TreeError("TSQR reduction must be rooted at domain 0")
    return graph


# ---------------------------------------------------------------------------
# The graph cache
# ---------------------------------------------------------------------------

#: Default capacity of the graph cache.  A best-config sweep touches one
#: graph per (algorithm, shape, tile) candidate, so the old capacity of 8
#: thrashed as soon as a sweep crossed two tile sizes x a few M values.
_DEFAULT_GRAPH_CACHE_SIZE = 32


def _initial_graph_cache_size() -> int:
    """Capacity at import: ``$REPRO_GRAPH_CACHE_SIZE`` or the default."""
    raw = os.environ.get("REPRO_GRAPH_CACHE_SIZE")
    if raw is None:
        return _DEFAULT_GRAPH_CACHE_SIZE
    try:
        size = int(raw)
    except ValueError as exc:
        raise ConfigurationError(
            f"REPRO_GRAPH_CACHE_SIZE must be an integer, got {raw!r}"
        ) from exc
    if size < 0:
        raise ConfigurationError(
            f"REPRO_GRAPH_CACHE_SIZE must be >= 0, got {size}"
        )
    return size


def _build_graph(
    algorithm: str,
    m: int,
    n: int,
    tile_size: int,
    n_groups: int = 1,
    panel_tree: str = "binary",
    group_clusters: tuple[str, ...] | None = None,
) -> TaskGraph:
    if algorithm == "qr":
        # Through the QR wrapper so its n_groups validation applies.
        return tiled_qr_graph(
            m,
            n,
            tile_size,
            n_groups=n_groups,
            panel_tree=panel_tree,
            group_clusters=group_clusters,
        )
    return build_tiled_graph(
        algorithm,
        m,
        n,
        tile_size,
        structure=GraphStructure(
            n_groups=n_groups,
            panel_tree=panel_tree,
            group_clusters=group_clusters,
        ),
    )


_cached_build = lru_cache(maxsize=_initial_graph_cache_size())(_build_graph)


def cached_graph(
    algorithm: str,
    m: int,
    n: int,
    tile_size: int,
    n_groups: int = 1,
    panel_tree: str = "binary",
    group_clusters: tuple[str, ...] | None = None,
) -> TaskGraph:
    """Memoised :func:`build_tiled_graph` (paper-scale graphs take seconds).

    The cache key is the algorithm name plus **every** shape parameter, so
    two algorithms (or two elimination structures) can never collide on a
    cache entry.  The returned graph is shared: callers must treat it as
    immutable — the runtime's placement/priority memos key on the graph
    object's identity, which is exactly what the sharing preserves.

    The capacity is ``$REPRO_GRAPH_CACHE_SIZE`` (default
    ``_DEFAULT_GRAPH_CACHE_SIZE``) and can be resized at runtime with
    :func:`set_graph_cache_size`.  Eviction is safe: a rebuilt graph is
    structurally identical to the evicted one, merely a new object (the
    runtime's identity-keyed memos then miss once and recompute).
    """
    return _cached_build(
        algorithm, m, n, tile_size, n_groups, panel_tree, group_clusters
    )


def set_graph_cache_size(maxsize: int) -> None:
    """Resize the graph cache (drops every currently cached graph)."""
    global _cached_build
    if maxsize < 0:
        raise ConfigurationError(f"graph cache size must be >= 0, got {maxsize}")
    _cached_build = lru_cache(maxsize=maxsize)(_build_graph)


def graph_cache_info():
    """``functools.lru_cache`` statistics of the graph cache."""
    return _cached_build.cache_info()


def clear_graph_cache() -> None:
    """Drop every cached graph (the capacity is kept)."""
    _cached_build.cache_clear()


def cached_tiled_qr_graph(
    m: int,
    n: int,
    tile_size: int,
    n_groups: int,
    panel_tree: str,
    group_clusters: tuple[str, ...] | None,
) -> TaskGraph:
    """Memoised :func:`tiled_qr_graph` (the QR entry of :func:`cached_graph`)."""
    return cached_graph(
        "qr", m, n, tile_size, n_groups, panel_tree, group_clusters
    )
