"""Placement and priority policies of the task-DAG runtime.

Placement decides *where* a task runs (which simulated rank owns which
tiles); priority decides *what* a rank runs first among its ready tasks.
The two compose freely and neither affects numerical results — the graph's
dependency edges pin every per-tile operation sequence — so policies are a
pure scheduling study.

Placement policies (``PLACEMENT_POLICIES``):

* ``block`` — contiguous tile-row blocks per rank, the distribution of the
  SPMD CAQR program (combine traffic crosses ranks only at group
  boundaries);
* ``block-cyclic`` — tile rows dealt round-robin over the ranks (classic
  ScaLAPACK-style balance, more cross traffic);
* ``owner-computes`` — tiles spread diagonally over the ranks and each task
  runs wherever its first output tile lives (2-D traffic, the
  tile-runtime default).

Priority policies (``PRIORITY_POLICIES``):

* ``critical-path`` — longest time-weighted path to a sink first (computed
  from the kernel-rate model), the classic latency-hiding heuristic;
* ``panel`` — panel-column factorization kernels before trailing updates,
  earlier panels first (lookahead in its simplest form);
* ``fifo`` — graph emission order.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dag.analysis import downstream_seconds
from repro.dag.graph import TaskGraph
from repro.dag.kernels import panel_kernel_names
from repro.exceptions import ConfigurationError
from repro.gridsim.kernelmodel import KernelRateModel
from repro.util.partition import block_ranges

__all__ = [
    "PLACEMENT_POLICIES",
    "PRIORITY_POLICIES",
    "TaskPlacement",
    "place_tasks",
    "priority_order",
]

PLACEMENT_POLICIES = ("block", "block-cyclic", "owner-computes")
PRIORITY_POLICIES = ("critical-path", "panel", "fifo")

#: Kernels that advance a panel factorization (preferred by ``panel``),
#: straight from the registry's per-kernel ``panel`` flags — a newly
#: registered algorithm gets the panel priority policy for free.
_PANEL_KERNELS = panel_kernel_names()


@dataclass(frozen=True)
class TaskPlacement:
    """Who owns what: task -> rank and initial tile -> rank maps."""

    policy: str
    n_ranks: int
    task_rank: tuple[int, ...]
    #: Owner of each handle's *initial* value (meaningful for "A" handles).
    initial_owner: tuple[int, ...]

    def ranks_used(self) -> set[int]:
        """Ranks that execute at least one task."""
        return set(self.task_rank)


def place_tasks(graph: TaskGraph, policy: str, n_ranks: int) -> TaskPlacement:
    """Assign every task (and every initial tile) of ``graph`` to a rank."""
    if n_ranks <= 0:
        raise ConfigurationError(f"rank count must be positive, got {n_ranks}")
    if policy not in PLACEMENT_POLICIES:
        raise ConfigurationError(
            f"unknown placement policy {policy!r}; choose from {PLACEMENT_POLICIES}"
        )
    mt = graph.grid.mt if graph.grid is not None else graph.n_groups

    if policy == "block":
        owner_ranges = block_ranges(mt, n_ranks)
        row_owner = [0] * mt
        for rank, (a, b) in enumerate(owner_ranges):
            for i in range(a, b):
                row_owner[i] = rank
    elif policy == "block-cyclic":
        row_owner = [i % n_ranks for i in range(mt)]
    else:  # owner-computes: tasks follow their output tile (set below)
        row_owner = [i % n_ranks for i in range(mt)]

    def tile_owner(i: int, j: int) -> int:
        if policy == "owner-computes":
            return (i + j) % n_ranks
        return row_owner[i]

    initial_owner = []
    for key, _shape in zip(graph.handle_keys, graph.handle_shapes):
        if isinstance(key, tuple) and key and key[0] == "A":
            if len(key) == 3:  # tiled-QR: ("A", i, j)
                initial_owner.append(tile_owner(key[1], key[2]))
            else:  # TSQR: ("A", d)
                initial_owner.append(row_owner[key[1]])
        else:
            initial_owner.append(-1)

    task_rank = []
    for task in graph.tasks:
        if policy == "owner-computes":
            rank = None
            for h in task.writes:
                key = graph.handle_keys[h]
                if key[0] == "A":
                    rank = tile_owner(key[1], key[2]) if len(key) == 3 else row_owner[key[1]]
                    break
            if rank is None:
                rank = row_owner[task.host_row]
        else:
            rank = row_owner[task.host_row]
        task_rank.append(rank)

    return TaskPlacement(
        policy=policy,
        n_ranks=n_ranks,
        task_rank=tuple(task_rank),
        initial_owner=tuple(initial_owner),
    )


def priority_order(
    graph: TaskGraph,
    policy: str,
    kernel_model: KernelRateModel | None = None,
) -> tuple[int, ...]:
    """Return ``order[task] = position``; lower positions run first.

    ``critical-path`` needs the ``kernel_model`` that converts flop counts
    into seconds (the same one the simulation charges, so the heuristic
    optimises exactly the makespan being measured).
    """
    if policy not in PRIORITY_POLICIES:
        raise ConfigurationError(
            f"unknown priority policy {policy!r}; choose from {PRIORITY_POLICIES}"
        )
    ids = range(graph.n_tasks)
    if policy == "fifo":
        ranked = list(ids)
    elif policy == "panel":
        ranked = sorted(
            ids,
            key=lambda t: (
                graph.tasks[t].kernel not in _PANEL_KERNELS,
                graph.tasks[t].k,
                t,
            ),
        )
    else:
        if kernel_model is None:
            raise ConfigurationError(
                "the critical-path priority needs the platform's kernel model"
            )
        cp = downstream_seconds(graph, kernel_model)
        ranked = sorted(ids, key=lambda t: (-cp[t], t))
    order = [0] * graph.n_tasks
    for position, t in enumerate(ranked):
        order[t] = position
    return tuple(order)
