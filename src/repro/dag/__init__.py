"""The task-DAG runtime: dataflow execution of tiled algorithms on gridsim.

Three layers (see ``docs/architecture.md``, "The task-DAG runtime"):

* :mod:`repro.dag.graph` — tasks, tile handles and the automatic derivation
  of dependency edges from read/write sets, plus the :func:`tiled_qr_graph`
  and :func:`tsqr_graph` builders;
* :mod:`repro.dag.runtime` + :mod:`repro.dag.placement` — the SPMD
  ready-queue driver (eager sends, lazy receives) and the placement /
  priority policies it composes;
* :mod:`repro.dag.analysis` — the exact critical-path lower bound, per-rank
  busy/comm/idle breakdowns and Gantt CSV export.
"""

from repro.dag.analysis import (
    CriticalPath,
    RankUtilization,
    ScheduleEntry,
    communication_counts,
    critical_path,
    flop_critical_path,
    iter_messages,
    mean_idle_fraction,
    rank_utilization,
    write_gantt_csv,
)
from repro.dag.graph import Task, TaskGraph, tiled_qr_graph, tsqr_graph
from repro.dag.placement import (
    PLACEMENT_POLICIES,
    PRIORITY_POLICIES,
    TaskPlacement,
    place_tasks,
    priority_order,
)
from repro.dag.runtime import DAGCAQRConfig, DAGRunResult, run_dag_caqr, run_dag_tsqr

__all__ = [
    "CriticalPath",
    "RankUtilization",
    "ScheduleEntry",
    "communication_counts",
    "critical_path",
    "flop_critical_path",
    "iter_messages",
    "mean_idle_fraction",
    "rank_utilization",
    "write_gantt_csv",
    "Task",
    "TaskGraph",
    "tiled_qr_graph",
    "tsqr_graph",
    "PLACEMENT_POLICIES",
    "PRIORITY_POLICIES",
    "TaskPlacement",
    "place_tasks",
    "priority_order",
    "DAGCAQRConfig",
    "DAGRunResult",
    "run_dag_caqr",
    "run_dag_tsqr",
]
