"""The task-DAG runtime: dataflow execution of tiled algorithms on gridsim.

Four layers (see ``docs/architecture.md``, "The task-DAG runtime" and "The
algorithm registry"):

* :mod:`repro.dag.kernels` — the algorithm registry: per-kernel read/write
  plans, flop counts and implementations, plus per-algorithm loop nests
  (tiled QR, tiled Cholesky, tiled LU ship; new algorithms register here);
* :mod:`repro.dag.graph` — tasks, tile handles and the automatic derivation
  of dependency edges from read/write sets, plus the generic
  :func:`build_tiled_graph` builder and its :func:`tiled_qr_graph` /
  :func:`tiled_cholesky_graph` / :func:`tiled_lu_graph` / :func:`tsqr_graph`
  instances;
* :mod:`repro.dag.runtime` + :mod:`repro.dag.placement` — the SPMD
  ready-queue driver (eager sends, lazy receives) and the placement /
  priority policies it composes;
* :mod:`repro.dag.analysis` — the exact critical-path lower bound, per-rank
  busy/comm/idle breakdowns and Gantt CSV export.
"""

from repro.dag.analysis import (
    CriticalPath,
    RankUtilization,
    ScheduleEntry,
    communication_counts,
    critical_path,
    flop_critical_path,
    iter_messages,
    mean_idle_fraction,
    rank_utilization,
    write_gantt_csv,
)
from repro.dag.graph import (
    Task,
    TaskGraph,
    build_tiled_graph,
    cached_graph,
    clear_graph_cache,
    graph_cache_info,
    set_graph_cache_size,
    tiled_cholesky_graph,
    tiled_lu_graph,
    tiled_qr_graph,
    tsqr_graph,
)
from repro.dag.kernels import (
    ALGORITHMS,
    AlgorithmSpec,
    GraphStructure,
    KERNELS,
    KernelSpec,
    algorithm_spec,
)
from repro.dag.placement import (
    PLACEMENT_POLICIES,
    PRIORITY_POLICIES,
    TaskPlacement,
    place_tasks,
    priority_order,
)
from repro.dag.recovery import (
    RecoveryPlan,
    RecoveryReport,
    build_recovery_plan,
    lost_version_closure,
)
from repro.dag.runtime import (
    DAGCAQRConfig,
    DAGFactorizationConfig,
    DAGRunResult,
    run_dag_caqr,
    run_dag_factorization,
    run_dag_tsqr,
)

__all__ = [
    "CriticalPath",
    "RankUtilization",
    "ScheduleEntry",
    "communication_counts",
    "critical_path",
    "flop_critical_path",
    "iter_messages",
    "mean_idle_fraction",
    "rank_utilization",
    "write_gantt_csv",
    "Task",
    "TaskGraph",
    "build_tiled_graph",
    "cached_graph",
    "clear_graph_cache",
    "graph_cache_info",
    "set_graph_cache_size",
    "tiled_qr_graph",
    "tiled_cholesky_graph",
    "tiled_lu_graph",
    "tsqr_graph",
    "ALGORITHMS",
    "AlgorithmSpec",
    "GraphStructure",
    "KERNELS",
    "KernelSpec",
    "algorithm_spec",
    "PLACEMENT_POLICIES",
    "PRIORITY_POLICIES",
    "TaskPlacement",
    "place_tasks",
    "priority_order",
    "RecoveryPlan",
    "RecoveryReport",
    "build_recovery_plan",
    "lost_version_closure",
    "DAGCAQRConfig",
    "DAGFactorizationConfig",
    "DAGRunResult",
    "run_dag_caqr",
    "run_dag_factorization",
    "run_dag_tsqr",
]
