"""DAG recovery planning: what to re-execute after rank deaths, and where.

The DAG runtime can do what SPMD fundamentally cannot: after a rank dies,
the task graph's read/write sets say exactly which *versions* of which tiles
were lost and which surviving versions suffice to recompute them.  This
module holds the pure planning half of the recovery path (the execution
half lives in :mod:`repro.dag.runtime`):

* :func:`lost_version_closure` — the definitional fixpoint: starting from
  the tasks never effectively executed, repeatedly add the producer of any
  needed version that no survivor holds.  Already-consumed versions whose
  consumers all completed are *not* recomputed — the closure only chases
  versions some pending task (or the result set) still needs.  Initial
  versions (producer ``-1``) are durable input data, re-materialisable
  anywhere for free, so they never force a producer in.
* :func:`build_recovery_plan` — assignment of the closure's tasks onto
  survivors (original rank when alive, round-robin otherwise), the
  pre-seeding moves of surviving versions, the in-round message routes, and
  the re-routed result-tile delivery.
* :class:`RecoveryReport` — the exactly-once effective-execution
  accounting surfaced on :class:`~repro.dag.runtime.DAGRunResult`.

Everything here is deterministic: survivors, holders and assignments are
iterated in sorted order, so two runs of the same ``(config, schedule)``
build identical plans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dag.graph import TaskGraph

__all__ = [
    "RecoveryReport",
    "RecoveryPlan",
    "build_recovery_plan",
    "lost_version_closure",
]


@dataclass(frozen=True)
class RecoveryReport:
    """Exactly-once accounting of one fault-tolerant DAG run.

    ``tasks_reexecuted`` counts executions of tasks that had *already*
    effectively executed on a survivor (their work was redone because a
    version they produced was lost); ``tasks_executed`` counts every task
    execution performed by recovery rounds, including the dead ranks'
    never-finished tasks (executed for the first effective time).  Both are
    cumulative over ``rounds`` (one round per distinct set of dead ranks).
    """

    dead_ranks: tuple[int, ...]
    death_times: tuple[float, ...]
    rounds: int
    tasks_reexecuted: int
    tasks_executed: int
    makespan_s: float
    baseline_makespan_s: float

    @property
    def makespan_overhead_s(self) -> float:
        """Extra simulated seconds paid for surviving the failures."""
        return self.makespan_s - self.baseline_makespan_s

    @property
    def makespan_overhead_pct(self) -> float:
        """Overhead as a percentage of the failure-free makespan."""
        if self.baseline_makespan_s <= 0.0:
            return 0.0
        return 100.0 * self.makespan_overhead_s / self.baseline_makespan_s

    def as_dict(self) -> dict:
        """JSON-safe view (cached result payloads and CLI reports)."""
        return {
            "dead_ranks": list(self.dead_ranks),
            "death_times": list(self.death_times),
            "rounds": self.rounds,
            "tasks_reexecuted": self.tasks_reexecuted,
            "tasks_executed": self.tasks_executed,
            "makespan_s": self.makespan_s,
            "baseline_makespan_s": self.baseline_makespan_s,
            "makespan_overhead_s": self.makespan_overhead_s,
            "makespan_overhead_pct": self.makespan_overhead_pct,
        }


def lost_version_closure(
    graph: "TaskGraph",
    done: set[int],
    available_vkeys: set[int],
    wanted_vkeys: set[int],
) -> set[int]:
    """Tasks that must (re-)execute given what survived.

    ``done`` is the set of tasks effectively executed on survivors;
    ``available_vkeys`` the versioned values (``(producer+1)*H + handle``)
    any survivor still holds; ``wanted_vkeys`` the final versions of the
    result tiles.  The fixpoint starts from the never-executed tasks and
    adds the producer of any version that is needed (as an input of a task
    in the set, or as a result tile) but neither survives nor is already
    being recomputed.  Initial versions (``vkey < n_handles``) are durable
    input data and never force anything in.
    """
    H = graph.n_handles
    tasks = graph.tasks
    closure = {t for t in range(len(tasks)) if t not in done}
    while True:
        needed = set(wanted_vkeys)
        for t in closure:
            task = tasks[t]
            for h, p in zip(task.reads, task.read_producers):
                needed.add((p + 1) * H + h)
        grew = False
        for vkey in needed:
            producer = vkey // H - 1
            if (
                producer >= 0
                and vkey not in available_vkeys
                and producer not in closure
            ):
                closure.add(producer)
                grew = True
        if not grew:
            return closure


@dataclass(frozen=True)
class RecoveryPlan:
    """One recovery round: what runs where, and every message of the round.

    ``tasks`` is the lost-version closure in task-id (topological) order;
    the round executes it with a blocking send/recv protocol over the
    survivors-only communicator that is deadlock-free by the standard
    induction on topological order.  ``preseed`` moves surviving versions
    to the ranks that will consume them *before* any task runs (eager
    sends, so the phase cannot block); ``sends``/``recvs`` route versions
    produced within the round; ``materialize`` lists durable initial
    versions a rank rebuilds locally; ``deliver`` re-routes result tiles
    whose original final rank died.
    """

    tasks: tuple[int, ...]
    assign: dict[int, int]
    preseed: tuple[tuple[int, int, int], ...]  # (vkey, src rank, dest rank)
    sends: dict[int, tuple[tuple[int, int], ...]]  # producer -> ((vkey, dest), ...)
    recvs: dict[int, tuple[tuple[int, int], ...]]  # task -> ((vkey, src), ...)
    materialize: dict[int, tuple[int, ...]]  # task -> initial vkeys to rebuild
    deliver: dict[int, tuple[tuple[int, int], ...]]  # rank -> ((handle, vkey), ...)
    tasks_reexecuted: int


def build_recovery_plan(
    graph: "TaskGraph",
    survivors: Sequence[int],
    registry: Mapping[int, dict],
    wanted: Sequence[tuple[int, int]],
    original_rank_of: Sequence[int],
) -> RecoveryPlan:
    """Plan one recovery round from the survivors' registered partial state.

    ``registry`` maps each survivor to its live ``{"store": {vkey: value},
    "done": {task ids}}``; ``wanted`` is the global ``(handle, final
    vkey)`` result set; ``original_rank_of`` the failure-free placement.
    Built exactly once per round (through the simulation-state memo) by
    whichever survivor arrives first — the idealised global-knowledge
    coordinator of the model.
    """
    H = graph.n_handles
    surv_sorted = tuple(sorted(survivors))
    alive = set(surv_sorted)
    done_global: set[int] = set()
    for r in surv_sorted:
        done_global |= registry[r]["done"]
    holders: dict[int, int] = {}
    for r in surv_sorted:
        for vkey in registry[r]["store"]:
            if vkey not in holders:
                holders[vkey] = r

    wanted_vkeys = {vkey for _h, vkey in wanted}
    closure = lost_version_closure(graph, done_global, set(holders), wanted_vkeys)
    tasks = tuple(sorted(closure))

    assign: dict[int, int] = {}
    for t in tasks:
        origin = original_rank_of[t]
        assign[t] = origin if origin in alive else surv_sorted[t % len(surv_sorted)]

    preseed: list[tuple[int, int, int]] = []
    sends: dict[int, list[tuple[int, int]]] = {}
    recvs: dict[int, list[tuple[int, int]]] = {}
    materialize: dict[int, list[int]] = {}
    routed: set[tuple[int, int]] = set()  # (vkey, dest) already travelling
    for t in tasks:
        dest = assign[t]
        dest_store = registry[dest]["store"]
        task = graph.tasks[t]
        for h, p in zip(task.reads, task.read_producers):
            vkey = (p + 1) * H + h
            if (vkey, dest) in routed:
                continue
            if p >= 0 and p in closure:
                # Produced within this round; route it if it crosses ranks.
                src = assign[p]
                if src != dest:
                    routed.add((vkey, dest))
                    sends.setdefault(p, []).append((vkey, dest))
                    recvs.setdefault(t, []).append((vkey, src))
            elif p >= 0:
                if vkey in dest_store:
                    continue
                holder = holders[vkey]  # the closure guarantees a holder
                routed.add((vkey, dest))
                preseed.append((vkey, holder, dest))
            else:
                if vkey not in dest_store:
                    routed.add((vkey, dest))
                    materialize.setdefault(t, []).append(vkey)

    deliver: dict[int, list[tuple[int, int]]] = {}
    for h, vkey in wanted:
        producer = vkey // H - 1
        if producer >= 0 and producer in closure:
            deliver.setdefault(assign[producer], []).append((h, vkey))
        elif vkey in holders:
            deliver.setdefault(holders[vkey], []).append((h, vkey))
        else:
            # A durable initial version nobody holds: the first survivor
            # re-materialises it at delivery time.
            deliver.setdefault(surv_sorted[0], []).append((h, vkey))

    return RecoveryPlan(
        tasks=tasks,
        assign=assign,
        preseed=tuple(preseed),
        sends={t: tuple(v) for t, v in sends.items()},
        recvs={t: tuple(v) for t, v in recvs.items()},
        materialize={t: tuple(v) for t, v in materialize.items()},
        deliver={r: tuple(v) for r, v in deliver.items()},
        tasks_reexecuted=len(closure & done_global),
    )
