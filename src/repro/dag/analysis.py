"""The analysis layer of the task-DAG runtime.

Three questions a dataflow schedule raises, answered from first principles:

* **How fast could this graph possibly run?**  :func:`critical_path` walks
  the weighted DAG once (task ids are a topological order) and returns the
  exact longest chain of dependent work under the platform's kernel-rate
  model — a lower bound no schedule, on any number of ranks, with any
  network, can beat.  The gap between this bound and the measured makespan
  is the price of communication plus imperfect overlap.
* **Where did the time go?**  :func:`rank_utilization` splits every rank's
  makespan into *busy* (compute charged to its clock), *comm wait* (clock
  advances caused by point-to-point receives — zero when a tile had already
  arrived, i.e. fully hidden latency) and *idle* (everything else: empty
  ready queue, end-of-run imbalance), straight from the trace counters of
  :class:`~repro.gridsim.trace.TraceSummary`.
* **What did the schedule look like?**  :func:`write_gantt_csv` exports the
  per-task ``(task, kernel, rank, start, end)`` records the runtime collects
  with ``record_schedule=True`` — a Gantt chart in CSV form.  For runs that
  did *not* retain per-task records (the default at scale), the streaming
  observability layer provides the bounded-memory equivalent:
  :func:`write_utilization_timeline_csv` and
  :func:`write_utilization_perfetto` render the per-rank busy/wait windows
  that :class:`~repro.obs.stats.StreamingTraceStats` accumulates online, so
  a Gantt-like utilisation view no longer requires ``record_schedule`` or
  ``record=True``.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.dag.graph import TaskGraph
from repro.gridsim.kernelmodel import KernelRateModel
from repro.gridsim.trace import TraceSummary

__all__ = [
    "CriticalPath",
    "RankUtilization",
    "ScheduleEntry",
    "task_seconds",
    "downstream_seconds",
    "critical_path",
    "flop_critical_path",
    "communication_counts",
    "rank_utilization",
    "mean_idle_fraction",
    "write_gantt_csv",
    "write_utilization_perfetto",
    "write_utilization_timeline_csv",
]


@dataclass(frozen=True)
class ScheduleEntry:
    """One executed task of a recorded schedule."""

    task: int
    kernel: str
    rank: int
    start_s: float
    end_s: float


@dataclass(frozen=True)
class CriticalPath:
    """The longest chain of dependent work in a task graph."""

    seconds: float
    flops: float
    tasks: tuple[int, ...]

    @property
    def length(self) -> int:
        """Number of tasks on the path."""
        return len(self.tasks)


@dataclass(frozen=True)
class RankUtilization:
    """Makespan breakdown of one rank."""

    rank: int
    busy_s: float
    comm_wait_s: float
    idle_s: float

    @property
    def total_s(self) -> float:
        """Sum of the three components (the run's makespan)."""
        return self.busy_s + self.comm_wait_s + self.idle_s

    def idle_fraction(self) -> float:
        """Idle share of the makespan (0 for a zero-length run)."""
        return self.idle_s / self.total_s if self.total_s > 0 else 0.0


def task_seconds(graph: TaskGraph, kernel_model: KernelRateModel) -> list[float]:
    """Virtual seconds each task takes under the platform's kernel model.

    Identical to what the simulation charges per task, so the critical-path
    bound and the measured makespan live on the same clock.
    """
    return [
        kernel_model.time(t.flops, t.kernel_class, t.width) for t in graph.tasks
    ]


def downstream_seconds(
    graph: TaskGraph, kernel_model: KernelRateModel
) -> list[float]:
    """Longest time-weighted path from each task to a sink, inclusive.

    One reverse sweep over the tasks (ids are topological by construction),
    O(V + E).  This is also the ``critical-path`` scheduling priority.
    """
    times = task_seconds(graph, kernel_model)
    cp = list(times)
    succs = graph.successors()
    for tid in range(graph.n_tasks - 1, -1, -1):
        best = 0.0
        for s in succs[tid]:
            if cp[s] > best:
                best = cp[s]
        cp[tid] = times[tid] + best
    return cp


def critical_path(graph: TaskGraph, kernel_model: KernelRateModel) -> CriticalPath:
    """Exact critical-path lower bound of ``graph`` under ``kernel_model``.

    No execution — on any rank count, with any placement, priority or
    network — can finish before this many seconds: the tasks on the returned
    chain depend on one another and must run sequentially.
    """
    if graph.n_tasks == 0:
        return CriticalPath(seconds=0.0, flops=0.0, tasks=())
    times = task_seconds(graph, kernel_model)
    cp = list(times)
    next_on_path = [-1] * graph.n_tasks
    succs = graph.successors()
    for tid in range(graph.n_tasks - 1, -1, -1):
        best, best_s = 0.0, -1
        for s in succs[tid]:
            if cp[s] > best:
                best, best_s = cp[s], s
        cp[tid] = times[tid] + best
        next_on_path[tid] = best_s
    start = max(range(graph.n_tasks), key=lambda t: (cp[t], -t))
    path = []
    t = start
    while t >= 0:
        path.append(t)
        t = next_on_path[t]
    flops = sum(graph.tasks[t].flops for t in path)
    return CriticalPath(seconds=cp[start], flops=flops, tasks=tuple(path))


def flop_critical_path(graph: TaskGraph) -> float:
    """Flops of the longest flop-weighted dependence chain of ``graph``.

    The machine-free cousin of :func:`critical_path`: the flop count Eq. (1)
    charges ``gamma`` against for a dataflow execution (no schedule can
    execute fewer dependent flops sequentially).
    """
    if graph.n_tasks == 0:
        return 0.0
    cp = [t.flops for t in graph.tasks]
    succs = graph.successors()
    for tid in range(graph.n_tasks - 1, -1, -1):
        best = 0.0
        for s in succs[tid]:
            if cp[s] > best:
                best = cp[s]
        cp[tid] = graph.tasks[tid].flops + best
    return max(cp)


def iter_messages(graph: TaskGraph, placement):
    """Yield ``(producer, handle, src_rank, dest_rank, nbytes)`` once per
    message a DAG execution of ``graph`` under ``placement`` sends.

    One message per (value version, consumer rank) pair, in the
    deterministic consumer scan order.  This is the **single** definition of
    the communication plan: the runtime's ``_CommPlan`` schedules its sends
    from this generator and the cost model sums it, so measured traces match
    modelled counts identically by construction.
    """
    rank_of = placement.task_rank
    planned: set[tuple[int, int, int]] = set()
    for tid, task in enumerate(graph.tasks):
        me = rank_of[tid]
        for h, prod in zip(task.reads, task.read_producers):
            src = rank_of[prod] if prod >= 0 else placement.initial_owner[h]
            if src == me:
                continue
            key = (prod, h, me)
            if key in planned:
                continue
            planned.add(key)
            if prod >= 0:
                idx = graph.tasks[prod].writes.index(h)
                nbytes = graph.tasks[prod].write_nbytes[idx]
            else:
                nbytes = graph.handle_nbytes[h]
            yield prod, h, src, me, nbytes


def communication_counts(graph: TaskGraph, placement) -> tuple[int, int]:
    """``(messages, bytes)`` of a DAG execution: :func:`iter_messages` summed."""
    messages = 0
    nbytes = 0
    for _prod, _h, _src, _dest, size in iter_messages(graph, placement):
        messages += 1
        nbytes += size
    return messages, nbytes


def rank_utilization(
    trace: TraceSummary,
    makespan_s: float,
    ranks: Iterable[int] | None = None,
) -> list[RankUtilization]:
    """Busy / comm-wait / idle breakdown of every rank of a finished run.

    ``ranks`` restricts the report (e.g. to ranks that owned tasks); by
    default every rank of the trace is included.
    """
    busy = trace.busy_s_per_rank
    wait = trace.comm_wait_s_per_rank
    selected = range(len(busy)) if ranks is None else ranks
    out = []
    for r in selected:
        b, w = busy[r], wait[r]
        out.append(
            RankUtilization(
                rank=r,
                busy_s=b,
                comm_wait_s=w,
                idle_s=max(0.0, makespan_s - b - w),
            )
        )
    return out


def mean_idle_fraction(
    trace: TraceSummary, makespan_s: float, ranks: Iterable[int] | None = None
) -> float:
    """Average idle fraction over the (selected) ranks of a run."""
    usage = rank_utilization(trace, makespan_s, ranks)
    if not usage or makespan_s <= 0:
        return 0.0
    return sum(u.idle_s for u in usage) / (makespan_s * len(usage))


def write_gantt_csv(
    schedule: Sequence[ScheduleEntry], path: str | Path
) -> Path:
    """Export a recorded schedule as a Gantt-chart CSV and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["task", "kernel", "rank", "start_s", "end_s"])
        for entry in schedule:
            writer.writerow(
                [entry.task, entry.kernel, entry.rank, entry.start_s, entry.end_s]
            )
    return path


def write_utilization_timeline_csv(trace: TraceSummary, path: str | Path) -> Path:
    """Export the streaming busy/wait/bytes windows of a live run as CSV.

    The windowed counterpart of :func:`write_gantt_csv` for runs without
    ``record_schedule``: memory-bounded, always on, one row per active
    ``(rank, window)``.  Requires a summary from a live simulation
    (``trace.stats`` is None for cache-rebuilt summaries — re-simulate).
    """
    from repro.obs.export import write_timeline_csv

    return write_timeline_csv(path, trace)


def write_utilization_perfetto(
    trace: TraceSummary, path: str | Path, *, title: str = "repro-dag"
) -> Path:
    """Export the streaming windows as Chrome-trace/Perfetto JSON.

    Loads in ``ui.perfetto.dev`` / ``chrome://tracing``: one thread track
    per rank, a ``busy`` and a ``comm-wait`` slice per active window, hot
    spots and latency quantiles in ``otherData``.
    """
    from repro.obs.export import write_perfetto_trace

    return write_perfetto_trace(path, trace, title=title)
