"""repro — reproduction of "QR Factorization of Tall and Skinny Matrices in a
Grid Computing Environment" (Agullo, Coti, Dongarra, Herault, Langou, 2010).

The package is organised in layers:

* :mod:`repro.kernels`     — LAPACK-style dense kernels (Householder, tiled,
  Givens, Gram-Schmidt and Cholesky-QR baselines);
* :mod:`repro.tsqr`        — the paper's contribution: TSQR with configurable
  reduction trees, the implicit Q factor, QCG-TSQR on the simulated grid and
  tiled CAQR for general matrices;
* :mod:`repro.programs`    — the SPMD program layer shared by the distributed
  algorithms, and distributed CAQR on the grid (paper §VI follow-up);
* :mod:`repro.dag`         — the task-DAG runtime: dataflow execution of the
  tiled kernels (graph builders, placement/priority policies, ready-queue
  driver, critical-path analysis);
* :mod:`repro.scalapack`   — the ScaLAPACK-style distributed baseline
  (PDGEQR2 / PDGEQRF / PDORGQR analogues);
* :mod:`repro.gridsim`     — the simulated grid: machines, heterogeneous
  network, topology-aware middleware (QCG-OMPI analogue), virtual-time MPI;
* :mod:`repro.model`       — the §IV cost model, Eq. (1) predictor and the
  five properties;
* :mod:`repro.experiments` — the §V evaluation harness (Grid'5000 platform,
  figure/table regeneration, reporting);
* :mod:`repro.linalg`      — application-level consumers (block
  orthogonalization, least squares, block eigensolver, randomized SVD);
* :mod:`repro.virtual`     — shape-only matrix payloads and flop formulas;
* :mod:`repro.util`        — validation, generators, partitioning, units.

Quickstart
----------
>>> import numpy as np
>>> from repro import tsqr
>>> a = np.random.default_rng(0).standard_normal((10_000, 32))
>>> result = tsqr(a, n_domains=16, want_q=True)
>>> bool(np.allclose(result.q.explicit() @ result.r, a))
True
"""

from repro.dag import (
    DAGCAQRConfig,
    DAGRunResult,
    TaskGraph,
    run_dag_caqr,
    run_dag_tsqr,
    tiled_qr_graph,
    tsqr_graph,
)
from repro.exceptions import ReproError
from repro.linalg import block_subspace_iteration, lstsq_tsqr, orthonormalize, randomized_svd
from repro.programs import (
    CAQRConfig,
    CAQRRunResult,
    caqr_program,
    run_parallel_caqr,
    run_program,
)
from repro.scalapack import ScaLAPACKConfig, run_scalapack_qr
from repro.tsqr import (
    TSQRConfig,
    TSQRQFactor,
    TSQRResult,
    caqr,
    caqr_r,
    run_parallel_tsqr,
    tsqr,
    tsqr_r,
)

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "block_subspace_iteration",
    "lstsq_tsqr",
    "orthonormalize",
    "randomized_svd",
    "TSQRConfig",
    "TSQRQFactor",
    "TSQRResult",
    "caqr",
    "caqr_r",
    "CAQRConfig",
    "CAQRRunResult",
    "caqr_program",
    "run_parallel_caqr",
    "run_program",
    "DAGCAQRConfig",
    "DAGRunResult",
    "TaskGraph",
    "run_dag_caqr",
    "run_dag_tsqr",
    "tiled_qr_graph",
    "tsqr_graph",
    "run_parallel_tsqr",
    "tsqr",
    "tsqr_r",
    "ScaLAPACKConfig",
    "run_scalapack_qr",
    "__version__",
]
