"""Machine model: processors, nodes, clusters and grids.

This module describes the *compute* side of the platform (the network side
lives in :mod:`repro.gridsim.network`).  The description mirrors the
experimental setup of paper §V-A: a grid is a federation of clusters, each
cluster is a set of identical nodes, each node hosts a number of processors
(the paper runs two single-threaded processes per dual-processor node), and
each processor has a sustained DGEMM rate that bounds every dense kernel
(paper §V-B: GotoBLAS DGEMM ≈ 3.67 Gflop/s per processor, giving the grid a
practical upper bound of ~940 Gflop/s).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import TopologyError
from repro.util.units import GIGA

__all__ = ["ProcessorSpec", "NodeSpec", "ClusterSpec", "GridSpec"]


@dataclass(frozen=True)
class ProcessorSpec:
    """A single processor (one MPI process in the paper's configuration).

    Attributes
    ----------
    name:
        Human-readable model name (e.g. ``"AMD Opteron 246"``).
    peak_gflops:
        Theoretical peak of the processor in Gflop/s.
    dgemm_gflops:
        Sustained DGEMM rate in Gflop/s; the practical upper bound used by
        the paper to normalise achieved performance.
    """

    name: str = "generic"
    peak_gflops: float = 8.0
    dgemm_gflops: float = 3.67

    def __post_init__(self) -> None:
        if self.peak_gflops <= 0 or self.dgemm_gflops <= 0:
            raise TopologyError("processor rates must be positive")

    @property
    def dgemm_flops_per_s(self) -> float:
        """Sustained DGEMM rate in flop/s."""
        return self.dgemm_gflops * GIGA


@dataclass(frozen=True)
class NodeSpec:
    """A compute node hosting ``processes_per_node`` MPI processes."""

    processor: ProcessorSpec = field(default_factory=ProcessorSpec)
    processes_per_node: int = 2

    def __post_init__(self) -> None:
        if self.processes_per_node <= 0:
            raise TopologyError("a node must host at least one process")

    @property
    def dgemm_gflops(self) -> float:
        """Aggregate sustained DGEMM rate of the node in Gflop/s."""
        return self.processor.dgemm_gflops * self.processes_per_node


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster: ``n_nodes`` identical nodes at one site."""

    name: str
    n_nodes: int
    node: NodeSpec = field(default_factory=NodeSpec)

    def __post_init__(self) -> None:
        if self.n_nodes <= 0:
            raise TopologyError(f"cluster {self.name!r} must have at least one node")

    @property
    def n_processes(self) -> int:
        """Number of MPI processes the cluster can host."""
        return self.n_nodes * self.node.processes_per_node

    @property
    def dgemm_gflops(self) -> float:
        """Aggregate sustained DGEMM rate of the cluster in Gflop/s."""
        return self.n_nodes * self.node.dgemm_gflops


@dataclass(frozen=True)
class GridSpec:
    """A computational grid: a federation of geographically distinct clusters."""

    name: str
    clusters: tuple[ClusterSpec, ...]

    def __post_init__(self) -> None:
        if not self.clusters:
            raise TopologyError("a grid must contain at least one cluster")
        names = [c.name for c in self.clusters]
        if len(set(names)) != len(names):
            raise TopologyError(f"duplicate cluster names in grid {self.name!r}: {names}")

    # ------------------------------------------------------------------ api
    @property
    def n_clusters(self) -> int:
        """Number of geographical sites."""
        return len(self.clusters)

    @property
    def cluster_names(self) -> tuple[str, ...]:
        """Names of the sites, in declaration order."""
        return tuple(c.name for c in self.clusters)

    @property
    def n_processes(self) -> int:
        """Total number of MPI processes the grid can host."""
        return sum(c.n_processes for c in self.clusters)

    @property
    def dgemm_gflops(self) -> float:
        """Aggregate sustained DGEMM rate of the whole grid in Gflop/s."""
        return sum(c.dgemm_gflops for c in self.clusters)

    def cluster(self, name: str) -> ClusterSpec:
        """Return the cluster called ``name``."""
        for c in self.clusters:
            if c.name == name:
                return c
        raise TopologyError(f"grid {self.name!r} has no cluster named {name!r}")

    def cluster_index(self, name: str) -> int:
        """Return the index of the cluster called ``name``."""
        for i, c in enumerate(self.clusters):
            if c.name == name:
                return i
        raise TopologyError(f"grid {self.name!r} has no cluster named {name!r}")

    def subset(self, names: list[str] | tuple[str, ...]) -> "GridSpec":
        """Return a grid restricted to the named clusters (order preserved).

        Used to run the paper's one-site / two-site / four-site comparisons
        on the same platform description.
        """
        clusters = tuple(self.cluster(n) for n in names)
        return GridSpec(name=f"{self.name}[{','.join(names)}]", clusters=clusters)
