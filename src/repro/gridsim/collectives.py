"""Tree-shaped collective schedules and their virtual-time simulation.

An MPI collective is, operationally, a schedule of point-to-point messages
along a tree.  ScaLAPACK's reductions use a plain rank-ordered binary tree —
which is exactly why they lack locality on a grid (paper Fig. 1) — while the
topology-aware middleware lets the application use a hierarchical tree
(binary inside each cluster, then binary across clusters, paper Fig. 2).

This module provides:

* tree builders (``flat_tree``, ``binary_tree``, ``hierarchical_tree``) that
  return a parent/children description over an arbitrary participant list;
* virtual-time simulators for ``reduce`` / ``broadcast`` schedules that
  propagate per-participant clocks edge by edge, calling back into the
  communicator for link pricing, trace recording and combine costs.

The functions are pure (no global state) so they are unit-testable without a
running simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Callable, Sequence

from repro.exceptions import TreeError

__all__ = [
    "TreeSchedule",
    "flat_tree",
    "binary_tree",
    "hierarchical_tree",
    "simulate_reduce",
    "simulate_broadcast",
]


@dataclass(frozen=True)
class TreeSchedule:
    """A rooted tree over ``participants`` (indices are *positions* in that list).

    ``children[i]`` lists the positions whose values are combined into
    position ``i`` (for a reduce) or that receive from ``i`` (for a bcast),
    in combine/send order.
    """

    participants: tuple[int, ...]
    root: int
    children: tuple[tuple[int, ...], ...]

    def __post_init__(self) -> None:
        n = len(self.participants)
        if not 0 <= self.root < n:
            raise TreeError(f"root position {self.root} out of range for {n} participants")
        if len(self.children) != n:
            raise TreeError("children table size does not match participant count")
        seen: set[int] = set()
        for i, kids in enumerate(self.children):
            for k in kids:
                if not 0 <= k < n:
                    raise TreeError(f"child position {k} out of range")
                if k in seen:
                    raise TreeError(f"position {k} has two parents")
                if k == i:
                    raise TreeError(f"position {k} is its own child")
                seen.add(k)
        if self.root in seen:
            raise TreeError("root cannot have a parent")
        if len(seen) != n - 1:
            raise TreeError("tree is not spanning: some participants are unreachable")

    # ------------------------------------------------------------------ api
    @property
    def size(self) -> int:
        """Number of participants."""
        return len(self.participants)

    @cached_property
    def _parent_table(self) -> tuple[int | None, ...]:
        # Built once per tree: parent() used to scan every children list per
        # call, which was quadratic over a whole reduction at scale.
        table: list[int | None] = [None] * len(self.participants)
        for i, kids in enumerate(self.children):
            for k in kids:
                table[k] = i
        return tuple(table)

    def parent(self, position: int) -> int | None:
        """Return the parent position of ``position`` (None for the root)."""
        return self._parent_table[position]

    def depth(self) -> int:
        """Return the number of edges on the longest root-to-leaf path."""

        def _depth(pos: int) -> int:
            kids = self.children[pos]
            if not kids:
                return 0
            return 1 + max(_depth(k) for k in kids)

        return _depth(self.root)

    def edges(self) -> list[tuple[int, int]]:
        """Return all (child_position, parent_position) edges."""
        out = []
        for parent, kids in enumerate(self.children):
            for k in kids:
                out.append((k, parent))
        return out


def flat_tree(n: int, root: int = 0) -> TreeSchedule:
    """Every non-root participant is a direct child of the root.

    This is the tree of the out-of-core / multicore CAQR variants
    (paper §II-C); communication-wise it serialises everything at the root.
    """
    if n <= 0:
        raise TreeError("a tree needs at least one participant")
    children = [tuple()] * n
    children[root] = tuple(i for i in range(n) if i != root)
    return TreeSchedule(participants=tuple(range(n)), root=root, children=tuple(children))


def binary_tree(n: int, root: int = 0) -> TreeSchedule:
    """Rank-ordered binary tree over contiguous position ranges.

    The tree is built by recursive range splitting: the first position of a
    range is its subtree root, the rest of the range is halved and the first
    position of each half becomes a child.  Every subtree therefore covers a
    *contiguous* run of positions — the defining property of the binomial /
    binary trees inside real MPI implementations (MPICH, Open MPI), whose
    subtrees are contiguous rank blocks.  The tree remains oblivious to any
    *topology* (exactly like the reductions inside ScaLAPACK/MPI collectives
    that the paper criticises: contiguous rank ranges only preserve locality
    by accident of the placement), but it does not artificially scatter
    neighbouring ranks across subtrees the way a heap labelling
    (children of i: 2i+1, 2i+2) would — a heap-labelled tree over P ranks in
    C clusters makes ~3/4 of its edges inter-cluster, which real MPI trees
    do not.
    """
    if n <= 0:
        raise TreeError("a tree needs at least one participant")
    if not 0 <= root < n:
        raise TreeError(f"root {root} out of range")
    # Build the range-split tree on positions 0..n-1 then relabel so that
    # ``root`` sits at position 0 (swap the two labels).
    label = list(range(n))
    label[0], label[root] = label[root], label[0]
    children: list[list[int]] = [[] for _ in range(n)]

    def _split(lo: int, hi: int) -> None:
        """Attach children of ``lo`` covering the range ``[lo, hi)``."""
        first, rest = lo, hi - lo - 1
        if rest <= 0:
            return
        mid = lo + 1 + (rest + 1) // 2
        children[label[first]].append(label[lo + 1])
        _split(lo + 1, mid)
        if mid < hi:
            children[label[first]].append(label[mid])
            _split(mid, hi)

    _split(0, n)
    return TreeSchedule(
        participants=tuple(range(n)),
        root=root,
        children=tuple(tuple(k) for k in children),
    )


def hierarchical_tree(
    groups: Sequence[Sequence[int]], *, root_group: int = 0
) -> TreeSchedule:
    """Two-level tree: binary tree inside each group, binary tree across groups.

    ``groups`` partitions the positions ``0..n-1`` into clusters; the local
    roots of the per-group binary trees are themselves connected by a binary
    tree whose root lives in ``root_group``.  Each inter-group edge is a
    single message — the structural property that gives the paper's tuned
    reduction its optimal count of inter-cluster messages.
    """
    all_positions = [p for g in groups for p in g]
    n = len(all_positions)
    if n == 0:
        raise TreeError("hierarchical tree needs at least one participant")
    if sorted(all_positions) != list(range(n)):
        raise TreeError("groups must partition positions 0..n-1 exactly")
    if not 0 <= root_group < len(groups) or not groups[root_group]:
        raise TreeError(f"root group {root_group} is out of range or empty")

    children: list[list[int]] = [[] for _ in range(n)]
    group_roots: list[int] = []
    for group in groups:
        if not group:
            continue
        members = list(group)
        # Heap-shaped binary tree inside the group, rooted at its first member.
        for i, pos in enumerate(members):
            for c in (2 * i + 1, 2 * i + 2):
                if c < len(members):
                    children[pos].append(members[c])
        group_roots.append(members[0])
    # Binary tree across the group roots, rooted at root_group's root.
    order = [group_roots[root_group]] + [
        r for i, r in enumerate(group_roots) if i != root_group
    ]
    for i, pos in enumerate(order):
        for c in (2 * i + 1, 2 * i + 2):
            if c < len(order):
                children[pos].append(order[c])
    return TreeSchedule(
        participants=tuple(range(n)),
        root=order[0],
        children=tuple(tuple(k) for k in children),
    )


# --------------------------------------------------------------------------
# Virtual-time simulation of reduce / broadcast schedules.
# --------------------------------------------------------------------------

#: edge_time(child_position, parent_position, payload) -> seconds
EdgeTime = Callable[[int, int, object], float]
#: combine(accumulator, incoming) -> (new_accumulator, seconds)
Combine = Callable[[object, object], tuple[object, float]]


def simulate_reduce(
    tree: TreeSchedule,
    values: list[object],
    clocks: list[float],
    edge_time: EdgeTime,
    combine: Combine,
) -> tuple[object, list[float]]:
    """Simulate a tree reduction and return ``(result, exit_clocks)``.

    ``values[i]``/``clocks[i]`` are the contribution and entry time of
    position ``i``.  Each internal node waits for each child subtree to
    finish, pays the child→parent transfer, then pays the combine cost.
    ``exit_clocks[i]`` is the time position ``i`` finishes its part of the
    reduction (the root's exit time is the completion time of the whole
    reduction).
    """
    if len(values) != tree.size or len(clocks) != tree.size:
        raise TreeError("values/clocks size does not match the tree")
    exit_clocks = list(clocks)
    acc: list[object] = list(values)

    def _finish(pos: int) -> float:
        ready = clocks[pos]
        for child in tree.children[pos]:
            child_done = _finish(child)
            arrival = child_done + edge_time(child, pos, acc[child])
            ready = max(ready, arrival)
            acc[pos], dt = combine(acc[pos], acc[child])
            ready += dt
        exit_clocks[pos] = ready
        return ready

    _finish(tree.root)
    return acc[tree.root], exit_clocks


def simulate_broadcast(
    tree: TreeSchedule,
    value: object,
    clocks: list[float],
    edge_time: EdgeTime,
    *,
    root_ready: float | None = None,
) -> tuple[list[object], list[float]]:
    """Simulate a tree broadcast and return per-position values and clocks.

    The root starts sending at ``max(clocks[root], root_ready)``; a parent
    sends to its children one after the other (the sender is busy for the
    duration of each transfer), children forward as soon as they have
    received.  All positions receive the same ``value``.
    """
    if len(clocks) != tree.size:
        raise TreeError("clocks size does not match the tree")
    exit_clocks = list(clocks)
    start = clocks[tree.root] if root_ready is None else max(clocks[tree.root], root_ready)
    exit_clocks[tree.root] = start

    def _send_down(pos: int) -> None:
        sender_busy = exit_clocks[pos]
        for child in tree.children[pos]:
            dt = edge_time(pos, child, value)
            sender_busy += dt
            exit_clocks[child] = max(clocks[child], sender_busy)
            _send_down(child)
        exit_clocks[pos] = sender_busy

    _send_down(tree.root)
    return [value] * tree.size, exit_clocks
