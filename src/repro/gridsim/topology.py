"""Process placement: mapping MPI ranks onto the grid's nodes and clusters.

The paper's whole argument hinges on *where* the processes of a computation
live: QCG-OMPI guarantees that processes of one group land on one cluster, so
a reduction tree built on top of those groups crosses the wide-area links only
once per cluster.  A :class:`ProcessPlacement` captures the rank → (cluster,
node, slot) mapping and answers locality queries (same node?, same cluster?,
ranks of a cluster, link class between two ranks).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import PlacementError
from repro.gridsim.machine import GridSpec
from repro.gridsim.network import LinkClass, NetworkModel

__all__ = ["ProcessLocation", "ProcessPlacement", "block_placement", "round_robin_placement"]


@dataclass(frozen=True)
class ProcessLocation:
    """Physical location of one MPI process."""

    cluster: str
    node: int
    slot: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.cluster}/node{self.node}/slot{self.slot}"


@dataclass(frozen=True)
class ProcessPlacement:
    """Immutable mapping from rank to :class:`ProcessLocation`.

    The placement is the contract between the middleware (which allocated the
    resources), the communicator (which prices every message according to the
    link between the two endpoints) and the algorithms (which shape their
    reduction trees around cluster boundaries).
    """

    grid: GridSpec
    locations: tuple[ProcessLocation, ...]

    def __post_init__(self) -> None:
        known = set(self.grid.cluster_names)
        for rank, loc in enumerate(self.locations):
            if loc.cluster not in known:
                raise PlacementError(
                    f"rank {rank} placed on unknown cluster {loc.cluster!r}"
                )
            cluster = self.grid.cluster(loc.cluster)
            if not 0 <= loc.node < cluster.n_nodes:
                raise PlacementError(
                    f"rank {rank} placed on node {loc.node} of cluster {loc.cluster!r} "
                    f"which only has {cluster.n_nodes} nodes"
                )
            if not 0 <= loc.slot < cluster.node.processes_per_node:
                raise PlacementError(
                    f"rank {rank} placed on slot {loc.slot} but nodes of "
                    f"{loc.cluster!r} host {cluster.node.processes_per_node} processes"
                )

    # ------------------------------------------------------------------ api
    @property
    def size(self) -> int:
        """Number of placed processes (MPI world size)."""
        return len(self.locations)

    def location(self, rank: int) -> ProcessLocation:
        """Return the location of ``rank``."""
        self._check_rank(rank)
        return self.locations[rank]

    def cluster_of(self, rank: int) -> str:
        """Return the cluster name hosting ``rank``."""
        return self.location(rank).cluster

    def node_of(self, rank: int) -> tuple[str, int]:
        """Return the ``(cluster, node)`` pair hosting ``rank``."""
        loc = self.location(rank)
        return (loc.cluster, loc.node)

    def same_cluster(self, a: int, b: int) -> bool:
        """True when both ranks are hosted by the same cluster."""
        return self.cluster_of(a) == self.cluster_of(b)

    def same_node(self, a: int, b: int) -> bool:
        """True when both ranks are hosted by the same node."""
        return self.node_of(a) == self.node_of(b)

    def ranks_of_cluster(self, cluster: str) -> list[int]:
        """Return all ranks hosted by ``cluster``, in rank order."""
        return [r for r, loc in enumerate(self.locations) if loc.cluster == cluster]

    def ranks_by_cluster(self) -> dict[str, list[int]]:
        """Return the ranks grouped by cluster, preserving cluster order."""
        out: dict[str, list[int]] = {name: [] for name in self.grid.cluster_names}
        for r, loc in enumerate(self.locations):
            out[loc.cluster].append(r)
        return {name: ranks for name, ranks in out.items() if ranks}

    def clusters_used(self) -> list[str]:
        """Cluster names actually hosting at least one rank."""
        return list(self.ranks_by_cluster().keys())

    def link_class(self, network: NetworkModel, a: int, b: int) -> LinkClass:
        """Return the class of the link a message from ``a`` to ``b`` uses."""
        if a == b:
            return LinkClass.SELF
        la, lb = self.locations[a], self.locations[b]
        return network.classify(la.cluster, la.node, lb.cluster, lb.node)

    def transfer_time(self, network: NetworkModel, nbytes: int | float, a: int, b: int) -> float:
        """Seconds needed to move ``nbytes`` from rank ``a`` to rank ``b``."""
        if a == b:
            return 0.0
        la, lb = self.locations[a], self.locations[b]
        return network.transfer_time(nbytes, la.cluster, la.node, lb.cluster, lb.node)

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise PlacementError(f"rank {rank} out of range [0, {self.size})")


def block_placement(
    grid: GridSpec,
    *,
    nodes_per_cluster: int | None = None,
    processes_per_node: int | None = None,
    clusters: list[str] | None = None,
) -> ProcessPlacement:
    """Place contiguous rank blocks cluster by cluster (the QCG-OMPI layout).

    Ranks fill the first cluster node by node and slot by slot, then move to
    the next cluster.  This mirrors both the paper's reservation (32 nodes per
    cluster, 2 processes per node) and the property that consecutive ranks are
    co-located, which the topology-aware reduction trees rely on.

    Parameters
    ----------
    nodes_per_cluster:
        Number of nodes reserved on each cluster (default: all of them).
    processes_per_node:
        Number of processes started on each node (default: the node's
        capacity; the paper uses 2).
    clusters:
        Subset of cluster names to use, in order (default: all clusters).
    """
    names = list(clusters) if clusters is not None else list(grid.cluster_names)
    locations: list[ProcessLocation] = []
    for name in names:
        cluster = grid.cluster(name)
        n_nodes = nodes_per_cluster if nodes_per_cluster is not None else cluster.n_nodes
        ppn = (
            processes_per_node
            if processes_per_node is not None
            else cluster.node.processes_per_node
        )
        if n_nodes > cluster.n_nodes:
            raise PlacementError(
                f"requested {n_nodes} nodes on {name!r} which has {cluster.n_nodes}"
            )
        if ppn > cluster.node.processes_per_node:
            raise PlacementError(
                f"requested {ppn} processes per node on {name!r} whose nodes host "
                f"{cluster.node.processes_per_node}"
            )
        for node in range(n_nodes):
            for slot in range(ppn):
                locations.append(ProcessLocation(cluster=name, node=node, slot=slot))
    return ProcessPlacement(grid=grid, locations=tuple(locations))


def round_robin_placement(
    grid: GridSpec,
    n_processes: int,
    *,
    processes_per_node: int | None = None,
    clusters: list[str] | None = None,
) -> ProcessPlacement:
    """Deal ranks out to clusters in round-robin order.

    This is the *anti-pattern* placement the paper warns about in the Fig. 1
    caption ("if process ranks are randomly distributed, the figure can be
    worse"): consecutive ranks land on different clusters, so rank-ordered
    binary reduction trees cross the wide-area links at almost every edge.
    It is used by the ablation benchmarks to quantify that effect.
    """
    names = list(clusters) if clusters is not None else list(grid.cluster_names)
    next_node = {name: 0 for name in names}
    next_slot = {name: 0 for name in names}
    locations: list[ProcessLocation] = []
    for i in range(n_processes):
        name = names[i % len(names)]
        cluster = grid.cluster(name)
        ppn = (
            processes_per_node
            if processes_per_node is not None
            else cluster.node.processes_per_node
        )
        node, slot = next_node[name], next_slot[name]
        if node >= cluster.n_nodes:
            raise PlacementError(f"cluster {name!r} is out of capacity at rank {i}")
        locations.append(ProcessLocation(cluster=name, node=node, slot=slot))
        slot += 1
        if slot >= ppn:
            slot = 0
            node += 1
        next_node[name], next_slot[name] = node, slot
    return ProcessPlacement(grid=grid, locations=tuple(locations))
