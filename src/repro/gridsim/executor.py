"""SPMD executor: run one Python function per simulated MPI rank.

The executor is the ``mpiexec`` of the simulator: it spawns one cooperative
thread per rank, hands each thread a :class:`RankContext` (its rank, the
world communicator handle and the shared simulation state) and collects
per-rank return values.  The threads are driven by the
:class:`~repro.gridsim.scheduler.VirtualTimeScheduler` owned by the
simulation state: exactly one rank executes at a time (always one whose
virtual clock was minimal when it became runnable), a blocked rank parks
until the event it waits for occurs, and a cyclic wait raises
:class:`~repro.exceptions.DeadlockError` immediately with a per-rank wait
graph.  The *virtual* execution time of the program is the maximum rank
clock when every thread has finished — wall-clock time spent in numpy is
never added to the virtual clocks — and because scheduling decisions depend
only on simulation state, two identical runs produce identical results,
clocks and trace event streams.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.exceptions import DeadlockError, SimulationError
from repro.gridsim.communicator import CommCore, CommHandle
from repro.gridsim.platform import Platform, SimulationState
from repro.gridsim.topology import ProcessLocation
from repro.gridsim.trace import Trace, TraceSummary

__all__ = ["RankContext", "SimulationResult", "SPMDExecutor", "run_spmd"]


@dataclass
class RankContext:
    """Everything a rank program needs: identity, communicator, clock access."""

    rank: int
    size: int
    comm: CommHandle
    state: SimulationState

    @property
    def platform(self) -> Platform:
        """The simulated platform this rank runs on."""
        return self.state.platform

    @property
    def location(self) -> ProcessLocation:
        """Physical location (cluster/node/slot) of this rank."""
        return self.state.platform.placement.location(self.rank)

    @property
    def cluster(self) -> str:
        """Name of the cluster hosting this rank."""
        return self.location.cluster

    def clock(self) -> float:
        """Current virtual time of this rank in seconds."""
        return self.state.clock(self.rank)

    def compute(self, flops: float, kernel: str = "gemm", n: int | float | None = None) -> float:
        """Charge ``flops`` of ``kernel`` to this rank and return the elapsed seconds."""
        return self.state.charge_compute(self.rank, flops, kernel, n)


@dataclass
class SimulationResult:
    """Outcome of one SPMD run."""

    results: list[object]
    makespan: float
    trace: TraceSummary
    clocks: list[float] = field(default_factory=list)
    #: Ordered event stream (messages and flops, in global virtual-time
    #: execution order); populated only when the executor records messages.
    events: list[tuple] = field(default_factory=list, repr=False)

    def result_of(self, rank: int) -> object:
        """Return the value returned by ``rank``'s program."""
        return self.results[rank]


#: Signature of an SPMD rank program.
RankProgram = Callable[..., object]


class SPMDExecutor:
    """Run SPMD programs on a simulated platform.

    Parameters
    ----------
    platform:
        The simulated grid (machine + network + placement + kernel model).
    record_messages:
        Keep individual message records in the trace (slower, used by the
        fine-grained tests); counters are always kept.
    collective_tree:
        Tree shape used by the world communicator's collectives: ``"binary"``
        (MPI/ScaLAPACK default), ``"hierarchical"`` (topology-aware) or
        ``"flat"``.
    """

    def __init__(
        self,
        platform: Platform,
        *,
        record_messages: bool = False,
        collective_tree: str = "binary",
    ) -> None:
        self.platform = platform
        self.record_messages = record_messages
        self.collective_tree = collective_tree

    def run(
        self,
        program: RankProgram,
        *args: object,
        ranks: Sequence[int] | None = None,
        **kwargs: object,
    ) -> SimulationResult:
        """Execute ``program(ctx, *args, **kwargs)`` on every rank.

        ``ranks`` restricts execution to a subset of world ranks (used by
        tests); by default every placed rank participates.

        Raises
        ------
        SimulationError
            If any rank program raises; the original exception is chained.
        """
        n = self.platform.n_processes
        active = list(range(n)) if ranks is None else list(ranks)
        state = SimulationState(
            self.platform, record_messages=self.record_messages, active_ranks=active
        )
        scheduler = state.scheduler
        world = CommCore(
            state, active, collective_tree=self.collective_tree, name="world"
        )
        results: list[object] = [None] * len(active)
        errors: list[tuple[int, BaseException]] = []
        errors_lock = threading.Lock()

        def _worker(local_rank: int, world_rank: int) -> None:
            ctx = RankContext(
                rank=world_rank,
                size=len(active),
                comm=CommHandle(world, local_rank),
                state=state,
            )
            try:
                scheduler.wait_for_turn(world_rank)
                # A failure elsewhere releases every waiting thread at once;
                # re-check so aborted ranks never run their program (which
                # would execute concurrently with other released ranks).
                if not state.abort.is_set():
                    results[local_rank] = program(ctx, *args, **kwargs)
            except BaseException as exc:  # noqa: BLE001 - propagated to the caller
                with errors_lock:
                    errors.append((world_rank, exc))
                state.fail(exc)
            finally:
                scheduler.finish(world_rank)

        threads = [
            threading.Thread(
                target=_worker,
                args=(local, world_rank),
                name=f"rank-{world_rank}",
                daemon=True,
            )
            for local, world_rank in enumerate(active)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        if errors:
            if isinstance(state.failure, DeadlockError):
                raise state.failure
            # Prefer the root cause: the failure that tripped the abort flag
            # (every other rank only raised a secondary "simulation aborted").
            rank, first = min(
                ((r, e) for r, e in errors if e is state.failure),
                default=min(errors, key=lambda e: e[0]),
            )
            raise SimulationError(
                f"{len(errors)} rank(s) failed; first failure on rank {rank}: {first!r}"
            ) from first
        return SimulationResult(
            results=results,
            makespan=state.makespan(),
            trace=state.trace.summary(),
            clocks=state.clocks(),
            events=list(state.trace.events),
        )


def run_spmd(
    platform: Platform,
    program: RankProgram,
    *args: object,
    record_messages: bool = False,
    collective_tree: str = "binary",
    **kwargs: object,
) -> SimulationResult:
    """Convenience wrapper: build an executor and run ``program`` once."""
    executor = SPMDExecutor(
        platform, record_messages=record_messages, collective_tree=collective_tree
    )
    return executor.run(program, *args, **kwargs)
