"""SPMD executor: run one Python program per simulated MPI rank.

The executor is the ``mpiexec`` of the simulator: it hands each rank a
:class:`RankContext` (its rank, the world communicator handle and the shared
simulation state), runs the rank programs under the engine's scheduler and
collects per-rank return values.  Exactly one rank executes at a time
(always one whose virtual clock was minimal when it became runnable), a
blocked rank suspends until the event it waits for occurs, and a cyclic wait
raises :class:`~repro.exceptions.DeadlockError` immediately with a per-rank
wait graph.

**Engine backends.**  Rank programs are generators (blocking communicator
calls are driven with ``yield from``); the ``engine=`` selector chooses how
they are resumed:

* ``"coroutine"`` (default) — the single-threaded
  :class:`~repro.gridsim.engine.CoroutineScheduler` event loop resumes one
  generator at a time; no OS threads, no semaphores, no GIL hand-offs.
* ``"threads"`` — the reference backend: one cooperative pooled worker
  thread per rank drives its generator through the semaphore-handoff
  :class:`~repro.gridsim.scheduler.VirtualTimeScheduler`.  Worker threads
  come from a lazily-grown module-level pool (:class:`_RankWorkerPool`)
  reset transparently in forked children.
* ``"threads-fresh"`` — the threads backend with fresh OS threads per run
  instead of the pool (the pooled-vs-fresh equivalence tests).

Scheduling decisions are identical across backends — the equivalence suite
asserts bit-identical results, clocks and trace event streams.  Programs
that never block (only ``send``/``probe``/``compute``) may remain plain
functions; the executor detects generator programs at runtime.

The *virtual* execution time of the program is the maximum rank clock when
every rank has finished — wall-clock time spent in numpy is never added to
the virtual clocks — and because scheduling decisions depend only on
simulation state, two identical runs produce identical results, clocks and
trace event streams.
"""

from __future__ import annotations

import os
import threading
import warnings
from dataclasses import dataclass, field
from queue import SimpleQueue
from types import GeneratorType
from typing import Callable, Hashable, Sequence, TypeVar

from repro.exceptions import (
    ConfigurationError,
    DeadlockError,
    RankFailedError,
    SimulationError,
)
from repro.gridsim.communicator import CommCore, CommHandle
from repro.gridsim.engine import SWITCH, drive_on_thread
from repro.gridsim.failures import FailureSchedule, _RankDeath
from repro.gridsim.platform import Platform, SimulationState
from repro.gridsim.topology import ProcessLocation
from repro.gridsim.trace import TraceSummary

__all__ = ["RankContext", "SimulationResult", "SPMDExecutor", "run_spmd"]

#: Engine backends accepted by :class:`SPMDExecutor`.
ENGINES = ("coroutine", "threads", "threads-fresh")

T = TypeVar("T")


@dataclass(slots=True)
class RankContext:
    """Everything a rank program needs: identity, communicator, clock access."""

    rank: int
    size: int
    comm: CommHandle
    state: SimulationState

    @property
    def platform(self) -> Platform:
        """The simulated platform this rank runs on."""
        return self.state.platform

    @property
    def location(self) -> ProcessLocation:
        """Physical location (cluster/node/slot) of this rank."""
        return self.state.platform.placement.location(self.rank)

    @property
    def cluster(self) -> str:
        """Name of the cluster hosting this rank."""
        return self.location.cluster

    def clock(self) -> float:
        """Current virtual time of this rank in seconds."""
        return self.state.clock(self.rank)

    def compute(self, flops: float, kernel: str = "gemm", n: int | float | None = None) -> float:
        """Charge ``flops`` of ``kernel`` to this rank and return the elapsed seconds."""
        return self.state.charge_compute(self.rank, flops, kernel, n)

    def shared(self, key: Hashable, build: Callable[[], T]) -> T:
        """Memoise run-wide pure setup identical on every rank.

        All ranks pass the same key and an equivalent builder; the first one
        to arrive builds, everyone else reuses (the scheduler's single-runner
        invariant makes this race-free and deterministic).  The returned
        value must be treated as immutable.
        """
        return self.state.shared(key, build)

    def yield_turn(self):
        """Hand the CPU back to the scheduler and resume in clock order.

        A generator (drive with ``yield from ctx.yield_turn()``).
        Long-running programs call this between work items (the DAG
        runtime's per-rank ready loops) so every rank advances in
        virtual-time order; see
        :meth:`~repro.gridsim.scheduler.VirtualTimeScheduler.yield_turn`.
        """
        yield SWITCH


@dataclass
class SimulationResult:
    """Outcome of one SPMD run."""

    results: list[object]
    makespan: float
    trace: TraceSummary
    clocks: list[float] = field(default_factory=list)
    #: Ordered event stream (messages and flops, in global virtual-time
    #: execution order); populated only when the executor records messages.
    events: list[tuple] = field(default_factory=list, repr=False)
    #: World rank of each entry of :attr:`results` (``results[i]`` is the
    #: return value of world rank ``ranks[i]``).  Identity for full runs;
    #: differs when the executor ran a subset of the platform's ranks.
    ranks: tuple[int, ...] = ()

    def result_of(self, rank: int) -> object:
        """Return the value returned by *world* rank ``rank``'s program."""
        if not self.ranks:
            return self.results[rank]
        try:
            local = self.ranks.index(rank)
        except ValueError:
            raise KeyError(
                f"world rank {rank} did not participate in this run "
                f"(active ranks: {list(self.ranks)})"
            ) from None
        return self.results[local]


#: Signature of an SPMD rank program.
RankProgram = Callable[..., object]


class _RankWorkerPool:
    """Lazily-grown pool of reusable daemon threads, one per concurrent rank.

    Workers are generic: each blocks on its own task queue, runs the closure
    it is handed, then returns itself to the idle list.  A run that needs P
    workers takes (or spawns) exactly P; nested or concurrent runs simply
    grow the pool, so exhaustion cannot deadlock.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._idle: list[_PoolWorker] = []
        self._spawned = 0

    def run_all(self, tasks: Sequence[tuple[Callable[[], None], str]]) -> None:
        """Run every ``(closure, thread_name)`` task and block until all finish.

        A closure that raises (rank-program failures are caught upstream, so
        this means an executor bug) is recorded and re-raised here after all
        tasks complete; the worker itself always survives.
        """
        if not tasks:
            return
        done = threading.Semaphore(0)
        failures: list[BaseException] = []
        workers: list[_PoolWorker] = []
        with self._lock:
            while len(self._idle) < len(tasks):
                self._idle.append(_PoolWorker(self, self._spawned))
                self._spawned += 1
            for _ in tasks:
                workers.append(self._idle.pop())
        for worker, (fn, name) in zip(workers, tasks):
            worker.submit(fn, name, done, failures)
        for _ in tasks:
            done.acquire()
        if failures:
            raise failures[0]

    def _release(self, worker: "_PoolWorker") -> None:
        with self._lock:
            self._idle.append(worker)

    @property
    def size(self) -> int:
        """Number of worker threads ever spawned by this pool (for tests)."""
        with self._lock:
            return self._spawned


class _PoolWorker:
    """One reusable worker thread of the :class:`_RankWorkerPool`."""

    def __init__(self, pool: _RankWorkerPool, index: int) -> None:
        self._pool = pool
        self._tasks: SimpleQueue = SimpleQueue()
        self._thread = threading.Thread(
            target=self._loop, name=f"gridsim-worker-{index}", daemon=True
        )
        self._thread.start()

    def submit(
        self,
        fn: Callable[[], None],
        name: str,
        done: threading.Semaphore,
        failures: list[BaseException],
    ) -> None:
        self._tasks.put((fn, name, done, failures))

    def _loop(self) -> None:
        while True:
            fn, name, done, failures = self._tasks.get()
            self._thread.name = name
            try:
                fn()
            except BaseException as exc:  # noqa: BLE001 - surfaced by run_all
                failures.append(exc)
            finally:
                self._pool._release(self)
                done.release()
            # Drop the task references before blocking on the next get(): an
            # idle worker must not pin the finished run's closure chain
            # (simulation state, per-rank results, payloads) until its next
            # task arrives.
            del fn, name, done, failures


_pool = _RankWorkerPool()


def _reset_pool_after_fork() -> None:
    """Forked children inherit no threads: start from an empty pool."""
    global _pool
    _pool = _RankWorkerPool()


if hasattr(os, "register_at_fork"):  # pragma: no branch - POSIX only
    os.register_at_fork(after_in_child=_reset_pool_after_fork)


class SPMDExecutor:
    """Run SPMD programs on a simulated platform.

    Parameters
    ----------
    platform:
        The simulated grid (machine + network + placement + kernel model).
    record_messages:
        Keep individual message records in the trace (slower, used by the
        fine-grained tests); counters are always kept.
    collective_tree:
        Tree shape used by the world communicator's collectives: ``"binary"``
        (MPI/ScaLAPACK default), ``"hierarchical"`` (topology-aware) or
        ``"flat"``.
    engine:
        Backend driving the rank generators: ``"coroutine"`` (default, the
        single-threaded event loop), ``"threads"`` (pooled cooperative
        worker threads, the reference backend) or ``"threads-fresh"``
        (threads backend with fresh OS threads per run).  Scheduling is
        identical across backends; the equivalence tests pin bit-identical
        traces.
    reuse_threads:
        Deprecated alias for the engine selector: ``True`` maps to
        ``engine="threads"``, ``False`` to ``engine="threads-fresh"``.
    failures:
        Optional :class:`~repro.gridsim.failures.FailureSchedule` injecting
        deterministic rank deaths.  A dead rank is retired quietly (its
        result stays ``None``); survivors touching a communicator that
        contains it get :class:`~repro.exceptions.RankFailedError`, which
        aborts the run with that type unless the program catches it (the
        DAG runtime's recovery path does).
    """

    def __init__(
        self,
        platform: Platform,
        *,
        record_messages: bool = False,
        collective_tree: str = "binary",
        engine: str | None = None,
        reuse_threads: bool | None = None,
        failures: FailureSchedule | None = None,
        streaming_stats: bool | None = None,
    ) -> None:
        if reuse_threads is not None:
            warnings.warn(
                "SPMDExecutor(reuse_threads=...) is deprecated; use "
                "engine='threads' (pooled) or engine='threads-fresh' instead",
                DeprecationWarning,
                stacklevel=2,
            )
            if engine is not None:
                raise ConfigurationError(
                    "pass either engine= or the deprecated reuse_threads=, not both"
                )
            engine = "threads" if reuse_threads else "threads-fresh"
        if engine is None:
            engine = "coroutine"
        if engine not in ENGINES:
            raise ConfigurationError(
                f"unknown engine {engine!r} (expected one of {ENGINES})"
            )
        if failures is not None and not isinstance(failures, FailureSchedule):
            raise ConfigurationError(
                f"failures must be a FailureSchedule, got {failures!r}"
            )
        self.platform = platform
        self.record_messages = record_messages
        self.collective_tree = collective_tree
        self.engine = engine
        self.failures = failures
        #: None = process default (on unless REPRO_STREAMING_STATS=0); the
        #: benchmark overhead gate passes False explicitly.
        self.streaming_stats = streaming_stats

    def run(
        self,
        program: RankProgram,
        *args: object,
        ranks: Sequence[int] | None = None,
        **kwargs: object,
    ) -> SimulationResult:
        """Execute ``program(ctx, *args, **kwargs)`` on every rank.

        ``ranks`` restricts execution to a subset of world ranks (used by
        tests); by default every placed rank participates.

        Raises
        ------
        SimulationError
            If any rank program raises; the original exception is chained.
        """
        n = self.platform.n_processes
        active = list(range(n)) if ranks is None else list(ranks)
        state = SimulationState(
            self.platform,
            record_messages=self.record_messages,
            active_ranks=active,
            engine="coroutine" if self.engine == "coroutine" else "threads",
            failures=self.failures,
            streaming_stats=self.streaming_stats,
        )
        scheduler = state.scheduler
        world = CommCore(
            state, active, collective_tree=self.collective_tree, name="world"
        )
        results: list[object] = [None] * len(active)
        errors: list[tuple[int, BaseException]] = []
        local_of = [0] * n
        for local, world_rank in enumerate(active):
            local_of[world_rank] = local

        if self.engine == "coroutine":
            def _start(world_rank: int) -> object:
                ctx = RankContext(
                    rank=world_rank,
                    size=len(active),
                    comm=CommHandle(world, local_of[world_rank]),
                    state=state,
                )
                return program(ctx, *args, **kwargs)

            def _on_result(world_rank: int, value: object) -> None:
                results[local_of[world_rank]] = value

            def _on_error(world_rank: int, exc: BaseException) -> None:
                errors.append((world_rank, exc))

            scheduler.run(_start, _on_result, _on_error)
        else:
            errors_lock = threading.Lock()

            def _worker(local_rank: int, world_rank: int) -> None:
                ctx = RankContext(
                    rank=world_rank,
                    size=len(active),
                    comm=CommHandle(world, local_rank),
                    state=state,
                )
                try:
                    scheduler.wait_for_turn(world_rank)
                    # A failure elsewhere releases every waiting thread at
                    # once; re-check so aborted ranks never run their program
                    # (which would execute concurrently with other released
                    # ranks).
                    if not state.abort.is_set():
                        out = program(ctx, *args, **kwargs)
                        if isinstance(out, GeneratorType):
                            out = drive_on_thread(out, scheduler, world_rank)
                        results[local_rank] = out
                except _RankDeath:
                    # Injected death: retire the rank quietly — no error, no
                    # abort.  finish() below hands the CPU to the next rank.
                    pass
                except BaseException as exc:  # noqa: BLE001 - propagated to the caller
                    with errors_lock:
                        errors.append((world_rank, exc))
                    state.fail(exc)
                finally:
                    scheduler.finish(world_rank)

            def _task(local_rank: int, world_rank: int):
                return (lambda: _worker(local_rank, world_rank), f"rank-{world_rank}")

            if self.engine == "threads":
                _pool.run_all([_task(local, wr) for local, wr in enumerate(active)])
            else:
                threads = [
                    threading.Thread(
                        target=_worker,
                        args=(local, world_rank),
                        name=f"rank-{world_rank}",
                        daemon=True,
                    )
                    for local, world_rank in enumerate(active)
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()

        if errors:
            # Deadlocks and rank failures keep their precise type: callers
            # (tests, the recovery layer, the CLI) match on them.
            if isinstance(state.failure, (DeadlockError, RankFailedError)):
                raise state.failure
            # Prefer the root cause: the failure that tripped the abort flag
            # (every other rank only raised a secondary "simulation aborted").
            rank, first = min(
                ((r, e) for r, e in errors if e is state.failure),
                default=min(errors, key=lambda e: e[0]),
            )
            raise SimulationError(
                f"{len(errors)} rank(s) failed; first failure on rank {rank}: {first!r}"
            ) from first
        # Pin the streaming-stats horizon to the makespan before
        # snapshotting, so the timeline window width is backend-independent.
        makespan = state.makespan()
        state.trace.finalize(makespan)
        return SimulationResult(
            results=results,
            makespan=makespan,
            trace=state.trace.summary(),
            clocks=state.clocks(),
            # The trace accumulates events only when recording is on; the
            # stream is handed over without copying (the trace dies with the
            # run), and non-recording runs never allocate one.
            events=state.trace.events if self.record_messages else [],
            ranks=tuple(active),
        )


def run_spmd(
    platform: Platform,
    program: RankProgram,
    *args: object,
    record_messages: bool = False,
    collective_tree: str = "binary",
    engine: str | None = None,
    reuse_threads: bool | None = None,
    failures: FailureSchedule | None = None,
    streaming_stats: bool | None = None,
    **kwargs: object,
) -> SimulationResult:
    """Convenience wrapper: build an executor and run ``program`` once."""
    executor = SPMDExecutor(
        platform,
        record_messages=record_messages,
        collective_tree=collective_tree,
        engine=engine,
        reuse_threads=reuse_threads,
        failures=failures,
        streaming_stats=streaming_stats,
    )
    return executor.run(program, *args, **kwargs)
