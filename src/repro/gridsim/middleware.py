"""Topology-aware middleware: the QCG-OMPI analogue.

Paper §II-D/III: QCG-OMPI couples a grid *meta-scheduler* with an MPI
implementation.  The application describes the process groups it needs and
the network quality it expects inside and between groups in a ``JobProfile``;
the meta-scheduler allocates physical resources matching those requirements;
at run time the application retrieves the group structure ("topology
attributes") and builds one MPI communicator per group with
``MPI_Comm_split``.

This module reproduces that workflow on the simulated grid:

* :class:`ProcessGroupRequirement` / :class:`NetworkRequirement` /
  :class:`JobProfile` describe the request (groups of equivalent computing
  power, good connectivity inside groups, possibly weaker between groups);
* :class:`MetaScheduler` maps each group onto one cluster, checks the
  network requirements against the platform's link matrix and produces an
  :class:`Allocation` (a process placement plus the rank → group mapping);
* :func:`topology_attributes` is what a rank calls after ``MPI_Init`` to
  learn its group, and :func:`group_communicators` performs the
  ``comm.split`` calls that give the algorithm one communicator per group
  and one communicator linking the group leaders.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import AllocationError, ConfigurationError
from repro.gridsim.communicator import CommHandle
from repro.gridsim.kernelmodel import KernelRateModel
from repro.gridsim.machine import GridSpec
from repro.gridsim.network import LinkClass, NetworkModel
from repro.gridsim.platform import Platform
from repro.gridsim.topology import ProcessPlacement, block_placement

__all__ = [
    "NetworkRequirement",
    "ProcessGroupRequirement",
    "JobProfile",
    "Allocation",
    "MetaScheduler",
    "TopologyAttributes",
    "topology_attributes",
    "GroupCommunicators",
    "group_communicators",
]


@dataclass(frozen=True)
class NetworkRequirement:
    """Minimum network quality between (or within) process groups."""

    max_latency_s: float = float("inf")
    min_bandwidth_bytes_per_s: float = 0.0

    def satisfied_by(self, latency_s: float, bandwidth_bytes_per_s: float) -> bool:
        """True when a link with the given characteristics meets the requirement."""
        return (
            latency_s <= self.max_latency_s
            and bandwidth_bytes_per_s >= self.min_bandwidth_bytes_per_s
        )


@dataclass(frozen=True)
class ProcessGroupRequirement:
    """One process group of the JobProfile.

    ``size`` is the number of processes requested for the group; ``min_dgemm_gflops``
    expresses the "equivalent computing power" constraint of paper §III (we
    request groups of identical size on hardware of comparable speed).
    """

    name: str
    size: int
    min_dgemm_gflops: float = 0.0

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ConfigurationError(f"group {self.name!r} must request at least one process")


@dataclass(frozen=True)
class JobProfile:
    """The application's resource request, as submitted to the meta-scheduler."""

    groups: tuple[ProcessGroupRequirement, ...]
    intra_group: NetworkRequirement = field(default_factory=NetworkRequirement)
    inter_group: NetworkRequirement = field(default_factory=NetworkRequirement)

    def __post_init__(self) -> None:
        if not self.groups:
            raise ConfigurationError("a JobProfile needs at least one process group")
        names = [g.name for g in self.groups]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate group names in JobProfile: {names}")

    @property
    def total_processes(self) -> int:
        """Total number of processes requested."""
        return sum(g.size for g in self.groups)

    @classmethod
    def clusters_of_equal_power(
        cls,
        n_groups: int,
        group_size: int,
        *,
        max_intra_latency_s: float = 1e-3,
        min_intra_bandwidth_bytes_per_s: float = 1e8,
    ) -> "JobProfile":
        """The profile used by QCG-TSQR: ``n_groups`` groups of equal size,
        tightly coupled inside, loosely coupled between groups."""
        groups = tuple(
            ProcessGroupRequirement(name=f"group{i}", size=group_size) for i in range(n_groups)
        )
        return cls(
            groups=groups,
            intra_group=NetworkRequirement(
                max_latency_s=max_intra_latency_s,
                min_bandwidth_bytes_per_s=min_intra_bandwidth_bytes_per_s,
            ),
            inter_group=NetworkRequirement(),
        )


@dataclass(frozen=True)
class Allocation:
    """Result of a successful scheduling decision."""

    placement: ProcessPlacement
    group_of_rank: tuple[int, ...]
    group_names: tuple[str, ...]
    cluster_of_group: tuple[str, ...]

    @property
    def n_groups(self) -> int:
        """Number of allocated process groups."""
        return len(self.group_names)

    def ranks_of_group(self, group: int) -> list[int]:
        """World ranks belonging to group ``group``."""
        return [r for r, g in enumerate(self.group_of_rank) if g == group]


class MetaScheduler:
    """Allocate JobProfile groups onto the clusters of a grid.

    The strategy mirrors the paper's reservations: each group is placed
    entirely inside one cluster (never split), clusters are filled in
    declaration order, and a cluster may host several groups when it has the
    capacity (that is how 2, 4, ..., 64 domains per cluster are obtained).
    """

    def __init__(self, grid: GridSpec, network: NetworkModel) -> None:
        self.grid = grid
        self.network = network

    def allocate(
        self,
        profile: JobProfile,
        *,
        nodes_per_cluster: int | None = None,
        processes_per_node: int | None = None,
        clusters: list[str] | None = None,
    ) -> Allocation:
        """Return an :class:`Allocation` satisfying ``profile`` or raise.

        Raises
        ------
        AllocationError
            When the requested processes do not fit in the requested clusters
            or the intra-group network requirement cannot be met.
        """
        names = list(clusters) if clusters is not None else list(self.grid.cluster_names)
        capacities: dict[str, int] = {}
        for name in names:
            cluster = self.grid.cluster(name)
            nodes = nodes_per_cluster if nodes_per_cluster is not None else cluster.n_nodes
            ppn = (
                processes_per_node
                if processes_per_node is not None
                else cluster.node.processes_per_node
            )
            if nodes > cluster.n_nodes:
                raise AllocationError(
                    f"cluster {name!r} has only {cluster.n_nodes} nodes, {nodes} requested"
                )
            capacities[name] = nodes * ppn

        # Check the intra-group requirement against each candidate cluster's
        # internal link: a group will always live inside one cluster.
        for name in names:
            link = self.network.link_for(LinkClass.INTRA_CLUSTER, name, name)
            if not profile.intra_group.satisfied_by(link.latency_s, link.bandwidth_bytes_per_s):
                raise AllocationError(
                    f"cluster {name!r} cannot satisfy the intra-group network requirement"
                )

        # Greedy first-fit of groups onto clusters, in declaration order.
        remaining = dict(capacities)
        cluster_of_group: list[str] = []
        order = list(names)
        cursor = 0
        for group in profile.groups:
            placed = False
            for step in range(len(order)):
                candidate = order[(cursor + step) % len(order)]
                cluster = self.grid.cluster(candidate)
                if remaining[candidate] >= group.size and (
                    cluster.node.processor.dgemm_gflops >= group.min_dgemm_gflops
                ):
                    remaining[candidate] -= group.size
                    cluster_of_group.append(candidate)
                    cursor = (cursor + step + 1) % len(order)
                    placed = True
                    break
            if not placed:
                raise AllocationError(
                    f"cannot place group {group.name!r} (size {group.size}): "
                    f"remaining capacity {remaining}"
                )

        # Inter-group requirement: check every pair of clusters hosting groups.
        used = sorted(set(cluster_of_group))
        for i, a in enumerate(used):
            for b in used[i + 1 :]:
                link = self.network.link_for(LinkClass.INTER_CLUSTER, a, b)
                if not profile.inter_group.satisfied_by(
                    link.latency_s, link.bandwidth_bytes_per_s
                ):
                    raise AllocationError(
                        f"link {a!r} <-> {b!r} cannot satisfy the inter-group requirement"
                    )

        # Build the placement: ranks of a group are contiguous; groups hosted
        # by the same cluster share its nodes in order.
        per_cluster_counts = {name: 0 for name in names}
        locations = []
        group_of_rank: list[int] = []
        from repro.gridsim.topology import ProcessLocation  # local import to avoid cycle noise

        for gi, group in enumerate(profile.groups):
            cname = cluster_of_group[gi]
            cluster = self.grid.cluster(cname)
            ppn = (
                processes_per_node
                if processes_per_node is not None
                else cluster.node.processes_per_node
            )
            for _ in range(group.size):
                offset = per_cluster_counts[cname]
                node, slot = divmod(offset, ppn)
                locations.append(ProcessLocation(cluster=cname, node=node, slot=slot))
                group_of_rank.append(gi)
                per_cluster_counts[cname] += 1
        placement = ProcessPlacement(grid=self.grid, locations=tuple(locations))
        return Allocation(
            placement=placement,
            group_of_rank=tuple(group_of_rank),
            group_names=tuple(g.name for g in profile.groups),
            cluster_of_group=tuple(cluster_of_group),
        )

    def platform(
        self,
        allocation: Allocation,
        kernel_model: KernelRateModel,
        *,
        name: str = "qcg-allocation",
    ) -> Platform:
        """Wrap an allocation into a :class:`Platform` ready for execution."""
        return Platform(
            grid=self.grid,
            network=self.network,
            placement=allocation.placement,
            kernel_model=kernel_model,
            name=name,
        )


@dataclass(frozen=True)
class TopologyAttributes:
    """What a rank learns from the middleware after initialisation."""

    group: int
    group_name: str
    group_size: int
    group_leader_world_rank: int
    n_groups: int
    cluster: str


def topology_attributes(allocation: Allocation, rank: int) -> TopologyAttributes:
    """Return the topology attributes the middleware exposes to ``rank``.

    This plays the role of the QCG-OMPI specific MPI attribute that the
    application queries after ``MPI_Init`` (paper §III).
    """
    group = allocation.group_of_rank[rank]
    members = allocation.ranks_of_group(group)
    return TopologyAttributes(
        group=group,
        group_name=allocation.group_names[group],
        group_size=len(members),
        group_leader_world_rank=min(members),
        n_groups=allocation.n_groups,
        cluster=allocation.cluster_of_group[group],
    )


@dataclass
class GroupCommunicators:
    """Communicators derived from the topology: one per group + leaders."""

    group_comm: CommHandle
    leaders_comm: CommHandle | None
    attributes: TopologyAttributes

    @property
    def is_leader(self) -> bool:
        """True when the calling rank is its group's leader."""
        return self.leaders_comm is not None


def group_communicators(
    comm: CommHandle, allocation: Allocation, *, collective_tree: str = "binary"
):
    """Split ``comm`` according to the allocation's group structure.

    A generator (drive with ``yield from``; it performs two ``comm.split``
    collectives).  Every rank obtains the communicator of its own group;
    group leaders (the smallest world rank of each group) additionally
    obtain a communicator connecting all leaders, which is where the
    inter-cluster stage of the reduction happens.  Mirrors the
    ``MPI_Comm_split`` calls of paper §III.
    """
    attrs = topology_attributes(allocation, comm.world_rank)
    group_comm = yield from comm.split(color=attrs.group, key=comm.world_rank,
                                       collective_tree=collective_tree)
    leader_color = 0 if comm.world_rank == attrs.group_leader_world_rank else None
    leaders_comm = yield from comm.split(color=leader_color, key=attrs.group,
                                         collective_tree=collective_tree)
    return GroupCommunicators(
        group_comm=group_comm, leaders_comm=leaders_comm, attributes=attrs
    )
