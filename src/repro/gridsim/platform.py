"""Platform: the bundle of machine, network, placement and kernel model.

A :class:`Platform` is everything the simulator needs to know about "where
this computation runs": the grid hardware description, the network
characteristics, where each MPI rank was placed by the middleware, and how
fast each rank executes the dense kernels.  Experiment configurations
(:mod:`repro.experiments.grid5000`) construct platforms; the SPMD executor
and the communicator only ever read them.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from typing import Callable, Hashable, Sequence, TypeVar

from repro.exceptions import ConfigurationError
from repro.gridsim.engine import CoroutineScheduler
from repro.gridsim.failures import FailureSchedule, _RankDeath
from repro.gridsim.kernelmodel import KernelRateModel
from repro.gridsim.machine import GridSpec
from repro.gridsim.network import LinkClass, LinkSpec, NetworkModel
from repro.gridsim.scheduler import VirtualTimeScheduler
from repro.gridsim.topology import ProcessPlacement
from repro.gridsim.trace import Trace

__all__ = ["Platform", "SimulationState"]

T = TypeVar("T")


@dataclass(frozen=True)
class Platform:
    """Immutable description of the simulated execution environment."""

    grid: GridSpec
    network: NetworkModel
    placement: ProcessPlacement
    kernel_model: KernelRateModel
    name: str = "platform"

    def __post_init__(self) -> None:
        if self.placement.grid is not self.grid and self.placement.grid != self.grid:
            raise ConfigurationError("placement was built for a different grid")

    @property
    def n_processes(self) -> int:
        """Number of MPI ranks of the platform."""
        return self.placement.size

    @property
    def n_sites(self) -> int:
        """Number of geographical sites actually hosting ranks."""
        return len(self.placement.clusters_used())

    def practical_peak_gflops(self) -> float:
        """Paper §V-B practical upper bound: all processes at DGEMM speed."""
        return self.kernel_model.practical_peak_gflops(self.n_processes)

    def theoretical_peak_gflops(self) -> float:
        """Sum of the processors' theoretical peaks over all placed ranks."""
        peak = 0.0
        for rank in range(self.n_processes):
            cluster = self.grid.cluster(self.placement.cluster_of(rank))
            peak += cluster.node.processor.peak_gflops
        return peak


class SimulationState:
    """Mutable per-simulation state: virtual clocks, trace, scheduler, abort flag.

    One :class:`SimulationState` is created per SPMD run and shared by all
    ranks.  The state owns the scheduler (and through it the ready set keyed
    by virtual clock) that admits exactly one runnable rank at a time:
    the single-threaded
    :class:`~repro.gridsim.engine.CoroutineScheduler` by default, or the
    thread-backed
    :class:`~repro.gridsim.scheduler.VirtualTimeScheduler` reference backend
    when ``engine="threads"``.

    **Single-writer invariant.**  Because the scheduler admits one rank at a
    time, clock reads and writes are never concurrent: a rank normally only
    touches its own clock, collective execution (performed by whichever rank
    arrives last) updates everyone's while the others are parked, and the
    executor reads the final clocks only after every rank has finished.
    Clock access therefore takes **no lock** — on the coroutine backend
    everything runs on one thread, and on the threads backend the semaphore
    handoff provides the necessary happens-before edges.

    ``active_ranks`` restricts the scheduled ranks to a subset of the
    platform's processes (the executor's ``ranks=...`` feature); clocks and
    traces are always platform-wide.
    """

    def __init__(
        self,
        platform: Platform,
        *,
        record_messages: bool = False,
        active_ranks: Sequence[int] | None = None,
        engine: str = "coroutine",
        failures: FailureSchedule | None = None,
        streaming_stats: bool | None = None,
    ) -> None:
        self.platform = platform
        self.trace = Trace(
            platform.n_processes,
            record_messages=record_messages,
            streaming=streaming_stats,
        )
        self._clocks = [0.0] * platform.n_processes
        self.abort = threading.Event()
        #: Plain-bool mirror of the abort event, read on every hot-path abort
        #: check (an attribute load instead of an Event method call; writes
        #: only happen in :meth:`record_failure`, under the single-runner
        #: invariant / before the threads backend wakes anyone).
        self.aborted = False
        self.failure: BaseException | None = None
        #: Injected-failure machinery.  ``failures is None`` (the default)
        #: keeps every hot path on its pre-fault-tolerance branch — the
        #: engine equivalence suite pins failure-free runs bit-identical.
        self.failures = failures
        #: World ranks that have died, and their virtual death times.  A
        #: communicator whose group intersects :attr:`dead_ranks` is
        #: *revoked*: every operation on it raises
        #: :class:`~repro.exceptions.RankFailedError`.
        self.dead_ranks: set[int] = set()
        self.death_time: dict[int, float] = {}
        self._failure_checkpoints = (
            [0] * platform.n_processes if failures is not None else []
        )
        self._next_comm_id = 0
        #: Memo of kernel rates per ``(kernel, n)`` — the kernel model is
        #: immutable for the lifetime of a simulation, and the efficiency
        #: curve lookup is on the per-event hot path.
        self._rate_cache: dict[tuple[str, int | float | None], float] = {}
        #: Memo of ``(src, dest) -> (LinkClass, LinkSpec | None)`` — placement
        #: and network are immutable per simulation, and every message prices
        #: and classifies its link.  Populated lazily with the pairs that
        #: actually communicate (tree edges), so it stays O(P)-sized.
        self._link_cache: dict[tuple[int, int], tuple[LinkClass, LinkSpec | None]] = {}
        #: Run-wide memo for pure, rank-identical setup artifacts (domain row
        #: ranges, reduction trees, cluster lists).  Under the single-runner
        #: invariant the first rank to need a value builds it and every other
        #: rank reuses it; see :meth:`RankContext.shared`.
        self.memo: dict[Hashable, object] = {}
        ranks = range(platform.n_processes) if active_ranks is None else active_ranks
        if engine == "coroutine":
            self.scheduler = CoroutineScheduler(ranks, self)
        elif engine == "threads":
            self.scheduler = VirtualTimeScheduler(ranks, self)
        else:
            raise ConfigurationError(
                f"unknown simulation engine {engine!r} (expected 'coroutine' or 'threads')"
            )

    def allocate_comm_id(self) -> int:
        """Allocate the next communicator id (deterministic per simulation)."""
        comm_id = self._next_comm_id
        self._next_comm_id += 1
        return comm_id

    # ---------------------------------------------------------------- memo
    def shared(self, key: Hashable, build: Callable[[], T]) -> T:
        """Return the memoised value for ``key``, building it on first use.

        Every rank must call this with an identical key *and* a builder that
        produces an identical (treated-as-immutable) value; the single-runner
        invariant guarantees exactly one rank executes the builder.  Used to
        collapse per-rank O(P) setup work (identical on all ranks) into O(1)
        per run.
        """
        memo = self.memo
        try:
            return memo[key]  # type: ignore[return-value]
        except KeyError:
            value = build()
            memo[key] = value
            return value

    # -------------------------------------------------------------- clocks
    def clock(self, rank: int) -> float:
        """Current virtual time of ``rank`` in seconds."""
        return self._clocks[rank]

    def advance(self, rank: int, dt: float) -> float:
        """Advance ``rank``'s clock by ``dt`` seconds and return the new time."""
        if dt < 0:
            raise ConfigurationError(f"cannot advance clock by negative time {dt}")
        self._clocks[rank] += dt
        return self._clocks[rank]

    def set_clock(self, rank: int, t: float) -> None:
        """Set ``rank``'s clock, never moving it backwards."""
        if t > self._clocks[rank]:
            self._clocks[rank] = t

    def clocks(self) -> list[float]:
        """Snapshot of all clocks."""
        return list(self._clocks)

    def makespan(self) -> float:
        """Completion time of the simulation: the maximum clock."""
        return max(self._clocks) if self._clocks else 0.0

    # ------------------------------------------------------- communication
    def link_of(self, src: int, dest: int) -> tuple[LinkClass, LinkSpec | None]:
        """Memoised ``(class, spec)`` of the ``src -> dest`` link.

        ``spec`` is None exactly for self-messages (which cost nothing).
        One dict hit replaces the classify + spec-resolution walk on every
        message after the first over a given rank pair.
        """
        ent = self._link_cache.get((src, dest))
        if ent is None:
            if src == dest:
                ent = (LinkClass.SELF, None)
            else:
                placement = self.platform.placement
                la, lb = placement.locations[src], placement.locations[dest]
                ent = self.platform.network.link_between(
                    la.cluster, la.node, lb.cluster, lb.node
                )
            self._link_cache[(src, dest)] = ent
        return ent

    def transfer_time(self, nbytes: int | float, src: int, dest: int) -> float:
        """Seconds to move ``nbytes`` from ``src`` to ``dest``."""
        spec = self.link_of(src, dest)[1]
        return 0.0 if spec is None else spec.transfer_time(nbytes)

    def link_class(self, src: int, dest: int) -> LinkClass:
        """Class of the link between two ranks."""
        return self.link_of(src, dest)[0]

    def record_message(
        self, src: int, dest: int, nbytes: int, *, tag: str = "", send_time: float = 0.0,
        recv_time: float = 0.0, wait_s: float = 0.0
    ) -> None:
        """Record a message in the trace with its link classification."""
        self.trace.record_message(
            src,
            dest,
            nbytes,
            self.link_class(src, dest),
            tag=tag,
            send_time=send_time,
            recv_time=recv_time,
            wait_s=wait_s,
        )

    # ------------------------------------------------------------- compute
    def charge_compute(
        self, rank: int, flops: float, kernel: str = "gemm", n: int | float | None = None
    ) -> float:
        """Charge ``flops`` of ``kernel`` to ``rank`` and return the elapsed time."""
        if flops < 0:
            raise ConfigurationError(f"negative flop count: {flops}")
        if self.failures is not None:
            self.failure_checkpoint(rank)
        rate = self._rate_cache.get((kernel, n))
        if rate is None:
            rate = self.platform.kernel_model.rate(kernel, n)
            self._rate_cache[(kernel, n)] = rate
        dt = float(flops) / rate if flops else 0.0
        # Inlined advance(): dt >= 0 by construction (flops >= 0, rate > 0).
        clock = self._clocks[rank] + dt
        self._clocks[rank] = clock
        self.trace.record_flops(rank, flops, kernel, dt, clock)
        return dt

    # ------------------------------------------------------- injected death
    def failure_checkpoint(self, rank: int) -> None:
        """Kill ``rank`` if its scheduled deadline has been reached.

        Called (guarded by ``failures is not None``) at every communicator
        operation entry, park wake-up and compute charge.  A rank dies at
        its *first* checkpoint whose virtual clock is at or past its
        ``at_time``, or at its ``after_events + 1``-th checkpoint — both
        pure functions of simulation state, hence bit-deterministic on
        either backend.  Death raises :class:`_RankDeath`, which unwinds
        the rank's program; the engine retires it quietly.
        """
        deadline = self.failures.deadline(rank)
        if deadline is None:
            return
        counts = self._failure_checkpoints
        counts[rank] += 1
        if (
            deadline.at_time is not None and self._clocks[rank] >= deadline.at_time
        ) or (
            deadline.after_events is not None and counts[rank] > deadline.after_events
        ):
            self._kill_rank(rank)

    def _kill_rank(self, rank: int) -> None:
        """Retire ``rank`` at its current clock and notify the survivors."""
        self.dead_ranks.add(rank)
        time = self._clocks[rank]
        self.death_time[rank] = time
        self.trace.record_rank_failure(rank, time)
        # Failure-detector broadcast: every parked survivor is requeued (in
        # virtual-clock order, no abort) so it re-checks its wait and
        # observes the revoked communicator.
        self.scheduler.requeue_blocked()
        raise _RankDeath(rank)

    # --------------------------------------------------------------- abort
    def record_failure(self, exc: BaseException) -> None:
        """Record a failure and set the abort flag without waking anyone.

        Used by the scheduler while it already holds its own lock; everything
        else should call :meth:`fail`.
        """
        if self.failure is None:
            self.failure = exc
        self.aborted = True
        self.abort.set()

    def fail(self, exc: BaseException) -> None:
        """Record a rank failure and wake every parked rank so it can raise."""
        self.record_failure(exc)
        self.scheduler.wake_all_blocked()
