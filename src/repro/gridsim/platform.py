"""Platform: the bundle of machine, network, placement and kernel model.

A :class:`Platform` is everything the simulator needs to know about "where
this computation runs": the grid hardware description, the network
characteristics, where each MPI rank was placed by the middleware, and how
fast each rank executes the dense kernels.  Experiment configurations
(:mod:`repro.experiments.grid5000`) construct platforms; the SPMD executor
and the communicator only ever read them.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from typing import Sequence

from repro.exceptions import ConfigurationError
from repro.gridsim.kernelmodel import KernelRateModel
from repro.gridsim.machine import GridSpec
from repro.gridsim.network import LinkClass, NetworkModel
from repro.gridsim.scheduler import VirtualTimeScheduler
from repro.gridsim.topology import ProcessPlacement
from repro.gridsim.trace import Trace

__all__ = ["Platform", "SimulationState"]


@dataclass(frozen=True)
class Platform:
    """Immutable description of the simulated execution environment."""

    grid: GridSpec
    network: NetworkModel
    placement: ProcessPlacement
    kernel_model: KernelRateModel
    name: str = "platform"

    def __post_init__(self) -> None:
        if self.placement.grid is not self.grid and self.placement.grid != self.grid:
            raise ConfigurationError("placement was built for a different grid")

    @property
    def n_processes(self) -> int:
        """Number of MPI ranks of the platform."""
        return self.placement.size

    @property
    def n_sites(self) -> int:
        """Number of geographical sites actually hosting ranks."""
        return len(self.placement.clusters_used())

    def practical_peak_gflops(self) -> float:
        """Paper §V-B practical upper bound: all processes at DGEMM speed."""
        return self.kernel_model.practical_peak_gflops(self.n_processes)

    def theoretical_peak_gflops(self) -> float:
        """Sum of the processors' theoretical peaks over all placed ranks."""
        peak = 0.0
        for rank in range(self.n_processes):
            cluster = self.grid.cluster(self.placement.cluster_of(rank))
            peak += cluster.node.processor.peak_gflops
        return peak


class SimulationState:
    """Mutable per-simulation state: virtual clocks, trace, scheduler, abort flag.

    One :class:`SimulationState` is created per SPMD run and shared by all
    rank threads.  The state owns the
    :class:`~repro.gridsim.scheduler.VirtualTimeScheduler` (and through it the
    ready queue keyed by virtual clock) that admits exactly one runnable rank
    at a time.  Clock reads/writes are still guarded by a lock: a rank
    normally only touches its own clock, but collective execution (performed
    by whichever rank arrives last) updates everyone's.

    ``active_ranks`` restricts the scheduled ranks to a subset of the
    platform's processes (the executor's ``ranks=...`` feature); clocks and
    traces are always platform-wide.
    """

    def __init__(
        self,
        platform: Platform,
        *,
        record_messages: bool = False,
        active_ranks: Sequence[int] | None = None,
    ) -> None:
        self.platform = platform
        self.trace = Trace(platform.n_processes, record_messages=record_messages)
        self._clocks = [0.0] * platform.n_processes
        self._lock = threading.Lock()
        self.abort = threading.Event()
        self.failure: BaseException | None = None
        self._next_comm_id = 0
        ranks = range(platform.n_processes) if active_ranks is None else active_ranks
        self.scheduler = VirtualTimeScheduler(ranks, self)

    def allocate_comm_id(self) -> int:
        """Allocate the next communicator id (deterministic per simulation)."""
        comm_id = self._next_comm_id
        self._next_comm_id += 1
        return comm_id

    # -------------------------------------------------------------- clocks
    def clock(self, rank: int) -> float:
        """Current virtual time of ``rank`` in seconds."""
        with self._lock:
            return self._clocks[rank]

    def advance(self, rank: int, dt: float) -> float:
        """Advance ``rank``'s clock by ``dt`` seconds and return the new time."""
        if dt < 0:
            raise ConfigurationError(f"cannot advance clock by negative time {dt}")
        with self._lock:
            self._clocks[rank] += dt
            return self._clocks[rank]

    def set_clock(self, rank: int, t: float) -> None:
        """Set ``rank``'s clock, never moving it backwards."""
        with self._lock:
            self._clocks[rank] = max(self._clocks[rank], t)

    def clocks(self) -> list[float]:
        """Snapshot of all clocks."""
        with self._lock:
            return list(self._clocks)

    def makespan(self) -> float:
        """Completion time of the simulation: the maximum clock."""
        with self._lock:
            return max(self._clocks) if self._clocks else 0.0

    # ------------------------------------------------------- communication
    def transfer_time(self, nbytes: int | float, src: int, dest: int) -> float:
        """Seconds to move ``nbytes`` from ``src`` to ``dest``."""
        return self.platform.placement.transfer_time(
            self.platform.network, nbytes, src, dest
        )

    def link_class(self, src: int, dest: int) -> LinkClass:
        """Class of the link between two ranks."""
        return self.platform.placement.link_class(self.platform.network, src, dest)

    def record_message(
        self, src: int, dest: int, nbytes: int, *, tag: str = "", send_time: float = 0.0,
        recv_time: float = 0.0
    ) -> None:
        """Record a message in the trace with its link classification."""
        self.trace.record_message(
            src,
            dest,
            nbytes,
            self.link_class(src, dest),
            tag=tag,
            send_time=send_time,
            recv_time=recv_time,
        )

    # ------------------------------------------------------------- compute
    def charge_compute(
        self, rank: int, flops: float, kernel: str = "gemm", n: int | float | None = None
    ) -> float:
        """Charge ``flops`` of ``kernel`` to ``rank`` and return the elapsed time."""
        dt = self.platform.kernel_model.time(flops, kernel, n)
        self.advance(rank, dt)
        self.trace.record_flops(rank, flops, kernel)
        return dt

    # --------------------------------------------------------------- abort
    def fail(self, exc: BaseException) -> None:
        """Record a rank failure and wake every parked rank so it can raise."""
        if self.failure is None:
            self.failure = exc
        self.abort.set()
        self.scheduler.wake_all_blocked()
