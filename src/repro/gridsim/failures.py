"""Deterministic rank-failure injection.

The paper's target is a *grid* — federated, volatile resources where
processes disappear mid-run — so the simulator models failures as
first-class, reproducible events.  A :class:`FailureSchedule` names, per
rank, a virtual-time deadline (``at_time``) and/or an event-count budget
(``after_events``); the simulation state checks the schedule at every
*failure checkpoint* (each communicator operation entry, each park wake-up
and each compute charge) and kills the rank at the first checkpoint at or
past its deadline.

Death is implemented with the internal :class:`_RankDeath` control-flow
signal: it unwinds the dying rank's generator, both engine backends retire
the rank quietly (no abort, no error), and every parked survivor is requeued
so it can observe the failure.  From then on any operation on a communicator
whose group contains the dead rank raises
:class:`~repro.exceptions.RankFailedError` in the caller — the simulated
analogue of ULFM's revoked-communicator semantics: parked and queued
messages of the dead rank become tombstones that are never delivered.

Because checkpoints live in backend-shared code and every decision is a
pure function of ``(program, schedule)``, failure injection is
bit-deterministic on both the coroutine and the threads backend, and a run
with ``failures=None`` takes no new branches at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.exceptions import ConfigurationError

__all__ = ["RankFailure", "FailureSchedule"]


class _RankDeath(BaseException):
    """Internal control flow: unwinds a dying rank's program.

    Deliberately a ``BaseException`` so rank programs that catch
    ``Exception`` (or :class:`~repro.exceptions.ReproError`, like the DAG
    recovery path) can never swallow their own death.  The engine backends
    catch it and retire the rank without recording an error.
    """

    def __init__(self, rank: int) -> None:
        super().__init__(f"rank {rank} failed (injected by the failure schedule)")
        self.rank = rank


@dataclass(frozen=True)
class RankFailure:
    """One rank's death sentence: a virtual-time and/or event-count deadline.

    ``at_time`` kills the rank at its first failure checkpoint whose virtual
    clock is ``>= at_time``; ``after_events`` kills it at its
    ``after_events + 1``-th checkpoint.  When both are given, whichever
    triggers first wins.
    """

    rank: int
    at_time: float | None = None
    after_events: int | None = None

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ConfigurationError(f"failure rank must be >= 0, got {self.rank}")
        if self.at_time is None and self.after_events is None:
            raise ConfigurationError(
                f"failure of rank {self.rank} needs an at_time or an after_events deadline"
            )
        if self.at_time is not None and self.at_time < 0:
            raise ConfigurationError(
                f"failure time of rank {self.rank} must be >= 0, got {self.at_time}"
            )
        if self.after_events is not None and self.after_events < 0:
            raise ConfigurationError(
                f"failure event count of rank {self.rank} must be >= 0, "
                f"got {self.after_events}"
            )


class FailureSchedule:
    """Immutable set of :class:`RankFailure` deadlines, at most one per rank."""

    __slots__ = ("_by_rank",)

    def __init__(self, failures: Iterable[RankFailure]) -> None:
        by_rank: dict[int, RankFailure] = {}
        for failure in failures:
            if not isinstance(failure, RankFailure):
                raise ConfigurationError(
                    f"FailureSchedule takes RankFailure entries, got {failure!r}"
                )
            if failure.rank in by_rank:
                raise ConfigurationError(
                    f"duplicate failure entry for rank {failure.rank}"
                )
            by_rank[failure.rank] = failure
        if not by_rank:
            raise ConfigurationError("a FailureSchedule needs at least one failure")
        self._by_rank = by_rank

    @classmethod
    def from_pairs(cls, pairs: Sequence[tuple[int, float]]) -> "FailureSchedule":
        """Build a schedule from ``(rank, at_time)`` pairs (the CLI's form)."""
        return cls(RankFailure(rank=int(r), at_time=float(t)) for r, t in pairs)

    @property
    def ranks(self) -> tuple[int, ...]:
        """The ranks scheduled to die, in increasing order."""
        return tuple(sorted(self._by_rank))

    def deadline(self, rank: int) -> RankFailure | None:
        """The deadline of ``rank``, or None when it is not scheduled to die."""
        return self._by_rank.get(rank)

    def key(self) -> tuple[tuple[int, float | None, int | None], ...]:
        """Canonical hashable identity (used by caches and memo keys)."""
        return tuple(
            (f.rank, f.at_time, f.after_events)
            for f in (self._by_rank[r] for r in sorted(self._by_rank))
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FailureSchedule):
            return NotImplemented
        return self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        entries = ", ".join(
            f"rank {f.rank} @ "
            + "/".join(
                part
                for part in (
                    f"t={f.at_time}" if f.at_time is not None else "",
                    f"events={f.after_events}" if f.after_events is not None else "",
                )
                if part
            )
            for f in (self._by_rank[r] for r in sorted(self._by_rank))
        )
        return f"FailureSchedule({entries})"
