"""Virtual-time cooperative scheduler: the discrete-event core of gridsim.

Every simulated MPI rank still runs on its own Python thread (rank programs
are plain blocking functions), but the threads are *cooperative*: exactly one
rank executes at any instant, and it is always a rank whose virtual clock was
minimal among the runnable ranks when it became runnable.  A rank that blocks
(an empty-mailbox ``recv``, an incomplete collective rendezvous) *parks* on a
per-rank condition variable and consumes zero CPU until the event it waits
for is produced by another rank, at which point it is *unparked* — moved back
into the ready queue keyed by its virtual clock.

The scheduler delivers three properties the old free-running thread pool
could not:

* **No polling.**  There are no sleep loops and no wall-clock timeouts; a
  blocked rank costs nothing and wakes exactly when its dependency is
  satisfied.
* **Instant deadlock detection.**  The moment every live rank is parked and
  the ready queue is empty, no future event can ever occur; the scheduler
  raises :class:`~repro.exceptions.DeadlockError` immediately, with a
  per-rank wait graph describing who waits for what.
* **Determinism.**  Because only one rank runs at a time and every scheduling
  decision is a pure function of simulation state (min virtual clock, ties
  broken by rank id), two runs of the same program produce bit-identical
  traces and makespans, independent of OS thread scheduling.

The scheduler is owned by :class:`~repro.gridsim.platform.SimulationState`;
the communicator calls :meth:`VirtualTimeScheduler.park` /
:meth:`~VirtualTimeScheduler.unpark`, the executor drives the rank lifecycle
through :meth:`~VirtualTimeScheduler.wait_for_turn` /
:meth:`~VirtualTimeScheduler.finish`.
"""

from __future__ import annotations

import heapq
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable, Sequence

from repro.exceptions import DeadlockError, SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (platform -> scheduler)
    from repro.gridsim.platform import SimulationState

__all__ = ["RankStatus", "WaitInfo", "VirtualTimeScheduler"]


class RankStatus:
    """Lifecycle states of a simulated rank."""

    READY = "ready"  # in the ready queue, waiting to be granted the CPU
    RUNNING = "running"  # the (single) rank currently executing
    BLOCKED = "blocked"  # parked on an unsatisfied dependency
    DONE = "done"  # program returned or raised


@dataclass(frozen=True)
class WaitInfo:
    """What a parked rank is waiting for.

    ``kind``/``key`` identify the event that satisfies the wait (an exact
    match wakes the rank); ``detail`` is the human-readable description used
    by the deadlock wait graph.
    """

    kind: str
    key: Hashable
    detail: str


class VirtualTimeScheduler:
    """Admit one runnable rank at a time, minimum virtual clock first.

    Parameters
    ----------
    ranks:
        The world ranks participating in the simulation (the executor may run
        a subset of the platform's ranks).
    state:
        The owning :class:`~repro.gridsim.platform.SimulationState`; used to
        read virtual clocks (ready-queue keys) and to record failures.
    """

    def __init__(self, ranks: Sequence[int], state: "SimulationState") -> None:
        self._state = state
        self._ranks = tuple(int(r) for r in ranks)
        # One condition variable per rank, all sharing one (reentrant) lock:
        # park/unpark/dispatch are a single critical section.
        self._mu = threading.RLock()
        self._cv = {r: threading.Condition(self._mu) for r in self._ranks}
        self._status = {r: RankStatus.READY for r in self._ranks}
        self._waiting: dict[int, WaitInfo] = {}
        self._waiters: dict[tuple[str, Hashable], list[int]] = {}
        #: Ready queue: (virtual clock at enqueue time, rank).  Ties broken by
        #: rank id, so the pop order is a pure function of simulation state.
        self._ready: list[tuple[float, int]] = [(0.0, r) for r in sorted(self._ranks)]
        heapq.heapify(self._ready)
        self._granted: int | None = None
        with self._mu:
            self._dispatch_locked()

    # ------------------------------------------------------------ lifecycle
    def wait_for_turn(self, rank: int) -> None:
        """Block the calling rank thread until the scheduler grants it the CPU.

        Called once by every rank thread before its program starts.  Returns
        immediately when the simulation has already aborted (the program's
        first communication call will raise).
        """
        with self._mu:
            while self._granted != rank and not self._state.abort.is_set():
                self._cv[rank].wait()

    def park(self, rank: int, kind: str, key: Hashable, detail: str) -> None:
        """Yield the CPU until ``(kind, key)`` is produced by another rank.

        The caller must be the currently running rank.  Returns when the rank
        is granted the CPU again after a matching :meth:`unpark`, or
        immediately when the simulation aborts (callers re-check the abort
        flag after every park).  Raises :class:`DeadlockError` when parking
        this rank leaves no rank runnable.
        """
        with self._mu:
            info = WaitInfo(kind=kind, key=key, detail=detail)
            self._status[rank] = RankStatus.BLOCKED
            self._waiting[rank] = info
            self._waiters.setdefault((kind, key), []).append(rank)
            if self._granted == rank:
                self._granted = None
                self._dispatch_locked()
            while self._granted != rank:
                if self._state.abort.is_set():
                    return
                self._cv[rank].wait()

    def unpark(self, kind: str, key: Hashable) -> None:
        """Make every rank parked on ``(kind, key)`` runnable again.

        The woken ranks do not run immediately: they enter the ready queue
        keyed by their current virtual clock and run when the scheduler
        reaches them.
        """
        with self._mu:
            ranks = self._waiters.pop((kind, key), None)
            if not ranks:
                return
            for rank in ranks:
                if self._status[rank] is not RankStatus.BLOCKED:
                    continue
                self._status[rank] = RankStatus.READY
                self._waiting.pop(rank, None)
                heapq.heappush(self._ready, (self._state.clock(rank), rank))

    def finish(self, rank: int) -> None:
        """Mark ``rank``'s thread as finished and hand the CPU to the next rank."""
        with self._mu:
            self._status[rank] = RankStatus.DONE
            self._waiting.pop(rank, None)
            if self._granted == rank:
                self._granted = None
            if self._state.abort.is_set():
                self._wake_all_locked()
                return
            if self._granted is None:
                self._dispatch_locked()

    # ---------------------------------------------------------------- abort
    def wake_all_blocked(self) -> None:
        """Wake every parked rank so it can observe the abort flag and raise."""
        with self._mu:
            self._wake_all_locked()

    def _wake_all_locked(self) -> None:
        for rank in self._ranks:
            self._cv[rank].notify_all()

    # ------------------------------------------------------------- dispatch
    def _dispatch_locked(self) -> None:
        """Grant the CPU to the ready rank with the minimum virtual clock.

        Called with the scheduler lock held and no rank granted.  Detects
        deadlock: if nothing is ready but some ranks are still blocked, no
        event can ever be produced again.
        """
        if self._state.abort.is_set():
            self._wake_all_locked()
            return
        while self._ready:
            _, rank = heapq.heappop(self._ready)
            if self._status[rank] is RankStatus.READY:
                self._status[rank] = RankStatus.RUNNING
                self._granted = rank
                self._cv[rank].notify_all()
                return
        blocked = [r for r in self._ranks if self._status[r] is RankStatus.BLOCKED]
        if blocked:
            self._deadlock_locked(blocked)

    def _deadlock_locked(self, blocked: list[int]) -> None:
        """Fail the simulation with a wait graph of every parked rank."""
        done = sum(1 for r in self._ranks if self._status[r] is RankStatus.DONE)
        lines = [
            f"deadlock detected: all {len(blocked)} live rank(s) are blocked "
            "and no pending event can unblock them"
        ]
        for rank in blocked:
            info = self._waiting.get(rank)
            detail = info.detail if info is not None else "unknown wait"
            lines.append(f"  rank {rank}: waiting on {detail}")
        if done:
            lines.append(f"  ({done} rank(s) already finished)")
        error = DeadlockError("\n".join(lines))
        self._state.fail(error)
        self._wake_all_locked()

    # -------------------------------------------------------------- queries
    def status(self, rank: int) -> str:
        """Current lifecycle state of ``rank`` (for tests and debugging)."""
        with self._mu:
            return self._status[rank]

    def check_abort(self) -> None:
        """Raise if the simulation has failed (deadlock errors keep their type)."""
        if not self._state.abort.is_set():
            return
        failure = self._state.failure
        if isinstance(failure, DeadlockError):
            raise DeadlockError(str(failure))
        raise SimulationError(f"simulation aborted: {failure!r}") from failure
