"""Virtual-time cooperative scheduler: the thread-backed reference backend.

This module holds the *threads* engine of the simulator.  Since the
generator-core rewrite the default backend is the single-threaded
:class:`~repro.gridsim.engine.CoroutineScheduler` (rank programs are
generators resumed by one event loop); the scheduler below is kept as the
reference implementation that drives the *same* generators on one
cooperative OS thread per rank, and the equivalence suite asserts both
backends produce bit-identical traces.

Under this backend exactly one rank thread executes at any instant, and it
is always a rank whose virtual clock was minimal among the runnable ranks
when it became runnable.  A rank that blocks (an empty-mailbox ``recv``, an
incomplete collective rendezvous) *parks* on a per-rank semaphore and
consumes zero CPU until the event it waits for is produced by another rank,
at which point it is *unparked* — moved back into the ready set keyed by its
virtual clock.

The handoff machinery is built for speed at thousands of ranks:

* **Semaphore handoff.**  Each rank blocks on its own
  :class:`threading.Semaphore`; granting the CPU is a single targeted
  ``release`` with no shared condition variable, no re-check loop and no
  thundering herd.  Scheduler bookkeeping is a short critical section under
  one plain (non-reentrant) lock.
* **Direct-dispatch fast path.**  The common pattern — the running rank
  sends a message that wakes exactly one receiver, then parks — never
  touches the ready heap: an unparked rank whose ``(clock, rank)`` key is
  below the heap top is held in a one-element *direct* slot and granted
  straight from there.  The scheduling decision is unchanged (still the
  minimum ``(clock, rank)`` over all runnable ranks); only the bookkeeping
  is cheaper.

The scheduler delivers three properties the old free-running thread pool
could not:

* **No polling.**  There are no sleep loops and no wall-clock timeouts; a
  blocked rank costs nothing and wakes exactly when its dependency is
  satisfied.
* **Instant deadlock detection.**  The moment every live rank is parked and
  the ready set is empty, no future event can ever occur; the scheduler
  raises :class:`~repro.exceptions.DeadlockError` immediately, with a
  per-rank wait graph describing who waits for what.
* **Determinism.**  Because only one rank runs at a time and every scheduling
  decision is a pure function of simulation state (min virtual clock, ties
  broken by rank id), two runs of the same program produce bit-identical
  traces and makespans, independent of OS thread scheduling.

The scheduler is owned by :class:`~repro.gridsim.platform.SimulationState`;
the communicator calls :meth:`VirtualTimeScheduler.park` /
:meth:`~VirtualTimeScheduler.unpark`, the executor drives the rank lifecycle
through :meth:`~VirtualTimeScheduler.wait_for_turn` /
:meth:`~VirtualTimeScheduler.finish`.
"""

from __future__ import annotations

import heapq
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable, Sequence

from repro.exceptions import DeadlockError, SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (platform -> scheduler)
    from typing import Mapping

    from repro.gridsim.platform import SimulationState

__all__ = [
    "RankStatus",
    "WaitInfo",
    "VirtualTimeScheduler",
    "format_deadlock",
    "raise_if_aborted",
]


class RankStatus:
    """Lifecycle states of a simulated rank."""

    READY = "ready"  # in the ready set, waiting to be granted the CPU
    RUNNING = "running"  # the (single) rank currently executing
    BLOCKED = "blocked"  # parked on an unsatisfied dependency
    DONE = "done"  # program returned or raised


@dataclass(frozen=True)
class WaitInfo:
    """What a parked rank is waiting for.

    ``kind``/``key`` identify the event that satisfies the wait (an exact
    match wakes the rank); ``detail`` is the human-readable description used
    by the deadlock wait graph — either a string or a zero-argument callable
    producing one, so the hot blocking paths never pay for formatting a
    message that is only read when a deadlock is actually reported.
    """

    kind: str
    key: Hashable
    detail: object


def format_deadlock(
    blocked: Sequence[int], waiting: "Mapping[int, WaitInfo]", done: int
) -> str:
    """Build the deadlock message with its per-rank wait graph.

    Shared by both engine backends so a deadlocked simulation reports the
    identical wait graph regardless of how the ranks were driven.
    """
    lines = [
        f"deadlock detected: all {len(blocked)} live rank(s) are blocked "
        "and no pending event can unblock them"
    ]
    for rank in blocked:
        info = waiting.get(rank)
        detail = info.detail if info is not None else "unknown wait"
        if callable(detail):
            detail = detail()
        lines.append(f"  rank {rank}: waiting on {detail}")
    if done:
        lines.append(f"  ({done} rank(s) already finished)")
    return "\n".join(lines)


def raise_if_aborted(state: "SimulationState") -> None:
    """Raise if the simulation has failed (deadlock errors keep their type)."""
    if not state.aborted:
        return
    failure = state.failure
    if isinstance(failure, DeadlockError):
        raise DeadlockError(str(failure))
    raise SimulationError(f"simulation aborted: {failure!r}") from failure


class VirtualTimeScheduler:
    """Admit one runnable rank at a time, minimum virtual clock first.

    Parameters
    ----------
    ranks:
        The world ranks participating in the simulation (the executor may run
        a subset of the platform's ranks).
    state:
        The owning :class:`~repro.gridsim.platform.SimulationState`; used to
        read virtual clocks (ready-set keys) and to record failures.
    """

    def __init__(self, ranks: Sequence[int], state: "SimulationState") -> None:
        self._state = state
        self._ranks = tuple(int(r) for r in ranks)
        # One semaphore per rank: a grant is a targeted release, a yield is an
        # acquire.  Bookkeeping mutations share one short-lived plain lock.
        self._mu = threading.Lock()
        self._sem = {r: threading.Semaphore(0) for r in self._ranks}
        self._status = {r: RankStatus.READY for r in self._ranks}
        self._waiting: dict[int, WaitInfo] = {}
        self._waiters: dict[tuple[str, Hashable], list[int]] = {}
        #: Ready heap: (virtual clock at enqueue time, rank).  Ties broken by
        #: rank id, so the pop order is a pure function of simulation state.
        self._ready: list[tuple[float, int]] = [(0.0, r) for r in sorted(self._ranks)]
        heapq.heapify(self._ready)
        #: Direct-dispatch slot: at most one READY rank held outside the heap
        #: (the fast path for the send-wakes-one-receiver pattern).  The
        #: runnable set is always ``heap entries + direct slot``.
        self._direct: tuple[float, int] | None = None
        self._granted: int | None = None
        #: Streaming-stats window ticks (same observer contract as the
        #: coroutine backend: one float compare per pop, max-only update).
        stats = state.trace.stats
        self._obs = stats
        self._obs_tick = stats.next_tick if stats is not None else float("inf")
        with self._mu:
            self._dispatch_locked()

    # ------------------------------------------------------------ lifecycle
    def wait_for_turn(self, rank: int) -> None:
        """Block the calling rank thread until the scheduler grants it the CPU.

        Called once by every rank thread before its program starts.  Returns
        immediately when the simulation has already aborted (the program's
        first communication call will raise); an abort while waiting releases
        every rank semaphore, so the wait can never outlive the simulation.
        """
        if self._state.abort.is_set():
            return
        self._sem[rank].acquire()

    def park(self, rank: int, kind: str, key: Hashable, detail: object) -> None:
        """Yield the CPU until ``(kind, key)`` is produced by another rank.

        The caller must be the currently running rank.  Returns when the rank
        is granted the CPU again after a matching :meth:`unpark`, or
        immediately when the simulation aborts (callers re-check the abort
        flag after every park).  Raises :class:`DeadlockError` when parking
        this rank leaves no rank runnable.
        """
        with self._mu:
            if self._state.abort.is_set():
                return
            self._status[rank] = RankStatus.BLOCKED
            self._waiting[rank] = WaitInfo(kind=kind, key=key, detail=detail)
            self._waiters.setdefault((kind, key), []).append(rank)
            if self._granted == rank:
                self._granted = None
                self._dispatch_locked()
        # Blocks until a dispatch grants this rank again (exactly one release
        # per grant) or an abort releases every semaphore.
        self._sem[rank].acquire()

    def yield_turn(self, rank: int) -> None:
        """Voluntarily hand the CPU back and re-enter the ready set.

        The calling rank must be the currently running one.  It is re-keyed
        by its *current* virtual clock and runs again when it is the minimum
        — so a compute-heavy rank that yields between tasks interleaves with
        its peers in virtual-time order instead of racing arbitrarily far
        ahead of them.  Programs that make scheduling decisions from mailbox
        probes (the DAG runtime's ready queue) rely on this: after a yield,
        every runnable peer with an earlier clock has executed at least up
        to the yielder's clock, so "has this message arrived by now?" gets
        the causally correct answer.  A no-op hand-back when no other rank
        can run; never deadlocks (the yielding rank stays runnable).
        """
        with self._mu:
            if self._state.abort.is_set():
                return
            self._status[rank] = RankStatus.READY
            self._enqueue_ready_locked((self._state.clock(rank), rank))
            if self._granted == rank:
                self._granted = None
                self._dispatch_locked()
        self._sem[rank].acquire()

    def _enqueue_ready_locked(self, entry: tuple[float, int]) -> None:
        """Insert a READY rank's ``(clock, rank)`` entry into the runnable set.

        A likely-minimum entry takes the direct slot (the fast path for the
        send-wakes-one-receiver pattern and for yields); everything else goes
        to the heap.  The scheduling decision is unaffected either way —
        :meth:`_pop_min_ready_locked` considers slot and heap together.
        """
        if self._direct is None and (not self._ready or entry < self._ready[0]):
            self._direct = entry
        elif self._direct is not None and entry < self._direct:
            # New minimum: the previous direct entry spills to the heap.
            heapq.heappush(self._ready, self._direct)
            self._direct = entry
        else:
            heapq.heappush(self._ready, entry)

    def unpark(self, kind: str, key: Hashable) -> None:
        """Make every rank parked on ``(kind, key)`` runnable again.

        The woken ranks do not run immediately: they re-enter the ready set
        keyed by their current virtual clock and run when the scheduler
        reaches them.  A single woken rank whose key is below the heap top
        takes the direct slot instead of the heap (the fast path).
        """
        with self._mu:
            ranks = self._waiters.pop((kind, key), None)
            if not ranks:
                return
            clock_of = self._state.clock
            for rank in ranks:
                if self._status[rank] is not RankStatus.BLOCKED:
                    continue
                self._status[rank] = RankStatus.READY
                self._waiting.pop(rank, None)
                self._enqueue_ready_locked((clock_of(rank), rank))

    def finish(self, rank: int) -> None:
        """Mark ``rank``'s thread as finished and hand the CPU to the next rank."""
        with self._mu:
            self._status[rank] = RankStatus.DONE
            self._waiting.pop(rank, None)
            if self._granted == rank:
                self._granted = None
            if self._state.abort.is_set():
                self._wake_all_locked()
                return
            if self._granted is None:
                self._dispatch_locked()

    # ------------------------------------------------------- failure wakes
    def requeue_blocked(self) -> None:
        """Move every BLOCKED rank back to READY, re-keyed by its clock.

        The live (non-abort) counterpart of :meth:`wake_all_blocked`, used
        by the failure-detector broadcast after an injected rank death: the
        requeued ranks re-check their wait condition when the dispatcher
        reaches them and either re-park or observe the revoked communicator.
        Crucially this releases **no semaphores** — a spare token would let
        a second rank run concurrently with the (dying) caller and break
        determinism; a requeued rank resumes only through a normal grant.
        Stale waiter-table entries are skipped by :meth:`unpark` exactly as
        on the coroutine backend.
        """
        with self._mu:
            clock_of = self._state.clock
            for rank in self._ranks:
                if self._status[rank] is RankStatus.BLOCKED:
                    self._status[rank] = RankStatus.READY
                    self._waiting.pop(rank, None)
                    self._enqueue_ready_locked((clock_of(rank), rank))

    # ---------------------------------------------------------------- abort
    def wake_all_blocked(self) -> None:
        """Wake every parked rank so it can observe the abort flag and raise."""
        with self._mu:
            self._wake_all_locked()

    def _wake_all_locked(self) -> None:
        # Post one token to every rank: blocked ranks (park / wait_for_turn)
        # wake immediately, running ranks consume the spare token at their
        # next park and fall through to the abort re-check.  Only meaningful
        # once the abort flag is set.
        for sem in self._sem.values():
            sem.release()

    # ------------------------------------------------------------- dispatch
    def _pop_min_ready_locked(self) -> int | None:
        """Pop and return the READY rank with the minimum ``(clock, rank)``.

        Considers both the direct slot and the heap, so the choice is
        identical to a single priority queue over all runnable ranks.
        """
        while True:
            direct = self._direct
            top = self._ready[0] if self._ready else None
            if direct is not None and (top is None or direct < top):
                self._direct = None
                entry = direct
            elif top is not None:
                entry = heapq.heappop(self._ready)
            else:
                return None
            rank = entry[1]
            if self._status[rank] is RankStatus.READY:
                # Streaming-stats window tick: max-only horizon update, so
                # differing dispatch patterns between backends cannot perturb
                # the snapshot (finalize() pins the horizon regardless).
                if entry[0] >= self._obs_tick:
                    self._obs_tick = self._obs.on_tick(entry[0])
                return rank

    def _dispatch_locked(self) -> None:
        """Grant the CPU to the ready rank with the minimum virtual clock.

        Called with the scheduler lock held and no rank granted.  Detects
        deadlock: if nothing is ready but some ranks are still blocked, no
        event can ever be produced again.
        """
        if self._state.abort.is_set():
            self._wake_all_locked()
            return
        rank = self._pop_min_ready_locked()
        if rank is not None:
            self._status[rank] = RankStatus.RUNNING
            self._granted = rank
            self._sem[rank].release()
            return
        blocked = [r for r in self._ranks if self._status[r] is RankStatus.BLOCKED]
        if blocked:
            self._deadlock_locked(blocked)

    def _deadlock_locked(self, blocked: list[int]) -> None:
        """Fail the simulation with a wait graph of every parked rank."""
        done = sum(1 for r in self._ranks if self._status[r] is RankStatus.DONE)
        message = format_deadlock(blocked, self._waiting, done)
        # record_failure (not state.fail) because the scheduler lock is held:
        # fail() would re-enter wake_all_blocked and deadlock on the plain lock.
        self._state.record_failure(DeadlockError(message))
        self._wake_all_locked()

    # -------------------------------------------------------------- queries
    def status(self, rank: int) -> str:
        """Current lifecycle state of ``rank`` (for tests and debugging)."""
        with self._mu:
            return self._status[rank]

    def check_abort(self) -> None:
        """Raise if the simulation has failed (deadlock errors keep their type)."""
        raise_if_aborted(self._state)
