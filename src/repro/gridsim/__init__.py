"""Simulated grid computing environment (the Grid'5000 + QCG-OMPI substrate).

The paper's experiments run on Grid'5000 through the QCG-OMPI topology-aware
MPI middleware; this package provides the equivalent substrate as a
virtual-time simulator so the algorithms above it (TSQR, CAQR, the ScaLAPACK
baseline) can be written in ordinary SPMD/MPI style and evaluated at paper
scale on a single machine.  See DESIGN.md §2 for the substitution argument.

Layering (bottom to top):

* :mod:`machine`, :mod:`network`, :mod:`topology` — platform description;
* :mod:`kernelmodel` — per-kernel compute rates (Property 2 of the paper);
* :mod:`platform` — the bundle of the above + per-run mutable state;
* :mod:`scheduler` — the virtual-time cooperative scheduler (one runnable
  rank at a time, event-driven blocking, instant deadlock detection);
* :mod:`collectives`, :mod:`communicator` — simulated MPI;
* :mod:`executor` — thread-per-rank SPMD execution under the scheduler;
* :mod:`middleware` — the QCG-OMPI analogue (JobProfile, meta-scheduler,
  topology attributes, per-group communicators);
* :mod:`trace` — message/byte/flop accounting behind Tables I and II.
"""

from repro.gridsim.collectives import (
    TreeSchedule,
    binary_tree,
    flat_tree,
    hierarchical_tree,
)
from repro.gridsim.communicator import MAX, SUM, CommCore, CommHandle, ReduceOp, payload_nbytes
from repro.gridsim.executor import RankContext, SimulationResult, SPMDExecutor, run_spmd
from repro.gridsim.failures import FailureSchedule, RankFailure
from repro.gridsim.kernelmodel import KernelEfficiency, KernelRateModel
from repro.gridsim.machine import ClusterSpec, GridSpec, NodeSpec, ProcessorSpec
from repro.gridsim.middleware import (
    Allocation,
    GroupCommunicators,
    JobProfile,
    MetaScheduler,
    NetworkRequirement,
    ProcessGroupRequirement,
    TopologyAttributes,
    group_communicators,
    topology_attributes,
)
from repro.gridsim.network import LinkClass, LinkSpec, NetworkModel
from repro.gridsim.platform import Platform, SimulationState
from repro.gridsim.scheduler import VirtualTimeScheduler
from repro.gridsim.topology import (
    ProcessLocation,
    ProcessPlacement,
    block_placement,
    round_robin_placement,
)
from repro.gridsim.trace import MessageRecord, Trace, TraceSummary

__all__ = [
    "TreeSchedule",
    "binary_tree",
    "flat_tree",
    "hierarchical_tree",
    "MAX",
    "SUM",
    "CommCore",
    "CommHandle",
    "ReduceOp",
    "payload_nbytes",
    "RankContext",
    "SimulationResult",
    "SPMDExecutor",
    "run_spmd",
    "FailureSchedule",
    "RankFailure",
    "KernelEfficiency",
    "KernelRateModel",
    "ClusterSpec",
    "GridSpec",
    "NodeSpec",
    "ProcessorSpec",
    "Allocation",
    "GroupCommunicators",
    "JobProfile",
    "MetaScheduler",
    "NetworkRequirement",
    "ProcessGroupRequirement",
    "TopologyAttributes",
    "group_communicators",
    "topology_attributes",
    "LinkClass",
    "LinkSpec",
    "NetworkModel",
    "Platform",
    "SimulationState",
    "VirtualTimeScheduler",
    "ProcessLocation",
    "ProcessPlacement",
    "block_placement",
    "round_robin_placement",
    "MessageRecord",
    "Trace",
    "TraceSummary",
]
