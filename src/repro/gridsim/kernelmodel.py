"""Kernel rate model: how fast a process executes each dense kernel.

Paper Property 2: *"the performance of the factorization of TS matrices is
limited by the domanial performance of the QR factorization of TS matrices"*,
which in practice is a small fraction of the DGEMM peak and grows with the
number of columns N (Property 4) because wider panels admit more Level-3
BLAS.  The simulator therefore charges compute time as

    time = flops / (efficiency(kernel, N) * dgemm_rate)

with per-kernel efficiency curves calibrated (in
:mod:`repro.experiments.grid5000`) against the single-site measurements the
paper reports:

* ``qr_leaf``   — LAPACK ``DGEQRF`` on a domain owned by a single process
                  (TSQR leaves): saturating curve in N.
* ``qr_combine``— QR of two stacked N x N triangles (TSQR tree nodes).
* ``panel``     — the Level-2-bound local work of ScaLAPACK's ``PDGEQR2``
                  panel factorization (one column at a time).
* ``update``    — the Level-3 blocked trailing-matrix update (``PDLARFB``).
* ``gemm``      — plain matrix multiply, by definition efficiency 1.
* ``reduce_op`` — small vector reductions (norms, dot products).

The curves are deliberately simple (two-parameter saturation); what matters
for reproducing the paper is their *ordering* (panel < leaf QR < update <
GEMM) and their growth with N, not their exact values.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError
from repro.gridsim.machine import ProcessorSpec

__all__ = ["KernelEfficiency", "KernelRateModel", "KERNEL_NAMES"]

#: Kernels known to the model (anything else raises, catching typos early).
KERNEL_NAMES = frozenset(
    {"gemm", "qr_leaf", "qr_combine", "panel", "update", "reduce_op", "generic"}
)


@dataclass(frozen=True)
class KernelEfficiency:
    """Efficiency (fraction of the DGEMM rate) of each kernel class.

    ``qr_scale``/``qr_half_width`` parameterise the saturating curve
    ``eff(N) = qr_scale * N / (N + qr_half_width)`` used for the LAPACK-style
    QR kernels; the remaining fields are constants.
    """

    qr_scale: float = 0.544
    qr_half_width: float = 168.0
    panel_efficiency: float = 0.085
    update_scale: float = 0.80
    reduce_op_efficiency: float = 0.25
    generic_efficiency: float = 0.5

    def efficiency(self, kernel: str, n: int | float | None = None) -> float:
        """Return the fraction of the DGEMM rate achieved by ``kernel``.

        ``n`` is the column count (block width) relevant to the kernel; it is
        required for the N-dependent QR kernels and ignored otherwise.
        """
        if kernel not in KERNEL_NAMES:
            raise ConfigurationError(f"unknown kernel {kernel!r}; known: {sorted(KERNEL_NAMES)}")
        if kernel == "gemm":
            return 1.0
        if kernel == "panel":
            return self.panel_efficiency
        if kernel == "reduce_op":
            return self.reduce_op_efficiency
        if kernel == "generic":
            return self.generic_efficiency
        # qr_leaf, qr_combine, update all follow the saturating curve.
        if n is None or n <= 0:
            n = self.qr_half_width  # mid-curve default when the width is unknown
        base = self.qr_scale * float(n) / (float(n) + self.qr_half_width)
        if kernel == "update":
            # The blocked trailing update is BLAS-3 but operates on narrow
            # panels; its effective rate is calibrated as a fraction of the
            # leaf-QR curve so that the ScaLAPACK single-site numbers of
            # Fig. 4 are matched (see experiments/grid5000.py).
            return min(1.0, self.update_scale * base)
        return base


@dataclass(frozen=True)
class KernelRateModel:
    """Convert flop counts into simulated seconds for a given processor."""

    processor: ProcessorSpec = field(default_factory=ProcessorSpec)
    efficiency: KernelEfficiency = field(default_factory=KernelEfficiency)

    def rate(self, kernel: str = "gemm", n: int | float | None = None) -> float:
        """Sustained rate of ``kernel`` in flop/s for one process."""
        eff = self.efficiency.efficiency(kernel, n)
        return max(eff, 1e-6) * self.processor.dgemm_flops_per_s

    def time(
        self,
        flops: float,
        kernel: str = "gemm",
        n: int | float | None = None,
        *,
        processes: int = 1,
    ) -> float:
        """Seconds one call doing ``flops`` takes, optionally spread over
        ``processes`` perfectly-parallel processes (used for node-level
        aggregate estimates; the SPMD simulations always use ``processes=1``
        because each rank charges its own share)."""
        if flops < 0:
            raise ConfigurationError(f"negative flop count: {flops}")
        if processes <= 0:
            raise ConfigurationError(f"process count must be positive: {processes}")
        if flops == 0:
            return 0.0
        return float(flops) / (self.rate(kernel, n) * processes)

    def practical_peak_gflops(self, n_processes: int) -> float:
        """The paper's "practical upper bound": every process at DGEMM speed."""
        return self.processor.dgemm_gflops * n_processes
