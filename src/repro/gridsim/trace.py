"""Execution traces: message, byte and flop accounting.

The paper's Tables I and II are statements about *counts* — number of
messages, volume of data exchanged, number of flops on the critical path.
The simulator therefore keeps, for every rank, counters broken down by link
class and kernel, and the benchmark harness compares the measured counts to
the analytic formulas of :mod:`repro.model.costs`.

**Single-writer, lock-free recording.**  Under the virtual-time cooperative
scheduler exactly one rank runs at a time, so at most one thread ever calls
:meth:`Trace.record_message` / :meth:`Trace.record_flops` at any instant and
the semaphore handoff between ranks provides the happens-before edges.  The
hot recording path therefore takes **no lock**: counters are pre-seeded
plain dictionaries (one slot per :class:`LinkClass`, allocated once in the
constructor rather than through a ``defaultdict`` miss in the hot path) and
flat per-rank lists.  A lock is retained only for the aggregation
boundaries — :meth:`summary` and :meth:`reset` — which may be called from
the harness thread around a run.

Because events are appended in a single global order that is a pure function
of the simulated program, two identical runs produce identical ``events``
streams (and therefore byte-identical summaries), which the determinism
tests assert.

**Streaming statistics.**  Independently of event recording, the trace feeds
a :class:`~repro.obs.stats.StreamingTraceStats` observer inline from the same
single-writer hot path (``streaming=True``, the default): log-bucketed
latency/size/flop histograms, windowed busy/wait timelines and contention
hot spots, all in fixed memory with no event list.  The observer never feeds
back into pricing or scheduling — pinned trace hashes are untouched — and it
can be switched off (``streaming=False`` or ``REPRO_STREAMING_STATS=0``) for
overhead measurements.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field

from repro.gridsim.network import LinkClass
from repro.obs.stats import HotSpot, StreamingTraceStats, TraceStats

__all__ = ["MessageRecord", "Trace", "TraceSummary"]


def _streaming_default() -> bool:
    """Session-wide default for streaming stats (env kill switch for benches)."""
    return os.environ.get("REPRO_STREAMING_STATS", "1") not in ("0", "false", "off")


@dataclass(frozen=True)
class MessageRecord:
    """One logical message between two ranks (kept only when recording is on)."""

    source: int
    dest: int
    nbytes: int
    link: LinkClass
    tag: str
    send_time: float
    recv_time: float


@dataclass
class TraceSummary:
    """Aggregated view of a :class:`Trace`, used by reports and benchmarks."""

    n_messages: dict[str, int] = field(default_factory=dict)
    bytes_by_link: dict[str, int] = field(default_factory=dict)
    messages_per_rank_max: int = 0
    inter_cluster_messages_per_rank_max: int = 0
    total_flops: float = 0.0
    flops_per_rank_max: float = 0.0
    flops_by_kernel: dict[str, float] = field(default_factory=dict)
    #: Number of flop-charging events recorded (used by the engine
    #: benchmarks' events/s metric; not a paper quantity).
    flop_events: int = 0
    #: Seconds each rank spent computing (sum of the virtual time charged by
    #: its flop events).  Used by the per-rank utilisation breakdown of the
    #: DAG analysis layer and the sweep CSVs.
    busy_s_per_rank: tuple[float, ...] = ()
    #: Seconds each rank's clock advanced waiting for point-to-point
    #: messages (``max(0, arrival - clock)`` summed over its receives).
    #: Zero wait means the message had already arrived when the rank asked
    #: for it — communication fully hidden behind computation.
    comm_wait_s_per_rank: tuple[float, ...] = ()
    #: ``(rank, virtual death time)`` of every injected rank failure, in
    #: death order.  Empty for runs without a failure schedule, so summaries
    #: of failure-free runs compare equal to pre-fault-tolerance ones.
    rank_failures: tuple[tuple[int, float], ...] = ()
    #: Top-K contention sites by accumulated p2p wait time (streaming
    #: observability; empty when streaming stats are off).  Excluded from
    #: equality so summaries round-tripped through the persistent cache —
    #: which serialises the spots but not the full snapshot — and summaries
    #: from streaming-off runs still compare equal.
    hot_spots: tuple[HotSpot, ...] = field(default=(), compare=False)
    #: Full streaming snapshot (histograms, timelines, link traffic) for
    #: live runs; None when streaming is off or the summary was rebuilt from
    #: the persistent cache.  Observer output only — excluded from equality
    #: and repr like :attr:`hot_spots`.
    stats: TraceStats | None = field(default=None, compare=False, repr=False)

    def idle_s_per_rank(self, makespan: float) -> tuple[float, ...]:
        """Per-rank idle seconds: makespan minus compute minus p2p waits.

        "Idle" covers everything the busy/comm columns do not: time parked in
        collectives, load imbalance at the end of the run, and (for the DAG
        runtime) time with an empty ready queue.
        """
        return tuple(
            max(0.0, makespan - busy - wait)
            for busy, wait in zip(self.busy_s_per_rank, self.comm_wait_s_per_rank)
        )

    @property
    def total_messages(self) -> int:
        """Total number of point-to-point messages over all links."""
        return sum(self.n_messages.values())

    @property
    def total_events(self) -> int:
        """Messages plus flop charges: the engine's per-event workload."""
        return self.total_messages + self.flop_events

    @property
    def inter_cluster_messages(self) -> int:
        """Total number of messages crossing cluster boundaries."""
        return self.n_messages.get(LinkClass.INTER_CLUSTER.value, 0)

    @property
    def inter_cluster_bytes(self) -> int:
        """Total bytes crossing cluster boundaries."""
        return self.bytes_by_link.get(LinkClass.INTER_CLUSTER.value, 0)


class Trace:
    """Single-writer accumulator of communication and computation events.

    Parameters
    ----------
    n_ranks:
        World size of the simulation the trace belongs to.
    record_messages:
        When True, every message is kept as a :class:`MessageRecord` (useful
        for debugging and for the fine-grained tree tests); when False only
        the counters are maintained, which is what the large benchmarks use.
    streaming:
        When True (the default, overridable per-process with
        ``REPRO_STREAMING_STATS=0``), an always-on
        :class:`~repro.obs.stats.StreamingTraceStats` observer is fed inline
        from the recording hot path: histograms, windowed timelines and hot
        spots in fixed memory, independent of ``record_messages``.
    """

    def __init__(
        self,
        n_ranks: int,
        *,
        record_messages: bool = False,
        streaming: bool | None = None,
    ) -> None:
        self.n_ranks = n_ranks
        self.record_messages = record_messages
        if streaming is None:
            streaming = _streaming_default()
        self.stats: StreamingTraceStats | None = (
            StreamingTraceStats(n_ranks) if streaming else None
        )
        # Bound-method caches: one attribute load on the hot path instead of
        # two, and a plain None test when streaming is off.
        self._on_message = self.stats.on_message if streaming else None
        self._on_flops = self.stats.on_flops if streaming else None
        # Guards summary()/reset() boundaries only; recording is lock-free
        # (single-writer under the cooperative scheduler).
        self._lock = threading.Lock()
        self.messages: list[MessageRecord] = []
        #: Ordered event stream: ``("message", MessageRecord)`` and
        #: ``("flops", rank, flops, kernel)`` tuples in execution order (kept
        #: only when recording is on; message events share the records of
        #: :attr:`messages` rather than duplicating them).
        self.events: list[tuple] = []
        # Flat per-link slots indexed by ``LinkClass.index``: the hot path is
        # a C-level list increment, never an enum-hashing dict lookup.
        # summary() exports only links that carried at least one message,
        # matching the lazily-created dictionaries of the previous
        # implementation bit for bit.
        self._msg_count: list[int] = [0] * len(LinkClass)
        self._bytes: list[int] = [0] * len(LinkClass)
        self._msgs_per_rank = [0] * n_ranks
        self._inter_msgs_per_rank = [0] * n_ranks
        self._flops_per_rank = [0.0] * n_ranks
        self._flops_by_kernel: dict[str, float] = {}
        self._flop_events = 0
        self._busy_s_per_rank = [0.0] * n_ranks
        self._comm_wait_s_per_rank = [0.0] * n_ranks
        #: Injected rank deaths, in death order (always kept — failures are
        #: rare and the recovery accounting needs them even when message
        #: recording is off).
        self.rank_failures: list[tuple[int, float]] = []

    # ----------------------------------------------------------- recording
    def record_message(
        self,
        source: int,
        dest: int,
        nbytes: int,
        link: LinkClass,
        *,
        tag: str = "",
        send_time: float = 0.0,
        recv_time: float = 0.0,
        wait_s: float = 0.0,
    ) -> None:
        """Account for one message from ``source`` to ``dest``.

        Self-messages (``link is LinkClass.SELF``) are free and not counted:
        MPI implementations short-circuit them and so does the paper's model.
        ``wait_s`` is the receiver-clock advance the message caused (0 when it
        had already arrived — fully-hidden communication).
        """
        if link is LinkClass.SELF:
            return
        idx = link.index
        nbytes = int(nbytes)
        self._msg_count[idx] += 1
        self._bytes[idx] += nbytes
        self._msgs_per_rank[source] += 1
        self._msgs_per_rank[dest] += 1
        if wait_s > 0.0:
            self._comm_wait_s_per_rank[dest] += wait_s
        if link is LinkClass.INTER_CLUSTER:
            self._inter_msgs_per_rank[source] += 1
            self._inter_msgs_per_rank[dest] += 1
        if self._on_message is not None:
            self._on_message(
                source, dest, nbytes, idx, tag, send_time, recv_time, wait_s
            )
        if self.record_messages:
            record = MessageRecord(
                source, dest, nbytes, link, tag, send_time, recv_time
            )
            self.messages.append(record)
            self.events.append(("message", record))

    def record_flops(
        self,
        rank: int,
        flops: float,
        kernel: str = "unknown",
        seconds: float = 0.0,
        end_time: float | None = None,
    ) -> None:
        """Account for ``flops`` floating-point operations executed by ``rank``.

        ``seconds`` is the virtual time those flops took on the rank's clock
        (the busy-time component of the per-rank utilisation breakdown).
        ``end_time`` is the rank's clock when the charge completed; it only
        places the charge on the streaming busy timeline (None leaves the
        timeline untouched) and is deliberately absent from the pinned event
        tuple format.
        """
        if flops <= 0:
            return
        flops = float(flops)
        self._flops_per_rank[rank] += flops
        self._busy_s_per_rank[rank] += seconds
        kernels = self._flops_by_kernel
        kernels[kernel] = kernels.get(kernel, 0.0) + flops
        self._flop_events += 1
        if self._on_flops is not None:
            self._on_flops(rank, flops, kernel, seconds, end_time)
        if self.record_messages:
            self.events.append(("flops", rank, flops, kernel))

    def record_rank_failure(self, rank: int, time: float) -> None:
        """Record the injected death of ``rank`` at virtual ``time``."""
        self.rank_failures.append((rank, time))
        if self.record_messages:
            self.events.append(("rank_failure", rank, time))

    def finalize(self, makespan: float) -> None:
        """Pin the streaming horizon to the run's makespan.

        Called by the executor once every rank has finished, so the
        timeline snapshot width is a pure function of the makespan —
        identical across backends and recording modes regardless of how
        often the schedulers ticked.
        """
        if self.stats is not None:
            self.stats.finalize(makespan)

    # ------------------------------------------------------------- queries
    def message_count(self, link: LinkClass | None = None) -> int:
        """Number of messages, optionally restricted to one link class."""
        if link is None:
            return sum(self._msg_count)
        return self._msg_count[link.index]

    def bytes_sent(self, link: LinkClass | None = None) -> int:
        """Bytes moved, optionally restricted to one link class."""
        if link is None:
            return sum(self._bytes)
        return self._bytes[link.index]

    def flops(self, rank: int | None = None) -> float:
        """Flops executed by one rank, or by all ranks when ``rank`` is None."""
        if rank is None:
            return float(sum(self._flops_per_rank))
        return self._flops_per_rank[rank]

    def summary(self) -> TraceSummary:
        """Return an immutable aggregate snapshot of the trace."""
        with self._lock:
            # Export only links that carried messages, so the summary is
            # identical to the one the lazily-populated counters produced.
            return TraceSummary(
                n_messages={
                    k.value: self._msg_count[k.index]
                    for k in LinkClass
                    if self._msg_count[k.index]
                },
                bytes_by_link={
                    k.value: self._bytes[k.index]
                    for k in LinkClass
                    if self._msg_count[k.index]
                },
                messages_per_rank_max=max(self._msgs_per_rank, default=0),
                inter_cluster_messages_per_rank_max=max(self._inter_msgs_per_rank, default=0),
                total_flops=float(sum(self._flops_per_rank)),
                flops_per_rank_max=float(max(self._flops_per_rank, default=0.0)),
                flops_by_kernel=dict(self._flops_by_kernel),
                flop_events=self._flop_events,
                busy_s_per_rank=tuple(self._busy_s_per_rank),
                comm_wait_s_per_rank=tuple(self._comm_wait_s_per_rank),
                rank_failures=tuple(self.rank_failures),
                hot_spots=(
                    self.stats.top_hotspots() if self.stats is not None else ()
                ),
                stats=self.stats.snapshot() if self.stats is not None else None,
            )

    def reset(self) -> None:
        """Clear all counters (used between benchmark repetitions)."""
        with self._lock:
            self.messages.clear()
            self.events.clear()
            self._msg_count = [0] * len(LinkClass)
            self._bytes = [0] * len(LinkClass)
            self._msgs_per_rank = [0] * self.n_ranks
            self._inter_msgs_per_rank = [0] * self.n_ranks
            self._flops_per_rank = [0.0] * self.n_ranks
            self._flops_by_kernel = {}
            self._flop_events = 0
            self._busy_s_per_rank = [0.0] * self.n_ranks
            self._comm_wait_s_per_rank = [0.0] * self.n_ranks
            self.rank_failures = []
            if self.stats is not None:
                self.stats = StreamingTraceStats(self.n_ranks)
                self._on_message = self.stats.on_message
                self._on_flops = self.stats.on_flops
