"""Execution traces: message, byte and flop accounting.

The paper's Tables I and II are statements about *counts* — number of
messages, volume of data exchanged, number of flops on the critical path.
The simulator therefore keeps, for every rank, counters broken down by link
class and kernel, and the benchmark harness compares the measured counts to
the analytic formulas of :mod:`repro.model.costs`.

The trace is shared by all rank threads of a simulation, so updates are
guarded by a lock; the counters themselves are plain dictionaries to keep
the per-event overhead negligible.

Under the virtual-time cooperative scheduler exactly one rank runs at a
time, so events are appended in a single global order that is a pure
function of the simulated program — two identical runs produce identical
``events`` streams (and therefore byte-identical summaries), which the
determinism tests assert.
"""

from __future__ import annotations

import threading
from collections import defaultdict
from dataclasses import dataclass, field

from repro.gridsim.network import LinkClass

__all__ = ["MessageRecord", "Trace", "TraceSummary"]


@dataclass(frozen=True)
class MessageRecord:
    """One logical message between two ranks (kept only when recording is on)."""

    source: int
    dest: int
    nbytes: int
    link: LinkClass
    tag: str
    send_time: float
    recv_time: float


@dataclass
class TraceSummary:
    """Aggregated view of a :class:`Trace`, used by reports and benchmarks."""

    n_messages: dict[str, int] = field(default_factory=dict)
    bytes_by_link: dict[str, int] = field(default_factory=dict)
    messages_per_rank_max: int = 0
    inter_cluster_messages_per_rank_max: int = 0
    total_flops: float = 0.0
    flops_per_rank_max: float = 0.0
    flops_by_kernel: dict[str, float] = field(default_factory=dict)

    @property
    def total_messages(self) -> int:
        """Total number of point-to-point messages over all links."""
        return sum(self.n_messages.values())

    @property
    def inter_cluster_messages(self) -> int:
        """Total number of messages crossing cluster boundaries."""
        return self.n_messages.get(LinkClass.INTER_CLUSTER.value, 0)

    @property
    def inter_cluster_bytes(self) -> int:
        """Total bytes crossing cluster boundaries."""
        return self.bytes_by_link.get(LinkClass.INTER_CLUSTER.value, 0)


class Trace:
    """Thread-safe accumulator of communication and computation events.

    Parameters
    ----------
    n_ranks:
        World size of the simulation the trace belongs to.
    record_messages:
        When True, every message is kept as a :class:`MessageRecord` (useful
        for debugging and for the fine-grained tree tests); when False only
        the counters are maintained, which is what the large benchmarks use.
    """

    def __init__(self, n_ranks: int, *, record_messages: bool = False) -> None:
        self.n_ranks = n_ranks
        self.record_messages = record_messages
        self._lock = threading.Lock()
        self.messages: list[MessageRecord] = []
        #: Ordered event stream: ``("message", MessageRecord)`` and
        #: ``("flops", rank, flops, kernel)`` tuples in execution order (kept
        #: only when recording is on; message events share the records of
        #: :attr:`messages` rather than duplicating them).
        self.events: list[tuple] = []
        self._msg_count: dict[LinkClass, int] = defaultdict(int)
        self._bytes: dict[LinkClass, int] = defaultdict(int)
        self._msgs_per_rank = [0] * n_ranks
        self._inter_msgs_per_rank = [0] * n_ranks
        self._flops_per_rank = [0.0] * n_ranks
        self._flops_by_kernel: dict[str, float] = defaultdict(float)

    # ----------------------------------------------------------- recording
    def record_message(
        self,
        source: int,
        dest: int,
        nbytes: int,
        link: LinkClass,
        *,
        tag: str = "",
        send_time: float = 0.0,
        recv_time: float = 0.0,
    ) -> None:
        """Account for one message from ``source`` to ``dest``.

        Self-messages (``link is LinkClass.SELF``) are free and not counted:
        MPI implementations short-circuit them and so does the paper's model.
        """
        if link is LinkClass.SELF:
            return
        with self._lock:
            self._msg_count[link] += 1
            self._bytes[link] += int(nbytes)
            self._msgs_per_rank[source] += 1
            self._msgs_per_rank[dest] += 1
            if link is LinkClass.INTER_CLUSTER:
                self._inter_msgs_per_rank[source] += 1
                self._inter_msgs_per_rank[dest] += 1
            if self.record_messages:
                record = MessageRecord(
                    source, dest, int(nbytes), link, tag, send_time, recv_time
                )
                self.messages.append(record)
                self.events.append(("message", record))

    def record_flops(self, rank: int, flops: float, kernel: str = "unknown") -> None:
        """Account for ``flops`` floating-point operations executed by ``rank``."""
        if flops <= 0:
            return
        with self._lock:
            self._flops_per_rank[rank] += float(flops)
            self._flops_by_kernel[kernel] += float(flops)
            if self.record_messages:
                self.events.append(("flops", rank, float(flops), kernel))

    # ------------------------------------------------------------- queries
    def message_count(self, link: LinkClass | None = None) -> int:
        """Number of messages, optionally restricted to one link class."""
        with self._lock:
            if link is None:
                return sum(self._msg_count.values())
            return self._msg_count[link]

    def bytes_sent(self, link: LinkClass | None = None) -> int:
        """Bytes moved, optionally restricted to one link class."""
        with self._lock:
            if link is None:
                return sum(self._bytes.values())
            return self._bytes[link]

    def flops(self, rank: int | None = None) -> float:
        """Flops executed by one rank, or by all ranks when ``rank`` is None."""
        with self._lock:
            if rank is None:
                return float(sum(self._flops_per_rank))
            return self._flops_per_rank[rank]

    def summary(self) -> TraceSummary:
        """Return an immutable aggregate snapshot of the trace."""
        with self._lock:
            return TraceSummary(
                n_messages={k.value: v for k, v in self._msg_count.items()},
                bytes_by_link={k.value: v for k, v in self._bytes.items()},
                messages_per_rank_max=max(self._msgs_per_rank, default=0),
                inter_cluster_messages_per_rank_max=max(self._inter_msgs_per_rank, default=0),
                total_flops=float(sum(self._flops_per_rank)),
                flops_per_rank_max=float(max(self._flops_per_rank, default=0.0)),
                flops_by_kernel=dict(self._flops_by_kernel),
            )

    def reset(self) -> None:
        """Clear all counters (used between benchmark repetitions)."""
        with self._lock:
            self.messages.clear()
            self.events.clear()
            self._msg_count.clear()
            self._bytes.clear()
            self._msgs_per_rank = [0] * self.n_ranks
            self._inter_msgs_per_rank = [0] * self.n_ranks
            self._flops_per_rank = [0.0] * self.n_ranks
            self._flops_by_kernel.clear()
