"""Simulated MPI communicator.

The SPMD programs of this project (QCG-TSQR, the ScaLAPACK-style baseline,
the examples) are written against the interface below, which mirrors the
mpi4py object API (``send``/``recv``/``bcast``/``reduce``/``allreduce``/
``gather``/``scatter``/``split``/``barrier``) but executes under *virtual
time*:

* every rank is a cooperative generator driven by the engine's scheduler
  (exactly one rank runs at a time, minimum virtual clock first), with its
  own virtual clock in :class:`~repro.gridsim.platform.SimulationState`;
  blocking methods below are generator functions that suspend by yielding a
  :class:`~repro.gridsim.engine.Park` request — rank programs call them with
  ``yield from`` (``r = yield from comm.recv(...)``);
* a point-to-point message advances the receiver's clock by the link's
  ``latency + overhead + bytes/bandwidth``, with the link chosen from the
  placement of the two ranks (intra-node / intra-cluster / inter-cluster);
* collectives are executed as explicit tree schedules
  (:mod:`repro.gridsim.collectives`), so a reduction over ranks spread across
  clusters pays wide-area latencies exactly where its tree crosses sites —
  the effect at the heart of the paper;
* every message and every flop is recorded in the
  :class:`~repro.gridsim.trace.Trace` for the Table I/II count validations.

Implementation notes: a collective is executed by whichever rank enters the
rendezvous last; every other participant parks (yields ``Park`` to the
engine) until the schedule has been simulated.  A ``recv`` on an empty
mailbox likewise parks until the matching ``send`` unparks it.  There are no
polling sleeps and no wall-clock timeouts: blocking is event-driven, and a
cyclic wait is reported immediately as a
:class:`~repro.exceptions.DeadlockError` by the scheduler.  Because only one
rank runs at a time, mailboxes and rendezvous state need no locks of their
own.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.exceptions import CommunicatorError, RankFailedError
from repro.gridsim.collectives import (
    TreeSchedule,
    binary_tree,
    flat_tree,
    hierarchical_tree,
    simulate_broadcast,
    simulate_reduce,
)
from repro.gridsim.engine import Park
from repro.gridsim.platform import SimulationState
from repro.virtual.matrix import VirtualMatrix

__all__ = ["payload_nbytes", "ReduceOp", "SUM", "MAX", "CommCore", "CommHandle"]


def payload_nbytes(obj: object) -> int:
    """Best-effort size in bytes of a message payload.

    Handles numpy arrays, :class:`VirtualMatrix`, scalars, ``None`` and
    containers; anything unknown is charged a small fixed envelope.  Sizes
    feed the bandwidth term of the network model, so the goal is a faithful
    order of magnitude, not serialization-exact byte counts.
    """
    if obj is None:
        return 0
    if isinstance(obj, VirtualMatrix):
        return obj.nbytes
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bool, int, float, complex, np.generic)):
        return 8
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    if isinstance(obj, str):
        return len(obj.encode())
    if isinstance(obj, (tuple, list, set, frozenset)):
        return sum(payload_nbytes(x) for x in obj) + 16
    if isinstance(obj, dict):
        return sum(payload_nbytes(k) + payload_nbytes(v) for k, v in obj.items()) + 16
    nbytes = getattr(obj, "nbytes", None)
    if isinstance(nbytes, (int, np.integer)):
        return int(nbytes)
    return 64


@dataclass(frozen=True)
class ReduceOp:
    """A user-defined reduction operator with its cost model.

    Attributes
    ----------
    func:
        Binary combine ``func(acc, incoming) -> combined``; must be
        associative (and commutative if the tree shape is not fixed).
    flops:
        ``flops(acc, incoming) -> float`` cost of one combine, used to charge
        virtual compute time; defaults to one flop per element of the result.
    kernel:
        Kernel-model class used to convert those flops into seconds.
    width:
        Optional ``width(acc, incoming) -> int`` giving the column count N
        passed to the kernel-efficiency curve.
    """

    func: Callable[[object, object], object]
    flops: Callable[[object, object], float] | None = None
    kernel: str = "reduce_op"
    width: Callable[[object, object], int | None] | None = None

    def combine_cost(self, acc: object, incoming: object) -> tuple[float, int | None]:
        """Return ``(flops, n)`` of combining ``acc`` with ``incoming``."""
        if self.flops is not None:
            f = float(self.flops(acc, incoming))
        else:
            f = float(np.size(acc)) if isinstance(acc, np.ndarray) else 1.0
        n = self.width(acc, incoming) if self.width is not None else None
        return f, n


def _sum_combine(a: object, b: object) -> object:
    if a is None:
        return b
    if b is None:
        return a
    return a + b


#: Element-wise sum, the default reduction.
SUM = ReduceOp(func=_sum_combine)
#: Element-wise maximum.
MAX = ReduceOp(func=lambda a, b: b if a is None else (a if b is None else np.maximum(a, b)))


class _Rendezvous:
    """Collective meeting point shared by the ranks of one communicator.

    Plain data: the single-runner invariant of the scheduler means at most
    one rank mutates it at any instant, so no lock is needed.
    """

    def __init__(self, size: int) -> None:
        self.size = size
        self.generation = 0
        self.entries: dict[int, tuple[str, object, dict]] = {}
        self.results: dict[int, dict[int, object]] = {}
        self.pending_reads: dict[int, int] = {}


class CommCore:
    """Shared state of one communicator (the 'MPI_Comm' object)."""

    __slots__ = (
        "state",
        "world_ranks",
        "collective_tree",
        "comm_id",
        "name",
        "size",
        "_mailbox",
        "_rendezvous",
        "_tree_cache",
    )

    def __init__(
        self,
        state: SimulationState,
        world_ranks: Sequence[int],
        *,
        collective_tree: str = "binary",
        name: str | None = None,
    ) -> None:
        if len(set(world_ranks)) != len(world_ranks):
            raise CommunicatorError("duplicate world ranks in communicator group")
        if collective_tree not in ("binary", "flat", "hierarchical"):
            raise CommunicatorError(f"unknown collective tree kind {collective_tree!r}")
        self.state = state
        self.world_ranks = tuple(int(r) for r in world_ranks)
        self.collective_tree = collective_tree
        self.comm_id = state.allocate_comm_id()
        self.name = name or f"comm{self.comm_id}"
        self.size = len(self.world_ranks)
        self._mailbox: dict[tuple[int, int, object], deque] = {}
        self._rendezvous = _Rendezvous(self.size)
        self._tree_cache: dict[int, TreeSchedule] = {}

    # ------------------------------------------------------------- helpers
    def world_rank(self, local_rank: int) -> int:
        """Translate a local rank of this communicator into a world rank."""
        if not 0 <= local_rank < self.size:
            raise CommunicatorError(f"local rank {local_rank} out of range [0, {self.size})")
        return self.world_ranks[local_rank]

    def _check_abort(self) -> None:
        # Hot path: a plain attribute read; only a failed simulation pays
        # for the scheduler call that raises the recorded exception.
        if self.state.aborted:
            self.state.scheduler.check_abort()

    def _failure_checks(self, local_rank: int) -> None:
        """Failure checkpoint + revocation check at one operation *entry*.

        Called (guarded by ``state.failures is not None`` — runs without a
        schedule never branch here) at every operation entry.  First the
        calling rank's own deadline is checked (it may die here); then the
        revocation check of :meth:`_revocation_check`.  Park wake-ups run
        the revocation check only: deadlines fire at operation entries and
        compute charges, never on the way out of a completed rendezvous —
        so a completed collective is a consistent cut, which the DAG
        recovery protocol relies on for its completion barriers.
        """
        state = self.state
        state.failure_checkpoint(self.world_ranks[local_rank])
        self._revocation_check(local_rank)

    def _revocation_check(self, local_rank: int) -> None:
        """Raise if any group member has died (the ULFM 'revoked' state).

        The operation raises :class:`~repro.exceptions.RankFailedError` in
        virtual time, with the caller's clock already advanced past the
        death it observed.  Undelivered mailbox entries of a revoked
        communicator are tombstones — never consumed, never traced.
        """
        state = self.state
        if state.dead_ranks:
            dead = [r for r in self.world_ranks if r in state.dead_ranks]
            if dead:
                me = self.world_ranks[local_rank]
                # Detection happens in virtual time: the survivor learns of
                # the death no earlier than the death itself.
                detect = max(state.death_time[r] for r in dead)
                if detect > state._clocks[me]:
                    state._clocks[me] = detect
                times = ", ".join(f"{r} at t={state.death_time[r]:.6g}s" for r in dead)
                raise RankFailedError(
                    f"communicator {self.name!r} is revoked: rank(s) {times} failed"
                )

    def _edge_time_recorder(self, nbytes_of: Callable[[object], int], tag: str):
        """Return an ``edge_time(src_pos, dst_pos, payload)`` callback that
        prices the link between the corresponding world ranks and records the
        message in the trace.

        Payload sizes are memoised per collective execution (a broadcast
        sends the *same* object down every tree edge, and sizing a nested
        container is O(size)); the memo holds a strong reference to each
        sized payload, so an ``id`` can never be reused while its entry is
        alive, and dies with the closure when the collective completes.
        """
        memo: dict[int, tuple[object, int]] = {}

        def edge_time(src_pos: int, dst_pos: int, payload: object) -> float:
            src = self.world_ranks[src_pos]
            dst = self.world_ranks[dst_pos]
            entry = memo.get(id(payload))
            if entry is None or entry[0] is not payload:
                nbytes = nbytes_of(payload)
                memo[id(payload)] = (payload, nbytes)
            else:
                nbytes = entry[1]
            link, spec = self.state.link_of(src, dst)
            dt = 0.0 if spec is None else spec.transfer_time(nbytes)
            self.state.trace.record_message(src, dst, nbytes, link, tag=tag)
            return dt

        return edge_time

    def _build_tree(self, root_local: int) -> TreeSchedule:
        """Build (and memoise) the collective tree rooted at ``root_local``."""
        cached = self._tree_cache.get(root_local)
        if cached is not None:
            return cached
        tree = self._build_tree_uncached(root_local)
        self._tree_cache[root_local] = tree
        return tree

    def _build_tree_uncached(self, root_local: int) -> TreeSchedule:
        if self.collective_tree == "flat":
            return flat_tree(self.size, root=root_local)
        if self.collective_tree == "binary":
            return binary_tree(self.size, root=root_local)
        # Topology-aware: group local ranks by hosting cluster, keep the
        # root's cluster as the root group.
        placement = self.state.platform.placement
        clusters: dict[str, list[int]] = {}
        for pos, wr in enumerate(self.world_ranks):
            clusters.setdefault(placement.cluster_of(wr), []).append(pos)
        groups = list(clusters.values())
        root_cluster = placement.cluster_of(self.world_ranks[root_local])
        names = list(clusters.keys())
        root_group = names.index(root_cluster)
        # Make sure the root is the first member of its group so it becomes
        # the group root (and thus the global root).
        grp = groups[root_group]
        grp.remove(root_local)
        groups[root_group] = [root_local] + grp
        return hierarchical_tree(groups, root_group=root_group)

    # ----------------------------------------------------------------- p2p
    def send(self, local_rank: int, payload: object, dest: int, tag: object = 0,
             nbytes: int | None = None) -> None:
        """Eager send: enqueue the payload with the sender's current clock."""
        state = self.state
        if state.aborted:
            state.scheduler.check_abort()
        if state.failures is not None:
            self._failure_checks(local_rank)
        if not 0 <= dest < self.size:
            raise CommunicatorError(f"send to invalid rank {dest} (size {self.size})")
        size = payload_nbytes(payload) if nbytes is None else int(nbytes)
        sender_clock = state._clocks[self.world_ranks[local_rank]]
        key = (dest, local_rank, tag)
        self._mailbox.setdefault(key, deque()).append((payload, sender_clock, size))
        # Wake the receiver if it is parked on exactly this (source, tag).
        state.scheduler.unpark("recv", (self.comm_id, dest, local_rank, tag))

    def recv(self, local_rank: int, source: int, tag: object = 0):
        """Blocking receive; advances the receiver's clock by the transfer time.

        A generator (drive with ``yield from``).  When the mailbox is empty
        the calling rank parks — yields a :class:`Park` to the engine — and
        is woken by the matching :meth:`send`, or fails immediately with a
        :class:`~repro.exceptions.DeadlockError` if no rank can ever send it.
        """
        state = self.state
        if state.aborted:
            state.scheduler.check_abort()
        if state.failures is not None:
            self._failure_checks(local_rank)
        if not 0 <= source < self.size:
            raise CommunicatorError(f"recv from invalid rank {source} (size {self.size})")
        key = (local_rank, source, tag)
        me = self.world_ranks[local_rank]
        while True:
            queue = self._mailbox.get(key)
            if queue:
                payload, sender_clock, nbytes = queue.popleft()
                break
            yield Park(
                "recv",
                (self.comm_id, local_rank, source, tag),
                # Lazy: only formatted if this wait ends up in a deadlock report.
                lambda: f"recv(source={source}, tag={tag!r}) on communicator {self.name!r}",
            )
            self._check_abort()
            if state.failures is not None:
                self._revocation_check(local_rank)
        src_world = self.world_ranks[source]
        # Fused price-and-record: classify the link once (memoised per rank
        # pair), charge the alpha-beta cost, and append to the trace directly.
        link, spec = state.link_of(src_world, me)
        transfer = 0.0 if spec is None else spec.transfer_time(nbytes)
        arrival = sender_clock + transfer
        clocks = state._clocks
        my_clock = clocks[me]
        if arrival > my_clock:
            clocks[me] = arrival
        state.trace.record_message(
            src_world, me, nbytes, link, tag=str(tag), send_time=sender_clock,
            recv_time=arrival, wait_s=max(0.0, arrival - my_clock),
        )
        return payload

    def probe(self, local_rank: int, source: int, tag: object = 0) -> float | None:
        """Non-destructive check for a pending message from ``source``/``tag``.

        Returns the message's virtual *arrival time* (sender clock plus
        transfer time) when one is queued, ``None`` otherwise.  Nothing is
        consumed, no clock moves and nothing is traced — the caller decides
        whether to :meth:`recv`.  Under the cooperative scheduler the result
        is a pure function of simulation state, so probe-driven programs (the
        DAG runtime's ready queue) stay deterministic.
        """
        state = self.state
        if state.aborted:
            state.scheduler.check_abort()
        if state.failures is not None:
            self._failure_checks(local_rank)
        if not 0 <= source < self.size:
            raise CommunicatorError(f"probe of invalid rank {source} (size {self.size})")
        queue = self._mailbox.get((local_rank, source, tag))
        if not queue:
            return None
        _payload, sender_clock, nbytes = queue[0]
        spec = state.link_of(self.world_ranks[source], self.world_ranks[local_rank])[1]
        return sender_clock + (0.0 if spec is None else spec.transfer_time(nbytes))

    def sendrecv(
        self, local_rank: int, payload: object, dest: int, source: int, tag: object = 0
    ):
        """Combined send + receive (a generator; drive with ``yield from``)."""
        self.send(local_rank, payload, dest, tag)
        return (yield from self.recv(local_rank, source, tag))

    # ----------------------------------------------------------- rendezvous
    def _collective(
        self, local_rank: int, kind: str, value: object, params: dict
    ):
        """Enter a collective; the last rank to arrive executes the schedule.

        A generator (drive with ``yield from``).  Every earlier arrival parks
        keyed by the rendezvous generation; the executing rank simulates the
        whole schedule, updates all exit clocks, publishes the per-rank
        results and unparks everyone.
        """
        state = self.state
        if state.aborted:
            state.scheduler.check_abort()
        if state.failures is not None:
            self._failure_checks(local_rank)
        rv = self._rendezvous
        my_gen = rv.generation
        if local_rank in rv.entries:
            raise CommunicatorError(
                f"rank {local_rank} entered collective {kind!r} twice in generation {my_gen}"
            )
        rv.entries[local_rank] = (kind, value, params)
        if len(rv.entries) == self.size:
            entries = rv.entries
            rv.entries = {}
            try:
                results = self._execute_collective(entries)
            except BaseException as exc:  # propagate to every waiting rank
                rv.generation += 1
                self.state.fail(exc)  # wakes every parked participant
                raise
            rv.results[my_gen] = results
            rv.pending_reads[my_gen] = self.size
            rv.generation += 1
            self.state.scheduler.unpark("collective", (self.comm_id, my_gen))
        else:
            while rv.generation == my_gen:
                yield Park(
                    "collective",
                    (self.comm_id, my_gen),
                    # Lazy: formatted only at deadlock detection, where both
                    # backends observe the same arrival count.
                    lambda: f"collective {kind!r} on communicator {self.name!r} "
                    f"({len(rv.entries)}/{self.size} ranks arrived)",
                )
                self._check_abort()
                if state.failures is not None:
                    self._revocation_check(local_rank)
        result = rv.results[my_gen][local_rank]
        rv.pending_reads[my_gen] -= 1
        if rv.pending_reads[my_gen] == 0:
            del rv.results[my_gen]
            del rv.pending_reads[my_gen]
        return result

    def _execute_collective(self, entries: dict[int, tuple[str, object, dict]]) -> dict[int, object]:
        """Simulate one collective over all local ranks and return per-rank results."""
        kinds = {kind for kind, _, _ in entries.values()}
        if len(kinds) != 1:
            raise CommunicatorError(
                f"collective mismatch: ranks called different collectives {sorted(kinds)}"
            )
        kind = kinds.pop()
        params = entries[min(entries)][2]
        values = [entries[i][1] for i in range(self.size)]
        clocks = [self.state.clock(self.world_rank(i)) for i in range(self.size)]
        dispatch = {
            "barrier": self._do_barrier,
            "bcast": self._do_bcast,
            "reduce": self._do_reduce,
            "allreduce": self._do_allreduce,
            "gather": self._do_gather,
            "allgather": self._do_allgather,
            "scatter": self._do_scatter,
            "split": self._do_split,
        }
        if kind not in dispatch:
            raise CommunicatorError(f"unknown collective kind {kind!r}")
        results, exit_clocks = dispatch[kind](values, clocks, params)
        for i, t in enumerate(exit_clocks):
            self.state.set_clock(self.world_rank(i), t)
        return {i: results[i] for i in range(self.size)}

    # ------------------------------------------------------ collective impl
    def _combine_maker(self, op: ReduceOp):
        """Return a ``combine(acc, incoming) -> (value, dt)`` closure charging flops.

        The flops are recorded against the rank that *performs* the combine;
        since the reduce simulation does not know which position combines
        (it is the parent), we charge them to the parent when pricing the
        edge — here we only compute the time.
        """

        def combine(acc: object, incoming: object) -> tuple[object, float]:
            flops, n = op.combine_cost(acc, incoming)
            dt = self.state.platform.kernel_model.time(flops, op.kernel, n)
            combined = op.func(acc, incoming)
            return combined, dt

        return combine

    def _do_barrier(self, values, clocks, params):
        tree = self._build_tree(0)
        edge_time = self._edge_time_recorder(lambda _p: 0, tag="barrier")
        noop = ReduceOp(func=lambda a, b: None, flops=lambda a, b: 0.0)
        _, up = simulate_reduce(tree, [None] * self.size, clocks, edge_time, self._combine_maker(noop))
        _, down = simulate_broadcast(tree, None, up, edge_time, root_ready=up[tree.root])
        return [None] * self.size, down

    def _do_bcast(self, values, clocks, params):
        root = params.get("root", 0)
        tree = self._build_tree(root)
        nbytes_fn = params.get("nbytes_fn", payload_nbytes)
        edge_time = self._edge_time_recorder(nbytes_fn, tag="bcast")
        value = values[root]
        results, exit_clocks = simulate_broadcast(tree, value, clocks, edge_time)
        return results, exit_clocks

    def _do_reduce(self, values, clocks, params):
        root = params.get("root", 0)
        op: ReduceOp = params.get("op", SUM)
        tree = self._build_tree(root)
        nbytes_fn = params.get("nbytes_fn", payload_nbytes)
        edge_time = self._edge_time_recorder(nbytes_fn, tag="reduce")
        result, exit_clocks = simulate_reduce(
            tree, list(values), clocks, edge_time, self._combine_maker(op)
        )
        # Record the combine flops against the world rank of each internal node.
        self._charge_reduce_flops(tree, values, clocks, op)
        out = [None] * self.size
        out[root] = result
        return out, exit_clocks

    def _do_allreduce(self, values, clocks, params):
        root = params.get("root", 0)
        op: ReduceOp = params.get("op", SUM)
        tree = self._build_tree(root)
        nbytes_fn = params.get("nbytes_fn", payload_nbytes)
        edge_up = self._edge_time_recorder(nbytes_fn, tag="reduce")
        edge_down = self._edge_time_recorder(nbytes_fn, tag="bcast")
        result, up_clocks = simulate_reduce(
            tree, list(values), clocks, edge_up, self._combine_maker(op)
        )
        self._charge_reduce_flops(tree, values, clocks, op)
        results, exit_clocks = simulate_broadcast(
            tree, result, up_clocks, edge_down, root_ready=up_clocks[tree.root]
        )
        return results, exit_clocks

    def _charge_reduce_flops(
        self, tree: TreeSchedule, values, clocks, op: ReduceOp
    ) -> None:
        """Replay the reduce combine order to attribute flops to parent ranks.

        The seconds passed along are the same ``dt`` the reduce simulation
        charged to the parent's exit clock, so the per-rank busy accounting
        of the trace covers collective compute too.  The streaming busy
        timeline places each combine at the parent's *entry* clock — a
        deliberately coarse attribution (the exact exit clock lives inside
        the reduce simulation), deterministic across backends because
        ``clocks`` is the same entry snapshot on both.
        """
        acc = list(values)
        kernel_model = self.state.platform.kernel_model

        def _walk(pos: int) -> None:
            for child in tree.children[pos]:
                _walk(child)
                flops, n = op.combine_cost(acc[pos], acc[child])
                dt = kernel_model.time(flops, op.kernel, n)
                self.state.trace.record_flops(
                    self.world_rank(pos), flops, op.kernel, dt, clocks[pos]
                )
                acc[pos] = op.func(acc[pos], acc[child])

        _walk(tree.root)

    def _do_gather(self, values, clocks, params):
        root = params.get("root", 0)
        nbytes_fn = params.get("nbytes_fn", payload_nbytes)
        exit_clocks = list(clocks)
        root_world = self.world_rank(root)
        root_time = clocks[root]
        for src in range(self.size):
            if src == root:
                continue
            nbytes = nbytes_fn(values[src])
            dt = self.state.transfer_time(nbytes, self.world_rank(src), root_world)
            self.state.record_message(self.world_rank(src), root_world, nbytes, tag="gather")
            root_time = max(root_time, clocks[src] + dt)
        exit_clocks[root] = root_time
        out = [None] * self.size
        out[root] = list(values)
        return out, exit_clocks

    def _do_allgather(self, values, clocks, params):
        gathered, after_gather = self._do_gather(values, clocks, {**params, "root": 0})
        tree = self._build_tree(0)
        nbytes_fn = params.get("nbytes_fn", payload_nbytes)
        edge_time = self._edge_time_recorder(nbytes_fn, tag="allgather")
        results, exit_clocks = simulate_broadcast(
            tree, gathered[0], after_gather, edge_time, root_ready=after_gather[0]
        )
        return results, exit_clocks

    def _do_scatter(self, values, clocks, params):
        root = params.get("root", 0)
        nbytes_fn = params.get("nbytes_fn", payload_nbytes)
        items = values[root]
        if items is None or len(items) != self.size:
            raise CommunicatorError(
                f"scatter root must provide exactly {self.size} items, got "
                f"{None if items is None else len(items)}"
            )
        exit_clocks = list(clocks)
        sender_busy = clocks[root]
        root_world = self.world_rank(root)
        out = [None] * self.size
        for dest in range(self.size):
            if dest == root:
                out[dest] = items[dest]
                continue
            nbytes = nbytes_fn(items[dest])
            dt = self.state.transfer_time(nbytes, root_world, self.world_rank(dest))
            self.state.record_message(root_world, self.world_rank(dest), nbytes, tag="scatter")
            sender_busy += dt
            exit_clocks[dest] = max(clocks[dest], sender_busy)
            out[dest] = items[dest]
        exit_clocks[root] = sender_busy
        return out, exit_clocks

    def _do_split(self, values, clocks, params):
        # values[i] is the (color, key) pair supplied by local rank i.
        # Communicator creation is treated as free *setup*: the paper's cost
        # model (and its measurements) cover the factorization only, and the
        # topology-aware communicators are built once per application run, so
        # no messages are recorded and no virtual time is charged here.
        exit_clocks = list(clocks)

        groups: dict[object, list[tuple[object, int]]] = {}
        for local, (color, key) in enumerate(values):
            if color is None:  # MPI_UNDEFINED: rank opts out of any new comm
                continue
            groups.setdefault(color, []).append((key if key is not None else local, local))
        cores: dict[object, CommCore] = {}
        membership: dict[int, tuple[CommCore, int]] = {}
        for color, members in groups.items():
            members.sort()
            world = [self.world_rank(local) for _, local in members]
            core = CommCore(
                self.state,
                world,
                collective_tree=params.get("collective_tree", self.collective_tree),
                name=f"{self.name}.split({color})",
            )
            cores[color] = core
            for new_local, (_, local) in enumerate(members):
                membership[local] = (core, new_local)
        out: list[object] = []
        for local in range(self.size):
            if local in membership:
                core, new_local = membership[local]
                out.append(CommHandle(core, new_local))
            else:
                out.append(None)
        return out, exit_clocks


@dataclass(slots=True)
class CommHandle:
    """Per-rank view of a communicator (what an MPI process holds).

    Blocking methods (``recv``, ``sendrecv`` and every collective) are
    generator functions: rank programs drive them with ``yield from`` so the
    engine can suspend the program at the blocking point.  Non-blocking
    methods (``send``, ``probe``, ``compute``, ``clock``) are plain calls.
    """

    core: CommCore
    local_rank: int

    # --------------------------------------------------------------- basics
    @property
    def rank(self) -> int:
        """Rank of the calling process within this communicator."""
        return self.local_rank

    @property
    def size(self) -> int:
        """Number of processes in this communicator."""
        return self.core.size

    @property
    def world_rank(self) -> int:
        """Global (world) rank of the calling process."""
        return self.core.world_rank(self.local_rank)

    @property
    def state(self) -> SimulationState:
        """The simulation state shared by all ranks."""
        return self.core.state

    def clock(self) -> float:
        """Current virtual time of the calling rank, in seconds."""
        return self.core.state.clock(self.world_rank)

    # ------------------------------------------------------------------ p2p
    def send(self, payload: object, dest: int, tag: object = 0, *, nbytes: int | None = None) -> None:
        """Send ``payload`` to local rank ``dest`` (eager, non-blocking in time)."""
        self.core.send(self.local_rank, payload, dest, tag, nbytes)

    def recv(self, source: int, tag: object = 0):
        """Receive the next message from ``source`` with matching ``tag``."""
        return (yield from self.core.recv(self.local_rank, source, tag))

    def probe(self, source: int, tag: object = 0) -> float | None:
        """Arrival time of a pending message from ``source``/``tag``, or None."""
        return self.core.probe(self.local_rank, source, tag)

    def sendrecv(self, payload: object, dest: int, source: int, tag: object = 0):
        """Send to ``dest`` and receive from ``source``."""
        return (yield from self.core.sendrecv(self.local_rank, payload, dest, source, tag))

    # ---------------------------------------------------------- collectives
    def barrier(self):
        """Synchronise all ranks of the communicator."""
        yield from self.core._collective(self.local_rank, "barrier", None, {})

    def bcast(self, payload: object = None, root: int = 0):
        """Broadcast ``payload`` from ``root`` to every rank; returns it everywhere."""
        return (yield from self.core._collective(
            self.local_rank, "bcast", payload, {"root": root}
        ))

    def reduce(self, value: object, op: ReduceOp = SUM, root: int = 0):
        """Tree reduction to ``root``; non-root ranks receive ``None``."""
        return (yield from self.core._collective(
            self.local_rank, "reduce", value, {"op": op, "root": root}
        ))

    def allreduce(self, value: object, op: ReduceOp = SUM):
        """Tree reduction followed by a broadcast of the result to every rank."""
        return (yield from self.core._collective(
            self.local_rank, "allreduce", value, {"op": op}
        ))

    def gather(self, value: object, root: int = 0):
        """Gather one value per rank at ``root`` (rank order); ``None`` elsewhere."""
        return (yield from self.core._collective(
            self.local_rank, "gather", value, {"root": root}
        ))

    def allgather(self, value: object):
        """Gather one value per rank and broadcast the list to everyone."""
        return (yield from self.core._collective(self.local_rank, "allgather", value, {}))

    def scatter(self, values: list[object] | None = None, root: int = 0):
        """Scatter one item of ``values`` (given at ``root``) to each rank."""
        return (yield from self.core._collective(
            self.local_rank, "scatter", values, {"root": root}
        ))

    def split(self, color: object, key: int | None = None, *,
              collective_tree: str | None = None):
        """Split the communicator by ``color`` (mirrors ``MPI_Comm_split``).

        Ranks passing ``color=None`` receive ``None`` (they join no new
        communicator).  ``collective_tree`` overrides the tree shape of the
        resulting communicators.
        """
        params = {}
        if collective_tree is not None:
            params["collective_tree"] = collective_tree
        return (yield from self.core._collective(
            self.local_rank, "split", (color, key), params
        ))

    # --------------------------------------------------------------- compute
    def compute(self, flops: float, kernel: str = "gemm", n: int | float | None = None) -> float:
        """Charge ``flops`` of ``kernel`` to the calling rank's virtual clock."""
        return self.core.state.charge_compute(self.world_rank, flops, kernel, n)
